//! # netcon — network constructors
//!
//! A complete Rust implementation of **“Simple and Efficient Local Codes
//! for Distributed Stable Network Construction”** (Michail & Spirakis,
//! PODC 2014 / Distributed Computing). This facade crate re-exports the
//! workspace:
//!
//! * [`core`] — the model: protocols, populations, schedulers, simulation;
//! * [`graph`] — edge sets, shape predicates, random graphs, isomorphism;
//! * [`protocols`] — every constructor from the paper (lines, rings,
//!   stars, cycle covers, k-regular networks, cliques, replication…);
//! * [`processes`] — the fundamental probabilistic processes of Table 1;
//! * [`analysis`] — trial sweeps, statistics and power-law fits;
//! * [`tm`] — the space-bounded Turing-machine substrate;
//! * [`universal`] — partitions, TM-on-a-line simulation, universal
//!   constructors and supernodes (§6).
//!
//! ## Quickstart
//!
//! ```
//! use netcon::core::Simulation;
//! use netcon::graph::properties::is_spanning_star;
//! use netcon::protocols::global_star;
//!
//! // n = 32 identical 2-state processes self-assemble a spanning star.
//! let mut sim = Simulation::new(global_star::protocol(), 32, 7);
//! let outcome = sim.run_until(|p| global_star::is_stable(p), 50_000_000);
//! assert!(outcome.stabilized());
//! assert!(is_spanning_star(sim.population().edges()));
//! ```
//!
//! For measurement-grade runs, compile the protocol and use an exact
//! event-driven engine — identical output distribution, cost proportional
//! to *effective* interactions only (`docs/engines.md` catalogues all
//! four engines and their exactness arguments):
//!
//! ```
//! use netcon::core::EventSim;
//! use netcon::protocols::global_star;
//!
//! let mut sim = EventSim::new(global_star::protocol().compile(), 128, 7);
//! let outcome = sim.run_until(global_star::is_stable, u64::MAX);
//! assert!(outcome.stabilized());
//! assert!(sim.is_quiescent()); // O(1)
//! ```

pub use netcon_analysis as analysis;
pub use netcon_core as core;
pub use netcon_graph as graph;
pub use netcon_processes as processes;
pub use netcon_protocols as protocols;
pub use netcon_tm as tm;
pub use netcon_universal as universal;
