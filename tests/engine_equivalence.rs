//! Paired-trial statistical equivalence of the three engines.
//!
//! `EventSim` and `BucketSim` are exact by construction: their
//! `converged_at` / step-count distributions equal `Simulation`'s under
//! the uniform scheduler (`EventSim` skips the draws outside the exact
//! effective set; `BucketSim` skips the draws outside a state-bucketed
//! superset and rejects the difference — see `netcon_core::bucket`).
//! These tests check the claims empirically with thousands of
//! independent trials per engine per workload (disjoint seed streams,
//! Welch z on the means, ratio bound on the variances), all pairwise.
//! Seeds are fixed, so the suite is deterministic: the thresholds sit at
//! ≈ 4σ of the null, far from both flakiness and real regressions (an
//! engine bug that biases a skip law shows up as tens of σ).
//!
//! The coin-level proptests at the bottom pin the shared skip sampler
//! itself: both event engines draw their skip counts from the same
//! `geometric_skip` inversion, so feeding the two engines one skip
//! schedule (the same stream of unit draws) makes the bucket engine —
//! whose candidate set is a superset, hence whose hit probability is
//! larger — skip no more than the dense engine at every step.

use netcon::core::seeds::derive2;
use netcon::core::{
    geometric_skip, unit_open01, BucketSim, EventSim, Link, Population, ProtocolBuilder,
    RuleProtocol, Simulation, SparsePop, StateId,
};
use netcon::graph::properties::is_maximum_matching;
use netcon::protocols::{cycle_cover, simple_global_line};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EngineKind {
    Naive,
    Event,
    Bucket,
}
use EngineKind::{Bucket, Event, Naive};

/// Mean and sample variance of `converged_at` over `trials` runs.
fn sample(
    protocol: &RuleProtocol,
    stable: impl Fn(&Population<StateId>) -> bool,
    sparse_stable: impl Fn(&SparsePop) -> bool,
    n: usize,
    trials: u64,
    base_seed: u64,
    kind: EngineKind,
) -> (f64, f64) {
    let compiled = protocol.compile();
    let samples: Vec<f64> = (0..trials)
        .map(|t| {
            let seed = derive2(base_seed, n as u64, t);
            let out = match kind {
                Event => {
                    EventSim::new(compiled.clone(), n, seed).run_until(|p| stable(p), u64::MAX)
                }
                Bucket => BucketSim::new(compiled.clone(), n, seed)
                    .run_until(|sp| sparse_stable(sp), u64::MAX),
                Naive => {
                    Simulation::new(protocol.clone(), n, seed).run_until(|p| stable(p), u64::MAX)
                }
            };
            out.converged_at().expect("stabilizes") as f64
        })
        .collect();
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
        / (samples.len() - 1) as f64;
    (mean, var)
}

/// Asserts two engines' `converged_at` means are within ≈ 4σ (Welch) and
/// the variances within a generous ratio window.
fn assert_pair(name: &str, a: (&str, f64, f64), b: (&str, f64, f64), n: usize, trials: u64) {
    let ((ka, ma, va), (kb, mb, vb)) = (a, b);
    let se = (va / trials as f64 + vb / trials as f64).sqrt();
    let z = (ma - mb) / se;
    assert!(
        z.abs() < 4.0,
        "{name} n={n} {ka} vs {kb}: means differ by {z:.1}σ ({ka} {ma:.0} ± var {va:.0}, {kb} {mb:.0} ± var {vb:.0})"
    );
    let ratio = va.max(vb) / va.min(vb).max(1.0);
    assert!(
        ratio < 2.5,
        "{name} n={n} {ka} vs {kb}: variance ratio {ratio:.2} ({ka} {va:.0}, {kb} {vb:.0})"
    );
    // And the means must be close in relative terms too (the acceptance
    // bar for the engine additions): < 5% once trials ≥ 200.
    let rel = (ma - mb).abs() / mb.abs().max(1.0);
    assert!(
        rel < 0.05,
        "{name} n={n} {ka} vs {kb}: relative mean gap {:.2}% exceeds 5%",
        100.0 * rel
    );
}

/// Runs all three engines on disjoint seed streams and asserts pairwise
/// equivalence of the `converged_at` distributions.
fn assert_equivalent_3way(
    name: &str,
    protocol: &RuleProtocol,
    stable: impl Fn(&Population<StateId>) -> bool + Copy,
    sparse_stable: impl Fn(&SparsePop) -> bool + Copy,
    n: usize,
    trials: u64,
) {
    let (me, ve) = sample(protocol, stable, sparse_stable, n, trials, 101, Event);
    let (mn, vn) = sample(protocol, stable, sparse_stable, n, trials, 202, Naive);
    let (mb, vb) = sample(protocol, stable, sparse_stable, n, trials, 303, Bucket);
    assert_pair(name, ("event", me, ve), ("naive", mn, vn), n, trials);
    assert_pair(name, ("bucket", mb, vb), ("naive", mn, vn), n, trials);
    assert_pair(name, ("bucket", mb, vb), ("event", me, ve), n, trials);
}

fn matching_protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("matching");
    let a = b.state("a");
    let m = b.state("b");
    b.rule((a, a, Link::Off), (m, m, Link::On));
    b.build().expect("valid")
}

#[test]
fn simple_global_line_matches_across_engines() {
    // Θ(n⁴)-class workload; n stays small so the naive side finishes.
    // converged_at's relative sd here is ≈ 70%, so the 5% mean bar needs
    // thousands of trials to sit at ≳ 3σ of the null.
    assert_equivalent_3way(
        "Simple-Global-Line",
        &simple_global_line::protocol(),
        simple_global_line::is_stable,
        simple_global_line::is_stable_sparse,
        16,
        3_000,
    );
}

#[test]
fn cycle_cover_matches_across_engines() {
    assert_equivalent_3way(
        "Cycle-Cover",
        &cycle_cover::protocol(),
        cycle_cover::is_stable,
        cycle_cover::is_stable_sparse,
        32,
        5_000,
    );
}

#[test]
fn matching_process_matches_across_engines() {
    assert_equivalent_3way(
        "Maximum-Matching",
        &matching_protocol(),
        |p| is_maximum_matching(p.edges()),
        |sp| sp.count_index(0) <= 1,
        32,
        5_000,
    );
}

#[test]
fn step_budget_distribution_matches() {
    // MaxSteps outcomes must also agree: with a budget below the typical
    // convergence time, all three engines should time out at the same
    // rate and report exactly the budget.
    let p = matching_protocol();
    let compiled = p.compile();
    let n = 40;
    let budget = 300; // ~ half the typical matching time at n=40
    let trials = 400u64;
    let timeouts = |kind: EngineKind| -> (u64, u64) {
        let mut timed_out = 0;
        let mut stabilized = 0;
        for t in 0..trials {
            let base = match kind {
                Event => 77,
                Naive => 88,
                Bucket => 99,
            };
            let seed = derive2(base, n as u64, t);
            let out = match kind {
                Event => EventSim::new(compiled.clone(), n, seed)
                    .run_until(|q| is_maximum_matching(q.edges()), budget),
                Bucket => BucketSim::new(compiled.clone(), n, seed)
                    .run_until(|sp| sp.count_index(0) <= 1, budget),
                Naive => Simulation::new(p.clone(), n, seed)
                    .run_until(|q| is_maximum_matching(q.edges()), budget),
            };
            match out {
                netcon::core::RunOutcome::MaxSteps { steps } => {
                    assert_eq!(steps, budget);
                    timed_out += 1;
                }
                netcon::core::RunOutcome::Stabilized { detected_at, .. } => {
                    assert!(detected_at <= budget);
                    stabilized += 1;
                }
            }
        }
        (timed_out, stabilized)
    };
    let (te, se_) = timeouts(Event);
    let (tn, sn) = timeouts(Naive);
    let (tb, sb) = timeouts(Bucket);
    assert_eq!(te + se_, trials);
    assert_eq!(tn + sn, trials);
    assert_eq!(tb + sb, trials);
    // Binomial SE at 400 trials is ≤ 0.025; allow ~4σ.
    for (label, tx) in [("event", te), ("bucket", tb)] {
        let diff = (tx as f64 - tn as f64).abs() / trials as f64;
        assert!(
            diff < 0.10,
            "timeout rates diverge: {label} {tx}/{trials} vs naive {tn}/{trials}"
        );
    }
}

// ---------------------------------------------------------------------
// Coin-level properties of the shared skip sampler.
// ---------------------------------------------------------------------

mod skip_schedule {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    proptest! {
        /// The inversion is the exact geometric CDF: skip(u, p) = g iff
        /// (1−p)^{g+1} < u ≤ (1−p)^g — i.e. g leading "misses" in the
        /// naive engine's Bernoulli sequence.
        #[test]
        fn inversion_matches_geometric_cdf(raw in any::<u64>(), kp in 1u64..1000, mp in 1000u64..2000) {
            let p = kp as f64 / mp as f64;
            let u = unit_open01(raw);
            let g = geometric_skip(u, p);
            prop_assert!(g >= 0.0);
            // Guard the comparison against the extreme tail where the
            // powers underflow.
            if g < 1e6 {
                let q = 1.0 - p;
                let hi = q.powf(g);
                let lo = q.powf(g + 1.0);
                // f64 rounding at the boundary: allow one ulp-ish slack.
                prop_assert!(u <= hi * (1.0 + 1e-12), "u={u} > (1-p)^g={hi}");
                prop_assert!(u > lo * (1.0 - 1e-12), "u={u} <= (1-p)^(g+1)={lo}");
            }
        }

        /// Sharing one skip schedule (the same unit draw), the engine
        /// with the larger candidate set never skips more: BucketSim's
        /// over-approximating set (p_bucket ≥ p_event) hits no later than
        /// EventSim's exact set on every draw.
        #[test]
        fn shared_schedule_is_monotone_in_p(raw in any::<u64>(), ke in 1u64..500, extra in 0u64..500, m in 1000u64..4000) {
            let u = unit_open01(raw);
            let p_event = ke as f64 / m as f64;
            let p_bucket = (ke + extra) as f64 / m as f64;
            prop_assert!(geometric_skip(u, p_bucket) <= geometric_skip(u, p_event));
        }

        /// The two event engines' candidate-set sizes obey the superset
        /// relation on random reachable matching configurations, and both
        /// count exactly what a brute-force scan counts.
        #[test]
        fn candidate_sets_are_nested_and_exact(n in 4usize..32, steps in 0u64..40, seed in any::<u64>()) {
            let p = super::matching_protocol().compile();
            let mut ev = EventSim::new(p.clone(), n, seed);
            ev.run_to(steps);
            let pop = ev.population().clone();
            let mut bu = BucketSim::from_population(p.clone(), pop.clone(), seed);

            // Brute force over all ordered pairs.
            let mut exact = 0u64;
            let mut maybe = 0u64;
            for u in 0..n {
                for v in 0..n {
                    if u == v { continue; }
                    let link = Link::from(pop.edges().is_active(u, v));
                    let (a, b) = (pop.state(u), pop.state(v));
                    use netcon::core::Machine;
                    if p.can_affect(a, b, link) { exact += 1; }
                    if p.can_affect(a, b, Link::Off)
                        || (link == Link::On && p.can_affect(a, b, Link::On)) {
                        maybe += 1;
                    }
                }
            }
            prop_assert_eq!(2 * ev.effective_pairs() as u64, exact);
            prop_assert_eq!(bu.candidate_weight(), maybe);
            prop_assert!(bu.candidate_weight() >= 2 * ev.effective_pairs() as u64);
        }

        /// Driving both engines with the same seed does not make them
        /// coin-identical (their draws differ), but on a protocol whose
        /// effectiveness is link-blind in the initial configuration the
        /// *first* skip of both engines comes from the same schedule
        /// entry and the same p — so it is bit-equal.
        #[test]
        fn first_skip_agrees_when_sets_coincide(n in 4usize..40, seed in any::<u64>()) {
            let p = super::matching_protocol().compile();
            // Initial configuration: all nodes in state a, no edges. The
            // exact set and the bucket set are both "all pairs": p = 1 …
            // unless n(n−1)/2 = k, in which case both engines skip the
            // draw entirely. Either way their first candidate lands on
            // step 1 with the same skip count (0).
            let mut ev = EventSim::new(p.clone(), n, seed);
            let mut bu = BucketSim::new(p, n, seed);
            let (re, rb) = (ev.advance(u64::MAX), bu.advance(u64::MAX));
            let skip_of = |s| match s {
                netcon::core::EventStep::Candidate { skipped, .. } => skipped,
                other => panic!("expected a candidate, got {other:?}"),
            };
            prop_assert_eq!(skip_of(re), 0);
            prop_assert_eq!(skip_of(rb), 0);
            prop_assert_eq!(ev.steps(), 1);
            prop_assert_eq!(bu.steps(), 1);
        }
    }

    /// Non-proptest spot check: the sampler consumes exactly one raw draw
    /// in the engines (the documented schedule contract), so replaying a
    /// recorded schedule reproduces the skips.
    #[test]
    fn schedule_replay_reproduces_skips() {
        let mut rng = SmallRng::seed_from_u64(7);
        let schedule: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let p = 0.125;
        let a: Vec<f64> = schedule.iter().map(|&r| geometric_skip(unit_open01(r), p)).collect();
        let b: Vec<f64> = schedule.iter().map(|&r| geometric_skip(unit_open01(r), p)).collect();
        assert_eq!(a, b);
        // And the empirical mean sits near the geometric mean (1−p)/p.
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        assert!((mean - (1.0 - p) / p).abs() < 4.0, "mean skip {mean}");
    }
}
