//! Paired-trial statistical equivalence of the two engines.
//!
//! `EventSim` is exact by construction: its `converged_at` / step-count
//! distributions equal `Simulation`'s under the uniform scheduler. These
//! tests check that claim empirically with ≥ 200 independent trials per
//! engine per workload (disjoint seed streams, Welch z on the means,
//! ratio bound on the variances). Seeds are fixed, so the suite is
//! deterministic: the thresholds are set at ≈ 4σ of the null, far from
//! both flakiness and real regressions (an engine bug that biases the
//! skip law shows up as tens of σ).

use netcon::core::seeds::derive2;
use netcon::core::{EventSim, Link, Population, ProtocolBuilder, RuleProtocol, Simulation, StateId};
use netcon::graph::properties::is_maximum_matching;
use netcon::protocols::{cycle_cover, simple_global_line};

/// Mean and sample variance of `converged_at` over `trials` runs.
fn sample(
    protocol: &RuleProtocol,
    stable: impl Fn(&Population<StateId>) -> bool,
    n: usize,
    trials: u64,
    base_seed: u64,
    event: bool,
) -> (f64, f64) {
    let compiled = protocol.compile();
    let samples: Vec<f64> = (0..trials)
        .map(|t| {
            let seed = derive2(base_seed, n as u64, t);
            let out = if event {
                EventSim::new(compiled.clone(), n, seed).run_until(|p| stable(p), u64::MAX)
            } else {
                Simulation::new(protocol.clone(), n, seed).run_until(|p| stable(p), u64::MAX)
            };
            out.converged_at().expect("stabilizes") as f64
        })
        .collect();
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
        / (samples.len() - 1) as f64;
    (mean, var)
}

/// Asserts the two engines' `converged_at` means are within ≈ 4σ (Welch)
/// and the variances within a generous ratio window.
fn assert_equivalent(
    name: &str,
    protocol: &RuleProtocol,
    stable: impl Fn(&Population<StateId>) -> bool + Copy,
    n: usize,
    trials: u64,
) {
    let (me, ve) = sample(protocol, stable, n, trials, 101, true);
    let (mn, vn) = sample(protocol, stable, n, trials, 202, false);
    let se = (ve / trials as f64 + vn / trials as f64).sqrt();
    let z = (me - mn) / se;
    assert!(
        z.abs() < 4.0,
        "{name} n={n}: means differ by {z:.1}σ (event {me:.0} ± var {ve:.0}, naive {mn:.0} ± var {vn:.0})"
    );
    let ratio = ve.max(vn) / ve.min(vn).max(1.0);
    assert!(
        ratio < 2.5,
        "{name} n={n}: variance ratio {ratio:.2} (event {ve:.0}, naive {vn:.0})"
    );
    // And the means must be close in relative terms too (the acceptance
    // bar for the engine refactor): < 5% once trials ≥ 200.
    let rel = (me - mn).abs() / mn;
    assert!(
        rel < 0.05,
        "{name} n={n}: relative mean gap {:.2}% exceeds 5%",
        100.0 * rel
    );
}

fn matching_protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("matching");
    let a = b.state("a");
    let m = b.state("b");
    b.rule((a, a, Link::Off), (m, m, Link::On));
    b.build().expect("valid")
}

#[test]
fn simple_global_line_matches_naive_engine() {
    // Θ(n⁴)-class workload; n stays small so the naive side finishes.
    // converged_at's relative sd here is ≈ 70%, so the 5% mean bar needs
    // thousands of trials to sit at ≳ 3σ of the null.
    assert_equivalent(
        "Simple-Global-Line",
        &simple_global_line::protocol(),
        simple_global_line::is_stable,
        16,
        3_000,
    );
}

#[test]
fn cycle_cover_matches_naive_engine() {
    assert_equivalent(
        "Cycle-Cover",
        &cycle_cover::protocol(),
        cycle_cover::is_stable,
        32,
        5_000,
    );
}

#[test]
fn matching_process_matches_naive_engine() {
    assert_equivalent(
        "Maximum-Matching",
        &matching_protocol(),
        |p| is_maximum_matching(p.edges()),
        32,
        5_000,
    );
}

#[test]
fn step_budget_distribution_matches() {
    // MaxSteps outcomes must also agree: with a budget below the typical
    // convergence time, both engines should time out at the same rate and
    // report exactly the budget.
    let p = matching_protocol();
    let compiled = p.compile();
    let n = 40;
    let budget = 300; // ~ half the typical matching time at n=40
    let trials = 400u64;
    let timeouts = |event: bool| -> (u64, u64) {
        let mut timed_out = 0;
        let mut stabilized = 0;
        for t in 0..trials {
            let seed = derive2(if event { 77 } else { 88 }, n as u64, t);
            let out = if event {
                EventSim::new(compiled.clone(), n, seed)
                    .run_until(|q| is_maximum_matching(q.edges()), budget)
            } else {
                Simulation::new(p.clone(), n, seed)
                    .run_until(|q| is_maximum_matching(q.edges()), budget)
            };
            match out {
                netcon::core::RunOutcome::MaxSteps { steps } => {
                    assert_eq!(steps, budget);
                    timed_out += 1;
                }
                netcon::core::RunOutcome::Stabilized { detected_at, .. } => {
                    assert!(detected_at <= budget);
                    stabilized += 1;
                }
            }
        }
        (timed_out, stabilized)
    };
    let (te, se_) = timeouts(true);
    let (tn, sn) = timeouts(false);
    assert_eq!(te + se_, trials);
    assert_eq!(tn + sn, trials);
    // Binomial SE at 400 trials is ≤ 0.025; allow ~4σ.
    let diff = (te as f64 - tn as f64).abs() / trials as f64;
    assert!(
        diff < 0.10,
        "timeout rates diverge: event {te}/{trials} vs naive {tn}/{trials}"
    );
}
