//! Paired-trial statistical equivalence of the five engines.
//!
//! The fast engines are exact by construction, each against the naive
//! loop under *its* scheduler family: `EventSim` and `BucketSim` equal
//! `Simulation` under the uniform scheduler (`EventSim` skips the draws
//! outside the exact effective set; `BucketSim` skips the draws outside
//! a state-bucketed superset and rejects the difference — see
//! `netcon_core::bucket`), and `RoundSim` / `RoundBucketSim` equal
//! `Simulation` under `ShuffledRounds` (hypergeometric within-round
//! skips plus scheduled-identity resolution — lazy dense rows in
//! `netcon_core::round`, counted cohorts in
//! `netcon_core::round_bucket`). The two families' running-time
//! distributions genuinely differ (box schedules remove the
//! coupon-collector slack), so the checks are pairwise *within* each
//! family: the uniform trio all ways, the round trio against its naive
//! loop — five engines, five comparisons per workload, with thousands
//! of independent trials per engine (disjoint seed streams, Welch z on
//! the means, ratio bound on the variances). Seeds are fixed, so the
//! suite is deterministic: the thresholds sit at ≈ 4σ of the null, far
//! from both flakiness and real regressions (an engine bug that biases
//! a skip law shows up as tens of σ).
//!
//! The coin-level proptests at the bottom pin the shared skip samplers
//! themselves: the geometric inversion both uniform-family engines draw
//! from (one shared skip schedule ⇒ the superset engine never skips
//! more; `GeoSkipCache` reproduces it bit for bit on the cached
//! domain), the hypergeometric inversions the round engines draw from
//! (bracketing the brute-force CDFs, including the within-round
//! exhaustion edge cases), and the batched-endgame absorption laws of
//! `netcon_core::walk` against brute-force per-draw walks.
//! `round_counts` adds the exact regression: on protocols whose round
//! count is schedule-independent, every round-family engine must report
//! the identical round count on every seed.

use netcon::core::seeds::derive2;
use netcon::core::{
    geometric_skip, hypergeometric_count, hypergeometric_skip, unit_open01, BucketSim, EventSim,
    GeoSkipCache, Link, Population, ProtocolBuilder, RoundBucketSim, RoundSim, RuleProtocol,
    ShuffledRounds, Simulation, SparsePop, StateId,
};
use netcon::graph::properties::is_maximum_matching;
use netcon::protocols::{cycle_cover, simple_global_line};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EngineKind {
    Naive,
    Event,
    Bucket,
    NaiveShuffled,
    Round,
    RoundBucket,
}
use EngineKind::{Bucket, Event, Naive, NaiveShuffled, Round, RoundBucket};

/// Mean and sample variance of `converged_at` over `trials` runs.
fn sample(
    protocol: &RuleProtocol,
    stable: impl Fn(&Population<StateId>) -> bool,
    sparse_stable: impl Fn(&SparsePop) -> bool,
    n: usize,
    trials: u64,
    base_seed: u64,
    kind: EngineKind,
) -> (f64, f64) {
    let compiled = protocol.compile();
    let samples: Vec<f64> = (0..trials)
        .map(|t| {
            let seed = derive2(base_seed, n as u64, t);
            let out = match kind {
                Event => {
                    EventSim::new(compiled.clone(), n, seed).run_until(|p| stable(p), u64::MAX)
                }
                Bucket => BucketSim::new(compiled.clone(), n, seed)
                    .run_until(|sp| sparse_stable(sp), u64::MAX),
                Naive => {
                    Simulation::new(protocol.clone(), n, seed).run_until(|p| stable(p), u64::MAX)
                }
                Round => {
                    RoundSim::new(compiled.clone(), n, seed).run_until(|p| stable(p), u64::MAX)
                }
                RoundBucket => RoundBucketSim::new(compiled.clone(), n, seed)
                    .run_until(|sp| sparse_stable(sp), u64::MAX),
                NaiveShuffled => {
                    Simulation::with_scheduler(protocol.clone(), n, seed, ShuffledRounds::new())
                        .run_until(|p| stable(p), u64::MAX)
                }
            };
            out.converged_at().expect("stabilizes") as f64
        })
        .collect();
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
        / (samples.len() - 1) as f64;
    (mean, var)
}

/// Asserts two engines' `converged_at` means are within ≈ 4σ (Welch) and
/// the variances within a generous ratio window.
fn assert_pair(name: &str, a: (&str, f64, f64), b: (&str, f64, f64), n: usize, trials: u64) {
    let ((ka, ma, va), (kb, mb, vb)) = (a, b);
    let se = (va / trials as f64 + vb / trials as f64).sqrt();
    let z = (ma - mb) / se;
    assert!(
        z.abs() < 4.0,
        "{name} n={n} {ka} vs {kb}: means differ by {z:.1}σ ({ka} {ma:.0} ± var {va:.0}, {kb} {mb:.0} ± var {vb:.0})"
    );
    let ratio = va.max(vb) / va.min(vb).max(1.0);
    assert!(
        ratio < 2.5,
        "{name} n={n} {ka} vs {kb}: variance ratio {ratio:.2} ({ka} {va:.0}, {kb} {vb:.0})"
    );
    // And the means must be close in relative terms too (the acceptance
    // bar for the engine additions): < 5% once trials ≥ 200.
    let rel = (ma - mb).abs() / mb.abs().max(1.0);
    assert!(
        rel < 0.05,
        "{name} n={n} {ka} vs {kb}: relative mean gap {:.2}% exceeds 5%",
        100.0 * rel
    );
}

/// Runs all five engines on disjoint seed streams and asserts pairwise
/// equivalence of the `converged_at` distributions *within each
/// scheduler family*: the uniform trio (naive / event / bucket) all
/// ways, and the ShuffledRounds trio (naive round-player / `RoundSim` /
/// `RoundBucketSim`) against its naive loop and against each other.
/// Cross-family comparisons are deliberately absent — the families'
/// distributions differ, and that difference is a measured result, not
/// a bug.
fn assert_equivalent_5way(
    name: &str,
    protocol: &RuleProtocol,
    stable: impl Fn(&Population<StateId>) -> bool + Copy,
    sparse_stable: impl Fn(&SparsePop) -> bool + Copy,
    n: usize,
    trials: u64,
) {
    let (me, ve) = sample(protocol, stable, sparse_stable, n, trials, 101, Event);
    let (mn, vn) = sample(protocol, stable, sparse_stable, n, trials, 202, Naive);
    let (mb, vb) = sample(protocol, stable, sparse_stable, n, trials, 303, Bucket);
    assert_pair(name, ("event", me, ve), ("naive", mn, vn), n, trials);
    assert_pair(name, ("bucket", mb, vb), ("naive", mn, vn), n, trials);
    assert_pair(name, ("bucket", mb, vb), ("event", me, ve), n, trials);
    let (mr, vr) = sample(protocol, stable, sparse_stable, n, trials, 404, Round);
    let (ms, vs) = sample(protocol, stable, sparse_stable, n, trials, 505, NaiveShuffled);
    let (mq, vq) = sample(protocol, stable, sparse_stable, n, trials, 606, RoundBucket);
    assert_pair(name, ("round", mr, vr), ("naive-shuffled", ms, vs), n, trials);
    assert_pair(name, ("round-sparse", mq, vq), ("naive-shuffled", ms, vs), n, trials);
    assert_pair(name, ("round-sparse", mq, vq), ("round", mr, vr), n, trials);
}

fn matching_protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("matching");
    let a = b.state("a");
    let m = b.state("b");
    b.rule((a, a, Link::Off), (m, m, Link::On));
    b.build().expect("valid")
}

#[test]
fn simple_global_line_matches_across_engines() {
    // Θ(n⁴)-class workload; n stays small so the naive side finishes.
    // converged_at's relative sd here is ≈ 70%, so the 5% mean bar needs
    // thousands of trials to sit at ≳ 3σ of the null.
    assert_equivalent_5way(
        "Simple-Global-Line",
        &simple_global_line::protocol(),
        simple_global_line::is_stable,
        simple_global_line::is_stable_sparse,
        16,
        3_000,
    );
}

#[test]
fn cycle_cover_matches_across_engines() {
    assert_equivalent_5way(
        "Cycle-Cover",
        &cycle_cover::protocol(),
        cycle_cover::is_stable,
        cycle_cover::is_stable_sparse,
        32,
        5_000,
    );
}

#[test]
fn matching_process_matches_across_engines() {
    assert_equivalent_5way(
        "Maximum-Matching",
        &matching_protocol(),
        |p| is_maximum_matching(p.edges()),
        |sp| sp.count_index(0) <= 1,
        32,
        5_000,
    );
}

#[test]
fn step_budget_distribution_matches() {
    // MaxSteps outcomes must also agree: with a budget below the typical
    // convergence time, all three engines should time out at the same
    // rate and report exactly the budget.
    let p = matching_protocol();
    let compiled = p.compile();
    let n = 40;
    let budget = 300; // ~ half the typical matching time at n=40
    let trials = 400u64;
    let timeouts = |kind: EngineKind| -> (u64, u64) {
        let mut timed_out = 0;
        let mut stabilized = 0;
        for t in 0..trials {
            let base = match kind {
                Event => 77,
                Naive => 88,
                Bucket => 99,
                Round => 111,
                NaiveShuffled => 122,
                RoundBucket => 133,
            };
            let seed = derive2(base, n as u64, t);
            let out = match kind {
                Event => EventSim::new(compiled.clone(), n, seed)
                    .run_until(|q| is_maximum_matching(q.edges()), budget),
                Bucket => BucketSim::new(compiled.clone(), n, seed)
                    .run_until(|sp| sp.count_index(0) <= 1, budget),
                Naive => Simulation::new(p.clone(), n, seed)
                    .run_until(|q| is_maximum_matching(q.edges()), budget),
                Round => RoundSim::new(compiled.clone(), n, seed)
                    .run_until(|q| is_maximum_matching(q.edges()), budget),
                RoundBucket => RoundBucketSim::new(compiled.clone(), n, seed)
                    .run_until(|sp| sp.count_index(0) <= 1, budget),
                NaiveShuffled => {
                    Simulation::with_scheduler(p.clone(), n, seed, ShuffledRounds::new())
                        .run_until(|q| is_maximum_matching(q.edges()), budget)
                }
            };
            match out {
                netcon::core::RunOutcome::MaxSteps { steps } => {
                    assert_eq!(steps, budget);
                    timed_out += 1;
                }
                netcon::core::RunOutcome::Stabilized { detected_at, .. } => {
                    assert!(detected_at <= budget);
                    stabilized += 1;
                }
            }
        }
        (timed_out, stabilized)
    };
    let (te, se_) = timeouts(Event);
    let (tn, sn) = timeouts(Naive);
    let (tb, sb) = timeouts(Bucket);
    assert_eq!(te + se_, trials);
    assert_eq!(tn + sn, trials);
    assert_eq!(tb + sb, trials);
    // Binomial SE at 400 trials is ≤ 0.025; allow ~4σ.
    for (label, tx) in [("event", te), ("bucket", tb)] {
        let diff = (tx as f64 - tn as f64).abs() / trials as f64;
        assert!(
            diff < 0.10,
            "timeout rates diverge: {label} {tx}/{trials} vs naive {tn}/{trials}"
        );
    }
    // Same check within the ShuffledRounds family (its timeout rate
    // differs from the uniform family's — budgets interact with the box
    // schedule — so it is compared only against its own naive loop).
    let (tr, sr) = timeouts(Round);
    let (ts, ss) = timeouts(NaiveShuffled);
    assert_eq!(tr + sr, trials);
    assert_eq!(ts + ss, trials);
    let diff = (tr as f64 - ts as f64).abs() / trials as f64;
    assert!(
        diff < 0.10,
        "timeout rates diverge: round {tr}/{trials} vs naive-shuffled {ts}/{trials}"
    );
    let (tq, sq) = timeouts(RoundBucket);
    assert_eq!(tq + sq, trials);
    let diff = (tq as f64 - ts as f64).abs() / trials as f64;
    assert!(
        diff < 0.10,
        "timeout rates diverge: round-sparse {tq}/{trials} vs naive-shuffled {ts}/{trials}"
    );
}

// ---------------------------------------------------------------------
// Exact round-count regression: RoundSim vs naive ShuffledRounds.
// ---------------------------------------------------------------------

mod round_counts {
    use super::*;

    /// Match in round 1, dissolve each matched edge at its only
    /// occurrence in round 2: under *any* box schedule the convergence
    /// round is exactly 2 (for even n), whatever the permutations and
    /// coins did. Both engines must report it on every seed — an exact
    /// (not statistical) equivalence check of the round bookkeeping.
    pub(super) fn dissolve_protocol() -> RuleProtocol {
        let mut b = ProtocolBuilder::new("dissolve");
        let a = b.state("a");
        let m = b.state("b");
        let d = b.state("c");
        b.rule((a, a, Link::Off), (m, m, Link::On));
        b.rule((m, m, Link::On), (d, d, Link::Off));
        b.build().expect("valid")
    }

    #[test]
    fn round_counts_match_naive_exactly_on_small_n() {
        let p = dissolve_protocol();
        let d = p.state("c").expect("dissolved state");
        for n in [4usize, 8, 14] {
            let m = (n as u64) * (n as u64 - 1) / 2;
            for seed in 0..15u64 {
                let stable = |q: &Population<StateId>| {
                    q.count_where(|s| *s == d) == q.n() && q.edges().active_count() == 0
                };
                let mut naive = Simulation::with_scheduler(
                    p.clone(),
                    n,
                    derive2(31, n as u64, seed),
                    ShuffledRounds::new(),
                );
                let naive_out = naive.run_until(stable, u64::MAX);
                let naive_rounds =
                    naive_out.converged_at().expect("stabilizes").div_ceil(m);

                let mut round = RoundSim::new(p.compile(), n, derive2(62, n as u64, seed));
                let round_out = round.run_until(stable, u64::MAX);
                let round_rounds =
                    round_out.converged_at().expect("stabilizes").div_ceil(m);
                assert_eq!(
                    round.last_output_change_round(),
                    round_rounds,
                    "n={n} seed={seed}: engine round bookkeeping disagrees with div_ceil"
                );

                let di = {
                    use netcon::core::EnumerableMachine;
                    p.compile().state_index(&d)
                };
                let mut sparse =
                    RoundBucketSim::new(p.compile(), n, derive2(93, n as u64, seed));
                let sparse_out = sparse.run_until(
                    |sp| sp.count_index(di) == sp.n() && sp.active_count() == 0,
                    u64::MAX,
                );
                let sparse_rounds =
                    sparse_out.converged_at().expect("stabilizes").div_ceil(m);
                assert_eq!(
                    sparse.last_output_change_round(),
                    sparse_rounds,
                    "n={n} seed={seed}: sparse round bookkeeping disagrees with div_ceil"
                );

                assert_eq!(
                    (naive_rounds, round_rounds, sparse_rounds),
                    (2, 2, 2),
                    "n={n} seed={seed}: dissolve must take exactly 2 rounds on every engine"
                );
            }
        }
    }

    #[test]
    fn matching_round_counts_are_one_on_both_engines() {
        // The single-phase variant: a maximum matching always completes
        // within round 1 of a box schedule.
        let p = super::matching_protocol();
        for n in [6usize, 12, 20] {
            let m = (n as u64) * (n as u64 - 1) / 2;
            for seed in 0..10u64 {
                let stable = |q: &Population<StateId>| is_maximum_matching(q.edges());
                let mut naive = Simulation::with_scheduler(
                    p.clone(),
                    n,
                    derive2(93, n as u64, seed),
                    ShuffledRounds::new(),
                );
                let nr = naive
                    .run_until(stable, u64::MAX)
                    .converged_at()
                    .expect("stabilizes")
                    .div_ceil(m);
                let mut round = RoundSim::new(p.compile(), n, derive2(94, n as u64, seed));
                let out = round.run_until(stable, u64::MAX);
                assert!(out.stabilized());
                let rr = round.last_output_change_round();
                let mut sparse = RoundBucketSim::new(p.compile(), n, derive2(95, n as u64, seed));
                let out = sparse.run_until(|sp| sp.count_index(0) <= 1, u64::MAX);
                assert!(out.stabilized());
                let sr = sparse.last_output_change_round();
                assert_eq!((nr, rr, sr), (1, 1, 1), "n={n} seed={seed}");
            }
        }
    }

    /// Stop/resume across round boundaries is coin-for-coin identical on
    /// both round-family fast engines: a skip batch never crosses a
    /// round boundary, so `run_to` interrupted exactly on boundaries
    /// consumes the identical draw sequence as the straight run — steps,
    /// bookkeeping, states, and edges all reproduce bit-exactly. (A
    /// *mid-round* interrupt may land inside a pending skip batch; there
    /// the engines promise truncation self-similarity — the resumed
    /// distribution is exact, checked statistically above — not coin
    /// identity.)
    #[test]
    fn stop_resume_at_round_boundaries_is_coin_for_coin_identical() {
        let p = super::round_counts::dissolve_protocol();
        let compiled = p.compile();
        for n in [8usize, 11] {
            let m = (n as u64) * (n as u64 - 1) / 2;
            // Every round boundary through the active phase, then deep
            // into quiescence (the jump path).
            let stops = [m, 2 * m, 3 * m, 4 * m, 5 * m + 7];
            let end = 5 * m + 7;
            type Fp = (u64, u64, u64, u64, Vec<StateId>, Vec<(usize, usize)>);
            let fp = |pop: &Population<StateId>, steps: u64, eff: u64, ev: u64, lo: u64| -> Fp {
                let states = (0..pop.n()).map(|u| *pop.state(u)).collect();
                let edges = pop.edges().active_edges().collect();
                (steps, eff, ev, lo, states, edges)
            };

            for seed in 0..8u64 {
                let s = derive2(47, n as u64, seed);
                let mut a = RoundSim::new(compiled.clone(), n, s);
                a.run_to(end);
                let mut b = RoundSim::new(compiled.clone(), n, s);
                for &t in &stops {
                    b.run_to(t);
                }
                assert!(a.pool_invariant_holds() && b.pool_invariant_holds());
                assert_eq!(
                    fp(a.population(), a.steps(), a.effective_steps(), a.edge_events(), a.last_output_change()),
                    fp(b.population(), b.steps(), b.effective_steps(), b.edge_events(), b.last_output_change()),
                    "RoundSim n={n} seed={seed}"
                );

                let mut a = RoundBucketSim::new(compiled.clone(), n, s);
                a.run_to(end);
                let mut b = RoundBucketSim::new(compiled.clone(), n, s);
                for &t in &stops {
                    b.run_to(t);
                }
                assert!(a.pool_invariant_holds() && b.pool_invariant_holds());
                assert_eq!(
                    fp(&a.to_population(), a.steps(), a.effective_steps(), a.edge_events(), a.last_output_change()),
                    fp(&b.to_population(), b.steps(), b.effective_steps(), b.edge_events(), b.last_output_change()),
                    "RoundBucketSim n={n} seed={seed}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fault-mode equivalence: the same FaultPlan injected into every engine.
// ---------------------------------------------------------------------

mod faults {
    use super::*;
    use netcon::core::testing::step_budget;
    use netcon::core::{FaultEvent, FaultPlan, FaultState};

    /// Mean and sample variance of `converged_at` over faulted trials.
    /// The fault plan derives from the *trial index only* (base 777), so
    /// engine `k`'s trial `t` injects the identical plan — crash victims
    /// and arrival slots included, since the alive-set evolution is
    /// plan-determined. Engine seeds stay on disjoint streams.
    #[allow(clippy::too_many_arguments)]
    fn sample_faulted(
        protocol: &RuleProtocol,
        stable: impl Fn(&Population<StateId>, &FaultState) -> bool,
        sparse_stable: impl Fn(&SparsePop, &FaultState) -> bool,
        plan_of: impl Fn(u64) -> FaultPlan,
        n: usize,
        trials: u64,
        base_seed: u64,
        kind: EngineKind,
    ) -> (f64, f64) {
        let compiled = protocol.compile();
        let max = step_budget(n);
        let samples: Vec<f64> = (0..trials)
            .map(|t| {
                let seed = derive2(base_seed, n as u64, t);
                let plan = plan_of(derive2(777, n as u64, t));
                let out = match kind {
                    Event => EventSim::new_faulted(compiled.clone(), n, seed, plan)
                        .run_faulted_until(|q, fs| stable(q, fs), max),
                    Bucket => BucketSim::new_faulted(compiled.clone(), n, seed, plan)
                        .run_faulted_until(|sp, fs| sparse_stable(sp, fs), max),
                    Naive => Simulation::new_faulted(protocol.clone(), n, seed, plan)
                        .run_faulted_until(|q, fs| stable(q, fs), max),
                    Round => RoundSim::new_faulted(compiled.clone(), n, seed, plan)
                        .run_faulted_until(|q, fs| stable(q, fs), max),
                    RoundBucket => RoundBucketSim::new_faulted(compiled.clone(), n, seed, plan)
                        .run_faulted_until(|sp, fs| sparse_stable(sp, fs), max),
                    NaiveShuffled => Simulation::with_scheduler_faulted(
                        protocol.clone(),
                        n,
                        seed,
                        ShuffledRounds::new(),
                        plan,
                    )
                    .run_faulted_until(|q, fs| stable(q, fs), max),
                };
                out.converged_at().expect("stabilizes under faults") as f64
            })
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / (samples.len() - 1) as f64;
        (mean, var)
    }

    /// The fault-mode mirror of `assert_equivalent_5way`: uniform trio
    /// all ways, round trio against its naive loop, identical plans per
    /// trial.
    pub(super) fn assert_equivalent_5way_faulted(
        name: &str,
        protocol: &RuleProtocol,
        stable: impl Fn(&Population<StateId>, &FaultState) -> bool + Copy,
        sparse_stable: impl Fn(&SparsePop, &FaultState) -> bool + Copy,
        plan_of: impl Fn(u64) -> FaultPlan + Copy,
        n: usize,
        trials: u64,
    ) {
        let run = |base, kind| {
            sample_faulted(protocol, stable, sparse_stable, plan_of, n, trials, base, kind)
        };
        let (me, ve) = run(101, Event);
        let (mn, vn) = run(202, Naive);
        let (mb, vb) = run(303, Bucket);
        assert_pair(name, ("event", me, ve), ("naive", mn, vn), n, trials);
        assert_pair(name, ("bucket", mb, vb), ("naive", mn, vn), n, trials);
        assert_pair(name, ("bucket", mb, vb), ("event", me, ve), n, trials);
        let (mr, vr) = run(404, Round);
        let (ms, vs) = run(505, NaiveShuffled);
        let (mq, vq) = run(606, RoundBucket);
        assert_pair(name, ("round", mr, vr), ("naive-shuffled", ms, vs), n, trials);
        assert_pair(name, ("round-sparse", mq, vq), ("naive-shuffled", ms, vs), n, trials);
        assert_pair(name, ("round-sparse", mq, vq), ("round", mr, vr), n, trials);
    }

    #[test]
    fn matching_under_mixed_faults_matches_across_engines() {
        // A crash mid-run, an arrival, then two random edge deletions:
        // every reclassification path of every engine fires. The
        // matching process stays convergent under all three damage
        // kinds (widowed `m` nodes are terminal; fresh `a` nodes pair
        // up), so `converged_at` is a clean sample unit.
        let plan = |s: u64| {
            FaultPlan::new(s)
                .at(150, FaultEvent::CrashRandom)
                .at(300, FaultEvent::Arrive)
                .at(450, FaultEvent::DeleteRandomActiveEdges(2))
        };
        let a = StateId::new(0);
        assert_equivalent_5way_faulted(
            "Maximum-Matching/faulted",
            &matching_protocol(),
            move |q, fs| {
                (0..q.n())
                    .filter(|&u| fs.is_alive(u) && *q.state(u) == a)
                    .count()
                    <= 1
            },
            |sp, fs| {
                (0..sp.n())
                    .filter(|&u| fs.is_alive(u) && sp.state_index(u) == 0)
                    .count()
                    <= 1
            },
            plan,
            32,
            3_000,
        );
    }

    #[test]
    fn simple_global_line_absorbs_arrivals_equivalently() {
        // Arrival-only churn keeps Simple-Global-Line convergent (the
        // line extends from its leader endpoint), and the alive-aware
        // edge-count predicate stays exact — see
        // `simple_global_line::is_stable_faulted`.
        let plan = |s: u64| {
            FaultPlan::new(s)
                .at(2_000, FaultEvent::Arrive)
                .at(4_000, FaultEvent::Arrive)
        };
        assert_equivalent_5way_faulted(
            "Simple-Global-Line/arrivals",
            &simple_global_line::protocol(),
            |q, fs| q.edges().active_count() + 1 == fs.alive_count(),
            |sp, fs| sp.active_count() + 1 == fs.alive_count(),
            plan,
            10,
            1_500,
        );
    }

    /// Exact (not statistical) regression under a fault: dissolve with a
    /// crash at step 0 leaves an even alive population on odd capacity,
    /// and the two-round argument survives the ghosts — each alive pair
    /// still occurs exactly once per (capacity-length) round, so both
    /// round-family engines must report exactly 2 rounds on every seed.
    #[test]
    fn dissolve_round_counts_survive_a_crash_exactly() {
        let p = super::round_counts::dissolve_protocol();
        let d = p.state("c").expect("dissolved state");
        for n in [9usize, 13] {
            let m = (n as u64) * (n as u64 - 1) / 2;
            for seed in 0..10u64 {
                let plan = FaultPlan::new(derive2(55, n as u64, seed))
                    .at(0, FaultEvent::CrashRandom);
                let stable = |q: &Population<StateId>, fs: &FaultState| {
                    (0..q.n()).filter(|&u| fs.is_alive(u)).all(|u| *q.state(u) == d)
                        && q.edges().active_count() == 0
                };
                let mut naive = Simulation::with_scheduler_faulted(
                    p.clone(),
                    n,
                    derive2(31, n as u64, seed),
                    ShuffledRounds::new(),
                    plan.clone(),
                );
                let naive_rounds = naive
                    .run_faulted_until(stable, u64::MAX)
                    .converged_at()
                    .expect("stabilizes")
                    .div_ceil(m);
                let mut round = RoundSim::new_faulted(
                    p.compile(),
                    n,
                    derive2(62, n as u64, seed),
                    plan.clone(),
                );
                let round_rounds = round
                    .run_faulted_until(stable, u64::MAX)
                    .converged_at()
                    .expect("stabilizes")
                    .div_ceil(m);
                assert_eq!(round.last_output_change_round(), round_rounds, "n={n} seed={seed}");

                let di = {
                    use netcon::core::EnumerableMachine;
                    p.compile().state_index(&d)
                };
                let mut sparse = RoundBucketSim::new_faulted(
                    p.compile(),
                    n,
                    derive2(93, n as u64, seed),
                    plan,
                );
                let sparse_rounds = sparse
                    .run_faulted_until(
                        |sp, fs| {
                            (0..sp.n())
                                .filter(|&u| fs.is_alive(u))
                                .all(|u| sp.state_index(u) == di)
                                && sp.active_count() == 0
                        },
                        u64::MAX,
                    )
                    .converged_at()
                    .expect("stabilizes")
                    .div_ceil(m);
                assert_eq!(
                    sparse.last_output_change_round(),
                    sparse_rounds,
                    "n={n} seed={seed}"
                );
                assert_eq!(
                    (naive_rounds, round_rounds, sparse_rounds),
                    (2, 2, 2),
                    "n={n} seed={seed}: dissolve minus one node still takes exactly 2 rounds"
                );
            }
        }
    }

    /// Stop/resume at fault boundaries is coin-for-coin identical on
    /// every engine: `run_faulted_to(final)` decomposes into exactly the
    /// per-event segments the interrupted run performs, so interrupting
    /// at the event times (and resuming) must reproduce the bit-exact
    /// trajectory — steps, bookkeeping, states, and edges.
    #[test]
    fn stop_resume_at_fault_boundaries_is_coin_for_coin_identical() {
        let p = super::matching_protocol();
        let compiled = p.compile();
        let n = 16;
        let plan = || {
            FaultPlan::new(33)
                .at(50, FaultEvent::CrashRandom)
                .at(120, FaultEvent::Arrive)
                .at(200, FaultEvent::DeleteRandomActiveEdges(1))
        };
        let stops = [50u64, 120, 200, 400];
        type Fp = (u64, u64, u64, Vec<StateId>, Vec<(usize, usize)>);
        let fp = |pop: &Population<StateId>, steps: u64, eff: u64, ev: u64| -> Fp {
            let states = (0..pop.n()).map(|u| *pop.state(u)).collect();
            let edges = pop.edges().active_edges().collect();
            (steps, eff, ev, states, edges)
        };

        let mut a = EventSim::new_faulted(compiled.clone(), n, 9, plan());
        a.run_faulted_to(400);
        let mut b = EventSim::new_faulted(compiled.clone(), n, 9, plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert_eq!(
            fp(a.population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(b.population(), b.steps(), b.effective_steps(), b.edge_events()),
            "EventSim"
        );

        let mut a = BucketSim::new_faulted(compiled.clone(), n, 9, plan());
        a.run_faulted_to(400);
        let mut b = BucketSim::new_faulted(compiled.clone(), n, 9, plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert_eq!(
            fp(&a.to_population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(&b.to_population(), b.steps(), b.effective_steps(), b.edge_events()),
            "BucketSim"
        );

        let mut a = RoundSim::new_faulted(compiled.clone(), n, 9, plan());
        a.run_faulted_to(400);
        let mut b = RoundSim::new_faulted(compiled.clone(), n, 9, plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert!(a.pool_invariant_holds() && b.pool_invariant_holds());
        assert_eq!(
            fp(a.population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(b.population(), b.steps(), b.effective_steps(), b.edge_events()),
            "RoundSim"
        );

        let mut a = RoundBucketSim::new_faulted(compiled.clone(), n, 9, plan());
        a.run_faulted_to(400);
        let mut b = RoundBucketSim::new_faulted(compiled, n, 9, plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert!(a.pool_invariant_holds() && b.pool_invariant_holds());
        assert_eq!(
            fp(&a.to_population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(&b.to_population(), b.steps(), b.effective_steps(), b.edge_events()),
            "RoundBucketSim"
        );

        let mut a = Simulation::new_faulted(p.clone(), n, 9, plan());
        a.run_faulted_to(400);
        let mut b = Simulation::new_faulted(p.clone(), n, 9, plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert_eq!(
            fp(a.population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(b.population(), b.steps(), b.effective_steps(), b.edge_events()),
            "Simulation/uniform"
        );

        let mut a = Simulation::with_scheduler_faulted(p.clone(), n, 9, ShuffledRounds::new(), plan());
        a.run_faulted_to(400);
        let mut b = Simulation::with_scheduler_faulted(p, n, 9, ShuffledRounds::new(), plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert_eq!(
            fp(a.population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(b.population(), b.steps(), b.effective_steps(), b.edge_events()),
            "Simulation/shuffled-rounds"
        );
    }

    #[test]
    fn ft_star_under_shared_churn_matches_across_engines() {
        // Sustained Poisson churn instead of a hand-written burst: the
        // per-trial `ChurnPlan` compiles to the identical draw-indexed
        // `FaultPlan` for every engine (same seed ⇒ same arrivals, same
        // crash times, same capacity), so crash notifications and ghost
        // reclassification fire on the same schedule everywhere. FT-star
        // re-stabilizes after any crash pattern, so `converged_at` stays
        // a clean sample unit once the stream ends.
        use netcon::core::ChurnPlan;
        use netcon::protocols::ft_star;
        let n = 12;
        let plan = move |s: u64| {
            ChurnPlan::new(s)
                .arrival_rate(5e-4)
                .departure_rate(5e-4)
                .min_alive(6)
                .horizon(4_000)
                .compile(n)
        };
        assert_equivalent_5way_faulted(
            "FT-Global-Star/churn",
            &ft_star::protocol(),
            ft_star::is_stable_faulted_pop,
            ft_star::is_stable_faulted_sparse,
            plan,
            n,
            1_500,
        );
    }

    /// Stop/resume across *churn* boundaries is coin-for-coin identical:
    /// the boundary draws come from a compiled `ChurnPlan` (so they land
    /// wherever the Poisson stream put them, not on round numbers), and
    /// the protocol is FT-star so every crash also exercises the
    /// notification remap mid-segment.
    #[test]
    fn stop_resume_at_churn_boundaries_is_coin_for_coin_identical() {
        use netcon::core::ChurnPlan;
        use netcon::protocols::ft_star;
        let p = ft_star::protocol();
        let compiled = p.compile();
        let n = 14;
        let plan = || {
            ChurnPlan::new(21)
                .arrival_rate(1e-3)
                .departure_rate(1e-3)
                .min_alive(7)
                .horizon(3_000)
                .compile(n)
        };
        let mut stops: Vec<u64> = plan().events().iter().map(|&(t, _)| t).collect();
        stops.dedup();
        assert!(stops.len() >= 2, "churn stream yields several boundaries");
        let last = *stops.last().expect("non-empty");
        stops.push(last + 500);
        let end = last + 500;
        type Fp = (u64, u64, u64, Vec<StateId>, Vec<(usize, usize)>);
        let fp = |pop: &Population<StateId>, steps: u64, eff: u64, ev: u64| -> Fp {
            let states = (0..pop.n()).map(|u| *pop.state(u)).collect();
            let edges = pop.edges().active_edges().collect();
            (steps, eff, ev, states, edges)
        };

        let mut a = EventSim::new_faulted(compiled.clone(), n, 17, plan());
        a.run_faulted_to(end);
        let mut b = EventSim::new_faulted(compiled.clone(), n, 17, plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert_eq!(
            fp(a.population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(b.population(), b.steps(), b.effective_steps(), b.edge_events()),
            "EventSim/churn"
        );

        let mut a = BucketSim::new_faulted(compiled.clone(), n, 17, plan());
        a.run_faulted_to(end);
        let mut b = BucketSim::new_faulted(compiled.clone(), n, 17, plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert_eq!(
            fp(&a.to_population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(&b.to_population(), b.steps(), b.effective_steps(), b.edge_events()),
            "BucketSim/churn"
        );

        let mut a = RoundSim::new_faulted(compiled.clone(), n, 17, plan());
        a.run_faulted_to(end);
        let mut b = RoundSim::new_faulted(compiled.clone(), n, 17, plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert!(a.pool_invariant_holds() && b.pool_invariant_holds());
        assert_eq!(
            fp(a.population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(b.population(), b.steps(), b.effective_steps(), b.edge_events()),
            "RoundSim/churn"
        );

        let mut a = RoundBucketSim::new_faulted(compiled.clone(), n, 17, plan());
        a.run_faulted_to(end);
        let mut b = RoundBucketSim::new_faulted(compiled, n, 17, plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert!(a.pool_invariant_holds() && b.pool_invariant_holds());
        assert_eq!(
            fp(&a.to_population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(&b.to_population(), b.steps(), b.effective_steps(), b.edge_events()),
            "RoundBucketSim/churn"
        );

        let mut a = Simulation::new_faulted(p.clone(), n, 17, plan());
        a.run_faulted_to(end);
        let mut b = Simulation::new_faulted(p.clone(), n, 17, plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert_eq!(
            fp(a.population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(b.population(), b.steps(), b.effective_steps(), b.edge_events()),
            "Simulation/uniform/churn"
        );

        let mut a = Simulation::with_scheduler_faulted(p.clone(), n, 17, ShuffledRounds::new(), plan());
        a.run_faulted_to(end);
        let mut b = Simulation::with_scheduler_faulted(p, n, 17, ShuffledRounds::new(), plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert_eq!(
            fp(a.population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(b.population(), b.steps(), b.effective_steps(), b.edge_events()),
            "Simulation/shuffled-rounds/churn"
        );
    }
}

// ---------------------------------------------------------------------
// Adaptive adversaries: shared-plan paired statistics, coin-for-coin
// stop/resume across decision draws, and brute-forced bookkeeping
// after adaptive damage.
// ---------------------------------------------------------------------

mod adversary {
    use super::*;
    use netcon::core::{AdversaryPlan, AdversaryPolicy, Cadence, FaultEvent, FaultPlan};

    #[test]
    fn matching_under_adaptive_adversary_matches_across_engines() {
        // Every trial hands every engine the *same* adversary (cadence,
        // policies, floor) plus one scheduled arrival and one seeded
        // random crash. Trajectories differ per engine (disjoint seed
        // streams ⇒ different configurations at the decision draws ⇒
        // different targeted damage), but the decision *times* and the
        // policy are plan-determined, so all six engine/scheduler
        // combos sample the identical adaptive process — the paired
        // statistics must agree. The matching process stays convergent
        // under every policy: widowed and cut `m` nodes are terminal,
        // fresh `a` nodes pair up.
        let plan = |s: u64| {
            FaultPlan::new(s)
                .at(150, FaultEvent::Arrive)
                .at(500, FaultEvent::CrashRandom)
                .with_adversary(
                    AdversaryPlan::new(Cadence::Ramp {
                        start: 80,
                        first_gap: 160,
                        min_gap: 40,
                        count: 3,
                    })
                    .policy(AdversaryPolicy::CrashMaxDegree)
                    .policy(AdversaryPolicy::CutBridge)
                    .min_alive(24),
                )
        };
        let a = StateId::new(0);
        super::faults::assert_equivalent_5way_faulted(
            "Maximum-Matching/adversary",
            &matching_protocol(),
            move |q, fs| {
                (0..q.n())
                    .filter(|&u| fs.is_alive(u) && *q.state(u) == a)
                    .count()
                    <= 1
            },
            |sp, fs| {
                (0..sp.n())
                    .filter(|&u| fs.is_alive(u) && sp.state_index(u) == 0)
                    .count()
                    <= 1
            },
            plan,
            32,
            3_000,
        );
    }

    /// Stop/resume across *decision* draws is coin-for-coin identical:
    /// interrupting exactly at (and between) the adversary's decision
    /// times must reproduce the bit-exact trajectory, because a resumed
    /// engine re-derives the same configuration snapshot and the pure
    /// policy re-emits the same damage. FT-star makes every strike also
    /// exercise the crash-notification remap.
    #[test]
    fn stop_resume_at_decision_draws_is_coin_for_coin_identical() {
        use netcon::protocols::ft_star;
        let p = ft_star::protocol();
        let compiled = p.compile();
        let n = 14;
        let plan = || {
            FaultPlan::new(41)
                .at(260, FaultEvent::Arrive)
                .with_adversary(
                    AdversaryPlan::new(Cadence::Burst(vec![120, 340, 560]))
                        .policy(AdversaryPolicy::CrashMaxDegree)
                        .min_alive(6),
                )
        };
        let mut stops = plan().boundary_times();
        assert_eq!(stops, vec![120, 260, 340, 560], "events and decisions merge");
        stops.push(900);
        let end = 900;
        type Fp = (u64, u64, u64, Vec<StateId>, Vec<(usize, usize)>);
        let fp = |pop: &Population<StateId>, steps: u64, eff: u64, ev: u64| -> Fp {
            let states = (0..pop.n()).map(|u| *pop.state(u)).collect();
            let edges = pop.edges().active_edges().collect();
            (steps, eff, ev, states, edges)
        };

        let mut a = EventSim::new_faulted(compiled.clone(), n, 23, plan());
        a.run_faulted_to(end);
        let mut b = EventSim::new_faulted(compiled.clone(), n, 23, plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert_eq!(
            a.fault_state().expect("faulted").decisions_taken(),
            3,
            "all decisions fired"
        );
        assert_eq!(
            fp(a.population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(b.population(), b.steps(), b.effective_steps(), b.edge_events()),
            "EventSim/adversary"
        );

        let mut a = BucketSim::new_faulted(compiled.clone(), n, 23, plan());
        a.run_faulted_to(end);
        let mut b = BucketSim::new_faulted(compiled.clone(), n, 23, plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert_eq!(
            fp(&a.to_population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(&b.to_population(), b.steps(), b.effective_steps(), b.edge_events()),
            "BucketSim/adversary"
        );

        let mut a = RoundSim::new_faulted(compiled.clone(), n, 23, plan());
        a.run_faulted_to(end);
        let mut b = RoundSim::new_faulted(compiled.clone(), n, 23, plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert!(a.pool_invariant_holds() && b.pool_invariant_holds());
        assert_eq!(
            fp(a.population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(b.population(), b.steps(), b.effective_steps(), b.edge_events()),
            "RoundSim/adversary"
        );

        let mut a = RoundBucketSim::new_faulted(compiled.clone(), n, 23, plan());
        a.run_faulted_to(end);
        let mut b = RoundBucketSim::new_faulted(compiled, n, 23, plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert!(a.pool_invariant_holds() && b.pool_invariant_holds());
        assert_eq!(
            fp(&a.to_population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(&b.to_population(), b.steps(), b.effective_steps(), b.edge_events()),
            "RoundBucketSim/adversary"
        );

        let mut a = Simulation::new_faulted(p.clone(), n, 23, plan());
        a.run_faulted_to(end);
        let mut b = Simulation::new_faulted(p.clone(), n, 23, plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert_eq!(
            fp(a.population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(b.population(), b.steps(), b.effective_steps(), b.edge_events()),
            "Simulation/uniform/adversary"
        );

        let mut a =
            Simulation::with_scheduler_faulted(p.clone(), n, 23, ShuffledRounds::new(), plan());
        a.run_faulted_to(end);
        let mut b = Simulation::with_scheduler_faulted(p, n, 23, ShuffledRounds::new(), plan());
        for &s in &stops {
            b.run_faulted_to(s);
        }
        assert_eq!(
            fp(a.population(), a.steps(), a.effective_steps(), a.edge_events()),
            fp(b.population(), b.steps(), b.effective_steps(), b.edge_events()),
            "Simulation/shuffled-rounds/adversary"
        );
    }

    mod bookkeeping {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Adaptive damage rides the same `ResolvedFault` path as
            /// scheduled events, so after any cadence / policy-set /
            /// budget / floor combination (interleaved with random
            /// scheduled faults), every engine's incremental candidate
            /// structure must equal a brute-force recomputation over
            /// the alive population — the adaptive mirror of
            /// `fault_bookkeeping::candidate_structures_track_faults_exactly`.
            #[test]
            fn candidate_structures_track_adaptive_damage_exactly(
                n in 4usize..14,
                seed in any::<u64>(),
                plan_seed in any::<u64>(),
                choices in proptest::collection::vec((0u64..220, any::<u8>()), 0..4),
                cadence_kind in 0u8..3,
                start in 0u64..200,
                gap in 1u64..90,
                count in 1u32..5,
                policy_mask in 1u8..16,
                budget_sel in 0u64..12,
                floor_sel in 0usize..8,
            ) {
                // The vendored proptest has no Option strategy; fold
                // None into the upper half of a plain range.
                let budget = (budget_sel < 6).then_some(budget_sel);
                let floor = (floor_sel < 4).then(|| 2 + floor_sel);
                let cadence = match cadence_kind {
                    0 => Cadence::Periodic { start, every: gap, count },
                    1 => Cadence::Burst(
                        (0..u64::from(count)).map(|k| start + k * gap).collect(),
                    ),
                    _ => Cadence::Ramp {
                        start,
                        first_gap: gap,
                        min_gap: 1 + gap / 4,
                        count,
                    },
                };
                let mut adv = AdversaryPlan::new(cadence);
                let all = [
                    AdversaryPolicy::CrashMaxDegree,
                    AdversaryPolicy::CrashState(1),
                    AdversaryPolicy::CutBridge,
                    AdversaryPolicy::CutAtWalker(1),
                ];
                for (i, &pol) in all.iter().enumerate() {
                    if policy_mask & (1 << i) != 0 {
                        adv = adv.policy(pol);
                    }
                }
                if let Some(b) = budget {
                    adv = adv.budget(b);
                }
                if let Some(f) = floor {
                    adv = adv.min_alive(f);
                }
                let plan = super::super::fault_bookkeeping::plan_from(&choices, plan_seed)
                    .with_adversary(adv);

                let p = super::matching_protocol().compile();
                let mut ev = EventSim::new_faulted(p.clone(), n, seed, plan.clone());
                let mut bu = BucketSim::new_faulted(p.clone(), n, seed, plan.clone());
                let mut rs = RoundSim::new_faulted(p.clone(), n, seed, plan.clone());
                let mut rb = RoundBucketSim::new_faulted(p.clone(), n, seed, plan);

                for target in [120u64, 260, 520] {
                    ev.run_faulted_to(target);
                    bu.run_faulted_to(target);
                    rs.run_faulted_to(target);
                    rb.run_faulted_to(target);

                    let brute = super::super::fault_bookkeeping::brute;
                    let (exact_e, _) =
                        brute(&p, ev.population(), ev.fault_state().expect("faulted"));
                    prop_assert_eq!(2 * ev.effective_pairs() as u64, exact_e);

                    let bp = bu.to_population();
                    let bfs = bu.fault_state().expect("faulted").clone();
                    let (_, maybe_b) = brute(&p, &bp, &bfs);
                    prop_assert_eq!(bu.candidate_weight(), maybe_b);

                    let (exact_r, _) =
                        brute(&p, rs.population(), rs.fault_state().expect("faulted"));
                    prop_assert_eq!(2 * rs.effective_pairs() as u64, exact_r);
                    prop_assert!(rs.pool_invariant_holds());

                    let rbp = rb.to_population();
                    let rbfs = rb.fault_state().expect("faulted").clone();
                    let (exact_q, _) = brute(&p, &rbp, &rbfs);
                    prop_assert_eq!(2 * rb.effective_pairs(), exact_q);
                    prop_assert!(rb.unscheduled_candidates() <= rb.effective_pairs());
                    prop_assert!(rb.pool_invariant_holds());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Brute-force candidate recomputation under random fault sequences.
// ---------------------------------------------------------------------

mod fault_bookkeeping {
    use super::*;
    use netcon::core::Machine;
    use netcon::core::{FaultEvent, FaultPlan, FaultState};
    use proptest::prelude::*;

    pub(super) fn plan_from(choices: &[(u64, u8)], seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        let mut crashes = 0;
        for &(at, kind) in choices {
            let ev = match kind % 3 {
                0 => {
                    // Keep at least two nodes alive for the engines.
                    crashes += 1;
                    if crashes > 2 {
                        continue;
                    }
                    FaultEvent::CrashRandom
                }
                1 => FaultEvent::Arrive,
                _ => FaultEvent::DeleteRandomActiveEdges(1 + u32::from(kind % 2)),
            };
            plan = plan.at(at, ev);
        }
        plan
    }

    /// Ordered-pair counts over the *alive* population: the exact
    /// effective count and BucketSim's state-bucketed over-approximation
    /// (`can_affect(·, ·, Off)` union active-`On`), recomputed from
    /// scratch — the ground truth each engine's incremental fault
    /// bookkeeping must match.
    pub(super) fn brute(
        p: &netcon::core::CompiledTable,
        pop: &Population<StateId>,
        fs: &FaultState,
    ) -> (u64, u64) {
        let (mut exact, mut maybe) = (0u64, 0u64);
        for u in 0..pop.n() {
            for v in 0..pop.n() {
                if u == v || !fs.is_alive(u) || !fs.is_alive(v) {
                    continue;
                }
                let link = Link::from(pop.edges().is_active(u, v));
                let (a, b) = (pop.state(u), pop.state(v));
                if p.can_affect(a, b, link) {
                    exact += 1;
                }
                if p.can_affect(a, b, Link::Off)
                    || (link == Link::On && p.can_affect(a, b, Link::On))
                {
                    maybe += 1;
                }
            }
        }
        (exact, maybe)
    }

    proptest! {
        /// After an arbitrary interleaving of steps, crashes, arrivals,
        /// and edge deletions, every engine's candidate structure equals
        /// a brute-force recomputation over the alive population — and
        /// RoundSim's lazy pool partition still accounts for every pair
        /// of the current round.
        #[test]
        fn candidate_structures_track_faults_exactly(
            n in 4usize..14,
            seed in any::<u64>(),
            plan_seed in any::<u64>(),
            choices in proptest::collection::vec((0u64..220, any::<u8>()), 0..6),
        ) {
            let p = super::matching_protocol().compile();
            let plan = plan_from(&choices, plan_seed);

            let mut ev = EventSim::new_faulted(p.clone(), n, seed, plan.clone());
            let mut bu = BucketSim::new_faulted(p.clone(), n, seed, plan.clone());
            let mut rs = RoundSim::new_faulted(p.clone(), n, seed, plan.clone());
            let mut rb = RoundBucketSim::new_faulted(p.clone(), n, seed, plan);

            for target in [120u64, 260] {
                ev.run_faulted_to(target);
                bu.run_faulted_to(target);
                rs.run_faulted_to(target);
                rb.run_faulted_to(target);

                let (exact_e, _) =
                    brute(&p, ev.population(), ev.fault_state().expect("faulted"));
                prop_assert_eq!(2 * ev.effective_pairs() as u64, exact_e);

                let bp = bu.to_population();
                let bfs = bu.fault_state().expect("faulted").clone();
                let (_, maybe_b) = brute(&p, &bp, &bfs);
                prop_assert_eq!(bu.candidate_weight(), maybe_b);

                let (exact_r, _) =
                    brute(&p, rs.population(), rs.fault_state().expect("faulted"));
                prop_assert_eq!(2 * rs.effective_pairs() as u64, exact_r);
                prop_assert!(rs.pool_invariant_holds());

                // The sparse round engine's counted strata must add up to
                // the same exact candidate count, its unscheduled slice
                // can never exceed it, and the per-round pool partition
                // must account for every remaining pair.
                let rbp = rb.to_population();
                let rbfs = rb.fault_state().expect("faulted").clone();
                let (exact_q, _) = brute(&p, &rbp, &rbfs);
                prop_assert_eq!(2 * rb.effective_pairs(), exact_q);
                prop_assert!(rb.unscheduled_candidates() <= rb.effective_pairs());
                prop_assert!(rb.pool_invariant_holds());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Coin-level properties of the shared skip sampler.
// ---------------------------------------------------------------------

mod skip_schedule {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    proptest! {
        /// The inversion is the exact geometric CDF: skip(u, p) = g iff
        /// (1−p)^{g+1} < u ≤ (1−p)^g — i.e. g leading "misses" in the
        /// naive engine's Bernoulli sequence.
        #[test]
        fn inversion_matches_geometric_cdf(raw in any::<u64>(), kp in 1u64..1000, mp in 1000u64..2000) {
            let p = kp as f64 / mp as f64;
            let u = unit_open01(raw);
            let g = geometric_skip(u, p);
            prop_assert!(g >= 0.0);
            // Guard the comparison against the extreme tail where the
            // powers underflow.
            if g < 1e6 {
                let q = 1.0 - p;
                let hi = q.powf(g);
                let lo = q.powf(g + 1.0);
                // f64 rounding at the boundary: allow one ulp-ish slack.
                prop_assert!(u <= hi * (1.0 + 1e-12), "u={u} > (1-p)^g={hi}");
                prop_assert!(u > lo * (1.0 - 1e-12), "u={u} <= (1-p)^(g+1)={lo}");
            }
        }

        /// Sharing one skip schedule (the same unit draw), the engine
        /// with the larger candidate set never skips more: BucketSim's
        /// over-approximating set (p_bucket ≥ p_event) hits no later than
        /// EventSim's exact set on every draw.
        #[test]
        fn shared_schedule_is_monotone_in_p(raw in any::<u64>(), ke in 1u64..500, extra in 0u64..500, m in 1000u64..4000) {
            let u = unit_open01(raw);
            let p_event = ke as f64 / m as f64;
            let p_bucket = (ke + extra) as f64 / m as f64;
            prop_assert!(geometric_skip(u, p_bucket) <= geometric_skip(u, p_event));
        }

        /// The geometric skip cache is bit-identical to the direct
        /// inversion it replaces: on the cached domain (skips within the
        /// table horizon) `lookup` returns *exactly*
        /// `geometric_skip(unit_open01(raw), p)` — not an approximation —
        /// and outside it returns `None` so the engine recomputes from
        /// the same raw draw. Either way the engine's coin stream is
        /// unchanged, which is what makes the cache invisible to every
        /// equivalence test above.
        #[test]
        fn geo_cache_is_bit_identical_to_direct_inversion(
            raw in any::<u64>(),
            kp in 1u64..999,
        ) {
            let p = kp as f64 / 1000.0;
            let cache = GeoSkipCache::build(p);
            prop_assert_eq!(cache.p(), p);
            let direct = geometric_skip(unit_open01(raw), p);
            match cache.lookup(raw) {
                Some(cached) => prop_assert_eq!(cached, direct, "cache diverges at raw={raw}"),
                None => prop_assert!(
                    direct > 63.0,
                    "cache refused an in-horizon skip {direct} at raw={raw}"
                ),
            }
        }

        /// Small raw draws map deep into the tail (beyond the horizon of
        /// 64), so the cache must decline them; the all-ones draw maps to
        /// zero skips and must be served from the table.
        #[test]
        fn geo_cache_horizon_edges(kp in 1u64..200) {
            let p = kp as f64 / 1000.0;
            let cache = GeoSkipCache::build(p);
            prop_assert_eq!(cache.lookup(u64::MAX), Some(0.0));
            prop_assert_eq!(cache.lookup(0), None, "p={p} should overflow the horizon at u→0");
        }

        /// The two event engines' candidate-set sizes obey the superset
        /// relation on random reachable matching configurations, and both
        /// count exactly what a brute-force scan counts.
        #[test]
        fn candidate_sets_are_nested_and_exact(n in 4usize..32, steps in 0u64..40, seed in any::<u64>()) {
            let p = super::matching_protocol().compile();
            let mut ev = EventSim::new(p.clone(), n, seed);
            ev.run_to(steps);
            let pop = ev.population().clone();
            let mut bu = BucketSim::from_population(p.clone(), pop.clone(), seed);

            // Brute force over all ordered pairs.
            let mut exact = 0u64;
            let mut maybe = 0u64;
            for u in 0..n {
                for v in 0..n {
                    if u == v { continue; }
                    let link = Link::from(pop.edges().is_active(u, v));
                    let (a, b) = (pop.state(u), pop.state(v));
                    use netcon::core::Machine;
                    if p.can_affect(a, b, link) { exact += 1; }
                    if p.can_affect(a, b, Link::Off)
                        || (link == Link::On && p.can_affect(a, b, Link::On)) {
                        maybe += 1;
                    }
                }
            }
            prop_assert_eq!(2 * ev.effective_pairs() as u64, exact);
            prop_assert_eq!(bu.candidate_weight(), maybe);
            prop_assert!(bu.candidate_weight() >= 2 * ev.effective_pairs() as u64);
        }

        /// Driving both engines with the same seed does not make them
        /// coin-identical (their draws differ), but on a protocol whose
        /// effectiveness is link-blind in the initial configuration the
        /// *first* skip of both engines comes from the same schedule
        /// entry and the same p — so it is bit-equal.
        #[test]
        fn first_skip_agrees_when_sets_coincide(n in 4usize..40, seed in any::<u64>()) {
            let p = super::matching_protocol().compile();
            // Initial configuration: all nodes in state a, no edges. The
            // exact set and the bucket set are both "all pairs": p = 1 …
            // unless n(n−1)/2 = k, in which case both engines skip the
            // draw entirely. Either way their first candidate lands on
            // step 1 with the same skip count (0).
            let mut ev = EventSim::new(p.clone(), n, seed);
            let mut bu = BucketSim::new(p, n, seed);
            let (re, rb) = (ev.advance(u64::MAX), bu.advance(u64::MAX));
            let skip_of = |s| match s {
                netcon::core::EventStep::Candidate { skipped, .. } => skipped,
                other => panic!("expected a candidate, got {other:?}"),
            };
            prop_assert_eq!(skip_of(re), 0);
            prop_assert_eq!(skip_of(rb), 0);
            prop_assert_eq!(ev.steps(), 1);
            prop_assert_eq!(bu.steps(), 1);
        }
    }

    /// Exact negative-hypergeometric survival, draw by draw: the
    /// probability the first `t` draws of a permutation of `r` pairs
    /// (`k` of them candidates) are all non-candidates — what the naive
    /// ShuffledRounds loop realizes one draw at a time.
    fn nh_survival_brute(r: u64, k: u64, t: u64) -> f64 {
        if t > r - k {
            return 0.0;
        }
        (0..t).map(|i| (r - k - i) as f64 / (r - i) as f64).product()
    }

    /// Exact hypergeometric pmf by binomial-coefficient ratios.
    fn hg_pmf_brute(marked: u64, total: u64, draws: u64, x: u64) -> f64 {
        fn choose(n: u64, k: u64) -> f64 {
            if k > n {
                return 0.0;
            }
            (0..k).map(|i| (n - i) as f64 / (k - i) as f64).product()
        }
        choose(marked, x) * choose(total - marked, draws - x) / choose(total, draws)
    }

    proptest! {
        /// The within-round skip inversion is the exact negative
        /// hypergeometric CDF: skip(u, r, k) = t iff S(t) ≥ u > S(t+1),
        /// with S the brute-force draw-by-draw survival product — i.e.
        /// t leading misses of the naive round-player's permutation.
        #[test]
        fn hypergeometric_skip_matches_brute_force_cdf(
            raw in any::<u64>(),
            r in 2u64..400,
            k_seed in any::<u64>(),
        ) {
            let k = 1 + k_seed % r;
            let u = unit_open01(raw);
            let t = hypergeometric_skip(u, r, k);
            prop_assert!(t <= r - k, "skip {t} exceeds the round's misses");
            let hi = nh_survival_brute(r, k, t);
            let lo = nh_survival_brute(r, k, t + 1);
            // f64 rounding at the boundary: allow one ulp-ish slack.
            prop_assert!(u <= hi * (1.0 + 1e-9), "u={u} > S({t})={hi}");
            prop_assert!(u > lo * (1.0 - 1e-9), "u={u} <= S({})={lo}", t + 1);
        }

        /// Within-round exhaustion: when the uniform draw is deep in the
        /// tail the skip count saturates at exactly r − k (a round can
        /// never run out of candidates before its last candidate), and a
        /// full candidate set never skips.
        #[test]
        fn hypergeometric_skip_exhaustion_edges(r in 1u64..300, k_seed in any::<u64>()) {
            let k = 1 + k_seed % r;
            // One candidate, tail draw: S(r−1) = 1/r is far above the
            // smallest unit draw (2⁻⁵³), so the skip count saturates at
            // exactly the round's miss count.
            prop_assert_eq!(hypergeometric_skip(unit_open01(0), r, 1), r - 1);
            // u = 1 maps to zero skips; a full candidate set never skips.
            prop_assert_eq!(hypergeometric_skip(1.0, r, k), 0);
            prop_assert_eq!(hypergeometric_skip(unit_open01(raw_mid()), r, r), 0);
        }

        /// The batch-split inversion is the exact hypergeometric CDF:
        /// count(u) is the smallest x with CDF(x) ≥ u, against the
        /// brute-force pmf.
        #[test]
        fn hypergeometric_count_matches_brute_force_cdf(
            raw in any::<u64>(),
            marked in 0u64..40,
            extra in 0u64..40,
            draws_seed in any::<u64>(),
        ) {
            let total = marked + extra;
            prop_assume!(total >= 1);
            let draws = draws_seed % (total + 1);
            let u = unit_open01(raw);
            let x = hypergeometric_count(u, marked, total, draws);
            let lo = draws.saturating_sub(total - marked);
            let hi = marked.min(draws);
            prop_assert!(x >= lo && x <= hi, "count {x} outside [{lo}, {hi}]");
            let cdf = |y: u64| -> f64 {
                (lo..=y).map(|j| hg_pmf_brute(marked, total, draws, j)).sum()
            };
            prop_assert!(cdf(x) >= u * (1.0 - 1e-9), "CDF({x}) < u={u}");
            if x > lo {
                prop_assert!(cdf(x - 1) < u * (1.0 + 1e-9), "{x} not minimal for u={u}");
            }
        }
    }

    /// A fixed mid-range raw draw for the proptest above.
    fn raw_mid() -> u64 {
        u64::MAX / 2
    }

    /// Non-proptest spot check: the sampler consumes exactly one raw draw
    /// in the engines (the documented schedule contract), so replaying a
    /// recorded schedule reproduces the skips.
    #[test]
    fn schedule_replay_reproduces_skips() {
        let mut rng = SmallRng::seed_from_u64(7);
        let schedule: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let p = 0.125;
        let a: Vec<f64> = schedule.iter().map(|&r| geometric_skip(unit_open01(r), p)).collect();
        let b: Vec<f64> = schedule.iter().map(|&r| geometric_skip(unit_open01(r), p)).collect();
        assert_eq!(a, b);
        // And the empirical mean sits near the geometric mean (1−p)/p.
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        assert!((mean - (1.0 - p) / p).abs() < 4.0, "mean skip {mean}");
    }
}

// ---------------------------------------------------------------------
// Batched endgame absorption laws vs brute-force per-draw walks.
// ---------------------------------------------------------------------

mod endgame {
    use netcon::core::seeds::derive2;
    use netcon::core::walk::{exit_cdf, sample_absorption, survival, time_cap};
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force per-draw DP: push the walker's distribution one ±1
    /// step at a time on `0..=L` with absorbing barriers, accumulating
    /// the mass absorbed at each end — the law the naive engines realize
    /// coin by coin, and the ground truth for the closed forms.
    fn brute_exit_cdf(z: usize, len: usize, t: u64) -> (f64, f64) {
        let mut p = vec![0.0f64; len + 1];
        p[z] = 1.0;
        let (mut at0, mut atl) = (0.0, 0.0);
        for _ in 0..t {
            let mut q = vec![0.0f64; len + 1];
            for x in 1..len {
                q[x - 1] += p[x] * 0.5;
                q[x + 1] += p[x] * 0.5;
            }
            at0 += q[0];
            atl += q[len];
            q[0] = 0.0;
            q[len] = 0.0;
            p = q;
        }
        (at0, atl)
    }

    proptest! {
        /// In the exact-DP regime (t ≤ 1024) the closed-form exit CDF
        /// must equal the brute-force per-draw DP to rounding.
        #[test]
        fn exit_cdf_matches_brute_force_dp(
            len in 2usize..12,
            z_seed in any::<u64>(),
            t in 0u64..200,
        ) {
            let z = 1 + (z_seed as usize) % (len - 1);
            let (b0, bl) = brute_exit_cdf(z, len, t);
            prop_assert!((exit_cdf(z, len, true, t) - b0).abs() < 1e-12);
            prop_assert!((exit_cdf(z, len, false, t) - bl).abs() < 1e-12);
            let s = survival(z, len, t);
            prop_assert!((s - (1.0 - b0 - bl)).abs() < 1e-12);
        }

        /// In the spectral regime (t > 1024) the truncated eigen-sum
        /// must still match the same brute force — the tolerance covers
        /// the documented e⁻⁴⁵ truncation, far below any statistical
        /// resolution.
        #[test]
        fn spectral_exit_cdf_matches_brute_force_dp(
            len in 8usize..32,
            z_seed in any::<u64>(),
            extra in 0u64..300,
        ) {
            let z = 1 + (z_seed as usize) % (len - 1);
            let t = 1025 + extra;
            let (b0, bl) = brute_exit_cdf(z, len, t);
            prop_assert!((exit_cdf(z, len, true, t) - b0).abs() < 1e-9);
            prop_assert!((exit_cdf(z, len, false, t) - bl).abs() < 1e-9);
        }
    }

    /// Paired-stats check of the joint sampler on its batched path
    /// (`len > 64`, where the engines replace per-draw coins with an
    /// exit-side draw plus a CDF inversion): exit-side rate and mean
    /// absorption time against a brute-force per-draw walk, plus the
    /// exact structural facts — parity of the absorption time and the
    /// documented time cap.
    #[test]
    fn batched_absorption_matches_per_draw_walk() {
        let (len, z) = (80usize, 30usize);
        let trials = 3_000u64;

        let mut rng = SmallRng::seed_from_u64(derive2(909, len as u64, 0));
        let mut b_exit0 = 0u64;
        let mut b_times = Vec::with_capacity(trials as usize);
        for _ in 0..trials {
            let mut x = z;
            let mut t = 0u64;
            let exit0 = loop {
                x = if rng.next_u64() & 1 == 0 { x - 1 } else { x + 1 };
                t += 1;
                if x == 0 {
                    break true;
                }
                if x == len {
                    break false;
                }
            };
            b_exit0 += u64::from(exit0);
            b_times.push(t as f64);
        }

        let mut rng = SmallRng::seed_from_u64(derive2(909, len as u64, 1));
        let mut s_exit0 = 0u64;
        let mut s_times = Vec::with_capacity(trials as usize);
        for _ in 0..trials {
            let (exit0, t) = sample_absorption(&mut rng, z, len);
            assert!(t <= time_cap(len), "sampled time {t} beyond the cap");
            let par = if exit0 { z as u64 } else { (len - z) as u64 };
            assert_eq!(t % 2, par % 2, "absorption-time parity violated");
            s_exit0 += u64::from(exit0);
            s_times.push(t as f64);
        }

        // Exit-side rate: both estimates sit on the exact gambler's-ruin
        // rational (L−z)/L, so their gap is binomial noise (σ ≈ 0.0125
        // at 3000 trials; allow 4σ).
        let (rb, rs) = (
            b_exit0 as f64 / trials as f64,
            s_exit0 as f64 / trials as f64,
        );
        let p0 = (len - z) as f64 / len as f64;
        assert!((rb - p0).abs() < 0.05, "brute exit rate {rb} vs exact {p0}");
        assert!((rs - p0).abs() < 0.05, "batched exit rate {rs} vs exact {p0}");

        // Mean absorption time: Welch z within 4σ (E[T] = z(L−z) = 1500
        // here; the relative sd is ≈ 80%, so 3000 paired trials resolve
        // a few percent).
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let var = |v: &[f64], m: f64| {
            v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (v.len() - 1) as f64
        };
        let (mb, ms) = (mean(&b_times), mean(&s_times));
        let (vb, vs) = (var(&b_times, mb), var(&s_times, ms));
        let se = (vb / trials as f64 + vs / trials as f64).sqrt();
        let zscore = (mb - ms) / se;
        assert!(
            zscore.abs() < 4.0,
            "mean absorption times differ by {zscore:.1}σ (brute {mb:.0}, batched {ms:.0})"
        );
        let expect = (z * (len - z)) as f64;
        assert!(
            (ms - expect).abs() / expect < 0.10,
            "batched mean {ms:.0} far from z(L−z) = {expect}"
        );
    }
}
