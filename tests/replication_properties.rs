//! Property-based integration tests for Graph-Replication: for random
//! connected inputs, the stable replica is isomorphic to the input and
//! the input itself is never disturbed.

use netcon::core::testing::step_budget;
use netcon::core::Simulation;
use netcon::graph::components::is_connected;
use netcon::graph::iso::are_isomorphic;
use netcon::graph::EdgeSet;
use netcon::protocols::replication;
use proptest::prelude::*;

/// A random connected graph on 3..=5 nodes: a random tree plus random
/// extra edges.
fn connected_graph() -> impl Strategy<Value = EdgeSet> {
    (3usize..=5)
        .prop_flat_map(|n| {
            let parents: Vec<_> = (1..n).map(|v| (0..v).prop_map(move |p| (p, v))).collect();
            let extras = proptest::collection::vec(any::<bool>(), n * (n - 1) / 2);
            (Just(n), parents, extras)
        })
        .prop_map(|(n, tree, extras)| {
            let mut es = EdgeSet::from_edges(n, tree);
            let mut k = 0;
            for u in 0..n {
                for v in (u + 1)..n {
                    if extras[k] {
                        es.activate(u, v);
                    }
                    k += 1;
                }
            }
            es
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn replica_is_isomorphic_to_input(g1 in connected_graph(), spare in 0usize..2, seed in 0u64..1000) {
        prop_assert!(is_connected(&g1));
        let pop = replication::initial_population(&g1, g1.n() + spare);
        let mut sim = Simulation::from_population(replication::protocol(), pop, seed);
        let outcome = sim.run_until(replication::is_stable, step_budget(g1.n() + spare));
        prop_assert!(outcome.stabilized());
        let replica = replication::replica(sim.population());
        prop_assert!(are_isomorphic(&replica, &g1), "replica {replica:?} vs input {g1:?}");
        // The input graph is untouched.
        for u in 0..g1.n() {
            for v in (u + 1)..g1.n() {
                prop_assert_eq!(sim.population().edges().is_active(u, v), g1.is_active(u, v));
            }
        }
    }
}
