//! The `NETCON_*` environment knobs are documented in one README table;
//! this test greps the workspace sources so the table can never rot:
//! every knob the code reads must appear in the table, and every table
//! row must correspond to a knob the code actually reads.

use std::collections::BTreeSet;
use std::path::Path;

/// Extracts every `NETCON_`-prefixed identifier from `text`.
fn knobs_in(text: &str) -> BTreeSet<String> {
    let mut found = BTreeSet::new();
    let mut rest = text;
    while let Some(i) = rest.find("NETCON_") {
        let tail = &rest[i..];
        let end = tail
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_'))
            .map_or(tail.len(), |(j, _)| j);
        let token = tail[..end].trim_end_matches('_');
        if token.len() > "NETCON_".len() {
            found.insert(token.to_owned());
        }
        rest = &rest[i + end.max(1)..];
    }
    found
}

/// Recursively collects knob names from every `.rs` file under `dir`,
/// skipping the vendored stand-ins and build output.
fn knobs_under(dir: &Path, found: &mut BTreeSet<String>) {
    for entry in std::fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("readable dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !matches!(name, "target" | "vendor" | ".git") {
                knobs_under(&path, found);
            }
        } else if name.ends_with(".rs") {
            let text = std::fs::read_to_string(&path).expect("readable source file");
            found.extend(knobs_in(&text));
        }
    }
}

#[test]
fn readme_env_table_is_exhaustive() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut in_code = BTreeSet::new();
    for dir in ["crates", "src", "examples", "tests"] {
        knobs_under(&root.join(dir), &mut in_code);
    }
    assert!(
        !in_code.is_empty(),
        "the grep found no knobs at all — the scanner is broken"
    );

    // The documented set: first backticked `NETCON_*` token of each
    // README table row.
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README.md exists");
    let mut documented = BTreeSet::new();
    for line in readme.lines() {
        if let Some(rest) = line.strip_prefix("| `NETCON_") {
            let token = rest.split('`').next().unwrap_or("");
            documented.insert(format!("NETCON_{token}"));
        }
    }

    let undocumented: Vec<_> = in_code.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "knobs read by the code but missing from the README environment table: \
         {undocumented:?} (documented: {documented:?})"
    );
    let stale: Vec<_> = documented.difference(&in_code).collect();
    assert!(
        stale.is_empty(),
        "README environment table rows with no code reading them: {stale:?}"
    );
}
