//! Integration: the Theorem 14 pipeline end-to-end — partition the
//! population, build the line, then run the universal constructor — plus
//! the TM-on-line layer against the reference interpreter.

use netcon::core::testing::{assert_stabilizes, step_budget};
use netcon::core::Simulation;
use netcon::graph::components::is_connected;
use netcon::graph::properties::is_spanning_line;
use netcon::tm::decider::{Connected, GraphLanguage};
use netcon::tm::machine::{Halt, Tape};
use netcon::tm::machines::parity_machine;
use netcon::universal::constructor::{drawn_graph, leader_of, UniversalConstructor};
use netcon::universal::line_tm::{head_of, oriented_line, LineTm, Mode};
use netcon::universal::partition::{ud_census, ud_is_stable, ud_protocol};

/// Phase 1 (Fig. 4, bottom): the population splits into matched U–D
/// halves; Phase 2: a line self-assembles on a set of |U| nodes; Phase 3:
/// from the canonical Fig. 4 layout the constructor draws and accepts a
/// connected graph. The paper composes these with always-on
/// reinitialization; here each phase runs to stabilization first (see
/// DESIGN.md §6).
#[test]
fn theorem_14_pipeline() {
    let n = 12;
    let m = n / 2;

    // Phase 1: U–D partition.
    let sim = assert_stabilizes(ud_protocol(), n, 3, ud_is_stable, step_budget(n), 10_000);
    let census = ud_census(sim.population());
    assert_eq!(census.u, m);
    assert_eq!(census.d, m);
    assert!(census.matching_ok);

    // Phase 2: spanning line on the U half.
    let sim = assert_stabilizes(
        netcon::protocols::simple_global_line::protocol(),
        m,
        3,
        netcon::protocols::simple_global_line::is_stable,
        step_budget(m),
        10_000,
    );
    assert!(is_spanning_line(sim.population().edges()));

    // Phase 3: the constructor proper on the canonical layout.
    let pop = UniversalConstructor::initial_population(m);
    let mut sim = Simulation::from_population(
        UniversalConstructor::new(Box::new(Connected)),
        pop,
        3,
    );
    let outcome = sim.run_until(netcon::universal::constructor::is_stable, step_budget(m));
    assert!(outcome.stabilized());
    let g = drawn_graph(sim.population());
    assert!(Connected.accepts(&netcon::graph::matrix::AdjMatrix::from(&g)));
    assert!(is_connected(&g));
    let leader = leader_of(sim.population()).expect("leader");
    assert_eq!(leader.m as usize, m, "the waste learned its own size");
}

/// The TM layer: the population-line simulation agrees with the direct
/// interpreter on inputs driven through the public facade.
#[test]
fn line_tm_agrees_with_interpreter() {
    let tm = parity_machine();
    for bits in [vec![true, true, false], vec![true, false, false], vec![]] {
        let space = bits.len() + 2;
        let mut tape = Tape::from_bits(&bits, space);
        let want = tm.run(&mut tape, 1 << 20);

        let pop = oriented_line(&tm, &bits, space);
        let mut sim = Simulation::from_population(LineTm::new(tm.clone()), pop, 17);
        let halted = |p: &netcon::core::Population<netcon::universal::line_tm::NodeState>| {
            p.states().iter().any(|s| {
                s.head
                    .is_some_and(|h| matches!(h.mode, Mode::Accepted | Mode::Rejected))
            })
        };
        assert!(sim.run_until(halted, step_budget(space)).stabilized());
        let (_, head) = head_of(sim.population());
        let agrees = matches!(
            (want, head.mode),
            (Halt::Accept, Mode::Accepted) | (Halt::Reject, Mode::Rejected)
        );
        assert!(agrees, "bits {bits:?}: {want:?} vs {:?}", head.mode);
    }
}

/// The decider library and the universal constructor agree: whatever the
/// constructor outputs is in the language (checked independently).
#[test]
fn constructor_output_is_in_language() {
    for seed in 0..3 {
        let pop = UniversalConstructor::initial_population(4);
        let mut sim = Simulation::from_population(
            UniversalConstructor::new(Box::new(Connected)),
            pop,
            seed,
        );
        assert!(sim
            .run_until(netcon::universal::constructor::is_stable, step_budget(4))
            .stabilized());
        let g = drawn_graph(sim.population());
        assert!(Connected.accepts(&netcon::graph::matrix::AdjMatrix::from(&g)));
    }
}
