//! Guarantees the `examples/` directory stays in sync with the library
//! API: `cargo build --examples` must succeed for every example.
//!
//! CI also runs `cargo build --examples` directly; this test gives the
//! same guarantee to anyone running plain `cargo test` locally. It
//! re-enters cargo, so it is skipped when the `CARGO` environment
//! variable is absent (e.g. under a non-cargo test runner) and can be
//! disabled explicitly with `NETCON_SKIP_EXAMPLES_SMOKE=1`.

use std::process::Command;

#[test]
fn all_examples_compile() {
    if std::env::var_os("NETCON_SKIP_EXAMPLES_SMOKE").is_some() {
        eprintln!("skipping: NETCON_SKIP_EXAMPLES_SMOKE set");
        return;
    }
    let Some(cargo) = std::env::var_os("CARGO") else {
        eprintln!("skipping: CARGO not set");
        return;
    };
    // Runtime lookup: the compile-time value would go stale if the built
    // test binary runs from a relocated checkout.
    let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") else {
        eprintln!("skipping: CARGO_MANIFEST_DIR not set");
        return;
    };
    let manifest = format!("{manifest_dir}/Cargo.toml");
    let output = Command::new(cargo)
        .args(["build", "--examples", "--manifest-path", &manifest])
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "`cargo build --examples` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}
