//! Guarantees the `examples/` directory stays in sync with the library
//! API: `cargo build --examples` must succeed for every example.
//!
//! CI also runs `cargo build --examples` directly; this test gives the
//! same guarantee to anyone running plain `cargo test` locally. It
//! re-enters cargo, so it is skipped when the `CARGO` environment
//! variable is absent (e.g. under a non-cargo test runner) and can be
//! disabled explicitly with `NETCON_SKIP_EXAMPLES_SMOKE=1`.

use std::process::Command;

/// Runs `examples/huge_line.rs` at smoke scale (n = 1500 instead of the
/// headline 100 000): the sparse-engine path, the engine selector, and
/// the example's own spanning-line verification all execute in a few
/// seconds even unoptimized. The example asserts its output shape, so a
/// zero exit status is the whole contract.
#[test]
fn huge_line_runs_at_smoke_scale() {
    if std::env::var_os("NETCON_SKIP_EXAMPLES_SMOKE").is_some() {
        eprintln!("skipping: NETCON_SKIP_EXAMPLES_SMOKE set");
        return;
    }
    let Some(cargo) = std::env::var_os("CARGO") else {
        eprintln!("skipping: CARGO not set");
        return;
    };
    let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") else {
        eprintln!("skipping: CARGO_MANIFEST_DIR not set");
        return;
    };
    let manifest = format!("{manifest_dir}/Cargo.toml");
    let output = Command::new(cargo)
        .args(["run", "--example", "huge_line", "--manifest-path", &manifest])
        // Force the sparse engine even at smoke scale: that is the code
        // path the example exists to demonstrate.
        .env("NETCON_HUGE_LINE_N", "1500")
        .env("NETCON_ENGINE_MEM_BUDGET", "1000000")
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "`cargo run --example huge_line` failed:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("bucket-sparse"),
        "expected the sparse engine under a 1 MB budget:\n{stdout}"
    );
}

#[test]
fn all_examples_compile() {
    if std::env::var_os("NETCON_SKIP_EXAMPLES_SMOKE").is_some() {
        eprintln!("skipping: NETCON_SKIP_EXAMPLES_SMOKE set");
        return;
    }
    let Some(cargo) = std::env::var_os("CARGO") else {
        eprintln!("skipping: CARGO not set");
        return;
    };
    // Runtime lookup: the compile-time value would go stale if the built
    // test binary runs from a relocated checkout.
    let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") else {
        eprintln!("skipping: CARGO_MANIFEST_DIR not set");
        return;
    };
    let manifest = format!("{manifest_dir}/Cargo.toml");
    let output = Command::new(cargo)
        .args(["build", "--examples", "--manifest-path", &manifest])
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "`cargo build --examples` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}
