//! Integration: every protocol in the catalogue, driven purely through
//! the public facade, stabilizes to its target shape and stays there.

use netcon::core::testing::{assert_stabilizes, step_budget};
use netcon::core::{Population, Simulation, StateId};
use netcon::graph::properties::{
    is_clique_partition, is_cycle_cover_with_waste, is_krc_relaxed, is_spanning_line,
    is_spanning_net, is_spanning_ring, is_spanning_star,
};
use netcon::protocols::*;

#[test]
fn every_table2_entry_builds() {
    for e in catalog::table2() {
        assert!(e.protocol.size() >= 2, "{} is degenerate", e.name);
        assert_eq!(e.protocol.size(), e.paper_states, "{}", e.name);
    }
}

#[test]
fn lines_rings_stars_covers() {
    let n = 10;
    let seed = 123;

    let sim = assert_stabilizes(
        simple_global_line::protocol(),
        n,
        seed,
        simple_global_line::is_stable,
        step_budget(n),
        20_000,
    );
    assert!(is_spanning_line(sim.population().edges()));

    let sim = assert_stabilizes(
        fast_global_line::protocol(),
        n,
        seed,
        fast_global_line::is_stable,
        step_budget(n),
        20_000,
    );
    assert!(is_spanning_line(sim.population().edges()));

    let sim = assert_stabilizes(
        global_star::protocol(),
        n,
        seed,
        global_star::is_stable,
        step_budget(n),
        20_000,
    );
    assert!(is_spanning_star(sim.population().edges()));

    let sim = assert_stabilizes(
        global_ring::protocol(),
        n,
        seed,
        global_ring::is_stable,
        step_budget(n),
        20_000,
    );
    assert!(is_spanning_ring(sim.population().edges()));

    let sim = assert_stabilizes(
        cycle_cover::protocol(),
        n,
        seed,
        cycle_cover::is_stable,
        step_budget(n),
        20_000,
    );
    assert!(is_cycle_cover_with_waste(sim.population().edges(), 2));

    let sim = assert_stabilizes(
        spanning_net::protocol(),
        n,
        seed,
        spanning_net::is_stable,
        step_budget(n),
        20_000,
    );
    assert!(is_spanning_net(sim.population().edges()));
}

#[test]
fn regular_networks_and_cliques() {
    let sim = assert_stabilizes(
        krc::protocol(2),
        9,
        5,
        |p: &Population<StateId>| krc::is_stable(p, 2),
        step_budget(9),
        20_000,
    );
    assert!(is_spanning_ring(sim.population().edges()));

    let sim = assert_stabilizes(
        krc::protocol(3),
        10,
        5,
        |p: &Population<StateId>| krc::is_stable(p, 3),
        step_budget(10),
        20_000,
    );
    assert!(is_krc_relaxed(sim.population().edges(), 3));

    let sim = assert_stabilizes(
        c_cliques::protocol(3),
        9,
        5,
        |p: &Population<StateId>| c_cliques::is_stable(p, 3),
        step_budget(9),
        20_000,
    );
    assert!(is_clique_partition(sim.population().edges(), 3));
}

#[test]
fn convergence_is_reproducible_per_seed() {
    let run = |seed: u64| {
        let mut sim = Simulation::new(global_star::protocol(), 20, seed);
        sim.run_until(global_star::is_stable, step_budget(20))
            .converged_at()
            .expect("stabilizes")
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2), "different seeds give different executions");
}
