//! Property-based tests on the model layer: rule-table symmetry, edge-set
//! invariants, scheduler coverage, and configuration conservation.

use netcon::core::{Link, Machine, ProtocolBuilder, Scheduler, Simulation, Uniform};
use netcon::graph::EdgeSet;
use netcon::protocols::catalog;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// δ symmetry (§3.1): δ₁(a,b,c) = δ₂(b,a,c) and δ₂(a,b,c) = δ₁(b,a,c)
    /// for every protocol in the catalogue and every distinct state pair.
    #[test]
    fn delta_is_symmetric(idx in 0usize..12, a in 0usize..17, b in 0usize..17, on in any::<bool>()) {
        let entries = catalog::table2();
        let e = &entries[idx % entries.len()];
        let p = &e.protocol;
        let (a, b) = (a % p.size(), b % p.size());
        prop_assume!(a != b);
        let (sa, sb) = (
            netcon::core::StateId::new(a as u16),
            netcon::core::StateId::new(b as u16),
        );
        let link = Link::from(on);
        let mut r1 = SmallRng::seed_from_u64(1);
        let mut r2 = SmallRng::seed_from_u64(1);
        let fwd = p.interact(&sa, &sb, link, &mut r1);
        let bwd = p.interact(&sb, &sa, link, &mut r2);
        match (fwd, bwd) {
            (None, None) => {}
            (Some((x, y, l1)), Some((y2, x2, l2))) => {
                prop_assert_eq!(
                    (x, y, l1),
                    (x2, y2, l2),
                    "{} asymmetric at ({}, {})",
                    e.name,
                    a,
                    b
                );
            }
            other => prop_assert!(false, "{}: one direction effective, the other not: {other:?}", e.name),
        }
    }

    /// The uniform scheduler only emits valid pairs and, over enough
    /// steps, touches every node.
    #[test]
    fn uniform_scheduler_touches_everyone(n in 2usize..40, seed in any::<u64>()) {
        let mut s = Uniform;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut seen = vec![false; n];
        for _ in 0..n * n * 4 {
            let (u, v) = s.next_pair(n, &mut rng);
            prop_assert!(u != v && u < n && v < n);
            seen[u] = true;
            seen[v] = true;
        }
        prop_assert!(seen.iter().all(|&x| x), "some node never selected");
    }

    /// EdgeSet set/clear keeps degrees and counts consistent with a naive
    /// mirror implementation.
    #[test]
    fn edgeset_matches_naive_model(n in 2usize..12, ops in proptest::collection::vec((0usize..12, 0usize..12, any::<bool>()), 0..60)) {
        let mut es = EdgeSet::new(n);
        let mut naive = std::collections::HashSet::new();
        for (u, v, on) in ops {
            let (u, v) = (u % n, v % n);
            if u == v { continue; }
            es.set(u, v, on);
            let key = (u.min(v), u.max(v));
            if on { naive.insert(key); } else { naive.remove(&key); }
        }
        prop_assert_eq!(es.active_count(), naive.len());
        for u in 0..n {
            let deg = naive.iter().filter(|&&(a, b)| a == u || b == u).count();
            prop_assert_eq!(es.degree(u) as usize, deg);
        }
        let mut listed: Vec<_> = es.active_edges().collect();
        listed.sort_unstable();
        let mut expect: Vec<_> = naive.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(listed, expect);
    }

    /// Simulations never create or destroy nodes, and the step counter
    /// advances exactly once per step.
    #[test]
    fn steps_and_population_are_conserved(n in 2usize..20, seed in any::<u64>(), steps in 1u64..500) {
        let mut b = ProtocolBuilder::new("conserve");
        let a = b.state("a");
        let c = b.state("b");
        b.rule((a, a, Link::Off), (c, c, Link::On));
        b.rule((c, c, Link::On), (a, a, Link::Off));
        let p = b.build().expect("valid");
        let mut sim = Simulation::new(p, n, seed);
        sim.run_for(steps);
        prop_assert_eq!(sim.steps(), steps);
        prop_assert_eq!(sim.population().n(), n);
        prop_assert!(sim.effective_steps() <= steps);
        prop_assert!(sim.last_output_change() <= steps);
    }
}

mod churn_plans {
    use super::*;
    use netcon::core::{AdversaryPlan, AdversaryPolicy, Cadence, ChurnPlan, EventSim};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Horizon extension appends, never rewrites: the stream is
        /// generated front-to-back by one sequential RNG, so compiling
        /// the same knobs with `h1 < h2` yields an event-stream prefix
        /// — what makes "sweep the horizon" experiments comparable
        /// across rungs.
        #[test]
        fn churn_horizon_extension_appends_never_rewrites(
            seed in any::<u64>(),
            n in 2usize..20,
            arrival in 0u32..40,
            departure in 0u32..40,
            h1 in 1u64..30_000,
            extra in 0u64..30_000,
        ) {
            let arrival = f64::from(arrival) * 1e-5;
            let departure = f64::from(departure) * 1e-5;
            prop_assume!(arrival + departure > 0.0);
            let mk = |h: u64| {
                ChurnPlan::new(seed)
                    .arrival_rate(arrival)
                    .departure_rate(departure)
                    .horizon(h)
                    .compile(n)
            };
            let short = mk(h1);
            let long = mk(h1 + extra);
            let se = short.events();
            let le = long.events();
            prop_assert!(se.len() <= le.len(), "extension only appends");
            prop_assert_eq!(se, &le[..se.len()], "shorter horizon is a prefix");
        }

        /// The `min_alive` floor survives composition: a churn stream's
        /// plan-level floor gates its own scheduled crashes AND every
        /// adaptive strike of an attached adversary (the effective
        /// decision floor is the max of the two), so the alive count
        /// never drops below `min(n, floor)` at any boundary or after
        /// the stream ends — regardless of the adversary's own, possibly
        /// weaker, floor.
        #[test]
        fn min_alive_floor_survives_adversary_and_churn_composition(
            seed in any::<u64>(),
            eng_seed in any::<u64>(),
            n in 4usize..16,
            floor in 2usize..8,
            adv_floor in 0usize..8,
            every in 20u64..200,
            count in 1u32..6,
        ) {
            let plan = ChurnPlan::new(seed)
                .arrival_rate(3e-4)
                .departure_rate(2e-3)
                .min_alive(floor)
                .horizon(5_000)
                .compile(n)
                .with_adversary(
                    AdversaryPlan::new(Cadence::Periodic { start: every, every, count })
                        .policy(AdversaryPolicy::CrashMaxDegree)
                        .policy(AdversaryPolicy::CrashState(0))
                        .min_alive(adv_floor),
                );
            let guarantee = floor.min(n);
            let mut b = ProtocolBuilder::new("matching");
            let a = b.state("a");
            let m = b.state("m");
            b.rule((a, a, Link::Off), (m, m, Link::On));
            let p = b.build().expect("valid");
            let mut sim = EventSim::new_faulted(p.compile(), n, eng_seed, plan.clone());
            let mut checkpoints = plan.boundary_times();
            checkpoints.push(6_000);
            for t in checkpoints {
                sim.run_faulted_to(t);
                let alive = sim.fault_state().expect("faulted").alive_count();
                prop_assert!(
                    alive >= guarantee,
                    "floor breached at draw {}: alive {} < {}",
                    t, alive, guarantee
                );
            }
        }
    }
}
