//! Spanning-line construction at n = 100 000 — past the dense engines'
//! memory wall.
//!
//! Simple-Global-Line (Protocol 1) is the paper's slowest constructor:
//! Θ(n⁴)–O(n⁵) expected *sequential* steps, ~10²⁰ scheduler draws at
//! n = 100 000. The dense event engine would skip the idle draws but
//! needs ~45 GB for its pair-position structures at this size; the
//! sparse [`BucketSim`](netcon::core::BucketSim) (selected automatically
//! by [`Engine::auto`](netcon::core::Engine::auto)) runs the identical
//! distribution in a few dozen megabytes:
//!
//! ```sh
//! cargo run --release --example huge_line                  # n = 100 000, minutes
//! NETCON_HUGE_LINE_N=20000 cargo run --release --example huge_line   # quicker
//! ```
//!
//! The run stops when the spanning line's last edge activates (the
//! paper's convergence time); the final leader walk that follows cannot
//! change the output graph.

use std::time::Instant;

use netcon::core::{Engine, EventSim};
use netcon::protocols::simple_global_line;

fn main() {
    let n: usize = std::env::var("NETCON_HUGE_LINE_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    println!("Simple-Global-Line on n = {n} nodes\n");
    println!(
        "dense-engine estimate : {:>10.1} MB (pair map + bitsets)",
        EventSim::<netcon::core::CompiledTable>::dense_mem_estimate(n) as f64 / 1e6
    );

    let t0 = Instant::now();
    let mut eng = Engine::auto(simple_global_line::protocol().compile(), n, 2014);
    println!(
        "selected engine       : {:>10} ({:.1} MB, constructed in {:.2?})",
        eng.kind(),
        eng.approx_mem_bytes() as f64 / 1e6,
        t0.elapsed()
    );

    let t0 = Instant::now();
    let outcome = eng.run_until_edges(simple_global_line::is_stable_view, u64::MAX);
    let wall = t0.elapsed();
    let converged = outcome.converged_at().expect("Protocol 1 stabilizes");

    println!("\nspanning line complete: {} active edges\n", n - 1);
    println!("sequential steps (paper's time) : {converged:>22}");
    println!(
        "effective interactions          : {:>22}",
        eng.effective_steps()
    );
    println!(
        "engine memory at convergence    : {:>18.1} MB",
        eng.approx_mem_bytes() as f64 / 1e6
    );
    println!("wall-clock                      : {wall:>22.2?}");

    // Full shape verification materializes a Θ(n²) edge set — do it at
    // smoke scales, trust the edge-count certificate at the frontier.
    if n <= 20_000 {
        let pop = eng.to_population();
        assert!(netcon::graph::properties::is_spanning_line(pop.edges()));
        println!("\n(output verified with is_spanning_line)");
    }
}
