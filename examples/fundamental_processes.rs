//! The seven fundamental probabilistic processes of §3.3 (Table 1), run
//! live: measured convergence against the proven Θ bounds.
//!
//! ```sh
//! cargo run --release --example fundamental_processes
//! ```

use netcon::analysis::stats::Summary;
use netcon::analysis::table::TextTable;
use netcon::processes::Process;

fn main() {
    let n = 96;
    let trials = 10;
    println!("n = {n}, {trials} trials per process\n");
    let mut t = TextTable::new(&["process", "theory", "mean steps", "95% CI", "steps / n²"]);
    for p in Process::all() {
        let samples: Vec<f64> = (0..trials)
            .map(|s| p.measure(n, s) as f64)
            .collect();
        let s = Summary::of(&samples);
        t.row(&[
            p.name(),
            p.theory(),
            &format!("{:.0}", s.mean),
            &format!("±{:.0}", s.ci95()),
            &format!("{:.3}", s.mean / (n * n) as f64),
        ]);
    }
    println!("{}", t.render());
    println!("Θ(n log n) rows sit far below 1.0 in the last column; the");
    println!("Θ(n²)/Θ(n² log n) rows sit near or above it — Table 1's ordering.");
}
