//! Graph-Replication (Protocol 9): copy an input graph, living on half
//! the population, onto the other half — with no waste.
//!
//! ```sh
//! cargo run --release --example replicate_graph
//! ```

use netcon::core::Simulation;
use netcon::graph::iso::are_isomorphic;
use netcon::graph::EdgeSet;
use netcon::protocols::replication;

fn main() {
    // The input G1: a 6-node wheel-ish graph on V1.
    let g1 = EdgeSet::from_edges(
        6,
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)],
    );
    println!("input G1: {} nodes, {} edges", g1.n(), g1.active_count());

    // V2 gets two spare nodes; they must remain untouched.
    let pop = replication::initial_population(&g1, 8);
    let mut sim = Simulation::from_population(replication::protocol(), pop, 99);
    let outcome = sim.run_until(replication::is_stable, u64::MAX);
    println!(
        "stabilized after {} interactions (Θ(n⁴ log n) expected)",
        outcome.converged_at().expect("replication stabilizes")
    );

    let replica = replication::replica(sim.population());
    println!(
        "replica:  {} nodes, {} edges",
        replica.n(),
        replica.active_count()
    );
    println!("isomorphic to G1: {}", are_isomorphic(&replica, &g1));
    let spares = sim
        .population()
        .count_where(|s| *s == replication::R0);
    println!("spare V2 nodes left untouched: {spares}");
}
