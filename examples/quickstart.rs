//! Quickstart: self-assemble a spanning star with the 2-state
//! Global-Star protocol (Protocol 4 of the paper).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use netcon::core::Simulation;
use netcon::graph::properties::is_spanning_star;
use netcon::protocols::global_star;

fn main() {
    let n = 64;
    let seed = 7;
    let protocol = global_star::protocol();
    println!(
        "protocol: Global-Star ({} states, {} rules)",
        protocol.size(),
        protocol.rules().len()
    );

    let mut sim = Simulation::new(protocol, n, seed);
    let outcome = sim.run_until(global_star::is_stable, 100_000_000);

    let converged = outcome
        .converged_at()
        .expect("Global-Star always stabilizes");
    println!("population:  n = {n}, seed = {seed}");
    println!("converged:   {converged} interactions (sequential time)");
    println!(
        "normalized:  {:.2} × n² ln n   (Theorem 7: Θ(n² log n) expected)",
        converged as f64 / (n as f64 * n as f64 * (n as f64).ln())
    );
    println!(
        "output:      spanning star = {}",
        is_spanning_star(sim.population().edges())
    );
    let centre = sim
        .population()
        .nodes_where(|s| *s == global_star::C);
    println!("centre node: {:?} (degree {})", centre, sim.population().edges().degree(centre[0]));
}
