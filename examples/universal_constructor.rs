//! The universal constructor of Theorem 14 (Fig. 3): half the population
//! organizes as a line-of-waste that repeatedly draws a random graph on
//! the other half and keeps it exactly when it belongs to the target
//! language.
//!
//! ```sh
//! cargo run --release --example universal_constructor
//! ```

use netcon::core::Simulation;
use netcon::graph::components::is_connected;
use netcon::tm::decider::{GraphLanguage, MinEdges};
use netcon::universal::constructor::{
    drawn_graph, is_stable, leader_of, UniversalConstructor,
};

fn main() {
    // Target language: connected AND at least 40% of all possible edges —
    // dense enough that G(m, 1/2) draws get rejected visibly often.
    struct DenseConnected(MinEdges);
    impl GraphLanguage for DenseConnected {
        fn name(&self) -> &str {
            "connected-and-dense"
        }
        fn space_bound_bits(&self, n: usize) -> usize {
            netcon::tm::decider::Connected.space_bound_bits(n) + self.0.space_bound_bits(n)
        }
        fn accepts(&self, g: &netcon::graph::matrix::AdjMatrix) -> bool {
            netcon::tm::decider::Connected.accepts(g) && self.0.accepts(g)
        }
    }

    let m = 6; // useful space: 6 nodes; waste: a 6-node line
    let lang = DenseConnected(MinEdges::new("dense-40", |n| n * (n - 1) * 2 / 10));
    println!("language: {}", lang.name());
    println!("population: {} nodes ({m} useful + {m} waste)\n", 2 * m);

    let pop = UniversalConstructor::initial_population(m);
    let mut sim = Simulation::from_population(UniversalConstructor::new(Box::new(lang)), pop, 5);
    let outcome = sim.run_until(is_stable, u64::MAX);

    let leader = leader_of(sim.population()).expect("leader exists");
    println!(
        "stabilized after {} interactions",
        outcome.converged_at().expect("constructor stabilizes")
    );
    println!("rejected draws before the accepted one: {}", leader.rejections);

    let g = drawn_graph(sim.population());
    println!(
        "output graph: {} nodes, {} edges, connected = {}",
        g.n(),
        g.active_count(),
        is_connected(&g)
    );
    for (u, v) in g.active_edges() {
        print!("({u},{v}) ");
    }
    println!();
}
