//! Supernodes (Theorem 18): the population organizes into `2^j` named
//! lines of `j` nodes — enough local memory for each supernode to know
//! its own binary name — and the names then drive a higher-level
//! construction (here: pairing supernodes by name, the paper's
//! "connect id i to id i±1" idea).
//!
//! ```sh
//! cargo run --release --example supernode_names
//! ```

use netcon::core::Simulation;
use netcon::universal::supernodes::{is_stable, supernodes_of, Supernodes};

fn main() {
    let j = 3u32; // phase: 8 supernodes of 3 nodes each
    let n = 1 + (j as usize) * (1 << j); // leader + j·2^j members
    println!("population: {n} nodes → 2^{j} = {} supernodes of {j} nodes\n", 1 << j);

    let mut sim = Simulation::new(Supernodes, n, 42);
    let outcome = sim.run_until(is_stable, u64::MAX);
    println!(
        "stabilized after {} interactions",
        outcome.last_effective().expect("organizer stabilizes")
    );

    let mut sns = supernodes_of(sim.population(), j as u16);
    sns.sort_by_key(|s| s.name);
    for sn in &sns {
        let bits: String = (0..j)
            .map(|p| if sn.name >> p & 1 == 1 { '1' } else { '0' })
            .collect();
        println!(
            "supernode {:>2}  name bits (lsb first) {}  members {:?}",
            sn.name, bits, sn.members
        );
    }

    // The names make higher-level coordination trivial: pair supernode
    // 2i with 2i+1 (each pair could now act as one 2log k-memory unit).
    println!("\npairing by name: ");
    for pair in sns.chunks(2) {
        if let [a, b] = pair {
            println!("  supernode {} ↔ supernode {}", a.name, b.name);
        }
    }
}
