//! Spanning-line construction at n = 6000 — far beyond what the naive
//! engine can touch.
//!
//! Fast-Global-Line (Protocol 2) converges in Θ(n³) expected *sequential*
//! steps: at n = 6000 that is ~10¹¹ scheduler draws, of which only ~10⁴
//! are effective. The event-driven engine simulates exactly those, so the
//! whole construction takes seconds:
//!
//! ```sh
//! cargo run --release --example big_line
//! ```

use std::time::Instant;

use netcon::core::EventSim;
use netcon::graph::properties::is_spanning_line;
use netcon::protocols::fast_global_line;

fn main() {
    let n = 6_000;
    println!("Fast-Global-Line on n = {n} nodes (event-driven engine)\n");

    let t0 = Instant::now();
    let mut sim = EventSim::new(fast_global_line::protocol().compile(), n, 2014);
    println!(
        "constructed in {:?} ({} possibly-effective pairs initially)",
        t0.elapsed(),
        sim.effective_pairs()
    );

    let t0 = Instant::now();
    let outcome = sim.run_until(fast_global_line::is_stable, u64::MAX);
    let wall = t0.elapsed();

    let converged = outcome.converged_at().expect("Protocol 2 stabilizes");
    assert!(is_spanning_line(sim.population().edges()));
    println!("spanning line stable; output verified with is_spanning_line\n");
    println!("sequential steps (paper's time) : {converged:>16}");
    println!("effective interactions          : {:>16}", sim.effective_steps());
    println!(
        "ineffective draws skipped       : {:>16} ({:.4}% of steps were effective)",
        sim.steps() - sim.effective_steps(),
        100.0 * sim.effective_steps() as f64 / sim.steps() as f64
    );
    println!("wall-clock                      : {wall:>16.2?}");
    println!(
        "\nnaive-engine estimate at ~10 ns/step: ~{:.0} minutes",
        converged as f64 * 1e-8 / 60.0
    );
}
