//! Race the paper's three spanning-line constructors (Protocols 1, 2 and
//! 10) across a ladder of population sizes — the §7 open question "is
//! Faster-Global-Line asymptotically faster?" made executable.
//!
//! ```sh
//! cargo run --release --example line_race
//! ```

use netcon::analysis::stats::Summary;
use netcon::analysis::table::TextTable;
use netcon::core::{Population, RuleProtocol, Simulation, StateId};
use netcon::protocols::{fast_global_line, faster_global_line, simple_global_line};

fn mean_steps(
    protocol: &RuleProtocol,
    stable: fn(&Population<StateId>) -> bool,
    n: usize,
    trials: u64,
) -> Summary {
    let samples: Vec<f64> = (0..trials)
        .map(|seed| {
            let mut sim = Simulation::new(protocol.clone(), n, seed);
            sim.run_until(stable, u64::MAX)
                .converged_at()
                .expect("line protocols stabilize") as f64
        })
        .collect();
    Summary::of(&samples)
}

type Entry = (&'static str, RuleProtocol, fn(&Population<StateId>) -> bool);

fn main() {
    let entries: [Entry; 3] = [
        (
            "Simple (5 states)",
            simple_global_line::protocol(),
            simple_global_line::is_stable,
        ),
        (
            "Fast (9 states)",
            fast_global_line::protocol(),
            fast_global_line::is_stable,
        ),
        (
            "Faster (6 states)",
            faster_global_line::protocol(),
            faster_global_line::is_stable,
        ),
    ];
    let trials = 10;
    println!("mean interactions to a stable spanning line ({trials} trials)\n");
    let mut t = TextTable::new(&["n", "Simple-Global-Line", "Fast-Global-Line", "Faster-Global-Line"]);
    for n in [8usize, 12, 16, 24, 32] {
        let mut row = vec![n.to_string()];
        for (_, p, stable) in &entries {
            let s = mean_steps(p, *stable, n, trials);
            row.push(format!("{:>9.0} ±{:>6.0}", s.mean, s.ci95()));
        }
        let cells: Vec<&str> = row.iter().map(String::as_str).collect();
        t.row(&cells);
    }
    println!("{}", t.render());
    println!("Theory: Simple is Ω(n⁴)/O(n⁵), Fast is O(n³); the paper conjectures");
    println!("Faster improves on Fast (open). The Table 2 bench fits the exponents.");
}
