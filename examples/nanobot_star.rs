//! The paper's opening scenario (§1.1 and Fig. 1): computational
//! particles injected into a circulatory system, stirred by the blood
//! flow, self-organize into a spanning star by running three local rules.
//!
//! Prints the three snapshots of Fig. 1: (a) all black, no connections;
//! (b) a few blacks left, each with red neighbours and some red–red
//! residue; (c) a unique black centre with every red attached — stable.
//!
//! ```sh
//! cargo run --release --example nanobot_star
//! ```

use netcon::core::{Simulation, StepResult};
use netcon::protocols::global_star::{self, C, P};

fn snapshot(label: &str, sim: &Simulation<netcon::core::RuleProtocol>) {
    let pop = sim.population();
    let blacks = pop.count_where(|s| *s == C);
    let reds = pop.count_where(|s| *s == P);
    let red_red = pop
        .edges()
        .active_edges()
        .filter(|&(u, v)| *pop.state(u) == P && *pop.state(v) == P)
        .count();
    let black_red = pop
        .edges()
        .active_edges()
        .filter(|&(u, v)| (*pop.state(u) == C) != (*pop.state(v) == C))
        .count();
    println!(
        "{label}: step {:>8}  blacks={blacks:>3}  reds={reds:>3}  black-red edges={black_red:>3}  red-red edges={red_red:>3}",
        sim.steps()
    );
}

fn main() {
    let n = 48;
    let mut sim = Simulation::new(global_star::protocol(), n, 2014);

    // (a) the initial solution: all particles black, no bonds.
    snapshot("(a) initial   ", &sim);

    // (b) run until only 3 black particles remain.
    while sim.population().count_where(|s| *s == C) > 3 {
        sim.step();
    }
    snapshot("(b) 3 blacks  ", &sim);

    // (c) run to stabilization.
    let mut stable = false;
    while !stable {
        if let StepResult::Effective { .. } = sim.step() {
            stable = global_star::is_stable(sim.population());
        }
    }
    snapshot("(c) stable    ", &sim);
    println!(
        "\nThe construction is a stable spanning star: {}",
        netcon::graph::properties::is_spanning_star(sim.population().edges())
    );
    println!("rules: (black,black,0)->(black,red,1)   blacks merge");
    println!("       (red,red,1)->(red,red,0)         reds repel");
    println!("       (black,red,0)->(black,red,1)     black attracts reds");
}
