//! Offline stand-in for the `criterion` crate.
//!
//! crates.io is unreachable in this build environment, so the bench
//! harness vendors the subset of the criterion API the workspace uses:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a simple adaptive wall-clock loop (warm up, then run
//! until ~`measurement_millis` of samples accumulate) reporting the mean
//! iteration time. There is no statistical analysis, plotting, or HTML
//! report — just numbers on stdout, which is what the figure/table bench
//! targets in this workspace need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    measurement_millis: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            // Keep default runs quick; NETCON_BENCH_MILLIS raises it for
            // paper-grade timings.
            measurement_millis: std::env::var("NETCON_BENCH_MILLIS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(200),
        }
    }
}

impl Criterion {
    /// Applies command-line arguments. Recognizes the first free-standing
    /// positional argument as a substring filter; flags (and the value
    /// immediately following a `--flag`, which real criterion flags often
    /// take) are ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.filter = Self::filter_from(std::env::args().skip(1));
        self
    }

    /// Extracts the filter from an argument list (see
    /// [`Criterion::configure_from_args`]). `--bench`/`--test` are the
    /// boolean flags cargo itself appends; every other `--flag` is assumed
    /// to take the following argument as its value.
    fn filter_from(args: impl Iterator<Item = String>) -> Option<String> {
        let mut filter = None;
        let mut prev_was_flag = false;
        for arg in args {
            if arg.starts_with('-') {
                prev_was_flag = arg.starts_with("--")
                    && !arg.contains('=')
                    && arg != "--bench"
                    && arg != "--test";
                continue;
            }
            if !prev_was_flag && filter.is_none() {
                filter = Some(arg);
            }
            prev_was_flag = false;
        }
        filter
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let saved_millis = self.measurement_millis;
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            saved_millis,
        }
    }

    fn run<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            budget: Duration::from_millis(self.measurement_millis),
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.iters > 0 {
            let mean = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
            println!("bench {id:<40} {:>12} ns/iter ({} iters)", format_ns(mean), bencher.iters);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3e}", ns)
    } else {
        format!("{:.1}", ns)
    }
}

/// A group of related benchmarks sharing a name prefix. Budget changes
/// made through the group ([`BenchmarkGroup::measurement_time`]) are
/// scoped to it and restored when the group ends.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    saved_millis: u64,
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        self.criterion.measurement_millis = self.saved_millis;
    }
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run(&full, f);
        self
    }

    /// Accepted for API compatibility; sampling is adaptive here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_millis = d.as_millis() as u64;
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; its [`iter`](Bencher::iter) method
/// times the routine.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly: a short warm-up, then batches until the
    /// measurement budget is spent.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.budget {
                self.iters = iters;
                self.elapsed = elapsed;
                break;
            }
        }
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion {
            filter: None,
            measurement_millis: 1,
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn arg_parsing_finds_the_positional_filter() {
        let parse = |args: &[&str]| Criterion::filter_from(args.iter().map(|s| s.to_string()));
        assert_eq!(parse(&["--bench", "star"]), Some("star".into()));
        assert_eq!(parse(&["star"]), Some("star".into()));
        // A value-taking flag's value is not a filter.
        assert_eq!(parse(&["--save-baseline", "main"]), None);
        assert_eq!(parse(&["--measurement-time=5", "star"]), Some("star".into()));
        assert_eq!(parse(&["--bench"]), None);
    }

    #[test]
    fn group_budget_is_scoped() {
        let mut c = Criterion {
            filter: None,
            measurement_millis: 7,
        };
        {
            let mut g = c.benchmark_group("g");
            g.measurement_time(Duration::from_millis(1));
            g.bench_function("x", |b| b.iter(|| ()));
            g.finish();
        }
        assert_eq!(c.measurement_millis, 7, "group budget must not leak");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            measurement_millis: 1,
        };
        let mut ran = false;
        c.bench_function("smoke", |b| b.iter(|| ran = true));
        assert!(!ran);
    }
}
