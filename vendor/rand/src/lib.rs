//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` API it actually uses:
//!
//! * [`Rng`] — the dyn-safe core trait (`next_u64`/`next_u32`);
//! * [`RngExt`] — blanket extension with [`RngExt::random_range`] and
//!   [`RngExt::random_bool`];
//! * [`SeedableRng`] — `seed_from_u64` construction;
//! * [`rngs::SmallRng`] — xoshiro256++ seeded through SplitMix64;
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! Algorithms follow the published reference implementations
//! (Blackman & Vigna for xoshiro256++, Steele et al. for SplitMix64) and
//! Lemire's widening-multiply method for unbiased-enough range sampling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random bits. Object-safe: the simulation engine passes
/// `&mut dyn Rng` across trait boundaries.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over any [`Rng`], including `dyn Rng`.
pub trait RngExt: Rng {
    /// Samples a value uniformly from `range`. Panics on an empty range.
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Exact at the endpoints:
    /// `p <= 0.0` never fires and `p >= 1.0` always fires.
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            // 53 high bits give a uniform float in [0, 1).
            let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            u < p
        }
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A range that can be sampled from with a single uniform draw.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` by widening multiply (Lemire); the bias
/// for spans far below 2^64 is negligible for simulation purposes.
fn sample_u64_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + sample_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Deterministic construction of an RNG from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed (SplitMix64 key
    /// expansion, as `rand` does for small seeds).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the small, fast generator behind `rand::rngs::SmallRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            let s2 = s2 ^ t;
            let s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::{Rng, RngExt};

    /// `shuffle`/`choose` on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1_000_000u64), b.random_range(0..1_000_000u64));
        }
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0..=5u16);
            assert!(y <= 5);
        }
    }

    #[test]
    fn random_bool_endpoints_are_exact() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn random_bool_half_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(11);
        let heads = (0..100_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((40_000..60_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn dyn_rng_is_usable() {
        let mut rng = SmallRng::seed_from_u64(17);
        let dyn_rng: &mut dyn super::Rng = &mut rng;
        let x = dyn_rng.random_range(0..10usize);
        assert!(x < 10);
    }
}
