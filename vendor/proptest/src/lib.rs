//! Offline stand-in for the `proptest` crate.
//!
//! crates.io is unreachable in this build environment, so the workspace
//! vendors the subset of proptest it uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range/tuple/`Vec` strategies, [`any`],
//! [`collection::vec`], [`Just`], [`ProptestConfig`], and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`]
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its case index and the
//!   run's base seed, which reproduce it exactly (generation is a pure
//!   function of `(base seed, test name, case index)`);
//! * case count comes from [`ProptestConfig::with_cases`] and can be
//!   globally capped with the `PROPTEST_CASES` environment variable;
//! * the base seed defaults to a fixed constant (deterministic CI) and
//!   can be varied with `PROPTEST_SEED`; `PROPTEST_REPLAY=<index>`
//!   re-runs exactly one case (the failure message prints both).

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub use rand::RngExt;

/// The RNG handed to strategies. Wraps the vendored [`SmallRng`].
#[derive(Clone, Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Derives the RNG for one test case from the run's base seed, the
    /// test name, and the case index, so every case is independently
    /// reproducible.
    pub fn for_case(base: u64, name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(
            base ^ h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried, not failed.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-test configuration. Only the knobs this workspace uses.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
    /// Give up (pass) after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Drives one property test: generates cases, skips rejections, panics on
/// the first failure with enough information to replay it.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = env_u64("PROPTEST_SEED").unwrap_or(0x5eed_cafe_f00d);
    let cases = match env_u64("PROPTEST_CASES") {
        Some(n) => u32::try_from(n).unwrap_or(u32::MAX),
        None => config.cases,
    };
    // Generation is a pure function of (base, name, index), so a single
    // failing case can be replayed directly without re-running the run's
    // prefix — regardless of what case count found it.
    if let Some(index) = env_u64("PROPTEST_REPLAY") {
        let mut rng = TestRng::for_case(base, name, index);
        match case(&mut rng) {
            Ok(()) => println!("proptest {name}: case index {index} passed on replay"),
            Err(TestCaseError::Reject) => {
                println!("proptest {name}: case index {index} rejected on replay");
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name} failed at replayed case index {index}: {msg}")
            }
        }
        return;
    }
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut index = 0u64;
    while accepted < cases {
        let mut rng = TestRng::for_case(base, name, index);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    // Matches real proptest: an over-constrained
                    // prop_assume! is a failure, not a green no-op.
                    panic!(
                        "proptest {name}: too many global rejects \
                         ({rejected} rejects, {accepted}/{cases} cases ran) — \
                         the prop_assume! conditions are too restrictive"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest {name} failed at case index {index} (replay exactly \
                 this case with PROPTEST_SEED={base} PROPTEST_REPLAY={index}): {msg}"
            ),
        }
        index += 1;
    }
}

/// A generator of values of type `Value`.
///
/// Unlike real proptest there is no shrinking, so a strategy is just a
/// pure function from an RNG to a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<T>>);

trait StrategyObject<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObject<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// A `Vec` of strategies generates element-wise (real proptest does the
/// same); used for "one sub-strategy per slot" constructions.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Generates one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{RngExt, Strategy, TestRng};

    /// Anything usable as the size argument of [`vec`].
    pub trait IntoSizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `size`.
    pub struct VecStrategy<S, I> {
        element: S,
        size: I,
    }

    impl<S: Strategy, I: IntoSizeRange> Strategy for VecStrategy<S, I> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — element strategy plus size.
    pub fn vec<S: Strategy, I: IntoSizeRange>(element: S, size: I) -> VecStrategy<S, I> {
        VecStrategy { element, size }
    }
}

/// Defines property tests:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     fn it_holds(x in 0usize..10, flag in any::<bool>()) {
///         prop_assert!(x < 10);
///         let _ = flag;
///     }
/// }
///
/// it_holds();
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{ config = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })()
            });
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)` with an optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                    stringify!($left), stringify!($right), __l, __r,
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// `prop_assert_ne!(left, right)` with an optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), __l,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The customary glob import: strategies, config, and the macros.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_reproducible() {
        let s = (0usize..100, any::<u64>()).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::TestRng::for_case(1, "t", 0);
        let mut r2 = crate::TestRng::for_case(1, "t", 0);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0u16..=4, flag in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4, "y out of range: {}", y);
            let _ = flag;
        }

        #[test]
        fn flat_map_threads_values(pair in (2usize..6).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }

        #[test]
        fn vec_strategy_obeys_len(v in crate::collection::vec(any::<bool>(), 7usize)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..4, b in 0usize..4) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }
}
