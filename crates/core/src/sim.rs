//! The simulation engine: the scheduler-driven step loop with convergence
//! bookkeeping.
//!
//! Running time in the paper is *sequential*: one selected interaction per
//! step, and the time to convergence of an execution is the minimum `t`
//! such that the output graph `G(C_i)` is the same for all `i ≥ t`
//! (§3.1). The engine therefore records the step of the last output-graph
//! change; harnesses certify stabilization with a protocol-specific stable
//! predicate and read the convergence time from
//! [`RunOutcome::converged_at`].

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::compiled::EnumerableMachine;
use crate::engine::{Bookkeeping, EffectIndex, PairSet};
use crate::fault::adversary::ConfigSnapshot;
use crate::fault::{sample_without_replacement, DueFault, FaultPlan, FaultState, ResolvedFault};
use crate::{Link, Machine, Population, Scheduler, Uniform};

/// The result of a single simulation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// The selected pair had no applicable effective transition.
    Ineffective {
        /// The pair the scheduler selected.
        pair: (usize, usize),
    },
    /// An effective transition was applied.
    Effective {
        /// The pair the scheduler selected.
        pair: (usize, usize),
        /// Whether the edge between the pair changed state.
        edge_changed: bool,
    },
}

impl StepResult {
    /// Whether the step applied an effective transition.
    #[must_use]
    pub fn is_effective(&self) -> bool {
        matches!(self, StepResult::Effective { .. })
    }
}

/// The result of a bounded run towards a stable target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The stability predicate held at `detected_at` steps.
    Stabilized {
        /// Step count at which the predicate was observed to hold.
        detected_at: u64,
        /// Step of the last output-graph (edge) change — the paper's
        /// convergence time, assuming the predicate certifies that no
        /// further output change can occur.
        converged_at: u64,
        /// Step of the last effective transition (node or edge change);
        /// the convergence time of processes that do not touch edges.
        last_effective: u64,
    },
    /// The step budget was exhausted before the predicate held.
    MaxSteps {
        /// The exhausted budget.
        steps: u64,
    },
}

impl RunOutcome {
    /// Whether the run reached the target.
    #[must_use]
    pub fn stabilized(&self) -> bool {
        matches!(self, RunOutcome::Stabilized { .. })
    }

    /// The paper's convergence time (last output change), if stabilized.
    #[must_use]
    pub fn converged_at(&self) -> Option<u64> {
        match self {
            RunOutcome::Stabilized { converged_at, .. } => Some(*converged_at),
            RunOutcome::MaxSteps { .. } => None,
        }
    }

    /// The last effective interaction step, if stabilized.
    #[must_use]
    pub fn last_effective(&self) -> Option<u64> {
        match self {
            RunOutcome::Stabilized { last_effective, .. } => Some(*last_effective),
            RunOutcome::MaxSteps { .. } => None,
        }
    }
}

/// A running execution of a [`Machine`] on a population under a
/// [`Scheduler`].
///
/// # Example
///
/// ```
/// use netcon_core::{Link, ProtocolBuilder, Simulation};
/// use netcon_graph::properties::is_maximum_matching;
///
/// // The maximum-matching process (§3.3): (a, a, 0) → (b, b, 1).
/// let mut b = ProtocolBuilder::new("matching");
/// let a = b.state("a");
/// let m = b.state("b");
/// b.rule((a, a, Link::Off), (m, m, Link::On));
/// let protocol = b.build()?;
///
/// let mut sim = Simulation::new(protocol, 30, 1);
/// let outcome = sim.run_until(|p| is_maximum_matching(p.edges()), 1_000_000);
/// assert!(outcome.stabilized());
/// assert!(sim.is_quiescent());
/// # Ok::<(), netcon_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulation<M: Machine, S: Scheduler = Uniform> {
    machine: M,
    scheduler: S,
    pop: Population<M::State>,
    rng: SmallRng,
    book: Bookkeeping,
    tracker: Option<Tracker<M>>,
    faults: Option<FaultState>,
}

/// Optional incremental effective-pair tracking (see
/// [`Simulation::track_effective`]).
#[derive(Debug, Clone)]
struct Tracker<M: Machine> {
    index: EffectIndex<M>,
    pairs: PairSet,
}

impl<M: Machine> Simulation<M, Uniform> {
    /// Creates a simulation of `machine` on `n` nodes in the initial
    /// configuration, under the uniform random scheduler, reproducible
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (pairwise interactions need two processes).
    ///
    /// # Example
    ///
    /// ```
    /// use netcon_core::{Link, ProtocolBuilder, Simulation};
    /// let mut b = ProtocolBuilder::new("pairing");
    /// let a = b.state("a");
    /// let p = b.state("b");
    /// b.rule((a, a, Link::Off), (p, p, Link::On));
    /// let mut sim = Simulation::new(b.build()?, 8, 7);
    /// sim.run_for(100);
    /// assert_eq!(sim.steps(), 100); // the naive loop pays for every draw
    /// # Ok::<(), netcon_core::ProtocolError>(())
    /// ```
    #[must_use]
    pub fn new(machine: M, n: usize, seed: u64) -> Self {
        Self::with_scheduler(machine, n, seed, Uniform)
    }

    /// Creates a simulation starting from an explicit configuration (for
    /// problems with non-trivial inputs, e.g. Graph-Replication).
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer than 2 nodes.
    #[must_use]
    pub fn from_population(machine: M, pop: Population<M::State>, seed: u64) -> Self {
        Self::from_population_with_scheduler(machine, pop, seed, Uniform)
    }

    /// Creates a faulted simulation of `machine` on `n` initially-present
    /// nodes under the uniform scheduler: the draw space is pre-sized to
    /// `n + plan.arrival_count()` and `plan`'s events are applied by
    /// [`run_faulted_until`](Self::run_faulted_until) /
    /// [`run_faulted_to`](Self::run_faulted_to) /
    /// [`apply_faults_now`](Self::apply_faults_now). See
    /// [`fault`](crate::fault) for the ghost-node model.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new_faulted(machine: M, n: usize, seed: u64, plan: FaultPlan) -> Self {
        Self::with_scheduler_faulted(machine, n, seed, Uniform, plan)
    }
}

impl<M: Machine, S: Scheduler> Simulation<M, S> {
    /// Creates a simulation under a custom scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn with_scheduler(machine: M, n: usize, seed: u64, scheduler: S) -> Self {
        let pop = Population::new(n, machine.initial_state());
        Self::from_population_with_scheduler(machine, pop, seed, scheduler)
    }

    /// Creates a simulation from an explicit configuration under a custom
    /// scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer than 2 nodes.
    #[must_use]
    pub fn from_population_with_scheduler(
        machine: M,
        pop: Population<M::State>,
        seed: u64,
        scheduler: S,
    ) -> Self {
        assert!(pop.n() >= 2, "pairwise interactions need at least 2 processes");
        Self {
            machine,
            scheduler,
            pop,
            rng: SmallRng::seed_from_u64(seed),
            book: Bookkeeping::default(),
            tracker: None,
            faults: None,
        }
    }

    /// Creates a faulted simulation under a custom scheduler — the
    /// reference semantics the faulted event engines are measured
    /// against. Ghost slots (not-yet-arrived nodes) hold the initial
    /// state and no edges; a draw touching a ghost (or a crashed node)
    /// is an ordinary ineffective step.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn with_scheduler_faulted(
        machine: M,
        n: usize,
        seed: u64,
        scheduler: S,
        plan: FaultPlan,
    ) -> Self {
        assert!(n >= 2, "pairwise interactions need at least 2 processes");
        let fs = FaultState::new(plan, n);
        let pop = Population::new(fs.capacity(), machine.initial_state());
        let mut sim = Self::from_population_with_scheduler(machine, pop, seed, scheduler);
        sim.faults = Some(fs);
        sim
    }

    /// The fault bookkeeping, if this simulation was constructed with a
    /// [`FaultPlan`].
    #[must_use]
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// The current configuration.
    #[must_use]
    pub fn population(&self) -> &Population<M::State> {
        &self.pop
    }

    /// The machine being executed.
    #[must_use]
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Steps taken so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.book.steps
    }

    /// Effective interactions so far.
    #[must_use]
    pub fn effective_steps(&self) -> u64 {
        self.book.effective_steps
    }

    /// Edge activations/deactivations so far.
    #[must_use]
    pub fn edge_events(&self) -> u64 {
        self.book.edge_events
    }

    /// The step of the most recent edge change (0 if none yet) — the
    /// current candidate for the paper's convergence time.
    #[must_use]
    pub fn last_output_change(&self) -> u64 {
        self.book.last_output_change
    }

    /// The step of the most recent effective interaction (0 if none yet).
    #[must_use]
    pub fn last_effective(&self) -> u64 {
        self.book.last_effective
    }

    /// Executes one scheduler-selected interaction.
    ///
    /// Performs exactly one δ lookup and, for flat (`StateId`) protocols,
    /// no heap allocation: the states are passed to the machine by
    /// reference and only the (two-word) outcome states are written back.
    pub fn step(&mut self) -> StepResult {
        let (u, v) = self.scheduler.next_pair(self.pop.n(), &mut self.rng);
        self.book.steps += 1;
        if let Some(fs) = &self.faults {
            // Ghost-node model: a pair touching a crashed or not-yet-
            // arrived node is certainly ineffective.
            if !fs.is_alive(u) || !fs.is_alive(v) {
                return StepResult::Ineffective { pair: (u, v) };
            }
        }
        let link = Link::from(self.pop.edges().is_active(u, v));
        match self
            .machine
            .interact(self.pop.state(u), self.pop.state(v), link, &mut self.rng)
        {
            None => StepResult::Ineffective { pair: (u, v) },
            Some((a2, b2, l2)) => {
                let edge_changed = l2 != link;
                if edge_changed {
                    self.pop.edges_mut().set(u, v, l2.is_on());
                }
                self.pop.set_state(u, a2);
                self.pop.set_state(v, b2);
                self.book.record_effective(edge_changed);
                if let Some(t) = &mut self.tracker {
                    t.index
                        .on_interaction(&self.machine, &self.pop, &mut t.pairs, u, v);
                }
                StepResult::Effective {
                    pair: (u, v),
                    edge_changed,
                }
            }
        }
    }

    /// Runs for exactly `steps` further interactions.
    pub fn run_for(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Runs until `stable` holds or `max_steps` total steps have
    /// elapsed.
    ///
    /// The predicate is evaluated on the initial configuration, after
    /// every step that changes an edge, and after every step on which the
    /// *node* states changed but no edge did (cheaply skipping ineffective
    /// steps). For a predicate that certifies output-stability, the
    /// returned [`RunOutcome::Stabilized::converged_at`] is exactly the
    /// paper's time to convergence.
    pub fn run_until(
        &mut self,
        mut stable: impl FnMut(&Population<M::State>) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        if stable(&self.pop) {
            return self.book.stabilized_now();
        }
        while self.book.steps < max_steps {
            if self.step().is_effective() && stable(&self.pop) {
                return self.book.stabilized_now();
            }
        }
        RunOutcome::MaxSteps {
            steps: self.book.steps,
        }
    }

    /// Like [`run_until`](Self::run_until) but only re-evaluates the
    /// predicate when an edge changes. Correct (and faster) for predicates
    /// that depend only on the output graph.
    pub fn run_until_edges(
        &mut self,
        mut stable: impl FnMut(&Population<M::State>) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        if stable(&self.pop) {
            return self.book.stabilized_now();
        }
        while self.book.steps < max_steps {
            if let StepResult::Effective {
                edge_changed: true, ..
            } = self.step()
            {
                if stable(&self.pop) {
                    return self.book.stabilized_now();
                }
            }
        }
        RunOutcome::MaxSteps {
            steps: self.book.steps,
        }
    }

    /// Applies one resolved fault event to the configuration. The alive
    /// flags were already flipped by the resolver; this realizes the
    /// structural half (edge deletions, recorded as output changes).
    fn apply_resolved(&mut self, resolved: ResolvedFault) {
        match resolved {
            ResolvedFault::Noop => {}
            ResolvedFault::Arrive(x) => {
                // The node already sits in its ghost slot with the
                // initial state and no edges; only candidate tracking
                // (if any) needs to admit its pairs.
                if let Some(t) = &mut self.tracker {
                    t.index.set_present(x);
                    t.index.rescan_node(&self.pop, &mut t.pairs, x);
                }
            }
            ResolvedFault::Crash(x) => {
                let neighbors: Vec<usize> = self.pop.edges().neighbors(x).collect();
                for &w in &neighbors {
                    self.pop.edges_mut().set(x, w, false);
                }
                if let Some(t) = &mut self.tracker {
                    t.index.set_absent(x);
                    let zeros = vec![0u64; t.pairs.row_bits(x).len()];
                    crate::engine::apply_desired_row(&mut t.pairs, x, &zeros);
                }
                if !neighbors.is_empty() {
                    self.book.edge_events += neighbors.len() as u64;
                    self.book.last_output_change = self.book.steps;
                }
                // Crash notifications: every alive node that lost an
                // active edge to `x` has the machine's notify map
                // applied, in ascending node order (state-only changes —
                // the output graph already reflects the crash above).
                for &w in &neighbors {
                    if let Some(s2) = self.machine.on_crash_notify(self.pop.state(w)) {
                        if *self.pop.state(w) != s2 {
                            self.pop.set_state(w, s2);
                            if let Some(t) = &mut self.tracker {
                                t.index.on_state_change(
                                    &self.machine,
                                    &self.pop,
                                    &mut t.pairs,
                                    w,
                                );
                            }
                        }
                    }
                }
            }
            ResolvedFault::DeleteEdge(u, v) => self.delete_edge_fault(u, v),
            ResolvedFault::DeleteRandomEdges { count, mut rng } => {
                // `active_edges` iterates in triangular-index order —
                // a canonical order shared by every engine.
                let edges: Vec<(usize, usize)> = self.pop.edges().active_edges().collect();
                for (u, v) in sample_without_replacement(&mut rng, edges, count) {
                    self.delete_edge_fault(u, v);
                }
            }
        }
    }

    /// Deactivates edge `{u, v}` as a fault (no-op when inactive),
    /// recording it as an output-graph change.
    fn delete_edge_fault(&mut self, u: usize, v: usize) {
        if !self.pop.edges().is_active(u, v) {
            return;
        }
        self.pop.edges_mut().set(u, v, false);
        self.book.edge_events += 1;
        self.book.last_output_change = self.book.steps;
        if let Some(t) = &mut self.tracker {
            let (a, b) = (u.min(v), u.max(v));
            let eff = t
                .index
                .table()
                .can_affect(t.index.state_index(a), t.index.state_index(b), Link::Off);
            t.pairs.set(a, b, eff);
        }
    }

    /// Whether no pair of nodes has any effective interaction — the
    /// strongest form of stability.
    ///
    /// With [`track_effective`](Self::track_effective) enabled this reads
    /// the incrementally-maintained effective-pair set in O(1); otherwise
    /// it falls back to the O(n²) pair scan — the only option for machines
    /// without dense state indices (`EnumerableMachine`), whose
    /// effectiveness relation cannot be tabulated up front.
    ///
    /// Note that some correct protocols never quiesce (their leaders walk
    /// forever); those stabilize in output without ever satisfying this.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        if let Some(t) = &self.tracker {
            return t.pairs.is_empty();
        }
        let n = self.pop.n();
        for u in 0..n {
            if self.faults.as_ref().is_some_and(|fs| !fs.is_alive(u)) {
                continue;
            }
            for (v, active) in self.pop.edges().row(u) {
                if v > u
                    && self.faults.as_ref().is_none_or(|fs| fs.is_alive(v))
                    && self
                        .machine
                        .can_affect(self.pop.state(u), self.pop.state(v), Link::from(active))
                {
                    return false;
                }
            }
        }
        true
    }

    /// Whether no pair of nodes has an interaction that could change an
    /// edge *in the current configuration*.
    ///
    /// With [`track_effective`](Self::track_effective) enabled this only
    /// inspects the O(k) currently-effective pairs; otherwise it falls
    /// back to the O(n²) scan (see [`is_quiescent`](Self::is_quiescent)).
    ///
    /// This is a one-configuration check, not a reachability proof: a
    /// protocol may pass it and still change edges later after node-state
    /// drift. Use per-protocol stable predicates for certification.
    #[must_use]
    pub fn is_edge_quiescent(&self) -> bool {
        if let Some(t) = &self.tracker {
            return t.pairs.iter().all(|(u, v)| {
                let link = Link::from(self.pop.edges().is_active(u, v));
                !t.index
                    .table()
                    .can_affect_edge(t.index.state_index(u), t.index.state_index(v), link)
            });
        }
        let n = self.pop.n();
        for u in 0..n {
            if self.faults.as_ref().is_some_and(|fs| !fs.is_alive(u)) {
                continue;
            }
            for (v, active) in self.pop.edges().row(u) {
                if v > u
                    && self.faults.as_ref().is_none_or(|fs| fs.is_alive(v))
                    && self.machine.can_affect_edge(
                        self.pop.state(u),
                        self.pop.state(v),
                        Link::from(active),
                    )
                {
                    return false;
                }
            }
        }
        true
    }

    /// The output graph: active edges restricted to nodes in output
    /// states. When `Q_out = Q` this is just the active-edge set.
    #[must_use]
    pub fn output_graph(&self) -> netcon_graph::EdgeSet {
        crate::engine::output_graph(&self.machine, &self.pop)
    }

    /// Bytes of heap memory held by the engine: node states, the dense
    /// edge set (`3n²/16` bytes — the naive loop's Θ(n²) floor), and the
    /// optional effective-pair tracker. Heap payloads *inside* composite
    /// states are not counted.
    #[must_use]
    pub fn approx_mem_bytes(&self) -> u64 {
        (self.pop.n() * std::mem::size_of::<M::State>()) as u64
            + self.pop.edges().approx_mem_bytes()
            + self.tracker.as_ref().map_or(0, |t| {
                t.pairs.approx_mem_bytes() + t.index.approx_mem_bytes()
            })
    }
}

impl<M: EnumerableMachine, S: Scheduler> Simulation<M, S> {
    /// Enables incremental effective-pair tracking: one O(n²) scan now
    /// (plus an O(|Q|²) effect-table build), then O(n) maintenance per
    /// *effective* step, making [`is_quiescent`](Self::is_quiescent) O(1)
    /// and [`is_edge_quiescent`](Self::is_edge_quiescent) O(k).
    ///
    /// Worth it for harnesses that poll quiescence while stepping; for
    /// runs that are dominated by ineffective steps, prefer
    /// [`EventSim`](crate::EventSim), which gets the same bookkeeping for
    /// free and skips the ineffective steps altogether.
    pub fn track_effective(&mut self) {
        let table = self.machine.effect_table();
        let (index, pairs) = EffectIndex::build(&self.machine, &self.pop, table, |m: &M, s| {
            m.state_index(s)
        });
        let mut tracker = Tracker { index, pairs };
        // The full scan admitted ghost pairs; faulted runs retire them.
        if let Some(fs) = &self.faults {
            for x in 0..self.pop.n() {
                if !fs.is_alive(x) {
                    tracker.index.set_absent(x);
                    let zeros = vec![0u64; tracker.pairs.row_bits(x).len()];
                    crate::engine::apply_desired_row(&mut tracker.pairs, x, &zeros);
                }
            }
        }
        self.tracker = Some(tracker);
    }

    /// The number of currently possibly-effective pairs, if tracking is
    /// enabled.
    #[must_use]
    pub fn effective_pairs(&self) -> Option<usize> {
        self.tracker.as_ref().map(|t| t.pairs.len())
    }

    /// Normalizes the configuration for an adversary decision: dense
    /// state indices plus the active-edge set (the dense-index
    /// requirement is why the faulted run loops live under the
    /// [`EnumerableMachine`] bound).
    fn config_snapshot(&self) -> ConfigSnapshot {
        let states = (0..self.pop.n())
            .map(|u| self.machine.state_index(self.pop.state(u)))
            .collect();
        ConfigSnapshot::new(states, self.pop.edges().active_edges())
    }

    /// Applies everything due at the current step counter: scheduled
    /// plan events in order, and adversary decisions resolved against
    /// a fresh configuration snapshot.
    fn apply_due_faults(&mut self) {
        loop {
            let due = self
                .faults
                .as_ref()
                .and_then(|fs| fs.due_fault(self.book.steps));
            match due {
                Some(DueFault::Event) => {
                    let resolved = self
                        .faults
                        .as_mut()
                        .expect("due implies a plan")
                        .resolve_next()
                        .expect("due_fault implies a pending event");
                    self.apply_resolved(resolved);
                }
                Some(DueFault::Decision) => {
                    let snap = self.config_snapshot();
                    let damage = self
                        .faults
                        .as_mut()
                        .expect("due implies a plan")
                        .resolve_due_decision(&snap);
                    for resolved in damage {
                        self.apply_resolved(resolved);
                    }
                }
                None => return,
            }
        }
    }

    /// Applies every remaining plan event *now*, regardless of its
    /// scheduled time — how `analysis::repair_time` perturbs a network
    /// the moment it stabilizes (the stabilization step is random, so
    /// no draw-indexed time could express "right after stabilizing").
    /// Adversary decisions are *not* drained: they are tied to their
    /// decision draws (an adversary cannot act early).
    ///
    /// # Panics
    ///
    /// Panics if the simulation has no fault plan.
    pub fn apply_faults_now(&mut self) {
        assert!(self.faults.is_some(), "apply_faults_now needs a fault plan");
        loop {
            let Some(resolved) = self.faults.as_mut().and_then(FaultState::resolve_next) else {
                return;
            };
            self.apply_resolved(resolved);
        }
    }

    /// Advances to exactly `target` total steps, applying plan events
    /// and adversary decisions at their scheduled times on the way.
    /// Stopping at any step and resuming is coin-for-coin identical to
    /// running through (the naive loop consumes its draws one by one
    /// either way).
    ///
    /// # Panics
    ///
    /// Panics if the simulation has no fault plan.
    pub fn run_faulted_to(&mut self, target: u64) {
        assert!(self.faults.is_some(), "run_faulted_to needs a fault plan");
        self.apply_due_faults();
        loop {
            let next = self.faults.as_ref().and_then(FaultState::next_at);
            match next {
                Some(at) if at <= target => {
                    self.run_for(at.saturating_sub(self.book.steps));
                    self.apply_due_faults();
                }
                _ => {
                    self.run_for(target.saturating_sub(self.book.steps));
                    return;
                }
            }
        }
    }

    /// Runs a faulted execution to stability: applies plan events and
    /// adversary decisions at their scheduled times, then (once both
    /// are exhausted) runs until `stable` holds or `max_steps` is
    /// reached. The predicate receives the configuration *and* the
    /// fault state — stability under churn is a property of the alive
    /// subpopulation, which the configuration alone cannot express. It
    /// is deliberately not consulted while plan events or decisions
    /// are still pending: a network that looks stable before its last
    /// fault is not stable.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has no fault plan.
    pub fn run_faulted_until(
        &mut self,
        mut stable: impl FnMut(&Population<M::State>, &FaultState) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        assert!(self.faults.is_some(), "run_faulted_until needs a fault plan");
        self.apply_due_faults();
        loop {
            let next = self.faults.as_ref().and_then(FaultState::next_at);
            match next {
                Some(at) if at <= max_steps => {
                    self.run_for(at.saturating_sub(self.book.steps));
                    self.apply_due_faults();
                }
                Some(_) => {
                    self.run_for(max_steps.saturating_sub(self.book.steps));
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    };
                }
                None => break,
            }
        }
        let fs = self.faults.as_ref().expect("asserted above");
        if stable(&self.pop, fs) {
            return self.book.stabilized_now();
        }
        while self.book.steps < max_steps {
            if self.step().is_effective()
                && stable(&self.pop, self.faults.as_ref().expect("asserted above"))
            {
                return self.book.stabilized_now();
            }
        }
        RunOutcome::MaxSteps {
            steps: self.book.steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProtocolBuilder, RoundRobin};
    use netcon_graph::properties::is_maximum_matching;

    const OFF: Link = Link::Off;
    const ON: Link = Link::On;

    fn matching_protocol() -> crate::RuleProtocol {
        let mut b = ProtocolBuilder::new("matching");
        let a = b.state("a");
        let m = b.state("b");
        b.rule((a, a, OFF), (m, m, ON));
        b.build().expect("valid")
    }

    #[test]
    fn matching_converges_and_quiesces() {
        let mut sim = Simulation::new(matching_protocol(), 20, 123);
        let outcome = sim.run_until_edges(|p| is_maximum_matching(p.edges()), 200_000);
        assert!(outcome.stabilized(), "matching should form: {outcome:?}");
        assert!(sim.is_quiescent());
        assert!(sim.is_edge_quiescent());
        assert_eq!(sim.population().edges().active_count(), 10);
    }

    #[test]
    fn odd_population_leaves_one_unmatched() {
        let mut sim = Simulation::new(matching_protocol(), 21, 5);
        let outcome = sim.run_until_edges(|p| is_maximum_matching(p.edges()), 400_000);
        assert!(outcome.stabilized());
        let a = sim.machine().state("a").unwrap();
        assert_eq!(sim.population().count_where(|s| *s == a), 1);
    }

    #[test]
    fn convergence_time_is_last_edge_change() {
        let mut sim = Simulation::new(matching_protocol(), 10, 7);
        let outcome = sim.run_until_edges(|p| is_maximum_matching(p.edges()), 100_000);
        let RunOutcome::Stabilized {
            detected_at,
            converged_at,
            ..
        } = outcome
        else {
            panic!("did not stabilize");
        };
        assert_eq!(
            detected_at, converged_at,
            "for edge-predicate runs detection happens on the converging step"
        );
        assert_eq!(u64::from(sim.edge_events() > 0), 1);
        // Running further changes nothing: the output is stable.
        let before = sim.population().edges().clone();
        sim.run_for(10_000);
        assert_eq!(*sim.population().edges(), before);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut sim = Simulation::new(matching_protocol(), 16, seed);
            sim.run_until_edges(|p| is_maximum_matching(p.edges()), 100_000)
        };
        assert_eq!(run(9), run(9));
        assert!(run(9).stabilized());
    }

    #[test]
    fn works_under_round_robin() {
        let mut sim =
            Simulation::with_scheduler(matching_protocol(), 12, 3, RoundRobin::new());
        let outcome = sim.run_until_edges(|p| is_maximum_matching(p.edges()), 100_000);
        assert!(outcome.stabilized());
    }

    #[test]
    fn initial_configuration_can_be_stable() {
        // A protocol with no rules is stable immediately.
        let mut b = ProtocolBuilder::new("inert");
        let _ = b.state("a");
        let p = b.build().expect("valid");
        let mut sim = Simulation::new(p, 4, 0);
        let outcome = sim.run_until(|_| true, 10);
        assert_eq!(
            outcome,
            RunOutcome::Stabilized {
                detected_at: 0,
                converged_at: 0,
                last_effective: 0
            }
        );
        assert!(sim.is_quiescent());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_population_rejected() {
        let _ = Simulation::new(matching_protocol(), 1, 0);
    }

    #[test]
    fn tracked_quiescence_agrees_with_scan() {
        // Two identically-seeded runs, one with the incremental tracker:
        // the tracker must agree with the O(n²) fallback after every step.
        let mut tracked = Simulation::new(matching_protocol(), 14, 21);
        tracked.track_effective();
        let mut scanned = Simulation::new(matching_protocol(), 14, 21);
        for _ in 0..3_000 {
            assert_eq!(tracked.step(), scanned.step());
            assert_eq!(tracked.is_quiescent(), scanned.is_quiescent());
            assert_eq!(tracked.is_edge_quiescent(), scanned.is_edge_quiescent());
        }
        assert!(tracked.is_quiescent(), "matching on 14 nodes quiesces fast");
        assert_eq!(tracked.effective_pairs(), Some(0));
        assert_eq!(scanned.effective_pairs(), None);
    }

    #[test]
    fn output_graph_respects_output_states() {
        let mut b = ProtocolBuilder::new("half-out");
        let a = b.state("a");
        let m = b.state("b");
        b.rule((a, a, OFF), (m, m, ON));
        b.output_states(&[a]);
        let p = b.build().expect("valid");
        let mut sim = Simulation::new(p, 10, 11);
        sim.run_until_edges(|p| is_maximum_matching(p.edges()), 100_000);
        // Matched nodes are in state b, which is not an output state, so
        // the output graph is empty even though edges are active.
        assert_eq!(sim.output_graph().active_count(), 0);
        assert!(sim.population().edges().active_count() > 0);
    }

    #[test]
    fn faults_reclassify_and_converge_on_the_naive_engine() {
        use crate::fault::{FaultEvent, FaultPlan};
        let p = matching_protocol();
        let a = p.state("a").unwrap();
        let plan = FaultPlan::new(7).at(0, FaultEvent::CrashRandom);
        let mut sim = Simulation::new_faulted(p, 8, 11, plan);
        let out = sim.run_faulted_until(
            |pop, fs| {
                (0..pop.n())
                    .filter(|&u| fs.is_alive(u) && *pop.state(u) == a)
                    .count()
                    <= 1
            },
            10_000_000,
        );
        assert!(out.stabilized(), "{out:?}");
        let fs = sim.fault_state().expect("faulted");
        assert_eq!(fs.alive_count(), 7);
        // 7 alive nodes: 3 matched pairs and one leftover `a`.
        assert_eq!(sim.population().edges().active_count(), 3);
    }

    #[test]
    fn naive_stop_resume_is_coin_for_coin_identical_across_faults() {
        use crate::fault::{FaultEvent, FaultPlan};
        let plan = || {
            FaultPlan::new(3)
                .at(50, FaultEvent::CrashRandom)
                .at(120, FaultEvent::Arrive)
                .at(200, FaultEvent::DeleteRandomActiveEdges(2))
        };
        let fingerprint = |mut sim: Simulation<crate::RuleProtocol>| {
            sim.run_faulted_to(400);
            (
                sim.steps(),
                sim.effective_steps(),
                sim.edge_events(),
                sim.population().clone(),
            )
        };
        let whole = fingerprint(Simulation::new_faulted(matching_protocol(), 10, 9, plan()));
        let mut stopped = Simulation::new_faulted(matching_protocol(), 10, 9, plan());
        // Interruptions on, before, and after every fault boundary: the
        // naive engine realizes each draw, so any decomposition of the
        // run consumes the identical coin sequence.
        for target in [37, 120, 199, 253, 400] {
            stopped.run_faulted_to(target);
        }
        assert_eq!(
            whole,
            (
                stopped.steps(),
                stopped.effective_steps(),
                stopped.edge_events(),
                stopped.population().clone()
            )
        );
    }
}
