//! The simulation engine: the scheduler-driven step loop with convergence
//! bookkeeping.
//!
//! Running time in the paper is *sequential*: one selected interaction per
//! step, and the time to convergence of an execution is the minimum `t`
//! such that the output graph `G(C_i)` is the same for all `i ≥ t`
//! (§3.1). The engine therefore records the step of the last output-graph
//! change; harnesses certify stabilization with a protocol-specific stable
//! predicate and read the convergence time from
//! [`RunOutcome::converged_at`].

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::compiled::EnumerableMachine;
use crate::engine::{Bookkeeping, EffectIndex, PairSet};
use crate::{Link, Machine, Population, Scheduler, Uniform};

/// The result of a single simulation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// The selected pair had no applicable effective transition.
    Ineffective {
        /// The pair the scheduler selected.
        pair: (usize, usize),
    },
    /// An effective transition was applied.
    Effective {
        /// The pair the scheduler selected.
        pair: (usize, usize),
        /// Whether the edge between the pair changed state.
        edge_changed: bool,
    },
}

impl StepResult {
    /// Whether the step applied an effective transition.
    #[must_use]
    pub fn is_effective(&self) -> bool {
        matches!(self, StepResult::Effective { .. })
    }
}

/// The result of a bounded run towards a stable target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The stability predicate held at `detected_at` steps.
    Stabilized {
        /// Step count at which the predicate was observed to hold.
        detected_at: u64,
        /// Step of the last output-graph (edge) change — the paper's
        /// convergence time, assuming the predicate certifies that no
        /// further output change can occur.
        converged_at: u64,
        /// Step of the last effective transition (node or edge change);
        /// the convergence time of processes that do not touch edges.
        last_effective: u64,
    },
    /// The step budget was exhausted before the predicate held.
    MaxSteps {
        /// The exhausted budget.
        steps: u64,
    },
}

impl RunOutcome {
    /// Whether the run reached the target.
    #[must_use]
    pub fn stabilized(&self) -> bool {
        matches!(self, RunOutcome::Stabilized { .. })
    }

    /// The paper's convergence time (last output change), if stabilized.
    #[must_use]
    pub fn converged_at(&self) -> Option<u64> {
        match self {
            RunOutcome::Stabilized { converged_at, .. } => Some(*converged_at),
            RunOutcome::MaxSteps { .. } => None,
        }
    }

    /// The last effective interaction step, if stabilized.
    #[must_use]
    pub fn last_effective(&self) -> Option<u64> {
        match self {
            RunOutcome::Stabilized { last_effective, .. } => Some(*last_effective),
            RunOutcome::MaxSteps { .. } => None,
        }
    }
}

/// A running execution of a [`Machine`] on a population under a
/// [`Scheduler`].
///
/// # Example
///
/// ```
/// use netcon_core::{Link, ProtocolBuilder, Simulation};
/// use netcon_graph::properties::is_maximum_matching;
///
/// // The maximum-matching process (§3.3): (a, a, 0) → (b, b, 1).
/// let mut b = ProtocolBuilder::new("matching");
/// let a = b.state("a");
/// let m = b.state("b");
/// b.rule((a, a, Link::Off), (m, m, Link::On));
/// let protocol = b.build()?;
///
/// let mut sim = Simulation::new(protocol, 30, 1);
/// let outcome = sim.run_until(|p| is_maximum_matching(p.edges()), 1_000_000);
/// assert!(outcome.stabilized());
/// assert!(sim.is_quiescent());
/// # Ok::<(), netcon_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulation<M: Machine, S: Scheduler = Uniform> {
    machine: M,
    scheduler: S,
    pop: Population<M::State>,
    rng: SmallRng,
    book: Bookkeeping,
    tracker: Option<Tracker<M>>,
}

/// Optional incremental effective-pair tracking (see
/// [`Simulation::track_effective`]).
#[derive(Debug, Clone)]
struct Tracker<M: Machine> {
    index: EffectIndex<M>,
    pairs: PairSet,
}

impl<M: Machine> Simulation<M, Uniform> {
    /// Creates a simulation of `machine` on `n` nodes in the initial
    /// configuration, under the uniform random scheduler, reproducible
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (pairwise interactions need two processes).
    ///
    /// # Example
    ///
    /// ```
    /// use netcon_core::{Link, ProtocolBuilder, Simulation};
    /// let mut b = ProtocolBuilder::new("pairing");
    /// let a = b.state("a");
    /// let p = b.state("b");
    /// b.rule((a, a, Link::Off), (p, p, Link::On));
    /// let mut sim = Simulation::new(b.build()?, 8, 7);
    /// sim.run_for(100);
    /// assert_eq!(sim.steps(), 100); // the naive loop pays for every draw
    /// # Ok::<(), netcon_core::ProtocolError>(())
    /// ```
    #[must_use]
    pub fn new(machine: M, n: usize, seed: u64) -> Self {
        Self::with_scheduler(machine, n, seed, Uniform)
    }

    /// Creates a simulation starting from an explicit configuration (for
    /// problems with non-trivial inputs, e.g. Graph-Replication).
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer than 2 nodes.
    #[must_use]
    pub fn from_population(machine: M, pop: Population<M::State>, seed: u64) -> Self {
        Self::from_population_with_scheduler(machine, pop, seed, Uniform)
    }
}

impl<M: Machine, S: Scheduler> Simulation<M, S> {
    /// Creates a simulation under a custom scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn with_scheduler(machine: M, n: usize, seed: u64, scheduler: S) -> Self {
        let pop = Population::new(n, machine.initial_state());
        Self::from_population_with_scheduler(machine, pop, seed, scheduler)
    }

    /// Creates a simulation from an explicit configuration under a custom
    /// scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer than 2 nodes.
    #[must_use]
    pub fn from_population_with_scheduler(
        machine: M,
        pop: Population<M::State>,
        seed: u64,
        scheduler: S,
    ) -> Self {
        assert!(pop.n() >= 2, "pairwise interactions need at least 2 processes");
        Self {
            machine,
            scheduler,
            pop,
            rng: SmallRng::seed_from_u64(seed),
            book: Bookkeeping::default(),
            tracker: None,
        }
    }

    /// The current configuration.
    #[must_use]
    pub fn population(&self) -> &Population<M::State> {
        &self.pop
    }

    /// The machine being executed.
    #[must_use]
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Steps taken so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.book.steps
    }

    /// Effective interactions so far.
    #[must_use]
    pub fn effective_steps(&self) -> u64 {
        self.book.effective_steps
    }

    /// Edge activations/deactivations so far.
    #[must_use]
    pub fn edge_events(&self) -> u64 {
        self.book.edge_events
    }

    /// The step of the most recent edge change (0 if none yet) — the
    /// current candidate for the paper's convergence time.
    #[must_use]
    pub fn last_output_change(&self) -> u64 {
        self.book.last_output_change
    }

    /// The step of the most recent effective interaction (0 if none yet).
    #[must_use]
    pub fn last_effective(&self) -> u64 {
        self.book.last_effective
    }

    /// Executes one scheduler-selected interaction.
    ///
    /// Performs exactly one δ lookup and, for flat (`StateId`) protocols,
    /// no heap allocation: the states are passed to the machine by
    /// reference and only the (two-word) outcome states are written back.
    pub fn step(&mut self) -> StepResult {
        let (u, v) = self.scheduler.next_pair(self.pop.n(), &mut self.rng);
        self.book.steps += 1;
        let link = Link::from(self.pop.edges().is_active(u, v));
        match self
            .machine
            .interact(self.pop.state(u), self.pop.state(v), link, &mut self.rng)
        {
            None => StepResult::Ineffective { pair: (u, v) },
            Some((a2, b2, l2)) => {
                let edge_changed = l2 != link;
                if edge_changed {
                    self.pop.edges_mut().set(u, v, l2.is_on());
                }
                self.pop.set_state(u, a2);
                self.pop.set_state(v, b2);
                self.book.record_effective(edge_changed);
                if let Some(t) = &mut self.tracker {
                    t.index
                        .on_interaction(&self.machine, &self.pop, &mut t.pairs, u, v);
                }
                StepResult::Effective {
                    pair: (u, v),
                    edge_changed,
                }
            }
        }
    }

    /// Runs for exactly `steps` further interactions.
    pub fn run_for(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Runs until `stable` holds or `max_steps` total steps have
    /// elapsed.
    ///
    /// The predicate is evaluated on the initial configuration, after
    /// every step that changes an edge, and after every step on which the
    /// *node* states changed but no edge did (cheaply skipping ineffective
    /// steps). For a predicate that certifies output-stability, the
    /// returned [`RunOutcome::Stabilized::converged_at`] is exactly the
    /// paper's time to convergence.
    pub fn run_until(
        &mut self,
        mut stable: impl FnMut(&Population<M::State>) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        if stable(&self.pop) {
            return self.book.stabilized_now();
        }
        while self.book.steps < max_steps {
            if self.step().is_effective() && stable(&self.pop) {
                return self.book.stabilized_now();
            }
        }
        RunOutcome::MaxSteps {
            steps: self.book.steps,
        }
    }

    /// Like [`run_until`](Self::run_until) but only re-evaluates the
    /// predicate when an edge changes. Correct (and faster) for predicates
    /// that depend only on the output graph.
    pub fn run_until_edges(
        &mut self,
        mut stable: impl FnMut(&Population<M::State>) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        if stable(&self.pop) {
            return self.book.stabilized_now();
        }
        while self.book.steps < max_steps {
            if let StepResult::Effective {
                edge_changed: true, ..
            } = self.step()
            {
                if stable(&self.pop) {
                    return self.book.stabilized_now();
                }
            }
        }
        RunOutcome::MaxSteps {
            steps: self.book.steps,
        }
    }

    /// Whether no pair of nodes has any effective interaction — the
    /// strongest form of stability.
    ///
    /// With [`track_effective`](Self::track_effective) enabled this reads
    /// the incrementally-maintained effective-pair set in O(1); otherwise
    /// it falls back to the O(n²) pair scan — the only option for machines
    /// without dense state indices (`EnumerableMachine`), whose
    /// effectiveness relation cannot be tabulated up front.
    ///
    /// Note that some correct protocols never quiesce (their leaders walk
    /// forever); those stabilize in output without ever satisfying this.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        if let Some(t) = &self.tracker {
            return t.pairs.is_empty();
        }
        let n = self.pop.n();
        for u in 0..n {
            for (v, active) in self.pop.edges().row(u) {
                if v > u
                    && self
                        .machine
                        .can_affect(self.pop.state(u), self.pop.state(v), Link::from(active))
                {
                    return false;
                }
            }
        }
        true
    }

    /// Whether no pair of nodes has an interaction that could change an
    /// edge *in the current configuration*.
    ///
    /// With [`track_effective`](Self::track_effective) enabled this only
    /// inspects the O(k) currently-effective pairs; otherwise it falls
    /// back to the O(n²) scan (see [`is_quiescent`](Self::is_quiescent)).
    ///
    /// This is a one-configuration check, not a reachability proof: a
    /// protocol may pass it and still change edges later after node-state
    /// drift. Use per-protocol stable predicates for certification.
    #[must_use]
    pub fn is_edge_quiescent(&self) -> bool {
        if let Some(t) = &self.tracker {
            return t.pairs.iter().all(|(u, v)| {
                let link = Link::from(self.pop.edges().is_active(u, v));
                !t.index
                    .table()
                    .can_affect_edge(t.index.state_index(u), t.index.state_index(v), link)
            });
        }
        let n = self.pop.n();
        for u in 0..n {
            for (v, active) in self.pop.edges().row(u) {
                if v > u
                    && self.machine.can_affect_edge(
                        self.pop.state(u),
                        self.pop.state(v),
                        Link::from(active),
                    )
                {
                    return false;
                }
            }
        }
        true
    }

    /// The output graph: active edges restricted to nodes in output
    /// states. When `Q_out = Q` this is just the active-edge set.
    #[must_use]
    pub fn output_graph(&self) -> netcon_graph::EdgeSet {
        crate::engine::output_graph(&self.machine, &self.pop)
    }

    /// Bytes of heap memory held by the engine: node states, the dense
    /// edge set (`3n²/16` bytes — the naive loop's Θ(n²) floor), and the
    /// optional effective-pair tracker. Heap payloads *inside* composite
    /// states are not counted.
    #[must_use]
    pub fn approx_mem_bytes(&self) -> u64 {
        (self.pop.n() * std::mem::size_of::<M::State>()) as u64
            + self.pop.edges().approx_mem_bytes()
            + self.tracker.as_ref().map_or(0, |t| {
                t.pairs.approx_mem_bytes() + t.index.approx_mem_bytes()
            })
    }
}

impl<M: EnumerableMachine, S: Scheduler> Simulation<M, S> {
    /// Enables incremental effective-pair tracking: one O(n²) scan now
    /// (plus an O(|Q|²) effect-table build), then O(n) maintenance per
    /// *effective* step, making [`is_quiescent`](Self::is_quiescent) O(1)
    /// and [`is_edge_quiescent`](Self::is_edge_quiescent) O(k).
    ///
    /// Worth it for harnesses that poll quiescence while stepping; for
    /// runs that are dominated by ineffective steps, prefer
    /// [`EventSim`](crate::EventSim), which gets the same bookkeeping for
    /// free and skips the ineffective steps altogether.
    pub fn track_effective(&mut self) {
        let table = self.machine.effect_table();
        let (index, pairs) = EffectIndex::build(&self.machine, &self.pop, table, |m: &M, s| {
            m.state_index(s)
        });
        self.tracker = Some(Tracker { index, pairs });
    }

    /// The number of currently possibly-effective pairs, if tracking is
    /// enabled.
    #[must_use]
    pub fn effective_pairs(&self) -> Option<usize> {
        self.tracker.as_ref().map(|t| t.pairs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProtocolBuilder, RoundRobin};
    use netcon_graph::properties::is_maximum_matching;

    const OFF: Link = Link::Off;
    const ON: Link = Link::On;

    fn matching_protocol() -> crate::RuleProtocol {
        let mut b = ProtocolBuilder::new("matching");
        let a = b.state("a");
        let m = b.state("b");
        b.rule((a, a, OFF), (m, m, ON));
        b.build().expect("valid")
    }

    #[test]
    fn matching_converges_and_quiesces() {
        let mut sim = Simulation::new(matching_protocol(), 20, 123);
        let outcome = sim.run_until_edges(|p| is_maximum_matching(p.edges()), 200_000);
        assert!(outcome.stabilized(), "matching should form: {outcome:?}");
        assert!(sim.is_quiescent());
        assert!(sim.is_edge_quiescent());
        assert_eq!(sim.population().edges().active_count(), 10);
    }

    #[test]
    fn odd_population_leaves_one_unmatched() {
        let mut sim = Simulation::new(matching_protocol(), 21, 5);
        let outcome = sim.run_until_edges(|p| is_maximum_matching(p.edges()), 400_000);
        assert!(outcome.stabilized());
        let a = sim.machine().state("a").unwrap();
        assert_eq!(sim.population().count_where(|s| *s == a), 1);
    }

    #[test]
    fn convergence_time_is_last_edge_change() {
        let mut sim = Simulation::new(matching_protocol(), 10, 7);
        let outcome = sim.run_until_edges(|p| is_maximum_matching(p.edges()), 100_000);
        let RunOutcome::Stabilized {
            detected_at,
            converged_at,
            ..
        } = outcome
        else {
            panic!("did not stabilize");
        };
        assert_eq!(
            detected_at, converged_at,
            "for edge-predicate runs detection happens on the converging step"
        );
        assert_eq!(u64::from(sim.edge_events() > 0), 1);
        // Running further changes nothing: the output is stable.
        let before = sim.population().edges().clone();
        sim.run_for(10_000);
        assert_eq!(*sim.population().edges(), before);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut sim = Simulation::new(matching_protocol(), 16, seed);
            sim.run_until_edges(|p| is_maximum_matching(p.edges()), 100_000)
        };
        assert_eq!(run(9), run(9));
        assert!(run(9).stabilized());
    }

    #[test]
    fn works_under_round_robin() {
        let mut sim =
            Simulation::with_scheduler(matching_protocol(), 12, 3, RoundRobin::new());
        let outcome = sim.run_until_edges(|p| is_maximum_matching(p.edges()), 100_000);
        assert!(outcome.stabilized());
    }

    #[test]
    fn initial_configuration_can_be_stable() {
        // A protocol with no rules is stable immediately.
        let mut b = ProtocolBuilder::new("inert");
        let _ = b.state("a");
        let p = b.build().expect("valid");
        let mut sim = Simulation::new(p, 4, 0);
        let outcome = sim.run_until(|_| true, 10);
        assert_eq!(
            outcome,
            RunOutcome::Stabilized {
                detected_at: 0,
                converged_at: 0,
                last_effective: 0
            }
        );
        assert!(sim.is_quiescent());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_population_rejected() {
        let _ = Simulation::new(matching_protocol(), 1, 0);
    }

    #[test]
    fn tracked_quiescence_agrees_with_scan() {
        // Two identically-seeded runs, one with the incremental tracker:
        // the tracker must agree with the O(n²) fallback after every step.
        let mut tracked = Simulation::new(matching_protocol(), 14, 21);
        tracked.track_effective();
        let mut scanned = Simulation::new(matching_protocol(), 14, 21);
        for _ in 0..3_000 {
            assert_eq!(tracked.step(), scanned.step());
            assert_eq!(tracked.is_quiescent(), scanned.is_quiescent());
            assert_eq!(tracked.is_edge_quiescent(), scanned.is_edge_quiescent());
        }
        assert!(tracked.is_quiescent(), "matching on 14 nodes quiesces fast");
        assert_eq!(tracked.effective_pairs(), Some(0));
        assert_eq!(scanned.effective_pairs(), None);
    }

    #[test]
    fn output_graph_respects_output_states() {
        let mut b = ProtocolBuilder::new("half-out");
        let a = b.state("a");
        let m = b.state("b");
        b.rule((a, a, OFF), (m, m, ON));
        b.output_states(&[a]);
        let p = b.build().expect("valid");
        let mut sim = Simulation::new(p, 10, 11);
        sim.run_until_edges(|p| is_maximum_matching(p.edges()), 100_000);
        // Matched nodes are in state b, which is not an output state, so
        // the output graph is empty even though edges are active.
        assert_eq!(sim.output_graph().active_count(), 0);
        assert!(sim.population().edges().active_count() > 0);
    }
}
