//! Fault injection and churn: deterministic, seed-derived plans of node
//! crashes, node arrivals, and adversarial edge deletions, applied at
//! draw-indexed times on any of the four engines.
//!
//! # The ghost-node model
//!
//! The engines' exactness arguments all lean on a *fixed* draw space:
//! the geometric skip law divides by `m = n(n−1)/2`, and a shuffled
//! round is exactly `m` draws. Growing or shrinking `n` mid-run would
//! change the denominator of every in-flight skip. The fault layer
//! therefore keeps the draw space fixed at a *capacity* of
//! `n + (number of planned arrivals)` nodes and models churn as
//! **presence**: a crashed node (and a node that has not arrived yet)
//! remains in the draw space as an inert *ghost* — any pair involving
//! it is certainly ineffective, its edges are all inactive, and it
//! never re-enters any rule. A scheduler draw that selects a ghost is
//! an ordinary ineffective step.
//!
//! This is distribution-identical to a model that truly removes nodes,
//! up to a deterministic time dilation: with `a` of `capacity` nodes
//! alive, each draw hits an alive–alive pair with probability
//! `a(a−1)/(capacity(capacity−1))`, so per-draw statistics are the
//! removal model's slowed by that constant factor — and *identically
//! so on all four engines*, which is what the equivalence tests
//! exercise. In exchange, fault application is pure candidate-set
//! reclassification (no engine ever resizes its draw space), and
//! stop/resume across a fault boundary stays coin-for-coin exact.
//!
//! # Determinism
//!
//! Each plan event resolves its randomness (which node `CrashRandom`
//! kills, which active edges `DeleteRandomActiveEdges` cuts) from a
//! *private* RNG seeded by [`seeds::derive2`]`(plan_seed, event_index,
//! event_time)` — never from the engine's scheduler RNG. Consequences:
//!
//! - the alive-set evolution is a pure function of the plan (crash
//!   targets do not depend on the run), so the *same* node crashes at
//!   the *same* draw index on every engine — the basis of the
//!   exact-agreement fault regressions;
//! - interrupting a run at a fault boundary and resuming consumes the
//!   identical coin stream as an uninterrupted run;
//! - only `DeleteRandomActiveEdges` inspects run state (the current
//!   active-edge set), so it is distribution-exact rather than
//!   trajectory-exact across engines.

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::seeds;

pub mod adversary;

use adversary::{AdversaryPlan, ConfigSnapshot};

/// A single scheduled fault/churn event of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash a uniformly random alive node (no-op if none are alive).
    /// The victim is chosen by the plan's private RNG, so it is the
    /// same node on every engine running the same plan.
    CrashRandom,
    /// Crash a specific node (no-op if it is already crashed, has not
    /// arrived yet, or is out of range).
    Crash(u32),
    /// A fresh node in the machine's initial state joins the
    /// population. Arriving nodes occupy the pre-sized ghost slots
    /// `base_n..capacity` in plan order.
    Arrive,
    /// Adversarially deactivate one specific edge (no-op if the edge
    /// is inactive or an endpoint is invalid).
    DeleteEdge(u32, u32),
    /// Deactivate up to `count` uniformly random currently-active
    /// edges, sampled without replacement by the plan's private RNG.
    DeleteRandomActiveEdges(u32),
}

/// A deterministic schedule of fault events at draw-indexed times.
///
/// An event at time `t` is applied as soon as the engine's step
/// counter reaches `t` — i.e. after draw `t` and before draw `t + 1`
/// (events at `t = 0` apply before any draw). Events sharing a time
/// apply in insertion order. All per-event randomness derives from
/// `seeds::derive2(seed, event_index, time)`; see the
/// [module docs](self) for why that matters.
///
/// # Example
///
/// ```
/// use netcon_core::{FaultEvent, FaultPlan};
///
/// let plan = FaultPlan::new(42)
///     .at(1_000, FaultEvent::CrashRandom)
///     .at(1_000, FaultEvent::Arrive)
///     .at(5_000, FaultEvent::DeleteRandomActiveEdges(3));
/// assert_eq!(plan.len(), 3);
/// assert_eq!(plan.arrival_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// `(time, event)`, sorted by time, stable under insertion order.
    events: Vec<(u64, FaultEvent)>,
    /// Optional configuration-adaptive adversary riding the plan.
    adversary: Option<AdversaryPlan>,
    /// Optional alive-count floor enforced at resolution time: crash
    /// events (scheduled or adversarial) that would breach it no-op.
    min_alive: Option<usize>,
}

impl FaultPlan {
    /// Creates an empty plan whose per-event randomness derives from
    /// `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
            adversary: None,
            min_alive: None,
        }
    }

    /// Schedules `event` at draw index `at` (builder style). Keeps the
    /// schedule sorted by time; events at equal times keep insertion
    /// order.
    #[must_use]
    pub fn at(mut self, at: u64, event: FaultEvent) -> Self {
        let i = self.events.partition_point(|&(t, _)| t <= at);
        self.events.insert(i, (at, event));
        self
    }

    /// Builds a plan from an explicit `(time, event)` list in one shot.
    /// The list is stably sorted by time, so events handed in at equal
    /// times keep their relative order — a misordered input can never
    /// produce an out-of-order schedule (which would silently skew
    /// paired-statistics comparisons across engines).
    #[must_use]
    pub fn from_events(seed: u64, mut events: Vec<(u64, FaultEvent)>) -> Self {
        events.sort_by_key(|&(t, _)| t);
        Self {
            seed,
            events,
            adversary: None,
            min_alive: None,
        }
    }

    /// Attaches a configuration-adaptive [`AdversaryPlan`]: every
    /// faulted engine pauses at its decision draws, snapshots the live
    /// configuration, and applies the policies' damage through the
    /// ordinary resolved-fault path (builder style). See
    /// [`adversary`] for the exactness argument.
    #[must_use]
    pub fn with_adversary(mut self, adv: AdversaryPlan) -> Self {
        self.adversary = Some(adv);
        self
    }

    /// The attached adversary, if any.
    #[must_use]
    pub fn adversary(&self) -> Option<&AdversaryPlan> {
        self.adversary.as_ref()
    }

    /// Sets a plan-wide alive-count floor (builder style): any crash —
    /// a scheduled [`FaultEvent::CrashRandom`]/[`FaultEvent::Crash`]
    /// *or* an adversarial one — that would take the alive count to or
    /// below `floor` resolves to a no-op. [`ChurnPlan::min_alive`]
    /// sets this automatically on its compiled plans, so a churn
    /// stream's floor survives composition with an adversary (whose
    /// extra crashes the stream generator could not anticipate).
    #[must_use]
    pub fn with_min_alive(mut self, floor: usize) -> Self {
        self.min_alive = Some(floor);
        self
    }

    /// The plan-wide alive-count floor, if set.
    #[must_use]
    pub fn min_alive(&self) -> Option<usize> {
        self.min_alive
    }

    /// Every draw index at which this plan can act: scheduled event
    /// times merged with the adversary's decision times, sorted and
    /// deduplicated — the window boundaries an availability analysis
    /// segments a run at.
    #[must_use]
    pub fn boundary_times(&self) -> Vec<u64> {
        let mut times: Vec<u64> = self.events.iter().map(|&(t, _)| t).collect();
        if let Some(adv) = &self.adversary {
            times.extend(adv.decision_times());
        }
        times.sort_unstable();
        times.dedup();
        times
    }

    /// The scheduled `(time, event)` pairs, sorted by time.
    #[must_use]
    pub fn events(&self) -> &[(u64, FaultEvent)] {
        &self.events
    }

    /// The number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The number of [`FaultEvent::Arrive`] events — the extra ghost
    /// slots a faulted engine pre-sizes its draw space with.
    #[must_use]
    pub fn arrival_count(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::Arrive))
            .count()
    }

    /// The plan's base seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The private RNG of event `i` — independent of every engine RNG
    /// and of every other event.
    fn event_rng(&self, i: usize) -> SmallRng {
        SmallRng::seed_from_u64(seeds::derive2(self.seed, i as u64, self.events[i].0))
    }
}

/// A continuous-churn generator: a merged Poisson stream of node
/// arrivals and departures, compiled into a draw-indexed [`FaultPlan`].
///
/// Inter-event gaps are exponential with rate `arrival_rate +
/// departure_rate` (events per scheduler draw); each event is then
/// *thinned* into an arrival or a departure proportionally to its rate
/// — the standard superposition construction, so arrivals and
/// departures are themselves independent Poisson streams. Event times
/// accumulate in continuous time and are discretized to draw indices,
/// so several events may share a draw (they apply in stream order).
///
/// Because the compiled plan is an ordinary [`FaultPlan`], all four
/// engines execute the churn through the existing ghost-node machinery:
/// the draw space is pre-sized to `base_n + arrivals` and no skip-law
/// denominator ever moves, so sustained churn inherits every exactness
/// guarantee of one-shot bursts (see the [module docs](self)).
///
/// The optional `min_alive` floor models a steady-state population:
/// departures the floor would forbid are *dropped from the stream*
/// (arrivals are never dropped). The generator can track the alive
/// count exactly without running anything, because every emitted
/// departure is a [`FaultEvent::CrashRandom`] scheduled while the
/// count is above the floor — it always finds a victim.
///
/// # Example
///
/// ```
/// use netcon_core::ChurnPlan;
///
/// let plan = ChurnPlan::new(42)
///     .arrival_rate(1e-3)
///     .departure_rate(1e-3)
///     .min_alive(8)
///     .horizon(100_000)
///     .compile(20);
/// assert!(plan.events().iter().all(|&(t, _)| t < 100_000));
/// assert_eq!(plan.min_alive(), Some(8)); // the floor rides the plan
/// // Same knobs + seed ⇒ the identical plan, on every engine.
/// ```
///
/// A positive rate with the default horizon of 0 is a hard error —
/// [`compile`](Self::compile) panics rather than silently emitting an
/// empty plan:
///
/// ```should_panic
/// use netcon_core::ChurnPlan;
///
/// // Forgot `.horizon(...)`: this panics instead of compiling to
/// // a no-op stream.
/// let _ = ChurnPlan::new(42).arrival_rate(0.5).compile(8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnPlan {
    seed: u64,
    arrival_rate: f64,
    departure_rate: f64,
    horizon: u64,
    min_alive: Option<usize>,
}

impl ChurnPlan {
    /// Creates a churn generator with zero rates and an empty horizon;
    /// `seed` drives both the stream and the compiled plan's per-event
    /// randomness.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            arrival_rate: 0.0,
            departure_rate: 0.0,
            horizon: 0,
            min_alive: None,
        }
    }

    /// Sets the expected number of node arrivals per scheduler draw.
    #[must_use]
    pub fn arrival_rate(mut self, per_draw: f64) -> Self {
        self.arrival_rate = per_draw;
        self
    }

    /// Sets the expected number of node departures (crashes of a
    /// uniformly random alive node) per scheduler draw.
    #[must_use]
    pub fn departure_rate(mut self, per_draw: f64) -> Self {
        self.departure_rate = per_draw;
        self
    }

    /// Sets the stream horizon: events are generated for draw indices
    /// `0..draws` (a bounded horizon is what lets the compiled plan
    /// know its arrival count — and hence the draw-space capacity — up
    /// front).
    #[must_use]
    pub fn horizon(mut self, draws: u64) -> Self {
        self.horizon = draws;
        self
    }

    /// Sets the steady-state alive-count floor: departures that would
    /// take the population below `floor` are dropped from the stream.
    #[must_use]
    pub fn min_alive(mut self, floor: usize) -> Self {
        self.min_alive = Some(floor);
        self
    }

    /// The same rate knobs under a different seed — how sweeps derive
    /// an independent churn stream per trial.
    #[must_use]
    pub fn reseeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Compiles the stream into a draw-indexed [`FaultPlan`] for a
    /// population of `base_n` initially-present nodes. Deterministic in
    /// `(knobs, seed, base_n)` — every engine replaying the result sees
    /// the same nodes churn at the same draws.
    ///
    /// # Panics
    ///
    /// Panics if either rate is negative or non-finite, or if a rate
    /// is positive while the horizon is 0 — a positive-rate stream
    /// with no horizon would silently compile to an empty plan (the
    /// default horizon is 0, so this is an easy knob to forget).
    #[must_use]
    pub fn compile(&self, base_n: usize) -> FaultPlan {
        assert!(
            self.arrival_rate.is_finite() && self.arrival_rate >= 0.0,
            "arrival rate must be finite and non-negative"
        );
        assert!(
            self.departure_rate.is_finite() && self.departure_rate >= 0.0,
            "departure rate must be finite and non-negative"
        );
        let total = self.arrival_rate + self.departure_rate;
        assert!(
            total == 0.0 || self.horizon > 0,
            "positive churn rate with a zero horizon: set `.horizon(draws)` \
             (a bounded horizon is what sizes the draw-space capacity)"
        );
        let mut events = Vec::new();
        if total > 0.0 {
            let mut rng = SmallRng::seed_from_u64(self.seed);
            let floor = self.min_alive.unwrap_or(0);
            let mut alive = base_n;
            let mut t = 0.0_f64;
            loop {
                t += -unit_open01(&mut rng).ln() / total;
                // `t` is monotone (each gap is a finite positive f64),
                // so the first overshoot ends the stream.
                if t >= self.horizon as f64 {
                    break;
                }
                if unit_open01(&mut rng) * total <= self.arrival_rate {
                    events.push((t as u64, FaultEvent::Arrive));
                    alive += 1;
                } else if alive > floor {
                    events.push((t as u64, FaultEvent::CrashRandom));
                    alive -= 1;
                }
            }
        }
        let mut plan = FaultPlan::from_events(self.seed, events);
        plan.min_alive = self.min_alive;
        plan
    }
}

/// A uniform draw from the half-open interval (0, 1] — strictly
/// positive, so its logarithm is finite (the exponential-gap draw).
fn unit_open01(rng: &mut SmallRng) -> f64 {
    (((rng.next_u64() >> 11) + 1) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// A plan event with its randomness resolved against the current alive
/// set — what an engine actually has to apply.
#[derive(Debug)]
pub(crate) enum ResolvedFault {
    /// The event resolved to nothing (dead crash target, empty alive
    /// set, invalid edge endpoints).
    Noop,
    /// Node `x` crashed: the engine must deactivate its incident
    /// active edges and retire every pair involving it from its
    /// candidate structures. The alive flag is already cleared.
    Crash(usize),
    /// Node `x` arrived (it holds the initial state and no edges): the
    /// engine must admit its pairs back into its candidate structures.
    /// The alive flag is already set.
    Arrive(usize),
    /// Deactivate edge `{u, v}` if currently active.
    DeleteEdge(usize, usize),
    /// Deactivate `count` active edges sampled without replacement by
    /// `rng` from the canonically-ordered active-edge list.
    DeleteRandomEdges {
        /// How many edges to delete (capped by the active count).
        count: usize,
        /// The event's private RNG, for the without-replacement draw.
        rng: SmallRng,
    },
}

/// The live fault bookkeeping a faulted engine carries: the plan, how
/// far into it the run is, and the presence (alive) flags of the
/// fixed-capacity draw space.
///
/// Because event resolution never touches engine state (see the
/// [module docs](self)), a `FaultState` can also be replayed *without*
/// an engine — [`FaultState::project_final`] — to learn the final
/// alive count for sizing predicates.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    /// Events applied so far (a prefix of `plan.events`).
    applied: usize,
    /// Presence flag per draw-space slot.
    alive: Vec<bool>,
    alive_count: usize,
    /// Next ghost slot an `Arrive` event will occupy.
    next_arrival: usize,
    base_n: usize,
    /// Adversary decisions taken so far (indexes the cadence).
    decided: u32,
    /// Adversary damage budget spent so far.
    adv_spent: u64,
}

/// What kind of fault is due at the current draw — how an engine
/// decides between resolving a scheduled plan event (no engine input
/// needed) and an adversary decision (needs a configuration
/// snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DueFault {
    /// The next scheduled plan event is due.
    Event,
    /// An adversary decision draw is due.
    Decision,
}

impl FaultState {
    /// Creates the fault bookkeeping for a plan over a population of
    /// `base_n` initially-present nodes. The draw-space capacity is
    /// `base_n + plan.arrival_count()`; slots `base_n..capacity` start
    /// as not-yet-arrived ghosts.
    #[must_use]
    pub fn new(plan: FaultPlan, base_n: usize) -> Self {
        debug_assert!(
            plan.events.windows(2).all(|w| w[0].0 <= w[1].0),
            "fault plan times must be non-decreasing (build plans via \
             `at` or `from_events`, which keep the schedule sorted)"
        );
        let capacity = base_n + plan.arrival_count();
        let mut alive = vec![true; capacity];
        alive[base_n..].fill(false);
        Self {
            plan,
            applied: 0,
            alive,
            alive_count: base_n,
            next_arrival: base_n,
            base_n,
            decided: 0,
            adv_spent: 0,
        }
    }

    /// The fixed draw-space size every faulted engine runs at:
    /// `base_n + arrivals`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.alive.len()
    }

    /// The initially-present population size.
    #[must_use]
    pub fn base_n(&self) -> usize {
        self.base_n
    }

    /// The number of currently alive (present) nodes.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Whether node `u` is currently alive: arrived and not crashed.
    #[must_use]
    pub fn is_alive(&self, u: usize) -> bool {
        self.alive[u]
    }

    /// The plan driving this state.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// How many plan events have been applied.
    #[must_use]
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// The draw index at which this state next has to act: the
    /// earlier of the next unapplied plan event and the next pending
    /// adversary decision, if either exists. Engines pause their skip
    /// machinery at exactly these times, so adversary decisions
    /// inherit the plan events' stop/resume exactness for free.
    #[must_use]
    pub fn next_at(&self) -> Option<u64> {
        match (self.next_event_at(), self.next_decision_at()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The scheduled time of the next unapplied plan event, if any.
    fn next_event_at(&self) -> Option<u64> {
        self.plan.events.get(self.applied).map(|&(t, _)| t)
    }

    /// The time of the next pending adversary decision: `None` once
    /// the cadence is exhausted or the damage budget is spent (spent
    /// budgets *cancel* remaining decisions, so a budget-capped
    /// adversary never blocks endgame optimizations forever).
    fn next_decision_at(&self) -> Option<u64> {
        let adv = self.plan.adversary.as_ref()?;
        if adv.budget_limit().is_some_and(|b| self.adv_spent >= b) {
            return None;
        }
        adv.cadence().decision_time(self.decided)
    }

    /// Adversary decisions taken so far.
    #[must_use]
    pub fn decisions_taken(&self) -> u32 {
        self.decided
    }

    /// Adversary damage budget spent so far (1 per crash or edge
    /// deletion).
    #[must_use]
    pub fn adversary_spent(&self) -> u64 {
        self.adv_spent
    }

    /// What is due at draw `now`, if anything. Plan events win ties:
    /// an adversary deciding at the same draw as a churn event reacts
    /// to it rather than racing it (and the choice is the same on
    /// every engine, which is all exactness needs).
    pub(crate) fn due_fault(&self, now: u64) -> Option<DueFault> {
        let ev = self.next_event_at().filter(|&t| t <= now);
        let dec = self.next_decision_at().filter(|&t| t <= now);
        match (ev, dec) {
            (Some(te), Some(td)) if td < te => Some(DueFault::Decision),
            (Some(_), _) => Some(DueFault::Event),
            (None, Some(_)) => Some(DueFault::Decision),
            (None, None) => None,
        }
    }

    /// Resolves the pending adversary decision against `snap` (the
    /// engine's normalized configuration): runs the policies, flips
    /// alive flags for the crashes they emit, and returns the damage
    /// for the engine to apply in order. Consumes exactly one
    /// decision index even when every policy no-ops.
    pub(crate) fn resolve_due_decision(&mut self, snap: &ConfigSnapshot) -> Vec<ResolvedFault> {
        let Some(adv) = self.plan.adversary.as_ref() else {
            return Vec::new();
        };
        self.decided += 1;
        let budget_left = adv
            .budget_limit()
            .map_or(u64::MAX, |b| b.saturating_sub(self.adv_spent));
        let (damage, spent) = adversary::resolve_decision(
            adv,
            snap,
            &mut self.alive,
            &mut self.alive_count,
            self.plan.min_alive,
            budget_left,
        );
        self.adv_spent += spent;
        damage
    }

    /// Resolves the next unapplied event: draws its private randomness,
    /// updates the alive flags, and returns what the engine must do.
    /// `None` when the plan is exhausted.
    pub(crate) fn resolve_next(&mut self) -> Option<ResolvedFault> {
        let i = self.applied;
        let &(_, event) = self.plan.events.get(i)?;
        self.applied += 1;
        let floor_blocked = self.plan.min_alive.is_some_and(|f| self.alive_count <= f);
        Some(match event {
            FaultEvent::CrashRandom => {
                if self.alive_count == 0 || floor_blocked {
                    ResolvedFault::Noop
                } else {
                    let mut rng = self.plan.event_rng(i);
                    let k = rng.random_range(0..self.alive_count);
                    let x = self
                        .alive
                        .iter()
                        .enumerate()
                        .filter(|&(_, &a)| a)
                        .nth(k)
                        .map(|(u, _)| u)
                        .expect("k < alive_count");
                    self.alive[x] = false;
                    self.alive_count -= 1;
                    ResolvedFault::Crash(x)
                }
            }
            FaultEvent::Crash(u) => {
                let u = u as usize;
                if u < self.alive.len() && self.alive[u] && !floor_blocked {
                    self.alive[u] = false;
                    self.alive_count -= 1;
                    ResolvedFault::Crash(u)
                } else {
                    ResolvedFault::Noop
                }
            }
            FaultEvent::Arrive => {
                let x = self.next_arrival;
                self.next_arrival += 1;
                debug_assert!(!self.alive[x], "arrival slot already occupied");
                self.alive[x] = true;
                self.alive_count += 1;
                ResolvedFault::Arrive(x)
            }
            FaultEvent::DeleteEdge(u, v) => {
                let (u, v) = (u as usize, v as usize);
                if u == v || u >= self.alive.len() || v >= self.alive.len() {
                    ResolvedFault::Noop
                } else {
                    ResolvedFault::DeleteEdge(u.min(v), u.max(v))
                }
            }
            FaultEvent::DeleteRandomActiveEdges(count) => ResolvedFault::DeleteRandomEdges {
                count: count as usize,
                rng: self.plan.event_rng(i),
            },
        })
    }

    /// Replays the whole plan without an engine and returns the final
    /// state — valid because scheduled-event alive evolution never
    /// depends on run state. Useful for sizing alive-aware stable
    /// predicates up front.
    ///
    /// Plans with an [`adversary`](FaultPlan::adversary) attached lose
    /// this property: adversarial damage inspects the configuration,
    /// so the projection replays *only* the scheduled events. For an
    /// adversarial run, read the engine's live fault state after the
    /// run instead.
    #[must_use]
    pub fn project_final(&self) -> FaultState {
        let mut fs = self.clone();
        while fs.resolve_next().is_some() {}
        fs
    }
}

/// Samples `count` items from `items` without replacement (partial
/// Fisher–Yates). Callers pass the items in a canonical order so the
/// draw depends only on the configuration and the event RNG, not on
/// engine-internal iteration order.
pub(crate) fn sample_without_replacement<T>(
    rng: &mut SmallRng,
    mut items: Vec<T>,
    count: usize,
) -> Vec<T> {
    let k = count.min(items.len());
    for i in 0..k {
        let j = rng.random_range(i..items.len());
        items.swap(i, j);
    }
    items.truncate(k);
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_sorts_and_counts() {
        let plan = FaultPlan::new(7)
            .at(50, FaultEvent::Arrive)
            .at(10, FaultEvent::CrashRandom)
            .at(50, FaultEvent::Crash(3))
            .at(0, FaultEvent::DeleteEdge(1, 2));
        let times: Vec<u64> = plan.events().iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![0, 10, 50, 50]);
        // Equal times keep insertion order: Arrive was added before Crash(3).
        assert_eq!(plan.events()[2].1, FaultEvent::Arrive);
        assert_eq!(plan.events()[3].1, FaultEvent::Crash(3));
        assert_eq!(plan.arrival_count(), 1);
        assert!(!plan.is_empty());
    }

    #[test]
    fn alive_evolution_is_plan_determined() {
        let plan = FaultPlan::new(99)
            .at(5, FaultEvent::CrashRandom)
            .at(9, FaultEvent::Arrive)
            .at(12, FaultEvent::CrashRandom);
        let mut a = FaultState::new(plan.clone(), 10);
        let mut b = FaultState::new(plan, 10);
        assert_eq!(a.capacity(), 11);
        assert_eq!(a.alive_count(), 10);
        assert!(!a.is_alive(10), "arrival slot starts as a ghost");
        loop {
            let (ra, rb) = (a.resolve_next(), b.resolve_next());
            match (&ra, &rb) {
                (Some(ResolvedFault::Crash(x)), Some(ResolvedFault::Crash(y))) => {
                    assert_eq!(x, y, "CrashRandom must pick identically")
                }
                (Some(ResolvedFault::Arrive(x)), Some(ResolvedFault::Arrive(y))) => {
                    assert_eq!((x, y), (&10, &10))
                }
                (None, None) => break,
                other => panic!("mismatched resolutions: {other:?}"),
            }
        }
        assert_eq!(a.alive_count(), 9); // 10 − 2 crashes + 1 arrival
        assert_eq!(a.alive_count(), b.alive_count());
    }

    #[test]
    fn project_final_matches_replay() {
        let plan = FaultPlan::new(4)
            .at(1, FaultEvent::CrashRandom)
            .at(2, FaultEvent::Crash(2))
            .at(3, FaultEvent::Arrive)
            .at(4, FaultEvent::Arrive);
        let fresh = FaultState::new(plan, 6);
        let projected = fresh.project_final();
        let mut replayed = fresh.clone();
        while replayed.resolve_next().is_some() {}
        assert_eq!(projected.alive_count(), replayed.alive_count());
        assert_eq!(projected.capacity(), 8);
        for u in 0..projected.capacity() {
            assert_eq!(projected.is_alive(u), replayed.is_alive(u), "node {u}");
        }
        // Projection does not advance the original.
        assert_eq!(fresh.applied(), 0);
    }

    #[test]
    fn dead_crash_targets_are_noops() {
        let plan = FaultPlan::new(1)
            .at(0, FaultEvent::Crash(1))
            .at(1, FaultEvent::Crash(1))
            .at(2, FaultEvent::Crash(99));
        let mut fs = FaultState::new(plan, 4);
        assert!(matches!(fs.resolve_next(), Some(ResolvedFault::Crash(1))));
        assert!(matches!(fs.resolve_next(), Some(ResolvedFault::Noop)));
        assert!(matches!(fs.resolve_next(), Some(ResolvedFault::Noop)));
        assert_eq!(fs.alive_count(), 3);
        assert_eq!(fs.next_at(), None);
    }

    #[test]
    fn from_events_sorts_misordered_input() {
        // Regression: a misordered event list must never survive into
        // the schedule (an out-of-order plan would make `next_at`
        // non-monotone and skew paired-statistics comparisons).
        let plan = FaultPlan::from_events(
            3,
            vec![
                (90, FaultEvent::Crash(0)),
                (10, FaultEvent::Arrive),
                (90, FaultEvent::CrashRandom),
                (0, FaultEvent::DeleteEdge(0, 1)),
            ],
        );
        let times: Vec<u64> = plan.events().iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![0, 10, 90, 90]);
        // The stable sort keeps the relative order at equal times.
        assert_eq!(plan.events()[2].1, FaultEvent::Crash(0));
        assert_eq!(plan.events()[3].1, FaultEvent::CrashRandom);
        // And the result is accepted by the monotonicity check.
        let fs = FaultState::new(plan, 5);
        assert_eq!(fs.next_at(), Some(0));
    }

    #[test]
    fn empty_plan_edge_cases() {
        let mut fs = FaultState::new(FaultPlan::new(0), 7);
        assert_eq!(fs.capacity(), 7);
        assert_eq!(fs.next_at(), None);
        assert!(fs.resolve_next().is_none());
        let projected = fs.project_final();
        assert_eq!(projected.alive_count(), 7);
        assert_eq!(projected.applied(), 0);
    }

    #[test]
    fn exhausted_plan_edge_cases() {
        let plan = FaultPlan::new(8)
            .at(2, FaultEvent::CrashRandom)
            .at(4, FaultEvent::Arrive);
        let mut fs = FaultState::new(plan, 5);
        while fs.resolve_next().is_some() {}
        assert_eq!(fs.applied(), 2);
        assert_eq!(fs.next_at(), None, "exhausted plan has no next event");
        // Projecting an exhausted state is the identity.
        let projected = fs.project_final();
        assert_eq!(projected.alive_count(), fs.alive_count());
        assert_eq!(projected.applied(), fs.applied());
        for u in 0..fs.capacity() {
            assert_eq!(projected.is_alive(u), fs.is_alive(u));
        }
    }

    #[test]
    fn arrival_only_plan_edge_cases() {
        let plan = FaultPlan::new(2)
            .at(1, FaultEvent::Arrive)
            .at(3, FaultEvent::Arrive)
            .at(6, FaultEvent::Arrive);
        let fs = FaultState::new(plan, 4);
        assert_eq!(fs.capacity(), 7);
        assert_eq!(fs.alive_count(), 4);
        assert_eq!(fs.next_at(), Some(1));
        let projected = fs.project_final();
        assert_eq!(projected.alive_count(), 7, "every ghost slot fills");
        assert!((4..7).all(|u| projected.is_alive(u)));
    }

    #[test]
    fn churn_compilation_is_deterministic() {
        let churn = ChurnPlan::new(11)
            .arrival_rate(2e-3)
            .departure_rate(1e-3)
            .horizon(50_000);
        let a = churn.compile(20);
        let b = churn.compile(20);
        assert_eq!(a, b, "same knobs + seed ⇒ identical plan");
        assert!(!a.is_empty(), "these rates produce ~150 expected events");
        assert!(a.events().iter().all(|&(t, _)| t < 50_000));
        assert!(a.events().windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(a.events().iter().all(|&(_, e)| matches!(
            e,
            FaultEvent::Arrive | FaultEvent::CrashRandom
        )));
        // A different seed reshuffles the stream.
        assert_ne!(
            a,
            ChurnPlan::new(12)
                .arrival_rate(2e-3)
                .departure_rate(1e-3)
                .horizon(50_000)
                .compile(20)
        );
    }

    #[test]
    fn churn_floor_keeps_population_above_min_alive() {
        // Departure-heavy stream against a floor: the replayed alive
        // count must never dip below it.
        let plan = ChurnPlan::new(5)
            .arrival_rate(5e-4)
            .departure_rate(5e-3)
            .min_alive(6)
            .horizon(100_000)
            .compile(10);
        let mut fs = FaultState::new(plan, 10);
        let mut saw_floor = false;
        while fs.resolve_next().is_some() {
            assert!(fs.alive_count() >= 6, "floor violated");
            saw_floor |= fs.alive_count() == 6;
        }
        assert!(saw_floor, "stream heavy enough to reach the floor");
    }

    #[test]
    fn churn_zero_rate_is_empty() {
        assert!(ChurnPlan::new(1).horizon(10_000).compile(8).is_empty());
        // Zero rates with a zero horizon are fine too — nothing was
        // asked for, nothing is forgotten.
        assert!(ChurnPlan::new(1).compile(8).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive churn rate with a zero horizon")]
    fn churn_positive_rate_needs_a_horizon() {
        // Regression for the zero-horizon footgun: this used to
        // silently compile to an empty plan.
        let _ = ChurnPlan::new(1).arrival_rate(0.5).compile(8);
    }

    #[test]
    fn plan_floor_blocks_scheduled_crashes() {
        // Both CrashRandom and targeted Crash refuse to breach the
        // plan-level floor (the composition guard for churn streams
        // running under an adversary).
        let plan = FaultPlan::new(3)
            .at(1, FaultEvent::CrashRandom)
            .at(2, FaultEvent::Crash(2))
            .at(3, FaultEvent::CrashRandom)
            .with_min_alive(3);
        let mut fs = FaultState::new(plan, 4);
        assert!(matches!(fs.resolve_next(), Some(ResolvedFault::Crash(_))));
        assert_eq!(fs.alive_count(), 3, "first crash is above the floor");
        assert!(matches!(fs.resolve_next(), Some(ResolvedFault::Noop)));
        assert!(matches!(fs.resolve_next(), Some(ResolvedFault::Noop)));
        assert_eq!(fs.alive_count(), 3, "floor held");
    }

    #[test]
    fn churn_compile_carries_the_floor_onto_the_plan() {
        let plan = ChurnPlan::new(5)
            .departure_rate(1e-3)
            .min_alive(6)
            .horizon(10_000)
            .compile(10);
        assert_eq!(plan.min_alive(), Some(6));
        assert_eq!(
            ChurnPlan::new(5).departure_rate(1e-3).horizon(10_000).compile(10).min_alive(),
            None
        );
    }

    #[test]
    fn adversary_times_merge_into_next_at_and_boundaries() {
        use super::adversary::{AdversaryPlan, AdversaryPolicy, Cadence, ConfigSnapshot};

        let adv = AdversaryPlan::new(Cadence::burst(vec![15, 40]))
            .policy(AdversaryPolicy::CrashMaxDegree);
        let plan = FaultPlan::new(9)
            .at(10, FaultEvent::CrashRandom)
            .at(20, FaultEvent::Arrive)
            .with_adversary(adv);
        assert_eq!(plan.boundary_times(), vec![10, 15, 20, 40]);
        let mut fs = FaultState::new(plan, 6);
        assert_eq!(fs.next_at(), Some(10));
        assert_eq!(fs.due_fault(9), None);
        assert_eq!(fs.due_fault(12), Some(DueFault::Event));
        // With both due, the earlier one wins; at a tie the plan
        // event does.
        assert_eq!(fs.due_fault(u64::MAX), Some(DueFault::Event));
        assert!(matches!(fs.resolve_next(), Some(ResolvedFault::Crash(_))));
        assert_eq!(fs.next_at(), Some(15), "decision now leads");
        assert_eq!(fs.due_fault(15), Some(DueFault::Decision));
        // Resolving the decision against a snapshot consumes exactly
        // one decision index and flips the victim's alive flag.
        let states = vec![0usize; fs.capacity()];
        let snap = ConfigSnapshot::new(states, vec![(0, 1)]);
        let before = fs.alive_count();
        let damage = fs.resolve_due_decision(&snap);
        assert_eq!(damage.len(), 1);
        assert_eq!(fs.decisions_taken(), 1);
        assert_eq!(fs.adversary_spent(), 1);
        assert_eq!(fs.alive_count(), before - 1);
        assert_eq!(fs.next_at(), Some(20), "back to the plan event");
    }

    #[test]
    fn spent_budget_cancels_remaining_decisions() {
        use super::adversary::{AdversaryPlan, AdversaryPolicy, Cadence, ConfigSnapshot};

        let adv = AdversaryPlan::new(Cadence::Periodic {
            start: 5,
            every: 5,
            count: 100,
        })
        .policy(AdversaryPolicy::CrashMaxDegree)
        .budget(1);
        let mut fs = FaultState::new(FaultPlan::new(2).with_adversary(adv), 4);
        assert_eq!(fs.next_at(), Some(5));
        let snap = ConfigSnapshot::new(vec![0; 4], Vec::<(usize, usize)>::new());
        let damage = fs.resolve_due_decision(&snap);
        assert_eq!(damage.len(), 1);
        assert_eq!(
            fs.next_at(),
            None,
            "budget spent: the other 99 decisions vanish, unblocking endgames"
        );
    }

    #[test]
    fn sampling_without_replacement_is_a_subset() {
        let mut rng = SmallRng::seed_from_u64(5);
        let items: Vec<u32> = (0..20).collect();
        let got = sample_without_replacement(&mut rng, items.clone(), 7);
        assert_eq!(got.len(), 7);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7, "no duplicates");
        assert!(got.iter().all(|x| items.contains(x)));
        // Asking for more than available returns everything.
        let all = sample_without_replacement(&mut rng, vec![1, 2, 3], 10);
        assert_eq!(all.len(), 3);
    }
}
