//! Fault injection and churn: deterministic, seed-derived plans of node
//! crashes, node arrivals, and adversarial edge deletions, applied at
//! draw-indexed times on any of the four engines.
//!
//! # The ghost-node model
//!
//! The engines' exactness arguments all lean on a *fixed* draw space:
//! the geometric skip law divides by `m = n(n−1)/2`, and a shuffled
//! round is exactly `m` draws. Growing or shrinking `n` mid-run would
//! change the denominator of every in-flight skip. The fault layer
//! therefore keeps the draw space fixed at a *capacity* of
//! `n + (number of planned arrivals)` nodes and models churn as
//! **presence**: a crashed node (and a node that has not arrived yet)
//! remains in the draw space as an inert *ghost* — any pair involving
//! it is certainly ineffective, its edges are all inactive, and it
//! never re-enters any rule. A scheduler draw that selects a ghost is
//! an ordinary ineffective step.
//!
//! This is distribution-identical to a model that truly removes nodes,
//! up to a deterministic time dilation: with `a` of `capacity` nodes
//! alive, each draw hits an alive–alive pair with probability
//! `a(a−1)/(capacity(capacity−1))`, so per-draw statistics are the
//! removal model's slowed by that constant factor — and *identically
//! so on all four engines*, which is what the equivalence tests
//! exercise. In exchange, fault application is pure candidate-set
//! reclassification (no engine ever resizes its draw space), and
//! stop/resume across a fault boundary stays coin-for-coin exact.
//!
//! # Determinism
//!
//! Each plan event resolves its randomness (which node `CrashRandom`
//! kills, which active edges `DeleteRandomActiveEdges` cuts) from a
//! *private* RNG seeded by [`seeds::derive2`]`(plan_seed, event_index,
//! event_time)` — never from the engine's scheduler RNG. Consequences:
//!
//! - the alive-set evolution is a pure function of the plan (crash
//!   targets do not depend on the run), so the *same* node crashes at
//!   the *same* draw index on every engine — the basis of the
//!   exact-agreement fault regressions;
//! - interrupting a run at a fault boundary and resuming consumes the
//!   identical coin stream as an uninterrupted run;
//! - only `DeleteRandomActiveEdges` inspects run state (the current
//!   active-edge set), so it is distribution-exact rather than
//!   trajectory-exact across engines.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::seeds;

/// A single scheduled fault/churn event of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash a uniformly random alive node (no-op if none are alive).
    /// The victim is chosen by the plan's private RNG, so it is the
    /// same node on every engine running the same plan.
    CrashRandom,
    /// Crash a specific node (no-op if it is already crashed, has not
    /// arrived yet, or is out of range).
    Crash(u32),
    /// A fresh node in the machine's initial state joins the
    /// population. Arriving nodes occupy the pre-sized ghost slots
    /// `base_n..capacity` in plan order.
    Arrive,
    /// Adversarially deactivate one specific edge (no-op if the edge
    /// is inactive or an endpoint is invalid).
    DeleteEdge(u32, u32),
    /// Deactivate up to `count` uniformly random currently-active
    /// edges, sampled without replacement by the plan's private RNG.
    DeleteRandomActiveEdges(u32),
}

/// A deterministic schedule of fault events at draw-indexed times.
///
/// An event at time `t` is applied as soon as the engine's step
/// counter reaches `t` — i.e. after draw `t` and before draw `t + 1`
/// (events at `t = 0` apply before any draw). Events sharing a time
/// apply in insertion order. All per-event randomness derives from
/// `seeds::derive2(seed, event_index, time)`; see the
/// [module docs](self) for why that matters.
///
/// # Example
///
/// ```
/// use netcon_core::{FaultEvent, FaultPlan};
///
/// let plan = FaultPlan::new(42)
///     .at(1_000, FaultEvent::CrashRandom)
///     .at(1_000, FaultEvent::Arrive)
///     .at(5_000, FaultEvent::DeleteRandomActiveEdges(3));
/// assert_eq!(plan.len(), 3);
/// assert_eq!(plan.arrival_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// `(time, event)`, sorted by time, stable under insertion order.
    events: Vec<(u64, FaultEvent)>,
}

impl FaultPlan {
    /// Creates an empty plan whose per-event randomness derives from
    /// `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// Schedules `event` at draw index `at` (builder style). Keeps the
    /// schedule sorted by time; events at equal times keep insertion
    /// order.
    #[must_use]
    pub fn at(mut self, at: u64, event: FaultEvent) -> Self {
        let i = self.events.partition_point(|&(t, _)| t <= at);
        self.events.insert(i, (at, event));
        self
    }

    /// The scheduled `(time, event)` pairs, sorted by time.
    #[must_use]
    pub fn events(&self) -> &[(u64, FaultEvent)] {
        &self.events
    }

    /// The number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The number of [`FaultEvent::Arrive`] events — the extra ghost
    /// slots a faulted engine pre-sizes its draw space with.
    #[must_use]
    pub fn arrival_count(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::Arrive))
            .count()
    }

    /// The plan's base seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The private RNG of event `i` — independent of every engine RNG
    /// and of every other event.
    fn event_rng(&self, i: usize) -> SmallRng {
        SmallRng::seed_from_u64(seeds::derive2(self.seed, i as u64, self.events[i].0))
    }
}

/// A plan event with its randomness resolved against the current alive
/// set — what an engine actually has to apply.
#[derive(Debug)]
pub(crate) enum ResolvedFault {
    /// The event resolved to nothing (dead crash target, empty alive
    /// set, invalid edge endpoints).
    Noop,
    /// Node `x` crashed: the engine must deactivate its incident
    /// active edges and retire every pair involving it from its
    /// candidate structures. The alive flag is already cleared.
    Crash(usize),
    /// Node `x` arrived (it holds the initial state and no edges): the
    /// engine must admit its pairs back into its candidate structures.
    /// The alive flag is already set.
    Arrive(usize),
    /// Deactivate edge `{u, v}` if currently active.
    DeleteEdge(usize, usize),
    /// Deactivate `count` active edges sampled without replacement by
    /// `rng` from the canonically-ordered active-edge list.
    DeleteRandomEdges {
        /// How many edges to delete (capped by the active count).
        count: usize,
        /// The event's private RNG, for the without-replacement draw.
        rng: SmallRng,
    },
}

/// The live fault bookkeeping a faulted engine carries: the plan, how
/// far into it the run is, and the presence (alive) flags of the
/// fixed-capacity draw space.
///
/// Because event resolution never touches engine state (see the
/// [module docs](self)), a `FaultState` can also be replayed *without*
/// an engine — [`FaultState::project_final`] — to learn the final
/// alive count for sizing predicates.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    /// Events applied so far (a prefix of `plan.events`).
    applied: usize,
    /// Presence flag per draw-space slot.
    alive: Vec<bool>,
    alive_count: usize,
    /// Next ghost slot an `Arrive` event will occupy.
    next_arrival: usize,
    base_n: usize,
}

impl FaultState {
    /// Creates the fault bookkeeping for a plan over a population of
    /// `base_n` initially-present nodes. The draw-space capacity is
    /// `base_n + plan.arrival_count()`; slots `base_n..capacity` start
    /// as not-yet-arrived ghosts.
    #[must_use]
    pub fn new(plan: FaultPlan, base_n: usize) -> Self {
        let capacity = base_n + plan.arrival_count();
        let mut alive = vec![true; capacity];
        alive[base_n..].fill(false);
        Self {
            plan,
            applied: 0,
            alive,
            alive_count: base_n,
            next_arrival: base_n,
            base_n,
        }
    }

    /// The fixed draw-space size every faulted engine runs at:
    /// `base_n + arrivals`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.alive.len()
    }

    /// The initially-present population size.
    #[must_use]
    pub fn base_n(&self) -> usize {
        self.base_n
    }

    /// The number of currently alive (present) nodes.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Whether node `u` is currently alive: arrived and not crashed.
    #[must_use]
    pub fn is_alive(&self, u: usize) -> bool {
        self.alive[u]
    }

    /// The plan driving this state.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// How many plan events have been applied.
    #[must_use]
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// The scheduled time of the next unapplied event, if any.
    #[must_use]
    pub fn next_at(&self) -> Option<u64> {
        self.plan.events.get(self.applied).map(|&(t, _)| t)
    }

    /// Resolves the next unapplied event: draws its private randomness,
    /// updates the alive flags, and returns what the engine must do.
    /// `None` when the plan is exhausted.
    pub(crate) fn resolve_next(&mut self) -> Option<ResolvedFault> {
        let i = self.applied;
        let &(_, event) = self.plan.events.get(i)?;
        self.applied += 1;
        Some(match event {
            FaultEvent::CrashRandom => {
                if self.alive_count == 0 {
                    ResolvedFault::Noop
                } else {
                    let mut rng = self.plan.event_rng(i);
                    let k = rng.random_range(0..self.alive_count);
                    let x = self
                        .alive
                        .iter()
                        .enumerate()
                        .filter(|&(_, &a)| a)
                        .nth(k)
                        .map(|(u, _)| u)
                        .expect("k < alive_count");
                    self.alive[x] = false;
                    self.alive_count -= 1;
                    ResolvedFault::Crash(x)
                }
            }
            FaultEvent::Crash(u) => {
                let u = u as usize;
                if u < self.alive.len() && self.alive[u] {
                    self.alive[u] = false;
                    self.alive_count -= 1;
                    ResolvedFault::Crash(u)
                } else {
                    ResolvedFault::Noop
                }
            }
            FaultEvent::Arrive => {
                let x = self.next_arrival;
                self.next_arrival += 1;
                debug_assert!(!self.alive[x], "arrival slot already occupied");
                self.alive[x] = true;
                self.alive_count += 1;
                ResolvedFault::Arrive(x)
            }
            FaultEvent::DeleteEdge(u, v) => {
                let (u, v) = (u as usize, v as usize);
                if u == v || u >= self.alive.len() || v >= self.alive.len() {
                    ResolvedFault::Noop
                } else {
                    ResolvedFault::DeleteEdge(u.min(v), u.max(v))
                }
            }
            FaultEvent::DeleteRandomActiveEdges(count) => ResolvedFault::DeleteRandomEdges {
                count: count as usize,
                rng: self.plan.event_rng(i),
            },
        })
    }

    /// Replays the whole plan without an engine and returns the final
    /// state — valid because alive-set evolution never depends on run
    /// state. Useful for sizing alive-aware stable predicates up
    /// front.
    #[must_use]
    pub fn project_final(&self) -> FaultState {
        let mut fs = self.clone();
        while fs.resolve_next().is_some() {}
        fs
    }
}

/// Samples `count` items from `items` without replacement (partial
/// Fisher–Yates). Callers pass the items in a canonical order so the
/// draw depends only on the configuration and the event RNG, not on
/// engine-internal iteration order.
pub(crate) fn sample_without_replacement<T>(
    rng: &mut SmallRng,
    mut items: Vec<T>,
    count: usize,
) -> Vec<T> {
    let k = count.min(items.len());
    for i in 0..k {
        let j = rng.random_range(i..items.len());
        items.swap(i, j);
    }
    items.truncate(k);
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_sorts_and_counts() {
        let plan = FaultPlan::new(7)
            .at(50, FaultEvent::Arrive)
            .at(10, FaultEvent::CrashRandom)
            .at(50, FaultEvent::Crash(3))
            .at(0, FaultEvent::DeleteEdge(1, 2));
        let times: Vec<u64> = plan.events().iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![0, 10, 50, 50]);
        // Equal times keep insertion order: Arrive was added before Crash(3).
        assert_eq!(plan.events()[2].1, FaultEvent::Arrive);
        assert_eq!(plan.events()[3].1, FaultEvent::Crash(3));
        assert_eq!(plan.arrival_count(), 1);
        assert!(!plan.is_empty());
    }

    #[test]
    fn alive_evolution_is_plan_determined() {
        let plan = FaultPlan::new(99)
            .at(5, FaultEvent::CrashRandom)
            .at(9, FaultEvent::Arrive)
            .at(12, FaultEvent::CrashRandom);
        let mut a = FaultState::new(plan.clone(), 10);
        let mut b = FaultState::new(plan, 10);
        assert_eq!(a.capacity(), 11);
        assert_eq!(a.alive_count(), 10);
        assert!(!a.is_alive(10), "arrival slot starts as a ghost");
        loop {
            let (ra, rb) = (a.resolve_next(), b.resolve_next());
            match (&ra, &rb) {
                (Some(ResolvedFault::Crash(x)), Some(ResolvedFault::Crash(y))) => {
                    assert_eq!(x, y, "CrashRandom must pick identically")
                }
                (Some(ResolvedFault::Arrive(x)), Some(ResolvedFault::Arrive(y))) => {
                    assert_eq!((x, y), (&10, &10))
                }
                (None, None) => break,
                other => panic!("mismatched resolutions: {other:?}"),
            }
        }
        assert_eq!(a.alive_count(), 9); // 10 − 2 crashes + 1 arrival
        assert_eq!(a.alive_count(), b.alive_count());
    }

    #[test]
    fn project_final_matches_replay() {
        let plan = FaultPlan::new(4)
            .at(1, FaultEvent::CrashRandom)
            .at(2, FaultEvent::Crash(2))
            .at(3, FaultEvent::Arrive)
            .at(4, FaultEvent::Arrive);
        let fresh = FaultState::new(plan, 6);
        let projected = fresh.project_final();
        let mut replayed = fresh.clone();
        while replayed.resolve_next().is_some() {}
        assert_eq!(projected.alive_count(), replayed.alive_count());
        assert_eq!(projected.capacity(), 8);
        for u in 0..projected.capacity() {
            assert_eq!(projected.is_alive(u), replayed.is_alive(u), "node {u}");
        }
        // Projection does not advance the original.
        assert_eq!(fresh.applied(), 0);
    }

    #[test]
    fn dead_crash_targets_are_noops() {
        let plan = FaultPlan::new(1)
            .at(0, FaultEvent::Crash(1))
            .at(1, FaultEvent::Crash(1))
            .at(2, FaultEvent::Crash(99));
        let mut fs = FaultState::new(plan, 4);
        assert!(matches!(fs.resolve_next(), Some(ResolvedFault::Crash(1))));
        assert!(matches!(fs.resolve_next(), Some(ResolvedFault::Noop)));
        assert!(matches!(fs.resolve_next(), Some(ResolvedFault::Noop)));
        assert_eq!(fs.alive_count(), 3);
        assert_eq!(fs.next_at(), None);
    }

    #[test]
    fn sampling_without_replacement_is_a_subset() {
        let mut rng = SmallRng::seed_from_u64(5);
        let items: Vec<u32> = (0..20).collect();
        let got = sample_without_replacement(&mut rng, items.clone(), 7);
        assert_eq!(got.len(), 7);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7, "no duplicates");
        assert!(got.iter().all(|x| items.contains(x)));
        // Asking for more than available returns everything.
        let all = sample_without_replacement(&mut rng, vec![1, 2, 3], 10);
        assert_eq!(all.len(), 3);
    }
}
