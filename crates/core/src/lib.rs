//! The network-constructor model of Michail & Spirakis (PODC 2014).
//!
//! A *network constructor* (NET) is a distributed protocol
//! `(Q, q₀, Q_out, δ)` executed by a population of `n` anonymous,
//! identical, finite-state processes. An adversary scheduler repeatedly
//! selects an unordered pair of processes; the pair interacts, and the
//! transition function
//!
//! ```text
//! δ : Q × Q × {0, 1} → Q × Q × {0, 1}
//! ```
//!
//! rewrites the two node states and the binary state of the edge joining
//! them. All edges start inactive; the protocol's *output* is the subgraph
//! induced by the active edges (restricted to nodes in output states), and
//! an execution *stabilizes* when the output graph stops changing forever.
//!
//! This crate provides the executable model:
//!
//! * [`StateId`] and [`Link`] — node-state and edge-state value types;
//! * [`rules`] — declarative rule tables ([`ProtocolBuilder`],
//!   [`RuleProtocol`]) mirroring the paper's protocol listings, including
//!   the ½/½ randomized transitions of the `PREL` extension;
//! * [`Machine`] — the generic interaction interface, so composite-state
//!   constructions (Turing-machine simulations, supernodes) can share the
//!   engine with flat rule tables;
//! * [`Population`] — node states plus the active-edge set;
//! * [`scheduler`] — the uniform random scheduler used by all running-time
//!   analyses, plus fair deterministic adversaries for correctness testing;
//! * [`sim`] — the naive step loop with the paper-exact symmetry-breaking
//!   coin, convergence bookkeeping, and quiescence checks;
//! * [`compiled`] — [`EnumerableMachine`] (dense state indices) and
//!   [`CompiledTable`], the flat allocation-free lowering of a
//!   [`RuleProtocol`];
//! * [`event`] — [`EventSim`], the exact event-driven engine that skips
//!   ineffective interactions via geometric jumps while preserving every
//!   measured distribution of the naive loop;
//! * [`bucket`] — [`BucketSim`], the sparse state-bucketed event engine:
//!   the same distribution in O(n + |Q|²) memory, for populations the
//!   dense pair set cannot touch (n ≥ 100 000);
//! * [`round`] — [`RoundSim`], the exact event-driven ShuffledRounds
//!   engine: hypergeometric within-round skips plus lazily-resolved
//!   skipped-pair identities, for experiments that measure parallel
//!   time in rounds;
//! * [`round_bucket`] — [`RoundBucketSim`], the sparse exact
//!   ShuffledRounds engine: the same round law in O(n + |Q|²) memory via
//!   counted cohorts of scheduled identities, for round-denominated
//!   sweeps at n ≥ 100 000;
//! * [`select`] — [`Engine::auto`] / [`Engine::auto_for`], which pick an
//!   engine for a scheduler family by a memory budget and run predicates
//!   over a representation-neutral [`EngineView`];
//! * [`fault`] — [`FaultPlan`] / [`FaultState`] / [`ChurnPlan`], the
//!   deterministic seed-derived fault/churn layer (crashes, arrivals,
//!   edge deletions, sustained Poisson churn, crash notifications)
//!   shared by all five engines with exact candidate reclassification;
//! * [`fault::adversary`] — [`AdversaryPlan`] / [`AdversaryPolicy`] /
//!   [`Cadence`], the configuration-adaptive worst-case layer: targeted
//!   damage decided at scheduled draws against the live configuration,
//!   applied through the same resolved-fault path on every engine.
//!
//! # Choosing an engine
//!
//! [`Simulation`] executes every scheduler draw — use it for adversarial
//! (non-uniform) schedulers, for machines with huge state spaces, or when
//! the per-draw trace itself is the object of study. [`EventSim`] is the
//! default for measurement: identical output distribution under the
//! uniform scheduler at a cost proportional to *effective* interactions
//! (10–1000× fewer for the paper's constructors at interesting sizes).
//! [`BucketSim`] trades a per-candidate rejection check for O(n + |Q|²)
//! memory — the frontier engine beyond n ≈ 20 000. [`RoundSim`] is the
//! same idea for the [`ShuffledRounds`] box scheduler, where parallel
//! time is measured in rounds, and [`RoundBucketSim`] is its sparse
//! counterpart for round-denominated runs at frontier sizes.
//! [`Engine::auto`] makes the dense/sparse
//! call for you; [`Engine::auto_for`] adds the scheduler family. The
//! top-level `docs/engines.md` consolidates the exactness arguments and
//! the measured decision table.
//!
//! # Example: the spanning-star code from the introduction
//!
//! ```
//! use netcon_core::{Link, ProtocolBuilder, Simulation};
//! use netcon_graph::properties::is_spanning_star;
//!
//! let mut b = ProtocolBuilder::new("intro-star");
//! let black = b.state("black");
//! let red = b.state("red");
//! // Blacks merge, reds repel, black attracts red.
//! b.rule((black, black, Link::Off), (black, red, Link::On));
//! b.rule((red, red, Link::On), (red, red, Link::Off));
//! b.rule((black, red, Link::Off), (black, red, Link::On));
//! let protocol = b.build()?;
//!
//! let mut sim = Simulation::new(protocol, 20, 42);
//! let outcome = sim.run_until(|p| is_spanning_star(p.edges()), 10_000_000);
//! assert!(outcome.stabilized());
//! # Ok::<(), netcon_core::ProtocolError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod engine;
mod machine;
mod population;
mod state;

pub mod bucket;
pub mod compiled;
pub mod event;
pub mod fault;
pub mod round;
pub mod round_bucket;
pub mod rules;
pub mod scheduler;
pub mod seeds;
pub mod select;
pub mod sim;
pub mod testing;
pub mod walk;

pub use bucket::{BucketSim, SparsePop};
pub use compiled::{CompiledTable, EffectTable, EnumerableMachine};
pub use engine::{
    geometric_skip, hypergeometric_count, hypergeometric_count_large, hypergeometric_skip,
    unit_open01, GeoSkipCache, PairSet,
};
pub use event::{EventSim, EventStep};
pub use fault::adversary::{AdversaryPlan, AdversaryPolicy, Cadence};
pub use fault::{ChurnPlan, FaultEvent, FaultPlan, FaultState};
pub use round::RoundSim;
pub use round_bucket::RoundBucketSim;
pub use select::{Engine, EngineView, SchedulerKind};
pub use machine::Machine;
pub use population::Population;
pub use rules::{ProtocolBuilder, ProtocolError, Rule, RuleProtocol, RuleRhs};
pub use scheduler::{RoundRobin, Scheduler, ShuffledRounds, Uniform};
pub use sim::{RunOutcome, Simulation, StepResult};
pub use state::{Link, StateId};
