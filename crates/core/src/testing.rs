//! Test support: convergence assertions shared by protocol test suites.
//!
//! The paper's notion of stabilization is *forever after*: the output graph
//! must never change again. Tests therefore combine a stable predicate
//! (derived from each protocol's correctness proof) with a follow-up run
//! that asserts the output really stayed fixed.

use crate::{
    EnumerableMachine, EventSim, Machine, Population, RunOutcome, Scheduler, Simulation, Uniform,
};

/// A generous-but-finite step budget for convergence tests at population
/// size `n`.
///
/// The slowest constructor exercised by the test suites is
/// Simple-Global-Line at O(n⁵) expected interactions; `1000·n⁴` clears the
/// observed convergence times at the suite's population sizes (n ≤ 32) by
/// two to three orders of magnitude while still failing fast — minutes, not
/// forever — when a protocol genuinely diverges. Tests should pass this
/// instead of `u64::MAX` so a regression cannot hang `cargo test`.
///
/// The `NETCON_TEST_STEP_BUDGET` environment variable overrides the
/// computed value (useful for bisecting a slow protocol or tightening CI).
#[must_use]
pub fn step_budget(n: usize) -> u64 {
    if let Some(v) = std::env::var("NETCON_TEST_STEP_BUDGET")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        return v;
    }
    let n = n as u64;
    1_000u64
        .saturating_mul(n)
        .saturating_mul(n)
        .saturating_mul(n)
        .saturating_mul(n)
        .max(10_000_000)
}

/// Runs `machine` on `n` fresh nodes until `stable` holds, then continues
/// for `extra` steps asserting the active-edge set no longer changes.
/// Returns the simulation at the end for further inspection.
///
/// # Panics
///
/// Panics (with context) if the run exhausts `max_steps` before `stable`
/// holds, or if the output graph changes during the follow-up phase.
pub fn assert_stabilizes<M: Machine>(
    machine: M,
    n: usize,
    seed: u64,
    stable: impl FnMut(&Population<M::State>) -> bool,
    max_steps: u64,
    extra: u64,
) -> Simulation<M, Uniform> {
    let sim = Simulation::new(machine, n, seed);
    assert_stabilizes_sim(sim, stable, max_steps, extra)
}

/// Runs `machine` on `n` fresh nodes until `stable` holds, then continues
/// for `extra` steps asserting the active-edge set no longer changes —
/// on the event-driven engine. Drop-in for [`assert_stabilizes`] when the
/// machine is enumerable; orders of magnitude faster for the slow
/// constructors.
///
/// # Panics
///
/// Panics (with context) if the run exhausts `max_steps` before `stable`
/// holds, or if the output graph changes during the follow-up phase.
pub fn assert_stabilizes_event<M: EnumerableMachine>(
    machine: M,
    n: usize,
    seed: u64,
    stable: impl FnMut(&Population<M::State>) -> bool,
    max_steps: u64,
    extra: u64,
) -> EventSim<M> {
    let sim = EventSim::new(machine, n, seed);
    assert_stabilizes_event_sim(sim, stable, max_steps, extra)
}

/// Like [`assert_stabilizes_event`] but starting from a prepared
/// event-driven simulation (custom initial configuration).
///
/// # Panics
///
/// Panics (with context) if the run exhausts `max_steps` before `stable`
/// holds, or if the output graph changes during the follow-up phase.
pub fn assert_stabilizes_event_sim<M: Machine>(
    mut sim: EventSim<M>,
    stable: impl FnMut(&Population<M::State>) -> bool,
    max_steps: u64,
    extra: u64,
) -> EventSim<M> {
    let name = sim.machine().name().to_owned();
    let n = sim.population().n();
    let outcome = sim.run_until(stable, max_steps);
    assert!(
        matches!(outcome, RunOutcome::Stabilized { .. }),
        "{name} on n={n} did not stabilize within {max_steps} steps (event engine)"
    );
    let frozen = sim.population().edges().clone();
    let target = sim.steps().saturating_add(extra);
    sim.run_to(target);
    assert_eq!(
        *sim.population().edges(),
        frozen,
        "{name} on n={n}: output graph changed after the stable predicate held — \
         the predicate does not certify stability (event engine)"
    );
    sim
}

/// Like [`assert_stabilizes`] but starting from a prepared simulation
/// (custom initial configuration or scheduler).
///
/// # Panics
///
/// Panics (with context) if the run exhausts `max_steps` before `stable`
/// holds, or if the output graph changes during the follow-up phase.
pub fn assert_stabilizes_sim<M: Machine, S: Scheduler>(
    mut sim: Simulation<M, S>,
    stable: impl FnMut(&Population<M::State>) -> bool,
    max_steps: u64,
    extra: u64,
) -> Simulation<M, S> {
    let name = sim.machine().name().to_owned();
    let n = sim.population().n();
    let outcome = sim.run_until(stable, max_steps);
    assert!(
        matches!(outcome, RunOutcome::Stabilized { .. }),
        "{name} on n={n} did not stabilize within {max_steps} steps"
    );
    let frozen = sim.population().edges().clone();
    sim.run_for(extra);
    assert_eq!(
        *sim.population().edges(),
        frozen,
        "{name} on n={n}: output graph changed after the stable predicate held — \
         the predicate does not certify stability"
    );
    sim
}
