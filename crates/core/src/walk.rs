//! Exact absorption laws for batched endgame walk segments.
//!
//! When a Simple-Global-Line-style execution collapses to a handful of
//! leader walkers, each walker performs an unbiased random walk on the
//! interior of its own path component, absorbed at either endpoint. The
//! per-step engines pay Θ(ℓ²) candidate draws per walk segment; this
//! module provides the closed-form laws that let
//! [`BucketSim`](crate::BucketSim) sample whole segments at once:
//!
//! * exit side: the classical gambler's-ruin probability `(L−z)/L`,
//!   sampled from an exact integer draw;
//! * absorption time conditioned on the exit side: the spectral CDF of
//!   the finite path chain (eigenvalues `cos(πj/L)`), inverted by
//!   bisection, with an exact dynamic-programming evaluator for small
//!   times;
//! * the alive-position propagator and its future-conditioned variant
//!   (for walkers that lose a race and must resume mid-flight);
//! * exact large-parameter discrete samplers (gamma / beta / binomial /
//!   Poisson / negative-binomial totals) used to embed multi-walker
//!   races in continuous time and to reconstruct the rejected-draw gaps
//!   between effective steps.
//!
//! Every sampler here is exact up to `f64` rounding — the same epistemic
//! status as the engines' existing `geometric_skip` /
//! `hypergeometric_skip` inversions. Spectral sums are truncated only
//! where the dropped tail is below `e⁻⁴⁵` relative, far under `f64`
//! resolution.
//!
//! Model: positions `0..=L` on a path, absorbing barriers at `0` and
//! `L`, walker starts at interior `z`, each step moves `±1` with
//! probability ½.

use rand::rngs::SmallRng;
use rand::{Rng, RngExt};

use crate::engine::unit_open01;

/// Absorption times are capped at `16·L² + 64` steps. The survival mass
/// beyond the cap is below `2⁻⁵³` of the exit probability, i.e. smaller
/// than the resolution of the uniform used to invert the CDF.
#[must_use]
pub fn time_cap(len: usize) -> u64 {
    16 * (len as u64) * (len as u64) + 64
}

/// Exact exit-side sample: `true` means the walker exits at `0`, with
/// probability `(L−z)/L` (gambler's ruin, an exact rational sampled from
/// an integer draw — no floating point involved).
pub fn sample_exit0(rng: &mut SmallRng, z: usize, len: usize) -> bool {
    debug_assert!(z >= 1 && z < len);
    (rng.random_range(0..len as u64) as usize) < len - z
}

/// `G_E(t) = P(T ≤ t, exit = E)` for a walker started at `z` on `0..=L`.
///
/// Uses an exact windowed DP for `t ≤ 1024` and the spectral form
/// `G₀(t) = (L−z)/L − (1/L)·Σⱼ sin(πjz/L)·sin(πj/L)·λⱼᵗ/(1−λⱼ)`
/// (and its mirrored variant for exit `L`) beyond, truncated where
/// `|λⱼ|ᵗ < e⁻⁴⁵`.
#[must_use]
pub fn exit_cdf(z: usize, len: usize, exit0: bool, t: u64) -> f64 {
    debug_assert!(z >= 1 && z < len);
    if t <= DP_TIME_LIMIT {
        return dp_exit_cdf(z, len, exit0, t);
    }
    let lf = len as f64;
    let limit = if exit0 {
        (len - z) as f64 / lf
    } else {
        z as f64 / lf
    };
    let mut tail = 0.0;
    spectral_terms(len, t, |j, lam_pow_t| {
        let jf = j as f64;
        let s_end = (std::f64::consts::PI * jf / lf).sin();
        // sin(πj(L−1)/L) = (−1)^{j+1}·sin(πj/L): hitting the far end
        // flips the sign of odd/even modes relative to the near end.
        let s_hit = if exit0 || j % 2 == 1 { s_end } else { -s_end };
        let lam = (std::f64::consts::PI * jf / lf).cos();
        tail += (std::f64::consts::PI * jf * z as f64 / lf).sin() * s_hit * lam_pow_t
            / (1.0 - lam);
    });
    (limit - tail / lf).clamp(0.0, 1.0)
}

/// `P(T > t)`: survival of the walker, `1 − G₀(t) − G_L(t)`.
#[must_use]
pub fn survival(z: usize, len: usize, t: u64) -> f64 {
    (1.0 - exit_cdf(z, len, true, t) - exit_cdf(z, len, false, t)).max(0.0)
}

/// Samples the walker's absorption jointly — `(exit0, T)`.
///
/// Short paths (`L ≤ 64`) are simulated directly: the expected `O(L²)`
/// coin flips undercut the spectral bisection's constant, and a direct
/// simulation is exact by construction. Longer paths use the exact
/// gambler's-ruin side draw ([`sample_exit0`]) followed by the
/// conditional CDF inversion ([`sample_time_given_exit`]); the joint law
/// is identical either way.
pub fn sample_absorption(rng: &mut SmallRng, z: usize, len: usize) -> (bool, u64) {
    debug_assert!(z >= 1 && z < len);
    if len <= 64 {
        let mut x = z;
        let mut t = 0u64;
        loop {
            x = if rng.random_bool(0.5) { x - 1 } else { x + 1 };
            t += 1;
            if x == 0 {
                return (true, t);
            }
            if x == len {
                return (false, t);
            }
        }
    }
    let exit0 = sample_exit0(rng, z, len);
    (exit0, sample_time_given_exit(rng, z, len, exit0))
}

/// Samples the absorption time conditioned on the exit side by CDF
/// bisection: the minimal `t` with `G_E(t) ≥ u·G_E(cap)`. The returned
/// time has the correct parity (`t ≡ z (mod 2)` for exit `0`,
/// `t ≡ L−z (mod 2)` for exit `L`) because the CDF is flat off-parity.
pub fn sample_time_given_exit(rng: &mut SmallRng, z: usize, len: usize, exit0: bool) -> u64 {
    let cap = time_cap(len);
    let total = exit_cdf(z, len, exit0, cap);
    let target = unit_open01(rng.next_u64()) * total;
    let (mut lo, mut hi) = (0u64, cap); // invariant: G(lo) < target ≤ G(hi)
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if exit_cdf(z, len, exit0, mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Alive-position weights after `t` steps: `w[x] = Pᵗ(z, x)` for
/// `x ∈ 1..L` (zero at the barriers and off-parity). The weights sum to
/// the survival `S(t)`.
#[must_use]
pub fn alive_weights(z: usize, len: usize, t: u64) -> Vec<f64> {
    propagator_row(z, len, t)
}

/// Position weights for a walker known to be alive after `j` steps *and*
/// committed to absorb at side `exit0` after `rem` further steps:
/// `w[x] = Pʲ(z, x) · f_E(x, rem)`.
#[must_use]
pub fn bridge_weights_with_future(
    z: usize,
    len: usize,
    j: u64,
    rem: u64,
    exit0: bool,
) -> Vec<f64> {
    let mut w = propagator_row(z, len, j);
    for (x, wx) in w.iter_mut().enumerate() {
        if *wx > 0.0 {
            *wx *= hit_pmf(x, len, exit0, rem);
        }
    }
    w
}

/// Samples an index proportional to non-negative `weights` (linear CDF
/// inversion on a single uniform). Returns the last positive-weight
/// index if rounding pushes the target past the total.
pub fn sample_weighted(rng: &mut SmallRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weighted sample over empty support");
    let target = unit_open01(rng.next_u64()) * total;
    let mut acc = 0.0;
    let mut last = 0;
    for (i, &w) in weights.iter().enumerate() {
        if w > 0.0 {
            last = i;
            acc += w;
            if acc >= target {
                return i;
            }
        }
    }
    last
}

/// `f_E(x, r) = P(absorbed at side E at time exactly r | start x)`.
///
/// `f₀(x, r) = ½·P^{r−1}(x, 1)`; boundary cases: from the exit itself the
/// walker is already absorbed (`r == 0`), from anywhere else `r == 0` is
/// impossible.
#[must_use]
pub fn hit_pmf(x: usize, len: usize, exit0: bool, r: u64) -> f64 {
    let exit_at = if exit0 { 0 } else { len };
    if x == exit_at {
        return if r == 0 { 1.0 } else { 0.0 };
    }
    if x == 0 || x == len || r == 0 {
        return 0.0;
    }
    let pre = if exit0 { 1 } else { len - 1 };
    0.5 * propagator(x, len, r - 1, pre)
}

/// One step of the Doob h-transformed walk: the walker at `x` with a
/// commitment to absorb at side `exit0` in exactly `rem` more steps
/// moves to `x−1` with probability `f_E(x−1, rem−1) / (f_E(x−1, rem−1) +
/// f_E(x+1, rem−1))`. Consumes one uniform; returns the new position.
pub fn h_step(rng: &mut SmallRng, x: usize, len: usize, exit0: bool, rem: u64) -> usize {
    debug_assert!(x >= 1 && x < len && rem >= 1);
    let wl = hit_weight_after(x - 1, len, exit0, rem - 1);
    let wr = hit_weight_after(x + 1, len, exit0, rem - 1);
    debug_assert!(wl + wr > 0.0, "h_step with impossible commitment");
    if unit_open01(rng.next_u64()) * (wl + wr) <= wl {
        x - 1
    } else {
        x + 1
    }
}

fn hit_weight_after(x: usize, len: usize, exit0: bool, rem: u64) -> f64 {
    // Stepping onto the wrong barrier has weight 0; onto the committed
    // exit, weight 1 iff the commitment is exactly spent.
    hit_pmf(x, len, exit0, rem)
}

/// `Pᵗ(z, x)` for a single target position.
#[must_use]
pub fn propagator(z: usize, len: usize, t: u64, x: usize) -> f64 {
    if x == 0 || x == len {
        return 0.0;
    }
    if t <= DP_TIME_LIMIT {
        let row = dp_alive_row(z, len, t);
        return row[x];
    }
    let lf = len as f64;
    let mut sum = 0.0;
    spectral_terms(len, t, |j, lam_pow_t| {
        let jf = j as f64;
        sum += (std::f64::consts::PI * jf * z as f64 / lf).sin()
            * (std::f64::consts::PI * jf * x as f64 / lf).sin()
            * lam_pow_t;
    });
    (2.0 / lf * sum).max(0.0)
}

fn propagator_row(z: usize, len: usize, t: u64) -> Vec<f64> {
    if t <= DP_TIME_LIMIT {
        return dp_alive_row(z, len, t);
    }
    let lf = len as f64;
    let mut row = vec![0.0; len + 1];
    spectral_terms(len, t, |j, lam_pow_t| {
        let jf = j as f64;
        let a = (std::f64::consts::PI * jf * z as f64 / lf).sin() * lam_pow_t;
        for (x, rx) in row.iter_mut().enumerate().take(len).skip(1) {
            *rx += a * (std::f64::consts::PI * jf * x as f64 / lf).sin();
        }
    });
    let parity = (z as u64 + t) % 2;
    for (x, rx) in row.iter_mut().enumerate() {
        if x as u64 % 2 != parity || x == 0 || x == len {
            *rx = 0.0;
        } else {
            *rx = (*rx * 2.0 / lf).max(0.0);
        }
    }
    row
}

const DP_TIME_LIMIT: u64 = 1024;

/// Visits every spectral mode whose weight `|λⱼ|ᵗ` exceeds `e⁻⁴⁵`,
/// passing `(j, λⱼᵗ)`. Modes come in `(j, L−j)` pairs with opposite-sign
/// eigenvalues; both wings are visited.
fn spectral_terms(len: usize, t: u64, mut f: impl FnMut(usize, f64)) {
    let lf = len as f64;
    // |cos(πj/L)|^t < e⁻⁴⁵ once (πj/L)²·t/2 > 45 ⟺ j > (L/π)·√(90/t).
    let cut = (lf / std::f64::consts::PI * (90.0 / t as f64).sqrt()).ceil() as usize + 4;
    let tf = t as f64;
    let visit = |j: usize, f: &mut dyn FnMut(usize, f64)| {
        let lam = (std::f64::consts::PI * j as f64 / lf).cos();
        let lam_pow_t = if lam == 0.0 {
            0.0
        } else {
            let p = tf * lam.abs().ln();
            if p < -745.0 {
                0.0
            } else {
                let mag = p.exp();
                if lam < 0.0 && t % 2 == 1 { -mag } else { mag }
            }
        };
        if lam_pow_t != 0.0 {
            f(j, lam_pow_t);
        }
    };
    if 2 * cut >= len - 1 {
        for j in 1..len {
            visit(j, &mut f);
        }
    } else {
        for j in 1..=cut {
            visit(j, &mut f);
        }
        for j in (len - cut)..len {
            visit(j, &mut f);
        }
    }
}

/// Windowed forward DP: exact (rational-arithmetic-free but exactly
/// representable dyadic) evolution of the chain for small `t`.
fn dp_exit_cdf(z: usize, len: usize, exit0: bool, t: u64) -> f64 {
    let (row, g0, gl) = dp_evolve(z, len, t);
    drop(row);
    if exit0 { g0 } else { gl }
}

fn dp_alive_row(z: usize, len: usize, t: u64) -> Vec<f64> {
    dp_evolve(z, len, t).0
}

fn dp_evolve(z: usize, len: usize, t: u64) -> (Vec<f64>, f64, f64) {
    let t = t as usize;
    let lo = z.saturating_sub(t);
    let hi = (z + t).min(len);
    let width = hi - lo + 1;
    let mut cur = vec![0.0f64; width];
    let mut next = vec![0.0f64; width];
    cur[z - lo] = 1.0;
    let mut g0 = 0.0;
    let mut gl = 0.0;
    for _ in 0..t {
        for v in next.iter_mut() {
            *v = 0.0;
        }
        for i in 0..width {
            let p = cur[i];
            if p == 0.0 {
                continue;
            }
            let x = lo + i;
            if x == 0 || x == len {
                continue;
            }
            let half = 0.5 * p;
            if x - 1 == 0 && lo == 0 {
                g0 += half;
            } else if x > lo {
                next[i - 1] += half;
            }
            if x + 1 == len && hi == len {
                gl += half;
            } else if x < hi {
                next[i + 1] += half;
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    let mut row = vec![0.0; len + 1];
    for (i, &p) in cur.iter().enumerate() {
        let x = lo + i;
        if x != 0 && x != len {
            row[x] = p;
        }
    }
    (row, g0, gl)
}

// ---------------------------------------------------------------------
// Large-parameter discrete samplers.
// ---------------------------------------------------------------------

/// A standard normal via the polar (Marsaglia) method. Consumes a
/// variable, seed-determined number of uniforms.
pub fn standard_normal(rng: &mut SmallRng) -> f64 {
    loop {
        let v1 = 2.0 * unit_open01(rng.next_u64()) - 1.0;
        let v2 = 2.0 * unit_open01(rng.next_u64()) - 1.0;
        let s = v1 * v1 + v2 * v2;
        if s > 0.0 && s < 1.0 {
            return v1 * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Gamma(shape, 1) for `shape ≥ 1` via Marsaglia–Tsang squeeze-rejection
/// (exact up to `f64` rounding; valid for arbitrarily large shapes).
pub fn sample_gamma(rng: &mut SmallRng, shape: f64) -> f64 {
    debug_assert!(shape >= 1.0);
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u = unit_open01(rng.next_u64());
        let x2 = x * x;
        if u < 1.0 - 0.0331 * x2 * x2 {
            return d * v3;
        }
        if u.ln() < 0.5 * x2 + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

/// Beta(a, b) for `a, b ≥ 1` via the two-gamma construction.
pub fn sample_beta(rng: &mut SmallRng, a: f64, b: f64) -> f64 {
    let x = sample_gamma(rng, a);
    let y = sample_gamma(rng, b);
    x / (x + y)
}

/// Binomial(n, p), exact for arbitrarily large `n` via the recursive
/// beta-split (the median-order-statistic reduction): `O(log n)` gamma
/// draws, then a direct Bernoulli count on the small remainder.
pub fn sample_binomial(rng: &mut SmallRng, mut n: u64, mut p: f64) -> u64 {
    debug_assert!((0.0..=1.0).contains(&p));
    let mut acc = 0u64;
    while n > 64 {
        let m = n / 2 + 1;
        // The m-th smallest of n uniforms is Beta(m, n+1−m).
        let x = sample_beta(rng, m as f64, (n + 1 - m) as f64);
        if x <= p {
            acc += m;
            n -= m;
            p = (p - x) / (1.0 - x);
        } else {
            n = m - 1;
            p /= x;
        }
        p = p.clamp(0.0, 1.0);
    }
    for _ in 0..n {
        if unit_open01(rng.next_u64()) < p {
            acc += 1;
        }
    }
    acc
}

/// Poisson(λ), exact for arbitrarily large `λ` via the gamma-splitting
/// recursion (Ahrens–Dieter): `O(log λ)` gamma draws plus a small
/// product-of-uniforms remainder.
pub fn sample_poisson(rng: &mut SmallRng, mut lambda: f64) -> u128 {
    debug_assert!(lambda >= 0.0 && lambda.is_finite());
    let mut acc: u128 = 0;
    while lambda > 32.0 {
        let m = (lambda * 7.0 / 8.0).floor();
        let g = sample_gamma(rng, m);
        if g <= lambda {
            // m-th arrival of the unit Poisson process landed inside.
            acc += m as u128;
            lambda -= g;
        } else {
            // Count of arrivals strictly before time λ among the m−1
            // arrivals preceding g: uniform order statistics on [0, g].
            return acc + u128::from(sample_binomial(rng, m as u64 - 1, lambda / g));
        }
    }
    // Knuth product-of-uniforms for the small remainder.
    let limit = (-lambda).exp();
    let mut prod = unit_open01(rng.next_u64());
    while prod > limit {
        acc += 1;
        prod *= unit_open01(rng.next_u64());
    }
    acc
}

/// The total number of *rejected* draws interleaved among `n_eff`
/// successes of a Bernoulli(p) acceptance test: a negative binomial
/// `NB(n_eff, p)` sampled through its exact Gamma–Poisson mixture, so it
/// stays tractable when the mean `n_eff·(1−p)/p` overflows `u64`.
pub fn sample_gap_total(rng: &mut SmallRng, n_eff: u64, p: f64) -> u128 {
    debug_assert!(n_eff >= 1 && p > 0.0 && p <= 1.0);
    if p >= 1.0 {
        return 0;
    }
    let lambda = sample_gamma(rng, n_eff as f64) * ((1.0 - p) / p);
    sample_poisson(rng, lambda)
}

/// The continuous-time embedding of a multi-walker race: walker `i`
/// with absorption time `tᵢ` absorbs at `Γᵢ ~ Gamma(tᵢ, 1)` on its own
/// independent unit-rate clock, and the interleaving of clock events
/// reproduces the uniform-label discrete race exactly. Returns the
/// winner's index and, for every loser, its exact number of consumed
/// steps `jᵢ ~ Binomial(tᵢ − 1, Γ_win/Γᵢ)` (uniform order statistics of
/// its earlier arrivals).
pub fn race(rng: &mut SmallRng, times: &[u64]) -> (usize, Vec<u64>) {
    debug_assert!(times.len() >= 2);
    let gammas: Vec<f64> = times
        .iter()
        .map(|&t| {
            debug_assert!(t >= 1);
            sample_gamma(rng, t as f64)
        })
        .collect();
    let winner = gammas
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("gamma samples are finite"))
        .map(|(i, _)| i)
        .expect("non-empty race");
    let gw = gammas[winner];
    let steps = times
        .iter()
        .zip(&gammas)
        .enumerate()
        .map(|(i, (&t, &g))| {
            if i == winner {
                t
            } else {
                sample_binomial(rng, t - 1, (gw / g).clamp(0.0, 1.0))
            }
        })
        .collect();
    (winner, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn dp_and_spectral_exit_cdfs_agree() {
        for &(z, len) in &[(1usize, 5usize), (3, 7), (4, 9), (7, 16), (13, 40)] {
            for t in [1u64, 2, 3, 10, 50, 200, 900] {
                for exit0 in [true, false] {
                    let dp = dp_exit_cdf(z, len, exit0, t);
                    // Force the spectral branch by faking a large-t call
                    // shape: evaluate the closed form directly.
                    let limit = if exit0 {
                        (len - z) as f64 / len as f64
                    } else {
                        z as f64 / len as f64
                    };
                    let lf = len as f64;
                    let mut tail = 0.0;
                    for j in 1..len {
                        let jf = j as f64;
                        let lam = (std::f64::consts::PI * jf / lf).cos();
                        let s_end = (std::f64::consts::PI * jf / lf).sin();
                        let s_hit = if exit0 || j % 2 == 1 { s_end } else { -s_end };
                        tail += (std::f64::consts::PI * jf * z as f64 / lf).sin()
                            * s_hit
                            * lam.powi(t as i32)
                            / (1.0 - lam);
                    }
                    let spectral = limit - tail / lf;
                    assert!(
                        (dp - spectral).abs() < 1e-9,
                        "z={z} L={len} t={t} exit0={exit0}: dp={dp} spectral={spectral}"
                    );
                }
            }
        }
    }

    #[test]
    fn exit_cdf_limits_are_gamblers_ruin() {
        for &(z, len) in &[(2usize, 6usize), (5, 11), (1, 3)] {
            let cap = time_cap(len);
            let g0 = exit_cdf(z, len, true, cap);
            let gl = exit_cdf(z, len, false, cap);
            assert!((g0 - (len - z) as f64 / len as f64).abs() < 1e-9);
            assert!((gl - z as f64 / len as f64).abs() < 1e-9);
            assert!(survival(z, len, cap) < 1e-12);
        }
    }

    #[test]
    fn propagator_row_sums_to_survival() {
        for t in [4u64, 33, 211, 1500, 5000] {
            let (z, len) = (6usize, 15usize);
            let row = alive_weights(z, len, t);
            let sum: f64 = row.iter().sum();
            let s = survival(z, len, t);
            assert!(
                (sum - s).abs() < 1e-9,
                "t={t}: row sum {sum} vs survival {s}"
            );
            let parity = (z as u64 + t) % 2;
            for (x, &w) in row.iter().enumerate() {
                if x as u64 % 2 != parity {
                    assert_eq!(w, 0.0, "parity violation at x={x}, t={t}");
                }
            }
        }
    }

    #[test]
    fn sampled_times_match_the_conditional_cdf() {
        let (z, len) = (3usize, 8usize);
        let mut r = rng(0xA11CE);
        let trials = 4000;
        let mut times = Vec::with_capacity(trials);
        for _ in 0..trials {
            let t = sample_time_given_exit(&mut r, z, len, true);
            assert_eq!(t % 2, z as u64 % 2, "exit-0 parity");
            times.push(t);
        }
        let total = exit_cdf(z, len, true, time_cap(len));
        for probe in [3u64, 9, 21, 49, 121] {
            let model = exit_cdf(z, len, true, probe) / total;
            let seen = times.iter().filter(|&&t| t <= probe).count() as f64 / trials as f64;
            assert!(
                (model - seen).abs() < 0.03,
                "P(T ≤ {probe}): model {model} vs empirical {seen}"
            );
        }
    }

    #[test]
    fn hit_pmf_sums_to_exit_probability() {
        let (x, len) = (4usize, 9usize);
        let mut acc = 0.0;
        for r in 0..time_cap(len) {
            acc += hit_pmf(x, len, true, r);
            if r > 4000 {
                break;
            }
        }
        assert!((acc - (len - x) as f64 / len as f64).abs() < 1e-9);
    }

    #[test]
    fn h_step_respects_the_commitment() {
        // A walker at 1 with rem=1 committed to exit 0 must step left.
        let mut r = rng(7);
        for _ in 0..50 {
            assert_eq!(h_step(&mut r, 1, 6, true, 1), 0);
        }
        // Committed walks terminate exactly on schedule.
        for seed in 0..40u64 {
            let mut r = rng(seed);
            let (len, z) = (10usize, 4usize);
            let exit0 = sample_exit0(&mut r, z, len);
            let t = sample_time_given_exit(&mut r, z, len, exit0);
            let mut x = z;
            for rem in (1..=t).rev() {
                x = h_step(&mut r, x, len, exit0, rem);
                if rem > 1 {
                    assert!(x >= 1 && x < len, "absorbed early");
                }
            }
            assert_eq!(x, if exit0 { 0 } else { len });
        }
    }

    #[test]
    fn bridge_weights_have_support_consistent_with_future() {
        let (z, len) = (3usize, 9usize);
        let (j, rem) = (7u64, 12u64);
        let w = bridge_weights_with_future(z, len, j, rem, true);
        let total: f64 = w.iter().sum();
        assert!(total > 0.0);
        for (x, &wx) in w.iter().enumerate() {
            if wx > 0.0 {
                assert_eq!((x as u64 + j) % 2, z as u64 % 2);
                assert!(hit_pmf(x, len, true, rem) > 0.0);
            }
        }
    }

    #[test]
    fn binomial_matches_direct_counts_in_distribution() {
        let mut r = rng(99);
        let (n, p, trials) = (500u64, 0.3f64, 3000);
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for i in 0..trials {
            let x = sample_binomial(&mut r, n, p) as f64;
            let d = x - mean;
            mean += d / (i + 1) as f64;
            m2 += d * (x - mean);
        }
        let var = m2 / trials as f64;
        let (em, ev) = (n as f64 * p, n as f64 * p * (1.0 - p));
        assert!((mean - em).abs() < 4.0 * (ev / trials as f64).sqrt() + 0.5);
        assert!((var / ev - 1.0).abs() < 0.15, "var {var} vs {ev}");
        assert_eq!(sample_binomial(&mut r, 1000, 0.0), 0);
        assert_eq!(sample_binomial(&mut r, 1000, 1.0), 1000);
    }

    #[test]
    fn poisson_matches_its_moments() {
        let mut r = rng(123);
        for &lambda in &[3.0f64, 80.0, 5_000.0] {
            let trials = 2000;
            let mut mean = 0.0;
            let mut m2 = 0.0;
            for i in 0..trials {
                let x = sample_poisson(&mut r, lambda) as f64;
                let d = x - mean;
                mean += d / (i + 1) as f64;
                m2 += d * (x - mean);
            }
            let var = m2 / trials as f64;
            let se = (lambda / trials as f64).sqrt();
            assert!((mean - lambda).abs() < 5.0 * se + 0.5, "λ={lambda}: mean {mean}");
            assert!((var / lambda - 1.0).abs() < 0.2, "λ={lambda}: var {var}");
        }
    }

    #[test]
    fn gap_totals_match_the_negative_binomial_moments() {
        let mut r = rng(321);
        let (n_eff, p, trials) = (400u64, 0.25f64, 2000);
        let mut mean = 0.0;
        for _ in 0..trials {
            mean += sample_gap_total(&mut r, n_eff, p) as f64;
        }
        mean /= trials as f64;
        let em = n_eff as f64 * (1.0 - p) / p;
        let sd = (n_eff as f64 * (1.0 - p)).sqrt() / p;
        assert!((mean - em).abs() < 5.0 * sd / (trials as f64).sqrt());
        assert_eq!(sample_gap_total(&mut r, 10, 1.0), 0);
    }

    /// The gamma-embedded race must reproduce the uniform-label discrete
    /// race law: winner identity and loser progress compared against
    /// brute-force label-sequence simulation.
    #[test]
    fn race_matches_brute_force_label_race() {
        let times = [9u64, 14];
        let trials = 6000;
        let mut fast = (0usize, 0.0f64);
        let mut r = rng(2014);
        for _ in 0..trials {
            let (w, steps) = race(&mut r, &times);
            if w == 0 {
                fast.0 += 1;
                fast.1 += steps[1] as f64;
            }
            assert_eq!(steps[w], times[w]);
            let loser = 1 - w;
            assert!(steps[loser] < times[loser]);
        }
        let mut brute = (0usize, 0.0f64);
        let mut r = rng(4102);
        for _ in 0..trials {
            let mut c = [0u64; 2];
            loop {
                let who = usize::from(r.random_bool(0.5));
                c[who] += 1;
                if c[who] == times[who] {
                    if who == 0 {
                        brute.0 += 1;
                        brute.1 += c[1] as f64;
                    }
                    break;
                }
            }
        }
        let (pf, pb) = (
            fast.0 as f64 / trials as f64,
            brute.0 as f64 / trials as f64,
        );
        assert!((pf - pb).abs() < 0.035, "winner prob {pf} vs brute {pb}");
        let (jf, jb) = (fast.1 / fast.0 as f64, brute.1 / brute.0 as f64);
        assert!((jf - jb).abs() / jb < 0.08, "loser progress {jf} vs {jb}");
    }

    #[test]
    fn three_way_race_winner_distribution_matches_brute_force() {
        let times = [6u64, 8, 11];
        let trials = 6000;
        let mut fast = [0usize; 3];
        let mut r = rng(55);
        for _ in 0..trials {
            let (w, _) = race(&mut r, &times);
            fast[w] += 1;
        }
        let mut brute = [0usize; 3];
        let mut r = rng(66);
        for _ in 0..trials {
            let mut c = [0u64; 3];
            loop {
                let who = r.random_range(0..3u32) as usize;
                c[who] += 1;
                if c[who] == times[who] {
                    brute[who] += 1;
                    break;
                }
            }
        }
        for i in 0..3 {
            let (pf, pb) = (
                fast[i] as f64 / trials as f64,
                brute[i] as f64 / trials as f64,
            );
            assert!((pf - pb).abs() < 0.035, "walker {i}: {pf} vs {pb}");
        }
    }
}
