//! Configuration-**adaptive** adversaries: deterministic worst-case
//! damage scheduled at draw-indexed *decision draws*.
//!
//! The oblivious fault layer ([`FaultPlan`](crate::FaultPlan) events,
//! [`ChurnPlan`](crate::ChurnPlan) streams) resolves all of its
//! randomness from the plan alone — a random crash almost never hits
//! Global-Star's centre. A worst-case adversary always does. An
//! [`AdversaryPlan`] closes that gap: it schedules decision draws (a
//! [`Cadence`]), and at each one a pure [`AdversaryPolicy`] inspects
//! the live configuration — alive flags, node states, active
//! adjacency — and emits targeted damage, compiled on the spot into
//! the same `ResolvedFault`s the oblivious path uses. The draw space
//! never resizes, so every skip-law denominator stays fixed.
//!
//! # Why adaptivity preserves exactness
//!
//! A policy is a *pure, coin-free* function of the configuration at its
//! decision draw (plus the plan's own bookkeeping): ties break to the
//! lowest node id, and the damage compiles into the same resolved-fault
//! path as scheduled events, so the draw space and every skip-law
//! denominator stay fixed. Within one engine an adaptive run is
//! therefore exactly as deterministic as a scheduled one — stop/resume
//! at any [`FaultPlan::boundary_times`](super::FaultPlan::boundary_times)
//! boundary is coin-for-coin identical. *Across* engines the guarantee
//! is distributional: different skip laws spend different numbers of
//! coins reaching the same draw index, so the policy generally sees
//! different (equally lawful) configurations per engine and the damage
//! agrees in law rather than identity — the same contract as
//! [`FaultEvent::DeleteRandomActiveEdges`](super::FaultEvent::DeleteRandomActiveEdges).
//! Engines normalize their configuration into a `ConfigSnapshot`
//! (dense state indices plus sorted adjacency lists) precisely so the
//! policy never sees engine-internal iteration order.
//!
//! Within one decision draw, policies run in plan order against the
//! snapshot taken *at* the draw: each strike sees the snapshot minus
//! the nodes and edges already damaged this decision, but not any
//! crash-notification state changes (those land when the engine
//! applies the damage, identically everywhere).

use super::ResolvedFault;

/// When an adversary gets to act: the schedule of decision draws.
///
/// Decision times are a pure function of the decision index, so the
/// full schedule is enumerable up front ([`Cadence::times`]) — which
/// is what lets availability analyses window a run at its decision
/// boundaries without executing anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cadence {
    /// Decisions at `start, start + every, start + 2·every, …`,
    /// `count` in total. An `every` of 0 is treated as 1.
    Periodic {
        /// Draw index of the first decision.
        start: u64,
        /// Gap between consecutive decisions (clamped to ≥ 1).
        every: u64,
        /// Total number of decisions.
        count: u32,
    },
    /// Decisions at an explicit, sorted list of draw indices. Build
    /// via [`Cadence::burst`], which sorts.
    Burst(Vec<u64>),
    /// An accelerating schedule: the first gap is `first_gap`, each
    /// subsequent gap halves, floored at `min_gap` (clamped to ≥ 1) —
    /// an adversary that probes, then hammers.
    Ramp {
        /// Draw index of the first decision.
        start: u64,
        /// Gap after the first decision.
        first_gap: u64,
        /// Smallest gap the halving is floored at (clamped to ≥ 1).
        min_gap: u64,
        /// Total number of decisions.
        count: u32,
    },
}

impl Cadence {
    /// A [`Cadence::Burst`] from an arbitrarily-ordered time list
    /// (sorted here, so the schedule is always monotone).
    #[must_use]
    pub fn burst(mut times: Vec<u64>) -> Self {
        times.sort_unstable();
        Self::Burst(times)
    }

    /// The draw index of decision `k`, or `None` past the schedule.
    /// Pure in `k` — the basis of the decision-draw determinism
    /// argument (see the [module docs](self)).
    #[must_use]
    pub fn decision_time(&self, k: u32) -> Option<u64> {
        match self {
            Self::Periodic { start, every, count } => (k < *count)
                .then(|| start.saturating_add((*every).max(1).saturating_mul(u64::from(k)))),
            Self::Burst(times) => times.get(k as usize).copied(),
            Self::Ramp {
                start,
                first_gap,
                min_gap,
                count,
            } => {
                if k >= *count {
                    return None;
                }
                let floor = (*min_gap).max(1);
                let mut t = *start;
                let mut gap = (*first_gap).max(floor);
                for _ in 0..k {
                    t = t.saturating_add(gap);
                    gap = (gap / 2).max(floor);
                }
                Some(t)
            }
        }
    }

    /// The total number of scheduled decisions.
    #[must_use]
    pub fn count(&self) -> u32 {
        match self {
            Self::Periodic { count, .. } | Self::Ramp { count, .. } => *count,
            Self::Burst(times) => u32::try_from(times.len()).unwrap_or(u32::MAX),
        }
    }

    /// Every scheduled decision time, in order.
    #[must_use]
    pub fn times(&self) -> Vec<u64> {
        (0..self.count()).filter_map(|k| self.decision_time(k)).collect()
    }
}

/// What an adversary does at a decision draw: a pure function of the
/// normalized configuration. All targeting is deterministic — ties
/// break toward the lowest node id (or lexicographically smallest
/// edge), so the same configuration always yields the same damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryPolicy {
    /// Crash the alive node with the most active edges (lowest id on
    /// ties) — always finds Global-Star's centre, where
    /// `CrashRandom` almost never does.
    CrashMaxDegree,
    /// Crash the lowest-id alive node whose dense state index is `q`
    /// (e.g. the unique leader); no-op if none exists.
    CrashState(usize),
    /// Delete the bridge of the alive active graph whose removal
    /// splits off the largest minority side (smallest edge on ties);
    /// no-op if the graph has no bridge.
    CutBridge,
    /// Delete *every* active edge of the lowest-id alive node whose
    /// dense state index is `q` — severing a line protocol exactly at
    /// its walking leader; no-op if no such node exists.
    CutAtWalker(usize),
}

/// A deterministic, configuration-adaptive damage schedule: a
/// [`Cadence`] of decision draws, an ordered list of
/// [`AdversaryPolicy`] strikes per decision, and optional global
/// limits (a total damage `budget`, a `min_alive` crash floor).
///
/// Attach to a [`FaultPlan`](crate::FaultPlan) via
/// [`FaultPlan::with_adversary`](crate::FaultPlan::with_adversary);
/// every faulted engine then pauses at each decision draw, snapshots
/// its configuration, and applies the plan's damage through the
/// ordinary resolved-fault path.
///
/// # Example
///
/// ```
/// use netcon_core::{AdversaryPlan, AdversaryPolicy, Cadence, FaultPlan};
///
/// let adv = AdversaryPlan::new(Cadence::Periodic { start: 5_000, every: 5_000, count: 4 })
///     .policy(AdversaryPolicy::CrashMaxDegree)
///     .budget(3)
///     .min_alive(6);
/// assert_eq!(adv.decision_times(), vec![5_000, 10_000, 15_000, 20_000]);
/// let plan = FaultPlan::new(7).with_adversary(adv);
/// assert!(plan.adversary().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdversaryPlan {
    cadence: Cadence,
    policies: Vec<AdversaryPolicy>,
    budget: Option<u64>,
    min_alive: Option<usize>,
}

impl AdversaryPlan {
    /// An adversary acting at `cadence`'s decision draws, initially
    /// with no policies (add them with [`policy`](Self::policy)).
    #[must_use]
    pub fn new(cadence: Cadence) -> Self {
        Self {
            cadence,
            policies: Vec::new(),
            budget: None,
            min_alive: None,
        }
    }

    /// Appends a policy, executed in insertion order at every
    /// decision draw (builder style).
    #[must_use]
    pub fn policy(mut self, p: AdversaryPolicy) -> Self {
        self.policies.push(p);
        self
    }

    /// Caps the *total* damage across the whole run: each crash and
    /// each edge deletion costs 1. Once spent, remaining decisions
    /// are cancelled (they stop appearing as pending fault times).
    #[must_use]
    pub fn budget(mut self, total: u64) -> Self {
        self.budget = Some(total);
        self
    }

    /// Refuses crashes that would take the alive count to or below
    /// `floor` (edge deletions are not affected). Combines with the
    /// plan-level floor of
    /// [`FaultPlan::with_min_alive`](crate::FaultPlan::with_min_alive)
    /// by maximum.
    #[must_use]
    pub fn min_alive(mut self, floor: usize) -> Self {
        self.min_alive = Some(floor);
        self
    }

    /// The decision-draw schedule.
    #[must_use]
    pub fn cadence(&self) -> &Cadence {
        &self.cadence
    }

    /// The per-decision strikes, in execution order.
    #[must_use]
    pub fn policies(&self) -> &[AdversaryPolicy] {
        &self.policies
    }

    /// The total damage budget, if capped.
    #[must_use]
    pub fn budget_limit(&self) -> Option<u64> {
        self.budget
    }

    /// The adversary's own crash floor, if set.
    #[must_use]
    pub fn min_alive_floor(&self) -> Option<usize> {
        self.min_alive
    }

    /// Every scheduled decision time, in order — what availability
    /// analyses merge into their window boundaries.
    #[must_use]
    pub fn decision_times(&self) -> Vec<u64> {
        self.cadence.times()
    }
}

/// The engine-normalized configuration an adversary decides against:
/// dense state indices per draw-space slot plus sorted active
/// adjacency lists. Every engine produces the identical snapshot at
/// the same draw index of the same seeded run, regardless of its
/// internal edge representation.
#[derive(Debug)]
pub(crate) struct ConfigSnapshot {
    states: Vec<usize>,
    adj: Vec<Vec<usize>>,
}

impl ConfigSnapshot {
    /// Normalizes `states` (dense indices, one per draw-space slot)
    /// and an active-edge list in *any* order into the canonical form
    /// (adjacency lists sorted ascending).
    pub(crate) fn new(states: Vec<usize>, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut adj = vec![Vec::new(); states.len()];
        for (u, v) in edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        Self { states, adj }
    }
}

/// Executes one decision: runs `plan`'s policies in order against
/// `snap`, restricted to `alive` nodes, flipping alive flags for the
/// crashes it emits (mirroring `FaultState::resolve_next`'s
/// contract). Returns the damage in application order plus the budget
/// spent (1 per crash or edge deletion, capped at `budget_left`).
pub(crate) fn resolve_decision(
    plan: &AdversaryPlan,
    snap: &ConfigSnapshot,
    alive: &mut [bool],
    alive_count: &mut usize,
    extra_floor: Option<usize>,
    budget_left: u64,
) -> (Vec<ResolvedFault>, u64) {
    let floor = match (plan.min_alive, extra_floor) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (a, b) => a.or(b),
    };
    // Working adjacency: the snapshot restricted to currently-alive
    // nodes, updated as this decision's own damage lands so later
    // policies never re-target it.
    let mut adj: Vec<Vec<usize>> = snap
        .adj
        .iter()
        .enumerate()
        .map(|(u, list)| {
            if alive[u] {
                list.iter().copied().filter(|&v| alive[v]).collect()
            } else {
                Vec::new()
            }
        })
        .collect();
    let n = adj.len();
    let mut out = Vec::new();
    let mut spent = 0u64;
    let crash = |x: usize,
                     adj: &mut Vec<Vec<usize>>,
                     alive: &mut [bool],
                     alive_count: &mut usize,
                     out: &mut Vec<ResolvedFault>,
                     spent: &mut u64| {
        alive[x] = false;
        *alive_count -= 1;
        for v in std::mem::take(&mut adj[x]) {
            adj[v].retain(|&w| w != x);
        }
        out.push(ResolvedFault::Crash(x));
        *spent += 1;
    };
    let cut = |u: usize,
                   v: usize,
                   adj: &mut Vec<Vec<usize>>,
                   out: &mut Vec<ResolvedFault>,
                   spent: &mut u64| {
        adj[u].retain(|&w| w != v);
        adj[v].retain(|&w| w != u);
        out.push(ResolvedFault::DeleteEdge(u.min(v), u.max(v)));
        *spent += 1;
    };
    for &p in &plan.policies {
        if spent >= budget_left {
            break;
        }
        let crash_blocked = floor.is_some_and(|f| *alive_count <= f);
        match p {
            AdversaryPolicy::CrashMaxDegree => {
                if crash_blocked {
                    continue;
                }
                let Some(x) = (0..n)
                    .filter(|&u| alive[u])
                    .max_by_key(|&u| (adj[u].len(), std::cmp::Reverse(u)))
                else {
                    continue;
                };
                crash(x, &mut adj, alive, alive_count, &mut out, &mut spent);
            }
            AdversaryPolicy::CrashState(q) => {
                if crash_blocked {
                    continue;
                }
                let Some(x) = (0..n).find(|&u| alive[u] && snap.states[u] == q) else {
                    continue;
                };
                crash(x, &mut adj, alive, alive_count, &mut out, &mut spent);
            }
            AdversaryPolicy::CutBridge => {
                let Some((u, v)) = best_bridge(&adj, alive) else {
                    continue;
                };
                cut(u, v, &mut adj, &mut out, &mut spent);
            }
            AdversaryPolicy::CutAtWalker(q) => {
                let Some(w) = (0..n).find(|&u| alive[u] && snap.states[u] == q) else {
                    continue;
                };
                for v in adj[w].clone() {
                    if spent >= budget_left {
                        break;
                    }
                    cut(w, v, &mut adj, &mut out, &mut spent);
                }
            }
        }
    }
    (out, spent)
}

/// The bridge of the alive active graph whose removal splits off the
/// largest minority component (ties toward the lexicographically
/// smallest edge), or `None` if the graph is bridgeless. Iterative
/// low-link DFS with subtree sizes; simple graphs only.
fn best_bridge(adj: &[Vec<usize>], alive: &[bool]) -> Option<(usize, usize)> {
    let n = adj.len();
    const UNSEEN: usize = usize::MAX;
    let mut disc = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut sub = vec![1usize; n];
    let mut timer = 0usize;
    let mut best: Option<(usize, (usize, usize))> = None;
    for root in 0..n {
        if !alive[root] || disc[root] != UNSEEN {
            continue;
        }
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        let mut comp_size = 1usize;
        // (node, parent side of the tree edge, child index minus the
        // low-link updates; bridges score once the component size is
        // known).
        let mut comp_bridges: Vec<(usize, usize, usize)> = Vec::new();
        let mut stack: Vec<(usize, usize, usize)> = vec![(root, UNSEEN, 0)];
        while let Some(frame) = stack.last_mut() {
            let (u, parent, ci) = (frame.0, frame.1, frame.2);
            if ci < adj[u].len() {
                frame.2 += 1;
                let v = adj[u][ci];
                if v == parent {
                    continue;
                }
                if disc[v] == UNSEEN {
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    comp_size += 1;
                    stack.push((v, u, 0));
                } else {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(pf) = stack.last_mut() {
                    let p = pf.0;
                    low[p] = low[p].min(low[u]);
                    sub[p] += sub[u];
                    if low[u] > disc[p] {
                        comp_bridges.push((p, u, sub[u]));
                    }
                }
            }
        }
        for (p, u, child_side) in comp_bridges {
            let min_side = child_side.min(comp_size - child_side);
            let edge = (p.min(u), p.max(u));
            let better = best.is_none_or(|(bs, be)| min_side > bs || (min_side == bs && edge < be));
            if better {
                best = Some((min_side, edge));
            }
        }
    }
    best.map(|(_, e)| e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(n: usize, states: &[usize], edges: &[(usize, usize)]) -> ConfigSnapshot {
        let mut s = states.to_vec();
        s.resize(n, 0);
        ConfigSnapshot::new(s, edges.iter().copied())
    }

    fn run(
        plan: &AdversaryPlan,
        snap: &ConfigSnapshot,
        alive: &mut [bool],
        floor: Option<usize>,
        budget: u64,
    ) -> (Vec<ResolvedFault>, u64) {
        let mut count = alive.iter().filter(|&&a| a).count();
        resolve_decision(plan, snap, alive, &mut count, floor, budget)
    }

    #[test]
    fn cadences_enumerate_their_times() {
        let p = Cadence::Periodic {
            start: 100,
            every: 50,
            count: 3,
        };
        assert_eq!(p.times(), vec![100, 150, 200]);
        assert_eq!(p.decision_time(3), None);
        // every = 0 clamps to 1 instead of repeating a draw forever.
        let z = Cadence::Periodic {
            start: 9,
            every: 0,
            count: 3,
        };
        assert_eq!(z.times(), vec![9, 10, 11]);
        let b = Cadence::burst(vec![30, 10, 20]);
        assert_eq!(b.times(), vec![10, 20, 30]);
        let r = Cadence::Ramp {
            start: 1_000,
            first_gap: 400,
            min_gap: 100,
            count: 5,
        };
        // Gaps: 400, 200, 100, 100 — halving floored at min_gap.
        assert_eq!(r.times(), vec![1_000, 1_400, 1_600, 1_700, 1_800]);
        assert_eq!(r.count(), 5);
    }

    #[test]
    fn crash_max_degree_finds_the_hub_and_ties_break_low() {
        // Star centred at 2, plus an extra edge making node 0 degree 2.
        let sn = snap(5, &[0; 5], &[(2, 0), (2, 1), (2, 3), (2, 4), (0, 1)]);
        let plan = AdversaryPlan::new(Cadence::burst(vec![0])).policy(AdversaryPolicy::CrashMaxDegree);
        let mut alive = vec![true; 5];
        let (out, spent) = run(&plan, &sn, &mut alive, None, u64::MAX);
        assert!(matches!(out[..], [ResolvedFault::Crash(2)]));
        assert_eq!(spent, 1);
        assert!(!alive[2]);
        // With 2 gone, 0 and 1 tie at degree 1 — the lower id falls.
        let mut count = 4;
        let (out2, _) = resolve_decision(&plan, &sn, &mut alive, &mut count, None, u64::MAX);
        assert!(matches!(out2[..], [ResolvedFault::Crash(0)]));
    }

    #[test]
    fn crash_state_targets_by_dense_index_and_noops_when_absent() {
        let sn = snap(4, &[7, 3, 7, 3], &[]);
        let plan = AdversaryPlan::new(Cadence::burst(vec![0])).policy(AdversaryPolicy::CrashState(3));
        let mut alive = vec![true; 4];
        let (out, _) = run(&plan, &sn, &mut alive, None, u64::MAX);
        assert!(matches!(out[..], [ResolvedFault::Crash(1)]), "lowest id in state 3");
        let plan9 = AdversaryPlan::new(Cadence::burst(vec![0])).policy(AdversaryPolicy::CrashState(9));
        let (out9, spent9) = run(&plan9, &sn, &mut alive, None, u64::MAX);
        assert!(out9.is_empty(), "no node in state 9");
        assert_eq!(spent9, 0, "a no-op strike costs nothing");
    }

    #[test]
    fn cut_bridge_prefers_the_most_balanced_split() {
        // Path 0-1-2-3-4-5: bridge (2,3) splits 3|3 — the maximum
        // minority side.
        let sn = snap(6, &[0; 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let plan = AdversaryPlan::new(Cadence::burst(vec![0])).policy(AdversaryPolicy::CutBridge);
        let mut alive = vec![true; 6];
        let (out, _) = run(&plan, &sn, &mut alive, None, u64::MAX);
        assert!(matches!(out[..], [ResolvedFault::DeleteEdge(2, 3)]));
        // A triangle has no bridge.
        let tri = snap(3, &[0; 3], &[(0, 1), (1, 2), (0, 2)]);
        let mut alive3 = vec![true; 3];
        let (none, _) = run(&plan, &tri, &mut alive3, None, u64::MAX);
        assert!(none.is_empty());
    }

    #[test]
    fn cut_at_walker_severs_every_incident_edge() {
        // 2 is the "walker" (state 5) inside a path 0-1-2-3.
        let sn = snap(4, &[0, 0, 5, 0], &[(0, 1), (1, 2), (2, 3)]);
        let plan = AdversaryPlan::new(Cadence::burst(vec![0])).policy(AdversaryPolicy::CutAtWalker(5));
        let mut alive = vec![true; 4];
        let (out, spent) = run(&plan, &sn, &mut alive, None, u64::MAX);
        assert!(matches!(
            out[..],
            [ResolvedFault::DeleteEdge(1, 2), ResolvedFault::DeleteEdge(2, 3)]
        ));
        assert_eq!(spent, 2);
        assert!(alive[2], "cutting never crashes");
    }

    #[test]
    fn budget_and_floor_gate_the_damage() {
        let sn = snap(4, &[0; 4], &[(0, 1), (0, 2), (0, 3)]);
        let plan = AdversaryPlan::new(Cadence::burst(vec![0]))
            .policy(AdversaryPolicy::CrashMaxDegree)
            .policy(AdversaryPolicy::CrashMaxDegree);
        // Budget 1: the second strike never runs.
        let mut alive = vec![true; 4];
        let (out, spent) = run(&plan, &sn, &mut alive, None, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(spent, 1);
        // Floor 4 on 4 alive: crashes are refused outright.
        let mut alive2 = vec![true; 4];
        let (none, zero) = run(&plan, &sn, &mut alive2, Some(4), u64::MAX);
        assert!(none.is_empty());
        assert_eq!(zero, 0);
        // The adversary's own floor combines with the caller's by max.
        let own = AdversaryPlan::new(Cadence::burst(vec![0]))
            .policy(AdversaryPolicy::CrashMaxDegree)
            .policy(AdversaryPolicy::CrashMaxDegree)
            .min_alive(3);
        let mut alive3 = vec![true; 4];
        let (one, _) = run(&own, &sn, &mut alive3, Some(2), u64::MAX);
        assert_eq!(one.len(), 1, "stops at the tighter floor of 3");
    }

    #[test]
    fn sequential_policies_see_earlier_damage() {
        // CutAtWalker on 1 removes (1,2); the subsequent CutBridge
        // must pick from what remains of the path, not re-cut (1,2).
        let sn = snap(5, &[0, 5, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let plan = AdversaryPlan::new(Cadence::burst(vec![0]))
            .policy(AdversaryPolicy::CutAtWalker(5))
            .policy(AdversaryPolicy::CutBridge);
        let mut alive = vec![true; 5];
        let (out, _) = run(&plan, &sn, &mut alive, None, u64::MAX);
        assert!(matches!(
            out[..],
            [
                ResolvedFault::DeleteEdge(0, 1),
                ResolvedFault::DeleteEdge(1, 2),
                ResolvedFault::DeleteEdge(2, 3) | ResolvedFault::DeleteEdge(3, 4),
            ]
        ));
        // Specifically: the best remaining bridge splits 2-3-4, and
        // the most balanced split there is 1|2 via either edge — the
        // smaller edge wins the tie.
        assert!(matches!(out[2], ResolvedFault::DeleteEdge(2, 3)));
    }

    #[test]
    fn snapshot_normalizes_edge_order() {
        let a = ConfigSnapshot::new(vec![0; 4], vec![(3, 1), (0, 1), (2, 1)]);
        let b = ConfigSnapshot::new(vec![0; 4], vec![(1, 0), (1, 2), (1, 3)]);
        assert_eq!(a.adj, b.adj);
        assert_eq!(a.adj[1], vec![0, 2, 3]);
    }
}
