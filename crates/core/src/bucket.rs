//! The sparse state-bucketed event engine: exact uniform-scheduler
//! simulation in O(n + |Q|²) memory.
//!
//! [`EventSim`](crate::EventSim) tracks the possibly-effective pairs
//! *individually* — a dense pair-position matrix plus membership bitsets,
//! Θ(n²) bytes that wall off populations beyond a few tens of thousands
//! of nodes. [`BucketSim`] replaces the pair set with **per-state
//! buckets** and reconstructs the same sampling law from counts:
//!
//! 1. Its candidate set `E'` is defined by *state pairs*, not node pairs:
//!    an ordered pair `(u, v)` is a candidate iff
//!    `can_affect(q_u, q_v, 0)` (an **off bucket** — every node pair with
//!    those states, counted as `c_s·c_t` from the bucket sizes alone), or
//!    the edge `{u, v}` is active and `can_affect(q_u, q_v, 1)` holds
//!    while `can_affect(q_u, q_v, 0)` does not (the **on list** — an
//!    explicit list of active edges, which for the bounded-degree outputs
//!    of the paper's constructors has O(n) entries). `E'` is a superset
//!    of the exactly-effective set `E`: every pair outside `E'` has
//!    `can_affect(q_u, q_v, link) = false` for its *actual* link, so the
//!    naive engine would draw it to no effect.
//! 2. With `K = |E'|` (ordered) out of `n(n−1)` ordered pairs, the number
//!    of consecutive draws that miss `E'` is geometric with
//!    `p = K / n(n−1)` — states are frozen during misses, exactly the
//!    argument of the dense engine, with `E'` in place of `E`. The count
//!    comes from the same inversion draw
//!    ([`geometric_skip`]).
//! 3. A candidate is then drawn uniformly from `E'`: an off bucket with
//!    probability proportional to its pair count (one cumulative-weight
//!    search over ≤ |Q|² integers), then a uniform member from each
//!    side's bucket (swap-remove `Vec`s indexed by
//!    [`EnumerableMachine`] state ids); or an on-list entry uniformly.
//!    The candidate is **accepted or rejected on its actual edge state**:
//!    if `can_affect(q_u, q_v, link)` fails the draw is recorded as one
//!    ordinary ineffective step (exactly what the naive engine would
//!    record for it); otherwise `interact` runs with real coins.
//!
//! Conditioned on hitting `E'`, the uniform scheduler selects uniformly
//! within `E'` — which is precisely the bucket draw — so every statistic
//! (`steps`, `effective_steps`, `converged_at`, the full configuration
//! process) has **identical distribution** to the naive
//! [`Simulation`](crate::Simulation) and therefore to
//! [`EventSim`](crate::EventSim), coin for coin the same argument with a
//! coarser skipped set. The cost of the coarseness is the rejected
//! candidates; for the paper's constructors the on/off split keeps the
//! rejection rate near zero (link-sensitive rules pair rare states or
//! ride the on list).
//!
//! Maintenance is O(1) per node-state change (two swap-removes and a
//! dirty flag for the ≤ |Q|² cumulative weights) plus O(deg) per touched
//! node for the on list, and memory is O(n + |Q|²): at n = 100 000
//! Simple-Global-Line runs in a few megabytes where the dense pair map
//! alone would need ~40 GB.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet, VecDeque};

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::compiled::{EffectTable, EnumerableMachine};
use crate::engine::{geometric_skip, unit_open01, GeoCacheSlot};
use crate::event::EventStep;
use crate::fault::adversary::ConfigSnapshot;
use crate::fault::{sample_without_replacement, DueFault, FaultPlan, FaultState, ResolvedFault};
use crate::sim::{RunOutcome, StepResult};
use crate::walk::{
    bridge_weights_with_future, h_step, sample_absorption, sample_binomial, sample_gamma,
    sample_poisson, sample_weighted,
};
use crate::{Link, Population};

/// Monomorphic indexed-interaction entry point captured from
/// [`EnumerableMachine::interact_indexed`] at construction.
type InteractFn<M> = fn(&M, usize, usize, Link, &mut SmallRng) -> Option<(usize, usize, Link)>;

/// Sentinel for "this active edge is not on the on list".
const NOT_ON: u32 = u32::MAX;

/// One adjacency cell: the neighbour plus the edge's position in the on
/// list (mirrored in the neighbour's cell), so on-list membership reads
/// and writes ride the adjacency scans the engine does anyway — no
/// hashing in the hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AdjCell {
    to: u32,
    on_pos: u32,
}

/// A sparse configuration: per-node state indices, per-state node
/// buckets, and adjacency lists of the active edges — everything a
/// stability predicate can ask of a [`BucketSim`] without any Θ(n²)
/// structure existing.
///
/// Node ids are `u32` (the engine's population cap), state ids are the
/// machine's dense [`EnumerableMachine`] indices.
#[derive(Debug, Clone)]
pub struct SparsePop {
    /// Dense state index of every node.
    idx: Vec<u16>,
    /// Per-state member lists (swap-remove keeps them compact).
    buckets: Vec<Vec<u32>>,
    /// Position of each node inside its bucket.
    pos: Vec<u32>,
    /// Active-edge adjacency lists, unordered within a row; each cell
    /// carries the edge's on-list position (or [`NOT_ON`]).
    adj: Vec<Vec<AdjCell>>,
    /// Number of active edges.
    active: usize,
}

impl SparsePop {
    /// Builds the configuration with every node in state `initial` and no
    /// active edges.
    pub(crate) fn new(n: usize, num_states: usize, initial: usize) -> Self {
        let mut buckets = vec![Vec::new(); num_states];
        buckets[initial] = (0..n as u32).collect();
        Self {
            idx: vec![u16::try_from(initial).expect("≤ 65536 states"); n],
            buckets,
            pos: (0..n as u32).collect(),
            adj: vec![Vec::new(); n],
            active: 0,
        }
    }

    /// The population size `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.idx.len()
    }

    /// The dense state index of node `u`.
    #[must_use]
    pub fn state_index(&self, u: usize) -> usize {
        usize::from(self.idx[u])
    }

    /// The number of nodes currently in state `s`.
    #[must_use]
    pub fn count_index(&self, s: usize) -> usize {
        self.buckets[s].len()
    }

    /// The nodes currently in state `s` (arbitrary order).
    #[must_use]
    pub fn nodes_index(&self, s: usize) -> &[u32] {
        &self.buckets[s]
    }

    /// The number of active edges.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// The active degree of node `u`.
    #[must_use]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// The active neighbours of node `u` (arbitrary order).
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[u].iter().map(|c| c.to as usize)
    }

    /// Whether the edge `{u, v}` is active — an O(min degree) adjacency
    /// scan.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either endpoint is out of range.
    #[must_use]
    pub fn is_active(&self, u: usize, v: usize) -> bool {
        assert!(u != v, "self-loops are not part of the model");
        let (a, b) = if self.adj[u].len() <= self.adj[v].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a].iter().any(|c| c.to as usize == b)
    }

    /// Materializes the dense active-edge set — Θ(n²) bits; for
    /// inspection and small-n testing, not for the 100k-node frontier.
    #[must_use]
    pub fn to_edgeset(&self) -> netcon_graph::EdgeSet {
        let mut es = netcon_graph::EdgeSet::new(self.n());
        for (u, row) in self.adj.iter().enumerate() {
            for c in row {
                if (c.to as usize) > u {
                    es.activate(u, c.to as usize);
                }
            }
        }
        es
    }

    /// Moves node `u` to state `new`; returns whether the state changed.
    pub(crate) fn set_state_index(&mut self, u: usize, new: usize) -> bool {
        let old = usize::from(self.idx[u]);
        if old == new {
            return false;
        }
        // Swap-remove from the old bucket…
        let p = self.pos[u] as usize;
        let bucket = &mut self.buckets[old];
        bucket.swap_remove(p);
        if let Some(&moved) = bucket.get(p) {
            self.pos[moved as usize] = p as u32;
        }
        // …push into the new one.
        let target = &mut self.buckets[new];
        self.pos[u] = target.len() as u32;
        target.push(u as u32);
        self.idx[u] = u16::try_from(new).expect("≤ 65536 states");
        true
    }

    /// Removes node `u` from its state bucket (ghost retirement for the
    /// fault layer): the node keeps its `idx` entry but stops being
    /// counted or drawn. `pos[u]` is stale until
    /// [`bucket_insert`](Self::bucket_insert) restores it.
    pub(crate) fn bucket_remove(&mut self, u: usize) {
        let s = usize::from(self.idx[u]);
        let p = self.pos[u] as usize;
        let bucket = &mut self.buckets[s];
        bucket.swap_remove(p);
        if let Some(&moved) = bucket.get(p) {
            self.pos[moved as usize] = p as u32;
        }
    }

    /// Re-inserts node `u` into the bucket of its retained state index
    /// (node arrival for the fault layer).
    pub(crate) fn bucket_insert(&mut self, u: usize) {
        let s = usize::from(self.idx[u]);
        self.pos[u] = self.buckets[s].len() as u32;
        self.buckets[s].push(u as u32);
    }

    /// Sets the state of edge `{u, v}` in the adjacency lists. Returns
    /// the edge's on-list position at removal ([`NOT_ON`] otherwise) so
    /// the engine can repair its on list.
    pub(crate) fn set_edge(&mut self, u: usize, v: usize, active: bool) -> u32 {
        if active {
            debug_assert!(!self.adj[u].iter().any(|c| c.to as usize == v));
            self.adj[u].push(AdjCell {
                to: v as u32,
                on_pos: NOT_ON,
            });
            self.adj[v].push(AdjCell {
                to: u as u32,
                on_pos: NOT_ON,
            });
            self.active += 1;
            NOT_ON
        } else {
            let pu = self.adj[u].iter().position(|c| c.to as usize == v);
            let pv = self.adj[v].iter().position(|c| c.to as usize == u);
            let (pu, pv) = (pu.expect("edge was active"), pv.expect("edge was active"));
            let on_pos = self.adj[u][pu].on_pos;
            self.adj[u].swap_remove(pu);
            self.adj[v].swap_remove(pv);
            self.active -= 1;
            on_pos
        }
    }

    /// Writes the on-list position into both adjacency cells of the
    /// active edge `{u, v}` — O(deg).
    fn set_edge_on_pos(&mut self, u: usize, v: usize, on_pos: u32) {
        let cu = self.adj[u]
            .iter_mut()
            .find(|c| c.to as usize == v)
            .expect("edge is active");
        cu.on_pos = on_pos;
        let cv = self.adj[v]
            .iter_mut()
            .find(|c| c.to as usize == u)
            .expect("edge is active");
        cv.on_pos = on_pos;
    }

    /// Bytes of heap memory held by the configuration (including the
    /// per-row `Vec` headers, which at bounded degree are most of the
    /// adjacency's footprint).
    #[must_use]
    pub fn approx_mem_bytes(&self) -> u64 {
        (self.idx.capacity() * 2
            + self.pos.capacity() * 4
            + self
                .buckets
                .iter()
                .map(|b| b.capacity() * 4 + 24)
                .sum::<usize>()
            + self
                .adj
                .iter()
                .map(|a| a.capacity() * 8 + 24)
                .sum::<usize>()) as u64
    }
}

/// Wide (`u128`) run counters. The batched endgame advances the raw-step
/// clock by negative-binomial totals that overflow `u64` at the
/// million-node frontier (a 10¹²-effective-step walk at a ~10⁻¹¹ hit
/// probability consumes ~10²³ raw steps). Budgets and the public
/// accessors keep speaking saturating `u64`;
/// [`BucketSim::steps_wide`] exposes the exact count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct WideBook {
    steps: u128,
    effective_steps: u128,
    edge_events: u64,
    last_output_change: u128,
    last_effective: u128,
}

/// Saturates a wide counter into the `u64` the cross-engine API speaks.
fn sat64(x: u128) -> u64 {
    u64::try_from(x).unwrap_or(u64::MAX)
}

impl WideBook {
    /// Records an effective interaction at the current `steps` count.
    fn record_effective(&mut self, edge_changed: bool) {
        if edge_changed {
            self.edge_events += 1;
            self.last_output_change = self.steps;
        }
        self.effective_steps += 1;
        self.last_effective = self.steps;
    }

    /// The [`RunOutcome`] for a stable predicate observed right now.
    fn stabilized_now(&self) -> RunOutcome {
        RunOutcome::Stabilized {
            detected_at: sat64(self.steps),
            converged_at: sat64(self.last_output_change),
            last_effective: sat64(self.last_effective),
        }
    }
}

/// A conditioned walker future carried on the per-draw path: the walker
/// will absorb at side `exit0` in exactly `rem` more of its own steps,
/// and until then every move it is drawn for follows the Doob
/// h-transform of that commitment instead of the unbiased coin.
#[derive(Debug, Clone)]
struct Commit {
    /// The walker's path nodes in canonical order
    /// ([`BucketSim::extract_path`]).
    path: Vec<u32>,
    /// Current position on the path.
    z: usize,
    /// Remaining own-steps to absorption (≥ 1).
    rem: u64,
    /// Whether the committed exit is `path[0]`.
    exit0: bool,
}

/// A walker registered in a batched-endgame session: a *lazy* commitment
/// to absorb at side `exit0` of `path` after `rem` more own-draws,
/// embedded in the session's continuous clock. The walker state in the
/// sparse view stays parked at `path[z]` (its position when the
/// embedding began) until the session materializes it — stale states on
/// path interiors are invisible to graph-only predicates, which is all
/// [`BucketSim::run_until_edges`] admits.
#[derive(Debug, Clone)]
struct Walker {
    path: Vec<u32>,
    /// Materialized (possibly stale) position: `path[z]` holds the
    /// walker state in the sparse view.
    z: usize,
    exit0: bool,
    /// Own-draws from `z` to absorption.
    rem: u64,
    /// Session time at which this embedding began.
    born: f64,
    /// Own-clock units (the walker's rate-4 Poisson clock) from `born`
    /// to absorption: `Gamma(rem)`.
    gamma: f64,
}

/// Record of a walker absorbed after the session's pending
/// `last_output_change` mark — kept so the deferred raw-step split can
/// count its arrivals before that instant.
#[derive(Debug, Clone, Copy)]
struct AbsorbedRec {
    rem: u64,
    born: f64,
    gamma: f64,
    absorbed_at: f64,
}

/// A deferred raw-step index: the continuous instant of an event whose
/// step count is only materialized at session close, with the scalar
/// tallies frozen at that instant.
#[derive(Debug, Clone, Copy)]
struct Mark {
    tau: f64,
    cand_done: u128,
    reject_integral: f64,
}

/// A batched endgame session: the Poissonized continuous-time execution
/// carried while every on-candidate is a certified walker edge (see the
/// module docs). Orderered candidates get independent unit-rate Poisson
/// clocks; the arrival sequence, in time order, is exactly the discrete
/// chain's candidate-draw sequence, so racing walker deadlines against
/// the aggregated off-candidate clock reproduces the per-draw law while
/// paying O(log W) per *event* instead of per walker step.
#[derive(Debug, Clone, Default)]
struct Endgame {
    /// Registered walkers by session-scoped id (BTreeMap: coin
    /// consumption at close is id-ordered, hence seed-deterministic).
    walkers: BTreeMap<u32, Walker>,
    next_id: u32,
    /// Path node → owning walker id, for every registered path.
    claim: HashMap<u32, u32>,
    /// Min-heap of `(deadline bits, id)` — f64 deadlines are positive,
    /// so the bit pattern orders identically; stale ids are skipped.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// The session clock.
    now: f64,
    /// `∫ (m2 − k2) dt` so far — the mean of the deferred Poisson count
    /// of certainly-ineffective (skipped) raw draws.
    reject_integral: f64,
    /// Candidate draws fully resolved: absorbed walkers' own-draws plus
    /// applied off-candidate events.
    cand_done: u128,
    /// Effective draws among `cand_done`.
    eff_done: u128,
    edge_events: u64,
    /// Instant of the last edge change (deferred `last_output_change`).
    change: Option<Mark>,
    /// Instant of the last *applied* effective draw (deferred
    /// `last_effective`); walker arrivals after it are folded in at
    /// close.
    eff_mark: Option<Mark>,
    /// Walkers absorbed after `change.tau`, oldest first.
    absorbed_recs: VecDeque<AbsorbedRec>,
    /// Consecutive ineffective off-candidate draws (session-local
    /// rejection run for the quiescence probe).
    ineff_run: u64,
}

/// One processed session event, as seen by the driving loop.
enum EndgameEvent {
    /// An event was applied; `edge_changed` reports whether the output
    /// graph moved (predicate re-evaluation point). The session may have
    /// closed right after the event (validation failure) — the next call
    /// re-opens or reports `Idle`.
    Applied { edge_changed: bool },
    /// No session is active and none could open (nothing batchable,
    /// retry throttle, or quiescence); the caller falls back to the
    /// per-draw path.
    Idle,
}

/// After a failed session-open attempt, effective steps to wait before
/// paying for another scan — opening is O(path length), so retrying it
/// per effective step would be quadratic on non-batchable
/// configurations.
const ENDGAME_RETRY: u128 = 64;

/// The sparse state-bucketed event-driven engine (see the
/// [module docs](self) for the exactness argument).
///
/// Mirrors the [`EventSim`](crate::EventSim) API — [`advance`] returns
/// the same [`EventStep`], `run_until`/`run_until_edges`/`run_to` have
/// the same semantics — except that stability predicates receive a
/// [`SparsePop`] view instead of a dense
/// [`Population`]: no Θ(n²) structure is ever built.
///
/// [`advance`]: Self::advance
///
/// # Example
///
/// ```
/// use netcon_core::{BucketSim, Link, ProtocolBuilder};
///
/// let mut b = ProtocolBuilder::new("matching");
/// let a = b.state("a");
/// let m = b.state("b");
/// b.rule((a, a, Link::Off), (m, m, Link::On));
/// let protocol = b.build()?.compile();
///
/// let mut sim = BucketSim::new(protocol, 100_000, 1);
/// let outcome = sim.run_until(|p| p.active_count() == 50_000, u64::MAX);
/// assert!(outcome.stabilized());
/// assert!(sim.approx_mem_bytes() < 32 << 20, "sparse engine stays small");
/// # Ok::<(), netcon_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BucketSim<M: EnumerableMachine> {
    machine: M,
    sp: SparsePop,
    rng: SmallRng,
    book: WideBook,
    table: EffectTable,
    /// Ordered state pairs `(s, t)` with `can_affect(s, t, Off)` — the
    /// off buckets, fixed at construction.
    off_pairs: Vec<(u16, u16)>,
    /// Cumulative ordered-pair counts per off bucket (rebuilt lazily when
    /// a state count changed).
    cum: Vec<u64>,
    off_total: u64,
    dirty: bool,
    /// Active edges whose state pair is effective on an active link only,
    /// as unordered `(u, v)` entries; positions are mirrored in the
    /// adjacency cells ([`AdjCell::on_pos`]).
    on_list: Vec<(u32, u32)>,
    /// Consecutive candidates that resolved ineffective — drives the
    /// exact quiescence probe that keeps budget-bounded runs from
    /// grinding through a dead configuration.
    rejection_run: u64,
    probe_at: u64,
    interact: InteractFn<M>,
    state_at: fn(&M, usize) -> M::State,
    faults: Option<FaultState>,
    /// Lazy inversion table for the hot `geometric_skip` parameter.
    geo: GeoCacheSlot,
    /// Batched-endgame commitments, keyed by the node currently holding
    /// the walker state (a `Vec`, so coin consumption is deterministic).
    commits: Vec<(u32, Commit)>,
    /// Effective-step count before which walk detection is not retried
    /// after a failure.
    endgame_retry_after: u128,
    /// The open batched-endgame session, if any. `None` at every public
    /// API boundary — sessions live entirely inside
    /// [`run_until_edges`](Self::run_until_edges).
    eg: Option<Endgame>,
}

/// First rejection-run length at which [`BucketSim::advance`] pays for an
/// exact quiescence scan (doubling after each inconclusive probe).
const QUIESCENCE_PROBE: u64 = 128;

impl<M: EnumerableMachine> BucketSim<M> {
    /// Creates a sparse event-driven simulation of `machine` on `n` nodes
    /// in the initial configuration, reproducible from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `n > 2³¹` (node ids are `u32` and ordered pair
    /// counts must fit `u64`), the machine has more than 65536 states, or
    /// the machine's `can_affect` is not symmetric in its node arguments
    /// (a [`Machine`](crate::Machine) contract violation).
    ///
    /// # Example
    ///
    /// ```
    /// use netcon_core::{BucketSim, Link, ProtocolBuilder};
    /// let mut b = ProtocolBuilder::new("pairing");
    /// let a = b.state("a");
    /// let p = b.state("b");
    /// b.rule((a, a, Link::Off), (p, p, Link::On));
    /// // A million nodes allocate O(n), not Θ(n²).
    /// let mut sim = BucketSim::new(b.build()?.compile(), 1_000_000, 7);
    /// assert_eq!(sim.candidate_weight(), 1_000_000u64 * 999_999);
    /// # Ok::<(), netcon_core::ProtocolError>(())
    /// ```
    #[must_use]
    pub fn new(machine: M, n: usize, seed: u64) -> Self {
        assert!(n >= 2, "pairwise interactions need at least 2 processes");
        assert!(n <= 1 << 31, "BucketSim packs node ids into u32");
        let num_states = machine.num_states();
        assert!(
            num_states <= usize::from(u16::MAX) + 1,
            "BucketSim's dense index is u16: more than 65536 states"
        );
        let initial = machine.state_index(&machine.initial_state());
        let sp = SparsePop::new(n, num_states, initial);
        Self::from_sparse(machine, sp, seed)
    }

    /// Creates a faulted sparse simulation: `n` live nodes plus one
    /// *ghost* slot per planned arrival, sharing the fault semantics of
    /// [`Simulation::new_faulted`](crate::Simulation::new_faulted) —
    /// ghosts sit outside every bucket (zero candidate weight) while the
    /// skip denominator stays fixed at `capacity·(capacity−1)`, so every
    /// measured statistic matches the other engines under the identical
    /// [`FaultPlan`].
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new) (with the capacity in place of `n`).
    #[must_use]
    pub fn new_faulted(machine: M, n: usize, seed: u64, plan: FaultPlan) -> Self {
        assert!(n >= 2, "pairwise interactions need at least 2 processes");
        let fs = FaultState::new(plan, n);
        let mut sim = Self::new(machine, fs.capacity(), seed);
        for ghost in n..fs.capacity() {
            sim.sp.bucket_remove(ghost);
        }
        sim.dirty = true;
        sim.faults = Some(fs);
        sim
    }

    /// The fault state, if this engine was built with a [`FaultPlan`].
    #[must_use]
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// Creates a sparse simulation from an explicit dense configuration
    /// (one scan of its active edges; the dense edge set is dropped).
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new).
    #[must_use]
    pub fn from_population(machine: M, pop: Population<M::State>, seed: u64) -> Self {
        let n = pop.n();
        assert!(n >= 2, "pairwise interactions need at least 2 processes");
        assert!(n <= 1 << 31, "BucketSim packs node ids into u32");
        let num_states = machine.num_states();
        assert!(
            num_states <= usize::from(u16::MAX) + 1,
            "BucketSim's dense index is u16: more than 65536 states"
        );
        let mut sp = SparsePop::new(n, num_states, machine.state_index(pop.state(0)));
        for u in 0..n {
            sp.set_state_index(u, machine.state_index(pop.state(u)));
        }
        for (u, v) in pop.edges().active_edges() {
            sp.set_edge(u, v, true);
        }
        Self::from_sparse(machine, sp, seed)
    }

    fn from_sparse(machine: M, sp: SparsePop, seed: u64) -> Self {
        let table = machine.effect_table();
        assert!(
            table.is_symmetric(),
            "BucketSim requires can_affect to be symmetric in its node arguments"
        );
        let size = table.size();
        let mut off_pairs = Vec::new();
        for s in 0..size {
            for t in 0..size {
                if table.can_affect(s, t, Link::Off) {
                    off_pairs.push((s as u16, t as u16));
                }
            }
        }
        let cum = vec![0; off_pairs.len()];
        let mut sim = Self {
            machine,
            sp,
            rng: SmallRng::seed_from_u64(seed),
            book: WideBook::default(),
            table,
            off_pairs,
            cum,
            off_total: 0,
            dirty: true,
            on_list: Vec::new(),
            rejection_run: 0,
            probe_at: QUIESCENCE_PROBE,
            interact: |m: &M, a, b, link, rng: &mut SmallRng| m.interact_indexed(a, b, link, rng),
            state_at: |m: &M, i: usize| m.state_at(i),
            faults: None,
            geo: GeoCacheSlot::default(),
            commits: Vec::new(),
            endgame_retry_after: 0,
            eg: None,
        };
        // Initial on-list: scan the active edges once.
        for u in 0..sim.sp.n() {
            sim.refresh_on_incident(u);
        }
        sim
    }

    /// The current configuration.
    #[must_use]
    pub fn view(&self) -> &SparsePop {
        &self.sp
    }

    /// The machine being executed.
    #[must_use]
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Steps taken so far (including skipped ineffective draws),
    /// saturating at `u64::MAX`; [`steps_wide`](Self::steps_wide) has
    /// the exact count.
    #[must_use]
    pub fn steps(&self) -> u64 {
        sat64(self.book.steps)
    }

    /// The exact step count: the batched endgame advances the clock by
    /// negative-binomial totals that pass `u64` at the million-node
    /// frontier.
    #[must_use]
    pub fn steps_wide(&self) -> u128 {
        self.book.steps
    }

    /// Effective interactions so far (saturating at `u64::MAX`).
    #[must_use]
    pub fn effective_steps(&self) -> u64 {
        sat64(self.book.effective_steps)
    }

    /// The exact effective-interaction count.
    #[must_use]
    pub fn effective_steps_wide(&self) -> u128 {
        self.book.effective_steps
    }

    /// Edge activations/deactivations so far.
    #[must_use]
    pub fn edge_events(&self) -> u64 {
        self.book.edge_events
    }

    /// The step of the most recent edge change (0 if none yet),
    /// saturating at `u64::MAX`.
    #[must_use]
    pub fn last_output_change(&self) -> u64 {
        sat64(self.book.last_output_change)
    }

    /// The exact step of the most recent edge change (0 if none yet).
    #[must_use]
    pub fn last_output_change_wide(&self) -> u128 {
        self.book.last_output_change
    }

    /// The step of the most recent effective interaction (0 if none
    /// yet), saturating at `u64::MAX`.
    #[must_use]
    pub fn last_effective(&self) -> u64 {
        sat64(self.book.last_effective)
    }

    /// The current number of *ordered* candidate pairs `K = |E'|` — the
    /// numerator of the geometric skip probability. An over-count of the
    /// exactly-effective set (rejection absorbs the difference); when it
    /// reaches 0 the configuration is certainly quiescent.
    #[must_use]
    pub fn candidate_weight(&mut self) -> u64 {
        if self.dirty {
            self.rebuild_weights();
        }
        self.off_total + 2 * self.on_list.len() as u64
    }

    /// Materializes the dense configuration — Θ(n²) bits for the edge
    /// set; for inspection and small-n testing only.
    #[must_use]
    pub fn to_population(&self) -> Population<M::State> {
        let states = (0..self.sp.n())
            .map(|u| (self.state_at)(&self.machine, self.sp.state_index(u)))
            .collect();
        Population::from_parts(states, self.sp.to_edgeset())
    }

    /// Bytes of heap memory held by the engine: the sparse configuration,
    /// buckets, cumulative weights, on list, and effect table — O(n + |Q|²),
    /// against the dense engine's Θ(n²).
    #[must_use]
    pub fn approx_mem_bytes(&self) -> u64 {
        self.sp.approx_mem_bytes()
            + (self.off_pairs.capacity() * 4
                + self.cum.capacity() * 8
                + self.on_list.capacity() * 8) as u64
            + self.table.approx_mem_bytes()
    }

    /// Rebuilds the off-bucket cumulative weights from the bucket sizes —
    /// O(|off buckets|) ≤ O(|Q|²), amortized against the state change
    /// that dirtied them.
    fn rebuild_weights(&mut self) {
        let mut total = 0u64;
        for (i, &(s, t)) in self.off_pairs.iter().enumerate() {
            let cs = self.sp.buckets[usize::from(s)].len() as u64;
            let w = if s == t {
                cs * cs.saturating_sub(1)
            } else {
                cs * self.sp.buckets[usize::from(t)].len() as u64
            };
            total += w;
            self.cum[i] = total;
        }
        self.off_total = total;
        self.dirty = false;
    }

    /// Removes on-list entry `hole`, repairing the adjacency mirror of
    /// the entry swapped into its place. The removed edge's own cells (if
    /// it still exists) are the caller's to clear.
    fn on_list_remove(&mut self, hole: usize) {
        self.on_list.swap_remove(hole);
        if let Some(&(a, b)) = self.on_list.get(hole) {
            self.sp.set_edge_on_pos(a as usize, b as usize, hole as u32);
        }
    }

    /// Refreshes the on-list membership of every active edge incident to
    /// `u` — O(deg + deg of changed counterparts) after a node-state
    /// change; membership state rides the adjacency cells, so unchanged
    /// edges cost one table lookup each.
    fn refresh_on_incident(&mut self, u: usize) {
        let su = self.sp.state_index(u);
        for i in 0..self.sp.adj[u].len() {
            let AdjCell { to, on_pos } = self.sp.adj[u][i];
            let w = to as usize;
            let want = self.table.on_link_only(su, self.sp.state_index(w));
            let member = on_pos != NOT_ON;
            if want == member {
                continue;
            }
            if want {
                let at = self.on_list.len() as u32;
                let (a, b) = if u < w { (u, w) } else { (w, u) };
                self.on_list.push((a as u32, b as u32));
                self.sp.set_edge_on_pos(u, w, at);
            } else {
                self.sp.set_edge_on_pos(u, w, NOT_ON);
                self.on_list_remove(on_pos as usize);
            }
        }
    }

    /// Draws a candidate ordered pair uniformly from the `k2` ordered
    /// candidates (`k2 = off_total + 2·on_len`, weights up to date).
    fn draw_candidate(&mut self, k2: u64) -> (usize, usize) {
        let r = self.rng.random_range(0..k2);
        if r < self.off_total {
            self.off_candidate_at(r)
        } else {
            let e = r - self.off_total;
            let (a, b) = self.on_list[(e / 2) as usize];
            if e % 2 == 1 {
                (b as usize, a as usize)
            } else {
                (a as usize, b as usize)
            }
        }
    }

    /// The off-candidate at cumulative rank `r < off_total`: a
    /// cumulative-weight bucket search, then one uniform member per side
    /// (distinct indices when the sides share a bucket).
    fn off_candidate_at(&mut self, r: u64) -> (usize, usize) {
        let b = self.cum.partition_point(|&c| c <= r);
        let (s, t) = self.off_pairs[b];
        let bs = &self.sp.buckets[usize::from(s)];
        if s == t {
            let c = bs.len();
            let i = self.rng.random_range(0..c);
            let mut j = self.rng.random_range(0..c - 1);
            if j >= i {
                j += 1;
            }
            (bs[i] as usize, bs[j] as usize)
        } else {
            let u = bs[self.rng.random_range(0..bs.len())];
            let bt = &self.sp.buckets[usize::from(t)];
            let v = bt[self.rng.random_range(0..bt.len())];
            (u as usize, v as usize)
        }
    }

    /// Skips the geometric number of certainly-ineffective draws and
    /// simulates the next candidate interaction, without letting the step
    /// counter pass `max_steps` — same contract as
    /// [`EventSim::advance`](crate::EventSim::advance).
    ///
    /// `Quiescent` is returned when the candidate set is empty, or when a
    /// long run of rejected candidates triggers the exact quiescence scan
    /// and it certifies that no pair can ever change again (rejections
    /// change nothing, so a quiescent configuration stays quiescent).
    pub fn advance(&mut self, max_steps: u64) -> EventStep {
        debug_assert!(
            self.eg.is_none(),
            "per-draw advance never runs inside an endgame session"
        );
        if self.dirty {
            self.rebuild_weights();
        }
        let k2 = self.off_total + 2 * self.on_list.len() as u64;
        if k2 == 0 || (self.rejection_run >= self.probe_at && self.probe_quiescence()) {
            return EventStep::Quiescent;
        }
        let n = self.sp.n() as u64;
        let m2 = n * (n - 1);
        let remaining = u128::from(max_steps).saturating_sub(self.book.steps);
        if remaining == 0 {
            return EventStep::BudgetExhausted;
        }
        let skipped = if k2 == m2 {
            0
        } else {
            let p = k2 as f64 / m2 as f64;
            // The inversion table answers with the same value the direct
            // computation would produce for this raw draw; a miss falls
            // back to the `ln` inversion on the *same* draw, so the coin
            // stream is bit-identical either way.
            let raw = self.rng.next_u64();
            let g = self
                .geo
                .note(p)
                .and_then(|c| c.lookup(raw))
                .unwrap_or_else(|| geometric_skip(unit_open01(raw), p));
            // Candidate would land past the budget: the whole remaining
            // window is ineffective (P(skips ≥ r) is exactly the naive
            // probability of r misses in a row).
            if g >= remaining as f64 {
                self.book.steps = u128::from(max_steps);
                return EventStep::BudgetExhausted;
            }
            g as u64
        };
        self.book.steps += u128::from(skipped) + 1;

        let (u, v) = self.draw_candidate(k2);
        let (u, v) = if self.commits.is_empty() {
            (u, v)
        } else {
            self.redirect_committed(u, v)
        };
        let pair = (u, v);
        let link = Link::from(self.sp.is_active(u, v));
        let (su, sv) = (self.sp.state_index(u), self.sp.state_index(v));
        // Accept/reject on the actual edge state: a rejected candidate is
        // one real (ineffective) step, exactly as the naive engine would
        // record the same draw.
        if !self.table.can_affect(su, sv, link) {
            self.rejection_run += 1;
            return EventStep::Candidate {
                skipped,
                result: StepResult::Ineffective { pair },
            };
        }
        let outcome = (self.interact)(&self.machine, su, sv, link, &mut self.rng);
        let Some((a2, b2, l2)) = outcome else {
            // A randomized rule sampled the identity.
            self.rejection_run += 1;
            return EventStep::Candidate {
                skipped,
                result: StepResult::Ineffective { pair },
            };
        };
        self.rejection_run = 0;
        self.probe_at = QUIESCENCE_PROBE;
        let edge_changed = l2 != link;
        if edge_changed {
            let on_pos = self.sp.set_edge(u, v, l2.is_on());
            if on_pos != NOT_ON {
                // A deactivated on-list edge leaves the list; its
                // adjacency cells are already gone.
                self.on_list_remove(on_pos as usize);
            }
        }
        if self.sp.set_state_index(u, a2) | self.sp.set_state_index(v, b2) {
            self.dirty = true;
        }
        self.refresh_on_incident(u);
        self.refresh_on_incident(v);
        self.book.record_effective(edge_changed);
        EventStep::Candidate {
            skipped,
            result: StepResult::Effective { pair, edge_changed },
        }
    }

    /// Exact quiescence scan, run when a long rejection streak suggests
    /// the candidate set may contain no actually-effective pair: since
    /// rejected candidates change nothing, a quiescent configuration can
    /// never leave quiescence, so certifying it once is sound forever.
    ///
    /// O(Σ bucket × degree) worst case; the doubling `probe_at` schedule
    /// keeps its amortized cost below the rejections that trigger it.
    fn probe_quiescence(&mut self) -> bool {
        if self.is_quiescent_scan() {
            true
        } else {
            self.probe_at = self.probe_at.saturating_mul(2);
            false
        }
    }

    fn is_quiescent_scan(&self) -> bool {
        if !self.on_list.is_empty() {
            return false;
        }
        for &(s, t) in &self.off_pairs {
            let (s, t) = (usize::from(s), usize::from(t));
            let cs = self.sp.buckets[s].len() as u64;
            let w = if s == t {
                cs * cs.saturating_sub(1)
            } else {
                cs * self.sp.buckets[t].len() as u64
            };
            if w == 0 {
                continue;
            }
            // Ordered (s, t) candidates that sit on an active edge.
            let ordered_active: u64 = self.sp.buckets[s]
                .iter()
                .map(|&u| {
                    self.sp.adj[u as usize]
                        .iter()
                        .filter(|c| usize::from(self.sp.idx[c.to as usize]) == t)
                        .count() as u64
                })
                .sum();
            if w > ordered_active {
                // Some (s, t) pair has an inactive edge, and the bucket
                // exists because can_affect(s, t, Off) holds.
                return false;
            }
            if ordered_active > 0 && self.table.can_affect(s, t, Link::On) {
                return false;
            }
        }
        true
    }

    /// Whether no pair of nodes has any effective interaction. O(1) when
    /// the candidate set is empty; otherwise an exact scan over the
    /// candidate buckets (the set over-approximates, so emptiness is
    /// sufficient but not necessary).
    #[must_use]
    pub fn is_quiescent(&mut self) -> bool {
        if self.dirty {
            self.rebuild_weights();
        }
        self.off_total + 2 * self.on_list.len() as u64 == 0 || self.is_quiescent_scan()
    }

    /// Runs until `stable` holds or `max_steps` total steps have elapsed —
    /// same predicate-evaluation points (initially and after every
    /// effective interaction) and outcome distribution as
    /// [`EventSim::run_until`](crate::EventSim::run_until), with the
    /// predicate reading the sparse view.
    pub fn run_until(
        &mut self,
        mut stable: impl FnMut(&SparsePop) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        if stable(&self.sp) {
            return self.book.stabilized_now();
        }
        loop {
            match self.advance(max_steps) {
                EventStep::Quiescent => {
                    self.book.steps = self.book.steps.max(u128::from(max_steps));
                    return RunOutcome::MaxSteps {
                        steps: sat64(self.book.steps),
                    };
                }
                EventStep::BudgetExhausted => {
                    return RunOutcome::MaxSteps {
                        steps: sat64(self.book.steps),
                    }
                }
                EventStep::Candidate { result, .. } => {
                    if result.is_effective() && stable(&self.sp) {
                        return self.book.stabilized_now();
                    }
                }
            }
        }
    }

    /// Like [`run_until`](Self::run_until) but only re-evaluates the
    /// predicate when an edge changes. Correct (and faster) for
    /// predicates that depend only on the output graph.
    ///
    /// This is also where the **batched endgame** engages: when every
    /// on-candidate is an edge of a lone-walker path (the merging-lines
    /// endgame of Simple Global Line and its kin), the engine opens a
    /// continuous-time session that absorbs whole walks from their exact
    /// first-passage laws instead of draw by draw, racing them against
    /// the remaining off-candidates through independent Poisson clocks.
    /// Batching is sound precisely here — walk moves never change edges,
    /// so no predicate evaluation point is skipped — and is gated to
    /// unbounded budgets (a session cannot stop at an interior step
    /// count) and to fault plans with no pending events (a session
    /// cannot be interrupted).
    pub fn run_until_edges(
        &mut self,
        mut stable: impl FnMut(&SparsePop) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        if stable(&self.sp) {
            return self.book.stabilized_now();
        }
        let batching = max_steps == u64::MAX
            && self.faults.as_ref().is_none_or(|fs| fs.next_at().is_none());
        loop {
            if batching {
                match self.endgame_step() {
                    EndgameEvent::Applied { edge_changed } => {
                        if edge_changed && stable(&self.sp) {
                            self.endgame_finish();
                            return self.book.stabilized_now();
                        }
                        continue;
                    }
                    EndgameEvent::Idle => {}
                }
            }
            match self.advance(max_steps) {
                EventStep::Quiescent => {
                    self.book.steps = self.book.steps.max(u128::from(max_steps));
                    return RunOutcome::MaxSteps {
                        steps: sat64(self.book.steps),
                    };
                }
                EventStep::BudgetExhausted => {
                    return RunOutcome::MaxSteps {
                        steps: sat64(self.book.steps),
                    }
                }
                EventStep::Candidate {
                    result:
                        StepResult::Effective {
                            edge_changed: true, ..
                        },
                    ..
                } => {
                    if stable(&self.sp) {
                        return self.book.stabilized_now();
                    }
                }
                EventStep::Candidate { .. } => {}
            }
        }
    }

    /// Advances until the step counter reaches exactly `target` —
    /// geometric memorylessness makes stopping and resuming mid-skip
    /// exact (see [`EventSim::run_to`](crate::EventSim::run_to)).
    pub fn run_to(&mut self, target: u64) {
        while self.book.steps < u128::from(target) {
            match self.advance(target) {
                EventStep::Quiescent => {
                    self.book.steps = u128::from(target);
                    return;
                }
                EventStep::BudgetExhausted => return,
                EventStep::Candidate { .. } => {}
            }
        }
    }

    // -----------------------------------------------------------------
    // Batched endgame: closed-form absorption of lone random walkers.
    // -----------------------------------------------------------------

    /// Redirects a drawn candidate that touches a committed walker: the
    /// walker's next move is distributed by the Doob h-transform of its
    /// commitment, not by the unbiased choice between its two edges, so
    /// the drawn neighbour is replaced by an [`h_step`] draw (the
    /// drawn *orientation*, which is independent of the direction, is
    /// kept). Everything else about the step — acceptance, the
    /// interaction itself, the bookkeeping — stays on the ordinary path.
    fn redirect_committed(&mut self, u: usize, v: usize) -> (usize, usize) {
        let Some(ci) = self
            .commits
            .iter()
            .position(|&(w, _)| w as usize == u || w as usize == v)
        else {
            return (u, v);
        };
        let w = self.commits[ci].0 as usize;
        let walker_first = w == u;
        let (z, len, exit0, rem) = {
            let c = &self.commits[ci].1;
            (c.z, c.path.len() - 1, c.exit0, c.rem)
        };
        let x2 = h_step(&mut self.rng, z, len, exit0, rem);
        let target = self.commits[ci].1.path[x2] as usize;
        if x2 == 0 || x2 == len {
            // The commitment is spent: this step is the terminal contact
            // (the interaction rule performs the absorption).
            debug_assert_eq!(rem, 1);
            self.commits.swap_remove(ci);
        } else {
            let c = &mut self.commits[ci].1;
            c.z = x2;
            c.rem = rem - 1;
            // The swap about to be applied moves the walker state onto
            // the target node.
            self.commits[ci].0 = target as u32;
        }
        if walker_first {
            (w, target)
        } else {
            (target, w)
        }
    }

    /// Processes one batched-endgame event, opening a session first if
    /// none is active. With a session open, every ordered candidate owns
    /// an independent unit-rate Poisson clock, so the next event is the
    /// earlier of the aggregated off-candidate clock (rate `off_total`,
    /// memoryless — redrawn each call) and the earliest walker
    /// absorption deadline; arrival order in session time is exactly the
    /// discrete chain's candidate-draw order.
    fn endgame_step(&mut self) -> EndgameEvent {
        if self.eg.is_none() && !self.endgame_open() {
            return EndgameEvent::Idle;
        }
        if self.dirty {
            self.rebuild_weights();
        }
        let w_o = self.off_total;
        let wcount = self.eg.as_ref().expect("session is open").walkers.len();
        debug_assert_eq!(self.on_list.len(), 2 * wcount);
        if w_o == 0 && wcount == 0 {
            // Empty candidate set: close and let the per-draw path
            // report quiescence.
            self.endgame_finish();
            return EndgameEvent::Idle;
        }
        // Earliest walker deadline; ids are never reused, so an id
        // missing from the registry marks a stale heap entry.
        let next_walker = {
            let eg = self.eg.as_mut().expect("session is open");
            loop {
                match eg.heap.peek() {
                    Some(&Reverse((bits, id))) => {
                        if eg.walkers.contains_key(&id) {
                            break Some((f64::from_bits(bits), id));
                        }
                        eg.heap.pop();
                    }
                    None => break None,
                }
            }
        };
        let t_ext = (w_o > 0).then(|| {
            let u = unit_open01(self.rng.next_u64());
            self.eg.as_ref().expect("session is open").now - u.ln() / w_o as f64
        });
        let (tau, absorb) = match (t_ext, next_walker) {
            (Some(te), Some((td, _))) if te <= td => (te, None),
            (Some(te), None) => (te, None),
            (_, Some((td, id))) => (td, Some(id)),
            (None, None) => unreachable!("some candidate clock exists"),
        };
        {
            // Skipped (certainly-ineffective) raw draws accrue as a
            // Poisson count with the pre-event candidate weight.
            let n = self.sp.n() as u64;
            let m2 = (n * (n - 1)) as f64;
            let k2 = w_o as f64 + 4.0 * wcount as f64;
            let eg = self.eg.as_mut().expect("session is open");
            eg.reject_integral += (m2 - k2) * (tau - eg.now);
            eg.now = tau;
        }
        match absorb {
            Some(id) => self.endgame_absorb(id),
            None => self.endgame_external(),
        }
    }

    /// One aggregated off-candidate event: a uniform off-candidate draw
    /// applied through the standard accept/reject machinery. Off-link
    /// isolation (validated for every path state) keeps externals off
    /// the walker paths, so the lazily-parked walker states are never
    /// observed; an effective external may *create* walker paths, which
    /// register here, or break batchable form, which closes the session.
    fn endgame_external(&mut self) -> EndgameEvent {
        self.eg.as_mut().expect("session is open").cand_done += 1;
        let r = self.rng.random_range(0..self.off_total);
        let (u, v) = self.off_candidate_at(r);
        debug_assert!(
            {
                let eg = self.eg.as_ref().expect("session is open");
                !eg.claim.contains_key(&(u as u32)) && !eg.claim.contains_key(&(v as u32))
            },
            "off-isolation keeps externals off walker paths"
        );
        let link = Link::from(self.sp.is_active(u, v));
        let (su, sv) = (self.sp.state_index(u), self.sp.state_index(v));
        let outcome = if self.table.can_affect(su, sv, link) {
            (self.interact)(&self.machine, su, sv, link, &mut self.rng)
        } else {
            None
        };
        let Some((a2, b2, l2)) = outcome else {
            // An off-bucket pair sitting on an active edge, or a sampled
            // identity: one ordinary ineffective step.
            return self.endgame_ineffective();
        };
        self.probe_at = QUIESCENCE_PROBE;
        let edge_changed = l2 != link;
        if edge_changed {
            let on_pos = self.sp.set_edge(u, v, l2.is_on());
            if on_pos != NOT_ON {
                self.on_list_remove(on_pos as usize);
            }
        }
        if self.sp.set_state_index(u, a2) | self.sp.set_state_index(v, b2) {
            self.dirty = true;
        }
        self.refresh_on_incident(u);
        self.refresh_on_incident(v);
        {
            let eg = self.eg.as_mut().expect("session is open");
            eg.ineff_run = 0;
            eg.eff_done += 1;
            let mark = Mark {
                tau: eg.now,
                cand_done: eg.cand_done,
                reject_integral: eg.reject_integral,
            };
            eg.eff_mark = Some(mark);
            if edge_changed {
                eg.edge_events += 1;
                eg.change = Some(mark);
                // Every absorption so far is fully inside the new mark's
                // candidate tally.
                eg.absorbed_recs.clear();
            }
        }
        if !self.endgame_register_incident(&[u as u32, v as u32]) {
            self.endgame_finish();
            self.endgame_retry_after = self.book.effective_steps + ENDGAME_RETRY;
        }
        EndgameEvent::Applied { edge_changed }
    }

    /// Books one rejected/identity off-candidate draw, running the exact
    /// quiescence probe when the session has no walkers left (the view
    /// is then fully materialized, so the scan's verdict is sound).
    fn endgame_ineffective(&mut self) -> EndgameEvent {
        let (run, no_walkers) = {
            let eg = self.eg.as_mut().expect("session is open");
            eg.ineff_run += 1;
            (eg.ineff_run, eg.walkers.is_empty())
        };
        if no_walkers && run >= self.probe_at {
            if self.is_quiescent_scan() {
                self.endgame_finish();
                // `advance` re-certifies immediately and reports
                // `Quiescent`.
                self.rejection_run = self.probe_at;
            } else {
                self.probe_at = self.probe_at.saturating_mul(2);
            }
        }
        EndgameEvent::Applied {
            edge_changed: false,
        }
    }

    /// A walker's absorption deadline fired: credit its full own-draw
    /// schedule, materialize it adjacent to its committed exit, and
    /// apply the terminal contact as an ordinary effective interaction —
    /// real rule, real coins, uniform orientation.
    fn endgame_absorb(&mut self, id: u32) -> EndgameEvent {
        let w = {
            let eg = self.eg.as_mut().expect("session is open");
            eg.heap.pop();
            let w = eg.walkers.remove(&id).expect("deadline of a live walker");
            for nd in &w.path {
                eg.claim.remove(nd);
            }
            eg.cand_done += u128::from(w.rem);
            eg.eff_done += u128::from(w.rem);
            eg.ineff_run = 0;
            // Draws of this walker that precede a pending change mark
            // are missing from that mark's tally — keep what the close
            // needs to split them.
            if let Some(m) = eg.change {
                if w.born < m.tau {
                    eg.absorbed_recs.push_back(AbsorbedRec {
                        rem: w.rem,
                        born: w.born,
                        gamma: w.gamma,
                        absorbed_at: eg.now,
                    });
                }
            }
            w
        };
        self.probe_at = QUIESCENCE_PROBE;
        let len = w.path.len() - 1;
        let (adj, end) = if w.exit0 {
            (w.path[1] as usize, w.path[0] as usize)
        } else {
            (w.path[len - 1] as usize, w.path[len] as usize)
        };
        let old = w.path[w.z] as usize;
        if adj != old {
            let s_w = self.sp.state_index(old);
            let s_int = self.sp.state_index(adj);
            self.sp.set_state_index(old, s_int);
            self.sp.set_state_index(adj, s_w);
            self.refresh_on_incident(old);
        }
        let (x, y) = if self.rng.random_bool(0.5) {
            (adj, end)
        } else {
            (end, adj)
        };
        let (sx, sy) = (self.sp.state_index(x), self.sp.state_index(y));
        let (a2, b2, l2) = (self.interact)(&self.machine, sx, sy, Link::On, &mut self.rng)
            .expect("is_certain certified an effective contact");
        let edge_changed = l2 != Link::On;
        if edge_changed {
            let on_pos = self.sp.set_edge(x, y, l2.is_on());
            if on_pos != NOT_ON {
                self.on_list_remove(on_pos as usize);
            }
        }
        if self.sp.set_state_index(x, a2) | self.sp.set_state_index(y, b2) {
            self.dirty = true;
        }
        self.refresh_on_incident(x);
        self.refresh_on_incident(y);
        {
            let eg = self.eg.as_mut().expect("session is open");
            let mark = Mark {
                tau: eg.now,
                cand_done: eg.cand_done,
                reject_integral: eg.reject_integral,
            };
            eg.eff_mark = Some(mark);
            if edge_changed {
                eg.edge_events += 1;
                eg.change = Some(mark);
                eg.absorbed_recs.clear();
            }
        }
        if !self.endgame_register_incident(&[old as u32, adj as u32, end as u32]) {
            self.endgame_finish();
            self.endgame_retry_after = self.book.effective_steps + ENDGAME_RETRY;
        }
        EndgameEvent::Applied { edge_changed }
    }

    /// Attempts to open a session: every on-candidate must validate into
    /// a lone-walker path. Validation is a pure two-phase check — no
    /// coins are consumed until every path has passed — so a failed
    /// attempt leaves the per-draw engine untouched (and throttled from
    /// rescanning for [`ENDGAME_RETRY`] effective steps).
    fn endgame_open(&mut self) -> bool {
        if self.dirty {
            self.rebuild_weights();
        }
        if self.on_list.is_empty() || self.book.effective_steps < self.endgame_retry_after {
            return false;
        }
        let mut fresh: Vec<(Vec<u32>, usize)> = Vec::new();
        let mut seen: HashSet<u32> = HashSet::new();
        for i in 0..self.on_list.len() {
            let (a, b) = self.on_list[i];
            let ac = seen.contains(&a);
            let bc = seen.contains(&b);
            if ac && bc {
                continue; // second edge of an already-validated walker
            }
            if ac == bc {
                if let Some((path, z)) = self.endgame_validate_path(a as usize, b as usize) {
                    seen.extend(path.iter().copied());
                    fresh.push((path, z));
                    continue;
                }
            }
            // A candidate straddling a path, or a failed validation.
            self.endgame_retry_after = self.book.effective_steps + ENDGAME_RETRY;
            return false;
        }
        self.eg = Some(Endgame::default());
        for (path, z) in fresh {
            self.endgame_register_path(path, z);
        }
        true
    }

    /// Scans the active edges incident to `nodes` for on-candidates not
    /// yet owned by a registered walker, validating and registering each
    /// new lone-walker path. Returns `false` when validation fails — the
    /// configuration has left batchable form and the session must close.
    fn endgame_register_incident(&mut self, nodes: &[u32]) -> bool {
        let mut fresh: Vec<(Vec<u32>, usize)> = Vec::new();
        {
            let eg = self.eg.as_ref().expect("session is open");
            let mut seen: HashSet<u32> = HashSet::new();
            for &u in nodes {
                for cell in &self.sp.adj[u as usize] {
                    if cell.on_pos == NOT_ON {
                        continue;
                    }
                    let v = cell.to;
                    let uc = eg.claim.contains_key(&u) || seen.contains(&u);
                    let vc = eg.claim.contains_key(&v) || seen.contains(&v);
                    if uc && vc {
                        // Claimed paths never gain candidates, so both
                        // ends claimed means a known walker edge.
                        debug_assert_eq!(eg.claim.get(&u), eg.claim.get(&v));
                        continue;
                    }
                    if uc != vc {
                        return false; // a candidate straddling a path
                    }
                    let Some((path, z)) = self.endgame_validate_path(u as usize, v as usize)
                    else {
                        return false;
                    };
                    seen.extend(path.iter().copied());
                    fresh.push((path, z));
                }
            }
        }
        for (path, z) in fresh {
            self.endgame_register_path(path, z);
        }
        true
    }

    /// Validates the maximal path through the on-candidate `{a, b}` as a
    /// lone-walker path: a simple path whose unique walker interior
    /// carries exactly the path's two on-candidates, whose interior
    /// swaps are coin-free state exchanges
    /// ([`EnumerableMachine::det_interaction`]), whose endpoint contacts
    /// are certainly effective ([`EnumerableMachine::is_certain`]), and
    /// whose states are isolated from every off-link rule — so until the
    /// next endpoint contact the configuration evolves exactly as an
    /// independent unbiased random walk under uniform labels. Every
    /// requirement is *checked*, never assumed.
    fn endgame_validate_path(&self, a: usize, b: usize) -> Option<(Vec<u32>, usize)> {
        let path = self.extract_path(a, b)?;
        let len = path.len() - 1;
        if len < 2 {
            return None;
        }
        // The on-candidates along the path must be exactly two adjacent
        // edges — the walker sits between them.
        let ons: Vec<usize> = (0..len)
            .filter(|&i| self.edge_is_on_entry(path[i] as usize, path[i + 1] as usize))
            .collect();
        let z = match ons.as_slice() {
            &[i, j] if j == i + 1 => i + 1,
            _ => return None,
        };
        let states: Vec<usize> = path
            .iter()
            .map(|&x| self.sp.state_index(x as usize))
            .collect();
        let s_w = states[z];
        // Interior uniformity off the walker.
        let mut s_int = None;
        for (x, &s) in states.iter().enumerate().take(len).skip(1) {
            if x == z {
                continue;
            }
            match s_int {
                None => s_int = Some(s),
                Some(si) if si == s => {}
                _ => return None,
            }
        }
        if s_int == Some(s_w) {
            return None;
        }
        // Interior moves must be pure coin-free state swaps, and an
        // interior–interior or interior–endpoint edge must never become
        // a candidate as the walker moves past it.
        if let Some(si) = s_int {
            let fwd = self.machine.det_interaction(s_w, si, Link::On);
            let rev = self.machine.det_interaction(si, s_w, Link::On);
            if fwd != Some((si, s_w, Link::On)) || rev != Some((s_w, si, Link::On)) {
                return None;
            }
            if self.table.can_affect(si, si, Link::On) {
                return None;
            }
        }
        // Endpoint contacts must be certainly effective (so hitting the
        // boundary *is* absorption).
        for &e in &[states[0], states[len]] {
            if !self.machine.is_certain(s_w, e, Link::On)
                || !self.machine.is_certain(e, s_w, Link::On)
            {
                return None;
            }
            if let Some(si) = s_int {
                if self.table.can_affect(si, e, Link::On) {
                    return None;
                }
            }
        }
        // Off-link isolation for every state on the path: no off rule
        // may ever select a path node, whatever states the rest of the
        // population reaches (`can_affect` is symmetric).
        let size = self.table.size();
        for s in [Some(s_w), s_int, Some(states[0]), Some(states[len])]
            .into_iter()
            .flatten()
        {
            for x in 0..size {
                if self.table.can_affect(s, x, Link::Off) {
                    return None;
                }
            }
        }
        Some((path, z))
    }

    /// Whether the active edge `{u, v}` currently rides the on list.
    fn edge_is_on_entry(&self, u: usize, v: usize) -> bool {
        self.sp.adj[u]
            .iter()
            .find(|c| c.to as usize == v)
            .is_some_and(|c| c.on_pos != NOT_ON)
    }

    /// Registers a validated lone-walker path: reuses a carried per-draw
    /// commitment if the walker has one, otherwise samples the joint
    /// absorption law ([`sample_absorption`]), then embeds the schedule
    /// in the session clock — the walker's four ordered candidates form
    /// a rate-4 Poisson class, so its `rem`-th own-draw lands at
    /// `born + Gamma(rem)/4`.
    fn endgame_register_path(&mut self, path: Vec<u32>, z: usize) {
        let len = path.len() - 1;
        let (rem, exit0) = match self.commits.iter().position(|&(wn, _)| wn == path[z]) {
            Some(ci) => {
                let (_, c) = self.commits.swap_remove(ci);
                debug_assert!(c.z == z && c.path == path);
                (c.rem, c.exit0)
            }
            None => {
                let (exit0, rem) = sample_absorption(&mut self.rng, z, len);
                (rem, exit0)
            }
        };
        let gamma = sample_gamma(&mut self.rng, rem as f64);
        let eg = self.eg.as_mut().expect("session is open");
        let id = eg.next_id;
        eg.next_id += 1;
        let deadline = eg.now + gamma / 4.0;
        eg.heap.push(Reverse((deadline.to_bits(), id)));
        for &nd in &path {
            let prev = eg.claim.insert(nd, id);
            debug_assert!(prev.is_none(), "path nodes are unclaimed");
        }
        eg.walkers.insert(
            id,
            Walker {
                path,
                z,
                exit0,
                rem,
                born: eg.now,
                gamma,
            },
        );
    }

    /// Follows active edges outward from `from` (coming from `prev`)
    /// through degree-2 nodes, appending every node visited; `None` on a
    /// junction (degree > 2) or a cycle.
    fn extend_ray(&self, from: usize, mut prev: usize, out: &mut Vec<u32>) -> Option<()> {
        let mut cur = from;
        loop {
            out.push(cur as u32);
            if out.len() > self.sp.n() {
                return None; // closed cycle: no endpoints to stop at
            }
            match self.sp.degree(cur) {
                1 => return Some(()),
                2 => {
                    let next = self
                        .sp
                        .neighbors(cur)
                        .find(|&w| w != prev)
                        .expect("degree 2 has a second neighbour");
                    prev = cur;
                    cur = next;
                }
                _ => return None,
            }
        }
    }

    /// The maximal simple path through the active edge `{a, b}`, as the
    /// ordered node chain; `None` on junctions or cycles. The chain is
    /// canonically oriented (smaller endpoint id first) so that repeated
    /// extractions of an unchanged line agree — commitments store
    /// positions and exit sides relative to this orientation.
    fn extract_path(&self, a: usize, b: usize) -> Option<Vec<u32>> {
        let mut left: Vec<u32> = Vec::new();
        self.extend_ray(a, b, &mut left)?;
        left.reverse();
        let mut path = left;
        self.extend_ray(b, a, &mut path)?;
        if path[0] > *path.last().expect("a ray visits at least one node") {
            path.reverse();
        }
        Some(path)
    }

    /// Closes the session at its current clock: samples each alive
    /// walker's progress (`Binomial(rem−1, ·)` over the uniform arrival
    /// times of its Gamma embedding), restores the deferred raw-step
    /// clock (the candidate totals plus the Poisson count of skipped
    /// draws), resolves the pending marks into raw step indices, and
    /// materializes the alive walkers back into per-draw commitments via
    /// the future-conditioned propagator. No-op without an open session.
    fn endgame_finish(&mut self) {
        let Some(eg) = self.eg.take() else { return };
        let tau_end = eg.now;
        // Alive walkers' progress, in id order (deterministic coins): a
        // rate-4 Poisson clock conditioned on its `rem`-th arrival at
        // `born + gamma/4` puts the first `rem − 1` arrivals iid uniform
        // on that span.
        let mut alive: Vec<(u32, u64)> = Vec::with_capacity(eg.walkers.len());
        let mut cand_total = eg.cand_done;
        let mut eff_total = eg.eff_done;
        for (&id, w) in &eg.walkers {
            let span = tau_end - w.born;
            let j = if w.rem <= 1 || span <= 0.0 {
                0
            } else {
                let p = (4.0 * span / w.gamma).clamp(0.0, 1.0);
                sample_binomial(&mut self.rng, w.rem - 1, p)
            };
            cand_total += u128::from(j);
            eff_total += u128::from(j);
            alive.push((id, j));
        }
        // Skipped draws: Poisson with the accrued ineffective intensity.
        let rejected = if eg.reject_integral > 0.0 {
            sample_poisson(&mut self.rng, eg.reject_integral)
        } else {
            0
        };
        let base = self.book.steps;
        self.book.steps = base + cand_total + rejected;
        self.book.effective_steps += eff_total;
        self.book.edge_events += eg.edge_events;
        // `last_effective`: every close path ends on an effective event
        // except the quiescence-probe close, where no walkers remain, so
        // the mark resolves from its candidate tally plus a thinned
        // share of the skipped draws alone (an inhomogeneous Poisson
        // count splits at a time by its intensity-integral ratio).
        let mut rej_before_eff = rejected;
        if let Some(me) = eg.eff_mark {
            self.book.last_effective = if me.tau == tau_end {
                self.book.steps
            } else {
                debug_assert!(
                    alive.is_empty(),
                    "a mid-session eff mark only survives a probe close"
                );
                let re = if rejected > 0 {
                    let p = (me.reject_integral / eg.reject_integral).clamp(0.0, 1.0);
                    let r64 = u64::try_from(rejected).unwrap_or(u64::MAX);
                    u128::from(sample_binomial(&mut self.rng, r64, p))
                } else {
                    0
                };
                rej_before_eff = re;
                base + me.cand_done + re
            };
        }
        // `last_output_change`: the change mark precedes (or is) the eff
        // mark, so the draws resolved at close thin consistently inside
        // the eff mark's shares.
        if let Some(mc) = eg.change {
            let me = eg.eff_mark.expect("an edge change is an effective event");
            self.book.last_output_change = if mc.tau == me.tau {
                self.book.last_effective
            } else {
                let mut idx = base + mc.cand_done;
                for &(id, j) in &alive {
                    let w = &eg.walkers[&id];
                    if j == 0 || w.born >= mc.tau {
                        continue;
                    }
                    let p = ((mc.tau - w.born) / (tau_end - w.born)).clamp(0.0, 1.0);
                    idx += u128::from(sample_binomial(&mut self.rng, j, p));
                }
                for rec in &eg.absorbed_recs {
                    if rec.absorbed_at <= mc.tau || rec.born >= mc.tau || rec.rem <= 1 {
                        continue;
                    }
                    let p = (4.0 * (mc.tau - rec.born) / rec.gamma).clamp(0.0, 1.0);
                    idx += u128::from(sample_binomial(&mut self.rng, rec.rem - 1, p));
                }
                if rej_before_eff > 0 {
                    let p = (mc.reject_integral / me.reject_integral.max(f64::MIN_POSITIVE))
                        .clamp(0.0, 1.0);
                    let r64 = u64::try_from(rej_before_eff).unwrap_or(u64::MAX);
                    idx += u128::from(sample_binomial(&mut self.rng, r64, p));
                }
                idx
            };
        }
        // Materialize the alive walkers: position from the
        // future-conditioned bridge, remainder carried as a commitment.
        for &(id, j) in &alive {
            let w = &eg.walkers[&id];
            let len = w.path.len() - 1;
            let rem = w.rem - j;
            let z2 = if j == 0 {
                w.z
            } else {
                let weights = bridge_weights_with_future(w.z, len, j, rem, w.exit0);
                // A numerically dead row (astronomically late bridges
                // underflow the spectral terms) must still land in the
                // interior.
                sample_weighted(&mut self.rng, &weights).clamp(1, len - 1)
            };
            let old = w.path[w.z] as usize;
            let new = w.path[z2] as usize;
            if new != old {
                let s_w = self.sp.state_index(old);
                let s_int = self.sp.state_index(new);
                self.sp.set_state_index(old, s_int);
                self.sp.set_state_index(new, s_w);
                self.refresh_on_incident(old);
                self.refresh_on_incident(new);
            }
            self.commits.push((
                w.path[z2],
                Commit {
                    path: w.path.clone(),
                    z: z2,
                    rem,
                    exit0: w.exit0,
                },
            ));
        }
        // The configuration moved while the per-draw rejection evidence
        // was idle; void it.
        self.rejection_run = 0;
        self.probe_at = QUIESCENCE_PROBE;
    }

    /// Applies one resolved fault event by pure bucket/on-list
    /// reclassification: crashed nodes leave their bucket and shed their
    /// active edges; arrivals re-enter their retained bucket; deleted
    /// edges leave the on list. The skip denominator never moves.
    fn apply_resolved(&mut self, resolved: ResolvedFault) {
        debug_assert!(
            self.commits.is_empty(),
            "fault events and endgame commitments cannot coexist"
        );
        debug_assert!(
            self.eg.is_none(),
            "fault events never land inside an endgame session"
        );
        match resolved {
            ResolvedFault::Noop => return,
            ResolvedFault::Crash(x) => {
                // The sparse adjacency lists neighbors in arbitrary
                // order; notifications are specified in ascending node
                // order, so sort before shedding edges.
                let mut neighbors: Vec<usize> = self.sp.neighbors(x).collect();
                neighbors.sort_unstable();
                for &w in &neighbors {
                    let on_pos = self.sp.set_edge(x, w, false);
                    if on_pos != NOT_ON {
                        self.on_list_remove(on_pos as usize);
                    }
                }
                self.sp.bucket_remove(x);
                self.dirty = true;
                if !neighbors.is_empty() {
                    self.book.edge_events += neighbors.len() as u64;
                    self.book.last_output_change = self.book.steps;
                }
                // Crash notifications: pure bucket moves plus on-list
                // refreshes for the notified nodes' surviving edges.
                for &w in &neighbors {
                    let su = self.sp.state_index(w);
                    if let Some(new) = self.machine.notify_indexed(su) {
                        if self.sp.set_state_index(w, new) {
                            self.refresh_on_incident(w);
                        }
                    }
                }
            }
            ResolvedFault::Arrive(x) => {
                self.sp.bucket_insert(x);
                self.dirty = true;
            }
            ResolvedFault::DeleteEdge(u, v) => self.delete_edge_fault(u, v),
            ResolvedFault::DeleteRandomEdges { count, mut rng } => {
                // The dense engines sample from `EdgeSet::active_edges`'s
                // triangular-index order, which is lexicographic in
                // (min, max) — sort the adjacency-derived list to match.
                let mut edges: Vec<(usize, usize)> = Vec::with_capacity(self.sp.active_count());
                for u in 0..self.sp.n() {
                    edges.extend(self.sp.neighbors(u).filter(|&w| w > u).map(|w| (u, w)));
                }
                edges.sort_unstable();
                for (u, v) in sample_without_replacement(&mut rng, edges, count) {
                    self.delete_edge_fault(u, v);
                }
            }
        }
        // The configuration changed, so any quiescence evidence gathered
        // from rejected candidates is void.
        self.rejection_run = 0;
        self.probe_at = QUIESCENCE_PROBE;
    }

    /// Deactivates edge `{u, v}` as a fault (no-op when inactive) and
    /// drops it from the on list if it rode there.
    fn delete_edge_fault(&mut self, u: usize, v: usize) {
        if !self.sp.is_active(u, v) {
            return;
        }
        let on_pos = self.sp.set_edge(u, v, false);
        if on_pos != NOT_ON {
            self.on_list_remove(on_pos as usize);
        }
        self.book.edge_events += 1;
        self.book.last_output_change = self.book.steps;
    }

    /// Normalizes the configuration for an adversary decision: dense
    /// state indices plus the active-edge set read off the sparse
    /// adjacency (the snapshot sorts, so iteration order is moot).
    fn config_snapshot(&self) -> ConfigSnapshot {
        let states = (0..self.sp.n()).map(|u| self.sp.state_index(u)).collect();
        let mut edges = Vec::with_capacity(self.sp.active_count());
        for u in 0..self.sp.n() {
            edges.extend(self.sp.neighbors(u).filter(|&w| w > u).map(|w| (u, w)));
        }
        ConfigSnapshot::new(states, edges)
    }

    /// Applies everything due at the current step counter: scheduled
    /// plan events in order, and adversary decisions resolved against
    /// a fresh configuration snapshot.
    fn apply_due_faults(&mut self) {
        let now = u64::try_from(self.book.steps).unwrap_or(u64::MAX);
        loop {
            let due = self.faults.as_ref().and_then(|fs| fs.due_fault(now));
            match due {
                Some(DueFault::Event) => {
                    let resolved = self
                        .faults
                        .as_mut()
                        .expect("due implies a plan")
                        .resolve_next()
                        .expect("due_fault implies a pending event");
                    self.apply_resolved(resolved);
                }
                Some(DueFault::Decision) => {
                    let snap = self.config_snapshot();
                    let damage = self
                        .faults
                        .as_mut()
                        .expect("due implies a plan")
                        .resolve_due_decision(&snap);
                    for resolved in damage {
                        self.apply_resolved(resolved);
                    }
                }
                None => return,
            }
        }
    }

    /// Applies every remaining plan event *now*, regardless of its
    /// scheduled time (see
    /// [`Simulation::apply_faults_now`](crate::Simulation::apply_faults_now)).
    /// Adversary decisions are *not* drained: they are tied to their
    /// decision draws.
    ///
    /// # Panics
    ///
    /// Panics if the engine has no fault plan.
    pub fn apply_faults_now(&mut self) {
        assert!(self.faults.is_some(), "apply_faults_now needs a fault plan");
        loop {
            let Some(resolved) = self.faults.as_mut().and_then(FaultState::resolve_next) else {
                return;
            };
            self.apply_resolved(resolved);
        }
    }

    /// Advances to exactly `target` total steps, applying plan events at
    /// their scheduled times on the way (same stop/resume exactness as
    /// [`EventSim::run_faulted_to`](crate::EventSim::run_faulted_to)).
    ///
    /// # Panics
    ///
    /// Panics if the engine has no fault plan.
    pub fn run_faulted_to(&mut self, target: u64) {
        assert!(self.faults.is_some(), "run_faulted_to needs a fault plan");
        self.apply_due_faults();
        loop {
            let next = self.faults.as_ref().and_then(FaultState::next_at);
            match next {
                Some(at) if at <= target => {
                    self.run_to(at);
                    self.apply_due_faults();
                }
                _ => {
                    self.run_to(target);
                    return;
                }
            }
        }
    }

    /// Runs a faulted execution to stability, with the predicate reading
    /// the sparse view plus the fault state — same semantics as
    /// [`EventSim::run_faulted_until`](crate::EventSim::run_faulted_until):
    /// the predicate is not consulted while plan events are pending.
    ///
    /// # Panics
    ///
    /// Panics if the engine has no fault plan.
    pub fn run_faulted_until(
        &mut self,
        mut stable: impl FnMut(&SparsePop, &FaultState) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        assert!(self.faults.is_some(), "run_faulted_until needs a fault plan");
        self.apply_due_faults();
        loop {
            let next = self.faults.as_ref().and_then(FaultState::next_at);
            match next {
                Some(at) if at <= max_steps => {
                    self.run_to(at);
                    self.apply_due_faults();
                }
                Some(_) => {
                    self.run_to(max_steps);
                    return RunOutcome::MaxSteps {
                        steps: sat64(self.book.steps),
                    };
                }
                None => break,
            }
        }
        if stable(&self.sp, self.faults.as_ref().expect("asserted above")) {
            return self.book.stabilized_now();
        }
        loop {
            match self.advance(max_steps) {
                EventStep::Quiescent => {
                    self.book.steps = self.book.steps.max(u128::from(max_steps));
                    return RunOutcome::MaxSteps {
                        steps: sat64(self.book.steps),
                    };
                }
                EventStep::BudgetExhausted => {
                    return RunOutcome::MaxSteps {
                        steps: sat64(self.book.steps),
                    }
                }
                EventStep::Candidate { result, .. } => {
                    if result.is_effective()
                        && stable(&self.sp, self.faults.as_ref().expect("asserted above"))
                    {
                        return self.book.stabilized_now();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompiledTable, EventSim, ProtocolBuilder, RuleProtocol};

    const OFF: Link = Link::Off;
    const ON: Link = Link::On;

    fn matching_protocol() -> CompiledTable {
        let mut b = ProtocolBuilder::new("matching");
        let a = b.state("a");
        let m = b.state("b");
        b.rule((a, a, OFF), (m, m, ON));
        b.build().expect("valid").compile()
    }

    /// A protocol whose only rule needs an *active* edge, so its
    /// candidates ride the on list exclusively. State index 1 carries the
    /// rule, matching the matched state of [`matching_protocol`] so a
    /// matched configuration imports directly.
    fn on_only_protocol() -> RuleProtocol {
        let mut b = ProtocolBuilder::new("dissolve");
        let _done = b.state("done");
        let a = b.state("a");
        b.rule((a, a, ON), (_done, _done, OFF));
        b.build().expect("valid")
    }

    #[test]
    fn matching_converges_and_quiesces() {
        let mut sim = BucketSim::new(matching_protocol(), 20, 123);
        let outcome = sim.run_until_edges(|p| p.active_count() == 10, 200_000);
        assert!(outcome.stabilized(), "matching should form: {outcome:?}");
        assert!(sim.is_quiescent());
        assert_eq!(sim.effective_steps(), 10);
        assert_eq!(sim.candidate_weight(), 0);
        let pop = sim.to_population();
        assert!(netcon_graph::properties::is_maximum_matching(pop.edges()));
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut sim = BucketSim::new(matching_protocol(), 16, seed);
            let out = sim.run_until_edges(|p| p.active_count() == 8, 100_000);
            (out, sim.steps(), sim.edge_events())
        };
        assert_eq!(run(9), run(9));
        assert!(run(9).0.stabilized());
    }

    #[test]
    fn budget_is_respected_exactly() {
        let mut sim = BucketSim::new(matching_protocol(), 50, 3);
        let out = sim.run_until(|_| false, 1_000);
        assert_eq!(out, RunOutcome::MaxSteps { steps: 1_000 });
        assert_eq!(sim.steps(), 1_000);
    }

    #[test]
    fn run_to_lands_exactly_and_quiescence_jumps() {
        let mut sim = BucketSim::new(matching_protocol(), 10, 5);
        sim.run_to(123);
        assert_eq!(sim.steps(), 123);
        sim.run_until_edges(|p| p.active_count() == 5, u64::MAX);
        let done = sim.steps();
        sim.run_to(done + 1_000_000);
        assert_eq!(sim.steps(), done + 1_000_000);
        assert_eq!(sim.effective_steps(), 5);
    }

    #[test]
    fn on_link_rules_ride_the_on_list() {
        // Start from a full matching built by a different machine, then
        // dissolve it with the on-link-only protocol: every candidate must
        // come from the on list (off_total is 0 throughout).
        let mut setup = BucketSim::new(matching_protocol(), 12, 7);
        setup.run_until_edges(|p| p.active_count() == 6, u64::MAX);
        let pop = setup.to_population();
        let mut sim = BucketSim::from_population(on_only_protocol().compile(), pop, 5);
        assert_eq!(sim.candidate_weight(), 12, "6 active edges, ordered ×2");
        let out = sim.run_until_edges(|p| p.active_count() == 0, u64::MAX);
        assert!(out.stabilized());
        assert_eq!(sim.edge_events(), 6, "each matched edge dissolved once");
        assert!(sim.is_quiescent());
    }

    #[test]
    fn quiescent_unstable_returns_budget_immediately() {
        let mut b = ProtocolBuilder::new("inert");
        let _ = b.state("a");
        let p = b.build().expect("valid");
        let mut sim = BucketSim::new(p.compile(), 8, 0);
        let out = sim.run_until(|_| false, u64::MAX);
        assert_eq!(out, RunOutcome::MaxSteps { steps: u64::MAX });
    }

    #[test]
    fn rejection_livelock_is_escaped_by_the_quiescence_probe() {
        // Two adjacent nodes in state a with rule (a, a, 0): the pair is
        // a permanent candidate (off bucket) but its edge is active, so
        // every candidate rejects. The probe must detect quiescence and
        // jump to the budget instead of grinding through 10^12 steps.
        let mut b = ProtocolBuilder::new("stuck");
        let a = b.state("a");
        let m = b.state("b");
        b.rule((a, a, OFF), (m, m, ON));
        let p = b.build().expect("valid").compile();
        let mut pop = Population::new(4, crate::StateId::new(0));
        // a–a active edge (unreachable for the matching protocol, but a
        // legal configuration) plus two matched m nodes.
        pop.edges_mut().activate(0, 1);
        pop.set_state(2, crate::StateId::new(1));
        pop.set_state(3, crate::StateId::new(1));
        pop.edges_mut().activate(2, 3);
        let mut sim = BucketSim::from_population(p, pop, 3);
        assert!(sim.candidate_weight() > 0, "the dead pair stays a candidate");
        let t0 = std::time::Instant::now();
        let out = sim.run_until(|_| false, 1_000_000_000_000);
        assert_eq!(
            out,
            RunOutcome::MaxSteps {
                steps: 1_000_000_000_000
            }
        );
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "probe failed to shortcut the dead configuration"
        );
        assert!(sim.is_quiescent());
    }

    #[test]
    fn tracks_dense_event_engine_on_average() {
        // Cheap smoke check of the exactness argument (the full paired
        // statistical tests live in the workspace-level suite).
        let trials = 60;
        let mean = |bucket: bool| -> f64 {
            (0..trials)
                .map(|seed| {
                    let out = if bucket {
                        BucketSim::new(matching_protocol(), 12, 1000 + seed)
                            .run_until_edges(|p| p.active_count() == 6, u64::MAX)
                    } else {
                        EventSim::new(matching_protocol(), 12, 2000 + seed).run_until_edges(
                            |p| p.edges().active_count() == 6,
                            u64::MAX,
                        )
                    };
                    out.converged_at().expect("stabilizes") as f64
                })
                .sum::<f64>()
                / f64::from(trials as u32)
        };
        let (bu, ev) = (mean(true), mean(false));
        assert!(
            (bu - ev).abs() / ev < 0.35,
            "bucket {bu:.1} vs event {ev:.1} means too far apart"
        );
    }

    #[test]
    fn from_population_round_trips() {
        let mut sim = BucketSim::new(matching_protocol(), 14, 4);
        sim.run_until_edges(|p| p.active_count() == 7, u64::MAX);
        let pop = sim.to_population();
        let again = BucketSim::from_population(matching_protocol(), pop.clone(), 9);
        assert_eq!(again.to_population(), pop);
    }

    #[test]
    fn sparse_pop_accessors_are_consistent() {
        let mut sim = BucketSim::new(matching_protocol(), 10, 2);
        sim.run_until_edges(|p| p.active_count() == 5, u64::MAX);
        let sp = sim.view();
        assert_eq!(sp.n(), 10);
        assert_eq!(sp.count_index(0), 0, "all nodes matched");
        assert_eq!(sp.count_index(1), 10);
        assert_eq!(sp.nodes_index(1).len(), 10);
        for u in 0..10 {
            assert_eq!(sp.degree(u), 1);
            let v = sp.neighbors(u).next().expect("matched");
            assert!(sp.is_active(u, v));
            assert_eq!(sp.state_index(u), 1);
        }
        let es = sp.to_edgeset();
        assert_eq!(es.active_count(), 5);
        assert!(sp.approx_mem_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_population_rejected() {
        let _ = BucketSim::new(matching_protocol(), 1, 0);
    }

    #[test]
    fn faults_reclassify_buckets_and_converge() {
        use crate::fault::{FaultEvent, FaultPlan};
        let plan = FaultPlan::new(2)
            .at(0, FaultEvent::Crash(0))
            .at(0, FaultEvent::Arrive);
        let mut sim = BucketSim::new_faulted(matching_protocol(), 8, 13, plan);
        // Node 0 crashed, the one ghost slot arrived: 8 alive in `a`.
        let out = sim.run_faulted_until(|sp, _| sp.active_count() == 4, 10_000_000);
        assert!(out.stabilized(), "{out:?}");
        let fs = sim.fault_state().expect("faulted");
        assert_eq!(fs.alive_count(), 8);
        assert_eq!(fs.capacity(), 9);
        assert!(!fs.is_alive(0));
        assert_eq!(sim.candidate_weight(), 0, "everyone alive is matched");
        assert_eq!(sim.view().degree(0), 0, "the crashed node is inert");
    }
}
