//! Declarative rule tables for flat protocols.
//!
//! The paper presents each protocol as a list of *effective transitions*
//! over named states, e.g. Protocol 1 (Simple-Global-Line):
//!
//! ```text
//! (q0, q0, 0) → (q1, l, 1)
//! (l,  q0, 0) → (q2, l, 1)
//! (l,  l,  0) → (q2, w, 1)
//! (w,  q2, 1) → (q2, w, 1)
//! (w,  q1, 1) → (q2, l, 1)
//! ```
//!
//! [`ProtocolBuilder`] lets that listing be transcribed one-to-one and
//! validates the result: δ must be a well-formed symmetric partial
//! function, so a rule may be given on `(a, b, c)` or on `(b, a, c)` but
//! two definitions for the same unordered triple must agree under the
//! swap. Randomized transitions (the `PREL` extension of Definition 4)
//! carry exact rational weights.

use std::collections::HashMap;
use std::fmt;

use rand::{Rng, RngExt};

use crate::{Link, Machine, StateId};

/// A left-hand side or right-hand side triple `(a, b, link)`.
pub type Triple = (StateId, StateId, Link);

/// The right-hand side of a rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuleRhs {
    /// A deterministic outcome.
    Det(Triple),
    /// A randomized outcome: each alternative is chosen with probability
    /// `weight / total_weight`. The paper's `PREL` protocols use two
    /// alternatives of weight 1 each (a fair coin).
    Random(Vec<(u32, Triple)>),
}

impl RuleRhs {
    /// Iterates the possible outcome triples (ignoring weights), without
    /// allocating.
    pub fn outcomes(&self) -> impl Iterator<Item = Triple> + '_ {
        let (det, random): (&[Triple], &[(u32, Triple)]) = match self {
            RuleRhs::Det(t) => (std::slice::from_ref(t), &[]),
            RuleRhs::Random(alts) => (&[], alts.as_slice()),
        };
        det.iter().copied().chain(random.iter().map(|&(_, t)| t))
    }

    fn sample(&self, rng: &mut dyn Rng) -> Triple {
        match self {
            RuleRhs::Det(t) => *t,
            RuleRhs::Random(alts) => {
                let total: u32 = alts.iter().map(|&(w, _)| w).sum();
                let mut roll = rng.random_range(0..total);
                for &(w, t) in alts {
                    if roll < w {
                        return t;
                    }
                    roll -= w;
                }
                unreachable!("weights sum to total")
            }
        }
    }

    /// The right-hand side with the two node states swapped in every
    /// alternative.
    fn swapped(&self) -> RuleRhs {
        let swap = |(a, b, l): Triple| (b, a, l);
        match self {
            RuleRhs::Det(t) => RuleRhs::Det(swap(*t)),
            RuleRhs::Random(alts) => {
                RuleRhs::Random(alts.iter().map(|&(w, t)| (w, swap(t))).collect())
            }
        }
    }
}

/// A single transition `(a, b, link) → rhs` as written in the paper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// The interacting states and edge state the rule matches.
    pub lhs: Triple,
    /// The resulting states and edge state.
    pub rhs: RuleRhs,
}

/// Errors detected while building a protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Two rules were defined for the same unordered triple with
    /// incompatible outcomes. Holds a rendering of the offending triple.
    ConflictingRules(String),
    /// A randomized rule had an empty alternative list or zero total
    /// weight. Holds the offending triple.
    BadWeights(String),
    /// The protocol declared no states.
    NoStates,
    /// The set of output states was declared empty.
    NoOutputStates,
    /// Two crash-notification transitions were declared for the same
    /// state with different targets. Holds the offending state's name.
    ConflictingNotify(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::ConflictingRules(t) => {
                write!(f, "conflicting rules defined for triple {t}")
            }
            ProtocolError::BadWeights(t) => {
                write!(f, "randomized rule for {t} has no positive-weight alternatives")
            }
            ProtocolError::NoStates => write!(f, "protocol declares no states"),
            ProtocolError::NoOutputStates => write!(f, "protocol declares no output states"),
            ProtocolError::ConflictingNotify(s) => {
                write!(f, "conflicting crash-notification transitions for state {s}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Builder for [`RuleProtocol`]s.
///
/// States are declared with [`state`](Self::state); the first declared
/// state is the initial state `q₀` unless overridden with
/// [`initial`](Self::initial). Rules are added with [`rule`](Self::rule)
/// and [`rule_random`](Self::rule_random) and validated by
/// [`build`](Self::build).
///
/// # Example
///
/// ```
/// use netcon_core::{Link, ProtocolBuilder};
///
/// let mut b = ProtocolBuilder::new("Cycle-Cover");
/// let q0 = b.state("q0");
/// let q1 = b.state("q1");
/// let q2 = b.state("q2");
/// b.rule((q0, q0, Link::Off), (q1, q1, Link::On));
/// b.rule((q1, q0, Link::Off), (q2, q1, Link::On));
/// b.rule((q1, q1, Link::Off), (q2, q2, Link::On));
/// let protocol = b.build()?;
/// assert_eq!(protocol.size(), 3);
/// # Ok::<(), netcon_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProtocolBuilder {
    name: String,
    state_names: Vec<String>,
    by_name: HashMap<String, StateId>,
    initial: Option<StateId>,
    output: Option<Vec<StateId>>,
    rules: Vec<Rule>,
    crash_notify: Vec<(StateId, StateId)>,
}

impl ProtocolBuilder {
    /// Creates a builder for a protocol with the given display name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            state_names: Vec::new(),
            by_name: HashMap::new(),
            initial: None,
            output: None,
            rules: Vec::new(),
            crash_notify: Vec::new(),
        }
    }

    /// Declares (or looks up) a state by name and returns its id.
    ///
    /// Declaring the same name twice returns the same id, so parameterized
    /// protocols can generate states in loops without bookkeeping.
    pub fn state(&mut self, name: impl Into<String>) -> StateId {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        let id = StateId::new(
            u16::try_from(self.state_names.len()).expect("more than 65535 states"),
        );
        self.by_name.insert(name.clone(), id);
        self.state_names.push(name);
        id
    }

    /// Overrides the initial state (default: the first declared state).
    pub fn initial(&mut self, q0: StateId) -> &mut Self {
        self.initial = Some(q0);
        self
    }

    /// Restricts the output states `Q_out` (default: all states).
    pub fn output_states(&mut self, states: &[StateId]) -> &mut Self {
        self.output = Some(states.to_vec());
        self
    }

    /// Adds a deterministic rule `lhs → rhs`.
    pub fn rule(&mut self, lhs: Triple, rhs: Triple) -> &mut Self {
        self.rules.push(Rule {
            lhs,
            rhs: RuleRhs::Det(rhs),
        });
        self
    }

    /// Adds a randomized rule choosing among weighted alternatives.
    ///
    /// A fair coin is two alternatives of weight 1:
    ///
    /// ```
    /// # use netcon_core::{Link, ProtocolBuilder};
    /// # let mut b = ProtocolBuilder::new("x");
    /// # let l = b.state("l");
    /// # let f = b.state("f");
    /// # let ld = b.state("ld");
    /// # let fd = b.state("fd");
    /// b.rule_random(
    ///     (l, f, Link::Off),
    ///     [(1, (ld, fd, Link::Off)), (1, (f, l, Link::Off))],
    /// );
    /// ```
    pub fn rule_random(
        &mut self,
        lhs: Triple,
        alternatives: impl IntoIterator<Item = (u32, Triple)>,
    ) -> &mut Self {
        self.rules.push(Rule {
            lhs,
            rhs: RuleRhs::Random(alternatives.into_iter().collect()),
        });
        self
    }

    /// Declares the crash-notification transition `from → to`: a node in
    /// state `from` that loses an active edge to a crashing neighbor is
    /// remapped to `to` (the fault-notification model of arXiv
    /// 1903.05992; see [`Machine::on_crash_notify`]). States without a
    /// declared transition ignore notifications.
    pub fn on_crash(&mut self, from: StateId, to: StateId) -> &mut Self {
        self.crash_notify.push((from, to));
        self
    }

    /// Validates the rule set and produces the protocol.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] if the protocol has no states, declares an
    /// empty output set, contains a randomized rule with no positive
    /// weight, or defines the same unordered triple twice with outcomes
    /// that disagree under the symmetry `δ₁(a,b,c) = δ₂(b,a,c)`.
    pub fn build(&self) -> Result<RuleProtocol, ProtocolError> {
        let size = self.state_names.len();
        if size == 0 {
            return Err(ProtocolError::NoStates);
        }
        if let Some(out) = &self.output {
            if out.is_empty() {
                return Err(ProtocolError::NoOutputStates);
            }
        }
        let mut output = vec![self.output.is_none(); size];
        if let Some(out) = &self.output {
            for s in out {
                output[s.index()] = true;
            }
        }

        let render = |t: &Triple| {
            format!(
                "({}, {}, {})",
                self.state_names[t.0.index()],
                self.state_names[t.1.index()],
                t.2
            )
        };

        let mut table: Vec<Option<RuleRhs>> = vec![None; size * size * 2];
        let idx = |a: StateId, b: StateId, l: Link| {
            (a.index() * size + b.index()) * 2 + usize::from(l.is_on())
        };
        for rule in &self.rules {
            let (a, b, l) = rule.lhs;
            if let RuleRhs::Random(alts) = &rule.rhs {
                if alts.is_empty() || alts.iter().all(|&(w, _)| w == 0) {
                    return Err(ProtocolError::BadWeights(render(&rule.lhs)));
                }
            }
            // Store on the given order; also mirror onto the swapped order
            // so lookups are O(1) regardless of which endpoint comes first.
            let fwd = idx(a, b, l);
            let bwd = idx(b, a, l);
            let mirrored = rule.rhs.swapped();
            match &table[fwd] {
                Some(existing) if *existing != rule.rhs => {
                    return Err(ProtocolError::ConflictingRules(render(&rule.lhs)));
                }
                _ => {}
            }
            table[fwd] = Some(rule.rhs.clone());
            if fwd != bwd {
                match &table[bwd] {
                    Some(existing) if *existing != mirrored => {
                        return Err(ProtocolError::ConflictingRules(render(&rule.lhs)));
                    }
                    _ => {}
                }
                table[bwd] = Some(mirrored);
            }
        }

        // Precompute the effectiveness bits so `can_affect` /
        // `can_affect_edge` are single indexed loads with no allocation
        // (they run O(n²) times per quiescence scan and O(n) times per
        // event-engine interaction).
        let mut affects = vec![false; size * size * 2];
        let mut affects_edge = vec![false; size * size * 2];
        for a in 0..size {
            for b in 0..size {
                for link in [Link::Off, Link::On] {
                    let i = (a * size + b) * 2 + usize::from(link.is_on());
                    let Some(rhs) = &table[i] else { continue };
                    let lhs = (StateId::new(a as u16), StateId::new(b as u16), link);
                    affects[i] = rhs.outcomes().any(|t| t != lhs);
                    affects_edge[i] = rhs.outcomes().any(|(_, _, l2)| l2 != link);
                }
            }
        }

        let mut crash_notify: Vec<Option<StateId>> = vec![None; size];
        for &(from, to) in &self.crash_notify {
            match crash_notify[from.index()] {
                Some(existing) if existing != to => {
                    return Err(ProtocolError::ConflictingNotify(
                        self.state_names[from.index()].clone(),
                    ));
                }
                _ => crash_notify[from.index()] = Some(to),
            }
        }

        Ok(RuleProtocol {
            name: self.name.clone(),
            state_names: self.state_names.clone(),
            initial: self.initial.unwrap_or(StateId::new(0)),
            output,
            table,
            affects,
            affects_edge,
            rules: self.rules.clone(),
            crash_notify,
        })
    }
}

/// A flat network constructor backed by a dense rule table.
///
/// Created by [`ProtocolBuilder::build`]; implements [`Machine`] with
/// `State = StateId`, applying the paper's symmetry convention and the
/// equiprobable assignment coin for symmetric-input/asymmetric-output
/// rules.
#[derive(Debug, Clone)]
pub struct RuleProtocol {
    name: String,
    state_names: Vec<String>,
    initial: StateId,
    output: Vec<bool>,
    table: Vec<Option<RuleRhs>>,
    /// Per-slot: whether some outcome differs from the left-hand side.
    affects: Vec<bool>,
    /// Per-slot: whether some outcome changes the edge state.
    affects_edge: Vec<bool>,
    rules: Vec<Rule>,
    /// Per-state crash-notification target (`None` = ignore).
    crash_notify: Vec<Option<StateId>>,
}

impl RuleProtocol {
    /// The number of states `|Q|` — the paper's measure of protocol size.
    #[must_use]
    pub fn size(&self) -> usize {
        self.state_names.len()
    }

    /// Looks up a state id by its paper name.
    #[must_use]
    pub fn state(&self, name: &str) -> Option<StateId> {
        self.state_names
            .iter()
            .position(|n| n == name)
            .map(|i| StateId::new(u16::try_from(i).expect("validated at build")))
    }

    /// The paper name of a state.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a state of this protocol.
    #[must_use]
    pub fn state_name(&self, s: StateId) -> &str {
        &self.state_names[s.index()]
    }

    /// The rules in declaration order (effective transitions only, as in
    /// the paper's listings).
    #[must_use]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The right-hand side for the ordered triple `(a, b, link)`, if any.
    ///
    /// Both orders of any defined unordered triple are present (the
    /// builder mirrors them), so this is a complete description of δ.
    #[must_use]
    pub fn lookup(&self, a: StateId, b: StateId, link: Link) -> Option<&RuleRhs> {
        let size = self.size();
        self.table[(a.index() * size + b.index()) * 2 + usize::from(link.is_on())].as_ref()
    }

    /// The crash-notification target of state `s`, if the protocol
    /// declared one with [`ProtocolBuilder::on_crash`].
    #[must_use]
    pub fn crash_notify_target(&self, s: StateId) -> Option<StateId> {
        self.crash_notify[s.index()]
    }
}

impl Machine for RuleProtocol {
    type State = StateId;

    fn name(&self) -> &str {
        &self.name
    }

    fn initial_state(&self) -> StateId {
        self.initial
    }

    fn is_output(&self, state: &StateId) -> bool {
        self.output[state.index()]
    }

    fn interact(
        &self,
        a: &StateId,
        b: &StateId,
        link: Link,
        rng: &mut dyn Rng,
    ) -> Option<(StateId, StateId, Link)> {
        let rhs = self.lookup(*a, *b, link)?;
        let (mut a2, mut b2, l2) = rhs.sample(rng);
        if a == b && a2 != b2 {
            // §3.1: equal input states with distinct outputs — the only
            // case where symmetry must be broken by a coin.
            if rng.random_bool(0.5) {
                std::mem::swap(&mut a2, &mut b2);
            }
        }
        if (a2, b2, l2) == (*a, *b, link) {
            None
        } else {
            Some((a2, b2, l2))
        }
    }

    fn can_affect(&self, a: &StateId, b: &StateId, link: Link) -> bool {
        self.affects[(a.index() * self.size() + b.index()) * 2 + usize::from(link.is_on())]
    }

    fn can_affect_edge(&self, a: &StateId, b: &StateId, link: Link) -> bool {
        self.affects_edge[(a.index() * self.size() + b.index()) * 2 + usize::from(link.is_on())]
    }

    fn on_crash_notify(&self, state: &StateId) -> Option<StateId> {
        self.crash_notify[state.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const OFF: Link = Link::Off;
    const ON: Link = Link::On;

    fn two_state() -> (RuleProtocol, StateId, StateId) {
        let mut b = ProtocolBuilder::new("t");
        let a = b.state("a");
        let c = b.state("c");
        b.rule((a, c, OFF), (c, c, ON));
        let p = b.build().expect("valid");
        (p, a, c)
    }

    #[test]
    fn lookup_is_order_insensitive() {
        let (p, a, c) = two_state();
        let mut rng = SmallRng::seed_from_u64(0);
        // Rule defined as (a, c); querying as (c, a) must swap the result.
        let (x, y, l) = p.interact(&c, &a, OFF, &mut rng).expect("effective");
        assert_eq!((x, y, l), (c, c, ON));
        assert!(p.can_affect(&c, &a, OFF));
        assert!(!p.can_affect(&c, &a, ON));
        assert!(p.can_affect_edge(&a, &c, OFF));
    }

    #[test]
    fn ineffective_interactions_return_none() {
        let (p, a, _c) = two_state();
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(p.interact(&a, &a, OFF, &mut rng).is_none());
    }

    #[test]
    fn identity_rule_is_reported_ineffective() {
        let mut b = ProtocolBuilder::new("id");
        let a = b.state("a");
        b.rule((a, a, OFF), (a, a, OFF));
        let p = b.build().expect("valid");
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(p.interact(&a, &a, OFF, &mut rng).is_none());
        assert!(!p.can_affect(&a, &a, OFF));
    }

    #[test]
    fn symmetric_coin_assigns_both_ways() {
        // (a, a, 0) → (a, b, 1): both assignments must occur.
        let mut b = ProtocolBuilder::new("coin");
        let a = b.state("a");
        let c = b.state("b");
        b.rule((a, a, OFF), (a, c, ON));
        let p = b.build().expect("valid");
        let mut rng = SmallRng::seed_from_u64(5);
        let mut first = 0;
        let mut second = 0;
        for _ in 0..200 {
            match p.interact(&a, &a, OFF, &mut rng).expect("effective") {
                (x, y, ON) if x == a && y == c => first += 1,
                (x, y, ON) if x == c && y == a => second += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(first > 50 && second > 50, "{first} vs {second}");
    }

    #[test]
    fn randomized_rule_samples_both_branches() {
        let mut b = ProtocolBuilder::new("prel");
        let l = b.state("l");
        let f = b.state("f");
        let ld = b.state("ld");
        let fd = b.state("fd");
        b.rule_random((l, f, OFF), [(1, (ld, fd, OFF)), (1, (f, l, OFF))]);
        let p = b.build().expect("valid");
        let mut rng = SmallRng::seed_from_u64(1);
        let mut marked = 0;
        let mut swapped = 0;
        for _ in 0..200 {
            match p.interact(&l, &f, OFF, &mut rng).expect("effective") {
                (x, y, OFF) if x == ld && y == fd => marked += 1,
                (x, y, OFF) if x == f && y == l => swapped += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(marked > 50 && swapped > 50, "{marked} vs {swapped}");
    }

    #[test]
    fn conflicting_rules_rejected() {
        let mut b = ProtocolBuilder::new("bad");
        let a = b.state("a");
        let c = b.state("c");
        b.rule((a, c, OFF), (a, a, ON));
        b.rule((c, a, OFF), (a, a, OFF));
        assert!(matches!(
            b.build(),
            Err(ProtocolError::ConflictingRules(_))
        ));
    }

    #[test]
    fn consistent_mirrored_rules_accepted() {
        // Defining both orders with outcomes that agree under the swap is
        // fine (parameterized protocols generate these).
        let mut b = ProtocolBuilder::new("ok");
        let a = b.state("a");
        let c = b.state("c");
        b.rule((a, c, OFF), (a, a, ON));
        b.rule((c, a, OFF), (a, a, ON));
        assert!(b.build().is_ok());
    }

    #[test]
    fn zero_weight_rejected() {
        let mut b = ProtocolBuilder::new("w");
        let a = b.state("a");
        b.rule_random((a, a, OFF), [(0, (a, a, ON))]);
        assert!(matches!(b.build(), Err(ProtocolError::BadWeights(_))));
    }

    #[test]
    fn no_states_rejected() {
        assert!(matches!(
            ProtocolBuilder::new("empty").build(),
            Err(ProtocolError::NoStates)
        ));
    }

    #[test]
    fn state_names_roundtrip() {
        let (p, a, c) = two_state();
        assert_eq!(p.state("a"), Some(a));
        assert_eq!(p.state("c"), Some(c));
        assert_eq!(p.state("missing"), None);
        assert_eq!(p.state_name(a), "a");
        assert_eq!(p.size(), 2);
        assert_eq!(p.initial_state(), a, "first declared state is q0");
    }

    #[test]
    fn crash_notify_declarations() {
        let mut b = ProtocolBuilder::new("notify");
        let c = b.state("c");
        let p = b.state("p");
        b.rule((c, c, OFF), (c, p, ON));
        b.on_crash(p, c);
        b.on_crash(p, c); // same target again is fine
        let proto = b.build().expect("valid");
        assert_eq!(proto.crash_notify_target(p), Some(c));
        assert_eq!(proto.crash_notify_target(c), None);
        assert_eq!(proto.on_crash_notify(&p), Some(c));
        assert_eq!(proto.on_crash_notify(&c), None);
    }

    #[test]
    fn conflicting_crash_notify_rejected() {
        let mut b = ProtocolBuilder::new("bad-notify");
        let a = b.state("a");
        let c = b.state("c");
        b.rule((a, c, OFF), (c, c, ON));
        b.on_crash(a, c);
        b.on_crash(a, a);
        assert!(matches!(
            b.build(),
            Err(ProtocolError::ConflictingNotify(ref s)) if s == "a"
        ));
    }

    #[test]
    fn output_states_restriction() {
        let mut b = ProtocolBuilder::new("out");
        let a = b.state("a");
        let c = b.state("c");
        b.output_states(&[c]);
        let p = b.build().expect("valid");
        assert!(!p.is_output(&a));
        assert!(p.is_output(&c));
    }
}
