//! The generic interaction interface shared by flat rule tables and
//! composite-state constructions.

use rand::Rng;

use crate::Link;

/// A population protocol with network construction: the executable form of
/// the paper's `(Q, q₀, Q_out, δ)`.
///
/// Implementations fall in two groups:
///
/// * [`RuleProtocol`](crate::RuleProtocol) — flat protocols whose states are
///   dense [`StateId`](crate::StateId)s and whose δ is a literal rule table,
///   exactly as the paper lists them;
/// * composite machines (Turing-machine-on-a-line simulations, supernode
///   organizers) whose states are structured Rust values. The model is
///   unchanged — only the representation of `Q` differs.
///
/// # Contract
///
/// [`interact`](Machine::interact) receives the states of the two nodes the
/// scheduler selected, in an arbitrary order, plus the state of the edge
/// joining them. It must be *symmetric*: the behaviour may not depend on
/// the order of the arguments beyond the order of the returned states
/// (`δ₁(a,b,c) = δ₂(b,a,c)` in the paper's formulation). When both input
/// states are equal and the rule output is asymmetric, the implementation
/// must assign the two output states equiprobably using the supplied
/// generator — the single symmetry-breaking coin the model allows (§3.1).
///
/// Returning `None` declares the interaction *ineffective*: nothing
/// changes. Implementations should return `None` rather than an identity
/// triple so the engine can maintain effectiveness statistics.
pub trait Machine {
    /// The node-state type `Q`.
    type State: Clone + PartialEq + std::fmt::Debug;

    /// A human-readable protocol name (e.g. `"Simple-Global-Line"`).
    fn name(&self) -> &str;

    /// The common initial state `q₀` of every process.
    fn initial_state(&self) -> Self::State;

    /// Whether `s` is an output state (member of `Q_out`).
    ///
    /// Defaults to `true`: most protocols in the paper output on all
    /// states. Graph-Replication is the exception (`Q_out = {r, rₐ, r_d}`).
    fn is_output(&self, state: &Self::State) -> bool {
        let _ = state;
        true
    }

    /// Applies δ to an interacting pair. Returns the new states of the two
    /// nodes (in the same order as the arguments) and the new edge state,
    /// or `None` if the interaction is ineffective.
    fn interact(
        &self,
        a: &Self::State,
        b: &Self::State,
        link: Link,
        rng: &mut dyn Rng,
    ) -> Option<(Self::State, Self::State, Link)>;

    /// Whether an interaction between nodes in states `a` and `b` over an
    /// edge in state `link` *could* change anything (under any outcome of
    /// the protocol's internal coins).
    ///
    /// Used by quiescence detection; must not consume randomness. A sound
    /// over-approximation (returning `true` when unsure) is acceptable —
    /// it only makes quiescence detection more conservative.
    fn can_affect(&self, a: &Self::State, b: &Self::State, link: Link) -> bool;

    /// Whether an interaction between `a` and `b` over `link` could change
    /// the *edge* state. Defaults to [`can_affect`](Machine::can_affect)
    /// (a sound over-approximation).
    fn can_affect_edge(&self, a: &Self::State, b: &Self::State, link: Link) -> bool {
        self.can_affect(a, b, link)
    }

    /// The crash-notification transition of the fault-notification model
    /// ("Fault Tolerant Network Constructors", arXiv 1903.05992): when a
    /// node crashes, each alive node that *lost an active edge* to it is
    /// notified, and its state is remapped by this function — a
    /// deterministic, machine-defined adjunct to δ that consumes no
    /// randomness.
    ///
    /// Returning `None` (the default) means the machine ignores crash
    /// notifications: the state is left unchanged, which reproduces the
    /// paper's silent-crash model where no baseline constructor can
    /// self-repair. A node notified of several simultaneous crashes has
    /// the map applied once per lost edge, in ascending crashed-neighbor
    /// order.
    fn on_crash_notify(&self, state: &Self::State) -> Option<Self::State> {
        let _ = state;
        None
    }
}
