//! Compiled protocols: dense-index machines and flat rule tables.
//!
//! The interpreted [`RuleProtocol`] is faithful to
//! the paper's listings but pays for that fidelity per interaction: its δ
//! slots hold [`RuleRhs`] enums, and its `interact` runs
//! through the generic [`Machine`] interface with a `dyn Rng`. This module
//! provides the lowered form the engines prefer:
//!
//! * [`EnumerableMachine`] — a machine whose states are (isomorphic to) a
//!   dense index range `0..num_states()`. Flat protocols implement it for
//!   free; composite machines with a bounded state space can opt in and
//!   inherit every fast path (effect tables, the event-driven engine's
//!   O(1) effectiveness tests).
//! * [`CompiledTable`] — any `RuleProtocol` lowered to a flat `Vec`-indexed
//!   δ: one packed right-hand side per `(a_idx, b_idx, link)` slot, `u16`
//!   state ids, no hashing, no allocation, and a monomorphic
//!   [`interact_indexed`](EnumerableMachine::interact_indexed) with no
//!   `dyn Rng` in the hot path. Behaviour (including the coin-consumption
//!   order) is bit-for-bit identical to the interpreted protocol under the
//!   same generator.
//! * [`EffectTable`] — precomputed `can_affect` / `can_affect_edge` bits
//!   over all `(a_idx, b_idx, link)` triples, the lookup the incremental
//!   effective-pair maintenance performs O(n) times per effective
//!   interaction.

use rand::{Rng, RngExt};

use crate::{Link, Machine, RuleProtocol, RuleRhs, StateId};

/// A [`Machine`] whose state set is enumerable as the dense index range
/// `0..num_states()`.
///
/// # Contract
///
/// `state_index` and `state_at` must be mutually inverse bijections, and
/// `num_states` must not change over the machine's lifetime. The
/// [`interact_indexed`](Self::interact_indexed) provided method must stay
/// consistent with [`Machine::interact`] — override it only with an
/// implementation that consumes randomness identically (the engines rely
/// on this for reproducibility across representations).
///
/// The trait is not object-safe (`interact_indexed` is generic over the
/// generator precisely so compiled hot loops avoid `dyn Rng`).
pub trait EnumerableMachine: Machine {
    /// The number of states `|Q|`.
    fn num_states(&self) -> usize;

    /// The dense index of `state` in `0..num_states()`.
    fn state_index(&self, state: &Self::State) -> usize;

    /// The state with the given dense index.
    ///
    /// # Panics
    ///
    /// May panic if `index >= num_states()`.
    fn state_at(&self, index: usize) -> Self::State;

    /// The machine's effect table. The default tabulates
    /// `can_affect`/`can_affect_edge` over the whole dense domain;
    /// machines that already carry the table (compiled ones) override
    /// this to hand out their copy.
    fn effect_table(&self) -> EffectTable
    where
        Self: Sized,
    {
        EffectTable::of(self)
    }

    /// [`Machine::on_crash_notify`] over dense indices. The default
    /// routes through the state-typed hook; compiled machines override
    /// it with a direct table load. Must stay consistent with the hook —
    /// the engines use whichever form fits their representation.
    fn notify_indexed(&self, state: usize) -> Option<usize> {
        self.on_crash_notify(&self.state_at(state))
            .map(|s| self.state_index(&s))
    }

    /// Whether an interaction on the triple is **certainly** effective:
    /// every outcome the rule can produce (over any coin values) differs
    /// from the input triple, so `interact_indexed` never returns
    /// `None`. The default `false` is always sound — engines use this
    /// only as an optimization gate (batched endgame sampling); compiled
    /// machines override it from their δ slots.
    fn is_certain(&self, a: usize, b: usize, link: Link) -> bool {
        let _ = (a, b, link);
        false
    }

    /// The outcome of a **deterministic, coin-free** interaction:
    /// `Some(rhs)` only when `interact_indexed` on the triple always
    /// returns `Some(rhs)` *and consumes no randomness* (in particular
    /// the rule is not subject to the §3.1 symmetry coin). `None` is
    /// always sound; the batched endgame uses this to recognize pure
    /// state-swap walk rules.
    fn det_interaction(&self, a: usize, b: usize, link: Link) -> Option<(usize, usize, Link)> {
        let _ = (a, b, link);
        None
    }

    /// [`Machine::interact`] over dense indices with a monomorphic
    /// generator. The default routes through `interact`; compiled
    /// machines override it with a direct table walk.
    fn interact_indexed<R: Rng + ?Sized>(
        &self,
        a: usize,
        b: usize,
        link: Link,
        rng: &mut R,
    ) -> Option<(usize, usize, Link)> {
        let (sa, sb) = (self.state_at(a), self.state_at(b));
        let mut r = rng;
        let (a2, b2, l2) = self.interact(&sa, &sb, link, &mut r)?;
        Some((self.state_index(&a2), self.state_index(&b2), l2))
    }
}

impl EnumerableMachine for RuleProtocol {
    fn num_states(&self) -> usize {
        self.size()
    }

    fn state_index(&self, state: &StateId) -> usize {
        state.index()
    }

    fn state_at(&self, index: usize) -> StateId {
        StateId::new(u16::try_from(index).expect("RuleProtocol has ≤ 65536 states"))
    }
}

/// Precomputed `can_affect` / `can_affect_edge` bits over every
/// `(a_idx, b_idx, link)` triple of an [`EnumerableMachine`].
///
/// `2·|Q|²` bits each; built once per engine construction with `O(|Q|²)`
/// machine queries, then answering in one shift-and-mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectTable {
    size: usize,
    affect: Vec<u64>,
    affect_edge: Vec<u64>,
    /// For machines with ≤ 32 states: `affect_rows[a] >> (b·2 + link) & 1`
    /// is `can_affect(a, b, link)` — one register row per left state, so
    /// the engine's per-node rescan tests membership without memory
    /// traffic. Empty for larger machines.
    affect_rows: Vec<u64>,
}

impl EffectTable {
    /// Queries `machine` over its whole dense domain.
    #[must_use]
    pub fn of<M: EnumerableMachine>(machine: &M) -> Self {
        let size = machine.num_states();
        let bits = size * size * 2;
        let mut t = Self {
            size,
            affect: vec![0; bits.div_ceil(64)],
            affect_edge: vec![0; bits.div_ceil(64)],
            affect_rows: if size <= 32 { vec![0; size] } else { Vec::new() },
        };
        for a in 0..size {
            let sa = machine.state_at(a);
            for b in 0..size {
                let sb = machine.state_at(b);
                for link in [Link::Off, Link::On] {
                    let i = slot(size, a, b, link);
                    if machine.can_affect(&sa, &sb, link) {
                        t.affect[i / 64] |= 1 << (i % 64);
                        if size <= 32 {
                            t.affect_rows[a] |= 1 << (b * 2 + usize::from(link.is_on()));
                        }
                    }
                    if machine.can_affect_edge(&sa, &sb, link) {
                        t.affect_edge[i / 64] |= 1 << (i % 64);
                    }
                }
            }
        }
        t
    }

    /// The `can_affect` mask over `(b, link)` for left state `a`, when the
    /// machine has ≤ 32 states (bit `b·2 + link`); `None` otherwise.
    #[inline]
    #[must_use]
    pub fn affect_row(&self, a: usize) -> Option<u64> {
        self.affect_rows.get(a).copied()
    }

    /// The number of states `|Q|` the table was built over.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether an interaction on the triple could change anything.
    #[inline]
    #[must_use]
    pub fn can_affect(&self, a: usize, b: usize, link: Link) -> bool {
        let i = slot(self.size, a, b, link);
        self.affect[i / 64] >> (i % 64) & 1 == 1
    }

    /// Whether an interaction on the triple could change the edge state.
    #[inline]
    #[must_use]
    pub fn can_affect_edge(&self, a: usize, b: usize, link: Link) -> bool {
        let i = slot(self.size, a, b, link);
        self.affect_edge[i / 64] >> (i % 64) & 1 == 1
    }

    /// Whether the pair could be affected over an **active** edge but not
    /// over an inactive one. Such pairs enter the bucket engine's
    /// candidate set only through the explicit active-edge list (the
    /// state buckets would over-count them by the whole off-link bulk).
    #[inline]
    #[must_use]
    pub fn on_link_only(&self, a: usize, b: usize) -> bool {
        self.can_affect(a, b, Link::On) && !self.can_affect(a, b, Link::Off)
    }

    /// Whether `can_affect` is symmetric in its node arguments over the
    /// whole domain. True for every machine honouring the
    /// [`Machine`] symmetry contract; the bucket engine
    /// asserts it once at construction because its unordered active-edge
    /// list canonicalizes pair order.
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        (0..self.size).all(|a| {
            (a..self.size).all(|b| {
                [Link::Off, Link::On]
                    .iter()
                    .all(|&l| self.can_affect(a, b, l) == self.can_affect(b, a, l))
            })
        })
    }

    /// Bytes of heap memory held by the table.
    #[must_use]
    pub fn approx_mem_bytes(&self) -> u64 {
        ((self.affect.capacity() + self.affect_edge.capacity() + self.affect_rows.capacity()) * 8)
            as u64
    }
}

/// The flat slot index of `(a, b, link)`.
#[inline]
fn slot(size: usize, a: usize, b: usize, link: Link) -> usize {
    (a * size + b) * 2 + usize::from(link.is_on())
}

/// A packed right-hand-side triple: `a | b << 16 | link << 32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Packed(u64);

impl Packed {
    fn new(a: u16, b: u16, link: Link) -> Self {
        Self(u64::from(a) | u64::from(b) << 16 | u64::from(link.is_on()) << 32)
    }

    fn unpack(self) -> (u16, u16, Link) {
        (
            (self.0 & 0xFFFF) as u16,
            (self.0 >> 16 & 0xFFFF) as u16,
            Link::from(self.0 >> 32 & 1 == 1),
        )
    }
}

/// One δ slot of a [`CompiledTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// No rule: the interaction is ineffective.
    Empty,
    /// A deterministic right-hand side.
    Det(Packed),
    /// A randomized right-hand side: alternatives `start..start + len` of
    /// the arena, with the given total weight.
    Random { start: u32, len: u32, total: u32 },
}

/// A [`RuleProtocol`] lowered to flat arrays: the fast executable form of
/// the paper's δ.
///
/// Create with [`RuleProtocol::compile`]. The compiled machine implements
/// [`Machine`] (so it is a drop-in for the interpreted protocol in
/// [`Simulation`](crate::Simulation)) and [`EnumerableMachine`] with an
/// overridden, monomorphic [`interact_indexed`] that performs exactly one
/// slot load per interaction — no hashing, no allocation, no `dyn Rng` —
/// while consuming randomness in the same order as the interpreted
/// protocol, so equal seeds give equal executions.
///
/// [`interact_indexed`]: EnumerableMachine::interact_indexed
///
/// # Example
///
/// ```
/// use netcon_core::{EventSim, Link, ProtocolBuilder};
///
/// let mut b = ProtocolBuilder::new("matching");
/// let a = b.state("a");
/// let m = b.state("b");
/// b.rule((a, a, Link::Off), (m, m, Link::On));
/// let compiled = b.build()?.compile();
///
/// let mut sim = EventSim::new(compiled, 100, 1);
/// let outcome = sim.run_until(|p| p.edges().active_count() == 50, 10_000_000);
/// assert!(outcome.stabilized());
/// # Ok::<(), netcon_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledTable {
    name: String,
    state_names: Vec<String>,
    initial: u16,
    output: Vec<bool>,
    size: usize,
    slots: Vec<Slot>,
    /// Arena of `(weight, packed_rhs)` alternatives for randomized slots,
    /// in declaration order (the sampling walk matches the interpreted
    /// protocol's).
    alts: Vec<(u32, Packed)>,
    effects: EffectTable,
    /// Per-state crash-notification target (`None` = ignore), lowered
    /// from the protocol's `on_crash` declarations.
    notify: Vec<Option<u16>>,
}

impl CompiledTable {
    /// Lowers `protocol`. Exposed as [`RuleProtocol::compile`].
    #[must_use]
    pub(crate) fn lower(protocol: &RuleProtocol) -> Self {
        let size = protocol.size();
        let mut slots = vec![Slot::Empty; size * size * 2];
        let mut alts = Vec::new();
        for a in 0..size {
            for b in 0..size {
                for link in [Link::Off, Link::On] {
                    let Some(rhs) = protocol.lookup(
                        StateId::new(a as u16),
                        StateId::new(b as u16),
                        link,
                    ) else {
                        continue;
                    };
                    slots[slot(size, a, b, link)] = match rhs {
                        RuleRhs::Det((x, y, l)) => {
                            Slot::Det(Packed::new(x.index() as u16, y.index() as u16, *l))
                        }
                        RuleRhs::Random(list) => {
                            let start = u32::try_from(alts.len()).expect("arena fits u32");
                            let mut total = 0u32;
                            for &(w, (x, y, l)) in list {
                                total += w;
                                alts.push((w, Packed::new(x.index() as u16, y.index() as u16, l)));
                            }
                            Slot::Random {
                                start,
                                len: u32::try_from(list.len()).expect("arena fits u32"),
                                total,
                            }
                        }
                    };
                }
            }
        }
        let state_names = (0..size)
            .map(|i| protocol.state_name(StateId::new(i as u16)).to_owned())
            .collect();
        Self {
            name: protocol.name().to_owned(),
            state_names,
            initial: protocol.initial_state().index() as u16,
            output: (0..size)
                .map(|i| protocol.is_output(&StateId::new(i as u16)))
                .collect(),
            size,
            slots,
            alts,
            effects: EffectTable::of(protocol),
            notify: (0..size)
                .map(|i| {
                    protocol
                        .crash_notify_target(StateId::new(i as u16))
                        .map(|s| s.index() as u16)
                })
                .collect(),
        }
    }

    /// The number of states `|Q|`.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Looks up a state id by its paper name.
    #[must_use]
    pub fn state(&self, name: &str) -> Option<StateId> {
        self.state_names
            .iter()
            .position(|n| n == name)
            .map(|i| StateId::new(i as u16))
    }

    /// The paper name of a state.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a state of this protocol.
    #[must_use]
    pub fn state_name(&self, s: StateId) -> &str {
        &self.state_names[s.index()]
    }

}

impl Machine for CompiledTable {
    type State = StateId;

    fn name(&self) -> &str {
        &self.name
    }

    fn initial_state(&self) -> StateId {
        StateId::new(self.initial)
    }

    fn is_output(&self, state: &StateId) -> bool {
        self.output[state.index()]
    }

    fn interact(
        &self,
        a: &StateId,
        b: &StateId,
        link: Link,
        rng: &mut dyn Rng,
    ) -> Option<(StateId, StateId, Link)> {
        self.interact_indexed(a.index(), b.index(), link, rng)
            .map(|(x, y, l)| (StateId::new(x as u16), StateId::new(y as u16), l))
    }

    fn can_affect(&self, a: &StateId, b: &StateId, link: Link) -> bool {
        self.effects.can_affect(a.index(), b.index(), link)
    }

    fn can_affect_edge(&self, a: &StateId, b: &StateId, link: Link) -> bool {
        self.effects.can_affect_edge(a.index(), b.index(), link)
    }

    fn on_crash_notify(&self, state: &StateId) -> Option<StateId> {
        self.notify[state.index()].map(StateId::new)
    }
}

impl EnumerableMachine for CompiledTable {
    fn num_states(&self) -> usize {
        self.size
    }

    fn effect_table(&self) -> EffectTable {
        self.effects.clone()
    }

    fn notify_indexed(&self, state: usize) -> Option<usize> {
        self.notify[state].map(usize::from)
    }

    fn state_index(&self, state: &StateId) -> usize {
        state.index()
    }

    fn state_at(&self, index: usize) -> StateId {
        StateId::new(u16::try_from(index).expect("CompiledTable has ≤ 65536 states"))
    }

    fn is_certain(&self, a: usize, b: usize, link: Link) -> bool {
        let input = Packed::new(a as u16, b as u16, link);
        match self.slots[slot(self.size, a, b, link)] {
            Slot::Empty => false,
            // A symmetry-coin RHS (a == b, a2 ≠ b2) is certain either
            // way: neither order can equal the diagonal input.
            Slot::Det(p) => p != input,
            Slot::Random { start, len, .. } => self.alts[start as usize..(start + len) as usize]
                .iter()
                .all(|&(w, p)| w == 0 || p != input),
        }
    }

    fn det_interaction(&self, a: usize, b: usize, link: Link) -> Option<(usize, usize, Link)> {
        match self.slots[slot(self.size, a, b, link)] {
            Slot::Det(p) => {
                let (a2, b2, l2) = p.unpack();
                if a == b && a2 != b2 {
                    return None; // consumes the §3.1 symmetry coin
                }
                let (a2, b2) = (usize::from(a2), usize::from(b2));
                if (a2, b2, l2) == (a, b, link) {
                    None // identity RHS: interact_indexed returns None
                } else {
                    Some((a2, b2, l2))
                }
            }
            _ => None,
        }
    }

    fn interact_indexed<R: Rng + ?Sized>(
        &self,
        a: usize,
        b: usize,
        link: Link,
        rng: &mut R,
    ) -> Option<(usize, usize, Link)> {
        let packed = match self.slots[slot(self.size, a, b, link)] {
            Slot::Empty => return None,
            Slot::Det(p) => p,
            Slot::Random { start, len, total } => {
                // Same draw and same walk order as `RuleRhs::sample`.
                let mut roll = rng.random_range(0..total);
                let mut chosen = None;
                for &(w, p) in &self.alts[start as usize..(start + len) as usize] {
                    if roll < w {
                        chosen = Some(p);
                        break;
                    }
                    roll -= w;
                }
                chosen.expect("weights sum to total")
            }
        };
        let (mut a2, mut b2, l2) = packed.unpack();
        if a == b && a2 != b2 {
            // §3.1's symmetry-breaking coin, in the same stream position
            // as the interpreted protocol.
            if rng.random_bool(0.5) {
                std::mem::swap(&mut a2, &mut b2);
            }
        }
        let (a2, b2) = (a2 as usize, b2 as usize);
        if (a2, b2, l2) == (a, b, link) {
            None
        } else {
            Some((a2, b2, l2))
        }
    }
}

impl RuleProtocol {
    /// Lowers the protocol to its flat, allocation-free executable form.
    ///
    /// The compiled machine is observationally identical to the
    /// interpreted one — same transitions, same coin-consumption order,
    /// same `can_affect` relation — so it can replace the protocol in any
    /// engine without changing measured distributions (or, under a fixed
    /// seed, the execution itself).
    #[must_use]
    pub fn compile(&self) -> CompiledTable {
        CompiledTable::lower(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const OFF: Link = Link::Off;
    const ON: Link = Link::On;

    fn line_protocol() -> RuleProtocol {
        let mut b = ProtocolBuilder::new("line");
        let q0 = b.state("q0");
        let q1 = b.state("q1");
        let l = b.state("l");
        b.rule((q0, q0, OFF), (q1, l, ON));
        b.rule((l, q0, OFF), (q1, l, ON));
        b.build().expect("valid")
    }

    #[test]
    fn compiled_matches_interpreted_on_full_domain() {
        let p = line_protocol();
        let c = p.compile();
        for a in 0..p.size() as u16 {
            for b in 0..p.size() as u16 {
                for link in [OFF, ON] {
                    let (a, b) = (StateId::new(a), StateId::new(b));
                    for seed in 0..8 {
                        let mut r1 = SmallRng::seed_from_u64(seed);
                        let mut r2 = SmallRng::seed_from_u64(seed);
                        assert_eq!(
                            p.interact(&a, &b, link, &mut r1),
                            c.interact(&a, &b, link, &mut r2),
                            "disagreement at ({a:?}, {b:?}, {link})"
                        );
                        assert_eq!(r1, r2, "coin consumption diverged");
                    }
                    assert_eq!(p.can_affect(&a, &b, link), c.can_affect(&a, &b, link));
                    assert_eq!(
                        p.can_affect_edge(&a, &b, link),
                        c.can_affect_edge(&a, &b, link)
                    );
                }
            }
        }
        for s in 0..p.size() as u16 {
            let s = StateId::new(s);
            assert_eq!(p.on_crash_notify(&s), c.on_crash_notify(&s));
        }
    }

    #[test]
    fn crash_notify_lowers_into_the_table() {
        let mut b = ProtocolBuilder::new("notify");
        let q0 = b.state("q0");
        let q1 = b.state("q1");
        let q2 = b.state("q2");
        b.rule((q0, q0, OFF), (q0, q1, ON));
        b.on_crash(q1, q0).on_crash(q2, q1);
        let p = b.build().expect("valid");
        let c = p.compile();
        for s in [q0, q1, q2] {
            assert_eq!(c.on_crash_notify(&s), p.on_crash_notify(&s));
            assert_eq!(
                c.notify_indexed(s.index()),
                p.on_crash_notify(&s).map(|t| t.index())
            );
        }
        assert_eq!(c.on_crash_notify(&q0), None);
        assert_eq!(c.on_crash_notify(&q2), Some(q1));
    }

    #[test]
    fn randomized_rules_share_the_sampling_walk() {
        let mut b = ProtocolBuilder::new("prel");
        let l = b.state("l");
        let f = b.state("f");
        b.rule_random((l, f, OFF), [(3, (f, l, OFF)), (1, (l, l, ON))]);
        let p = b.build().expect("valid");
        let c = p.compile();
        let mut r1 = SmallRng::seed_from_u64(9);
        let mut r2 = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            assert_eq!(
                p.interact(&l, &f, OFF, &mut r1),
                c.interact(&l, &f, OFF, &mut r2)
            );
        }
    }

    #[test]
    fn metadata_round_trips() {
        let p = line_protocol();
        let c = p.compile();
        assert_eq!(c.size(), p.size());
        assert_eq!(c.name(), p.name());
        assert_eq!(c.initial_state(), p.initial_state());
        assert_eq!(c.state("l"), p.state("l"));
        assert_eq!(c.state_name(StateId::new(1)), "q1");
        assert_eq!(c.num_states(), 3);
        assert_eq!(c.state_at(2), StateId::new(2));
        assert_eq!(c.state_index(&StateId::new(2)), 2);
    }

    /// `is_certain`/`det_interaction` must be conservative abstractions
    /// of `interact_indexed`: certainty ⟹ never-`None`, and a reported
    /// deterministic RHS ⟹ that exact result with zero coin consumption.
    #[test]
    fn certainty_and_det_queries_abstract_interact() {
        let mut b = ProtocolBuilder::new("mix");
        let q0 = b.state("q0");
        let q1 = b.state("q1");
        let l = b.state("l");
        b.rule((q0, q0, OFF), (q1, l, ON)); // diagonal + asymmetric: coin
        b.rule((l, q0, OFF), (q1, l, ON)); // pure det
        b.rule((q1, q1, ON), (q1, q1, OFF)); // diagonal symmetric: coin-free
        b.rule_random((l, l, OFF), [(1, (l, l, OFF)), (1, (q1, q1, ON))]);
        let c = b.build().expect("valid").compile();
        for a in 0..c.num_states() {
            for bb in 0..c.num_states() {
                for link in [OFF, ON] {
                    for seed in 0..16u64 {
                        let mut r = SmallRng::seed_from_u64(seed);
                        let before = r.clone();
                        let got = c.interact_indexed(a, bb, link, &mut r);
                        if c.is_certain(a, bb, link) {
                            assert!(got.is_some(), "certain triple returned None");
                        }
                        if let Some(rhs) = c.det_interaction(a, bb, link) {
                            assert_eq!(got, Some(rhs));
                            assert_eq!(r, before, "det triple consumed coins");
                        }
                    }
                }
            }
        }
        // Spot checks: the diagonal asymmetric rule is certain but not
        // det (coin); the identity-alternative random rule is neither.
        let (iq0, il, iq1) = (q0.index(), l.index(), q1.index());
        assert!(c.is_certain(iq0, iq0, OFF));
        assert_eq!(c.det_interaction(iq0, iq0, OFF), None);
        assert_eq!(c.det_interaction(il, iq0, OFF), Some((iq1, il, ON)));
        assert_eq!(c.det_interaction(iq1, iq1, ON), Some((iq1, iq1, OFF)));
        assert!(!c.is_certain(il, il, OFF));
        assert!(!c.is_certain(iq0, iq1, OFF));
        // Defaults on the interpreted protocol stay conservative.
        let p = line_protocol();
        assert!(!EnumerableMachine::is_certain(&p, 0, 0, OFF));
        assert_eq!(EnumerableMachine::det_interaction(&p, 0, 0, OFF), None);
    }

    #[test]
    fn effect_table_matches_machine_queries() {
        let p = line_protocol();
        let t = EffectTable::of(&p);
        for a in 0..3u16 {
            for b in 0..3u16 {
                for link in [OFF, ON] {
                    let (sa, sb) = (StateId::new(a), StateId::new(b));
                    assert_eq!(
                        t.can_affect(a as usize, b as usize, link),
                        p.can_affect(&sa, &sb, link)
                    );
                    assert_eq!(
                        t.can_affect_edge(a as usize, b as usize, link),
                        p.can_affect_edge(&sa, &sb, link)
                    );
                }
            }
        }
    }
}
