//! The population: node states plus the active-edge set.

use netcon_graph::EdgeSet;

/// A configuration `C : V ∪ E → Q ∪ {0, 1}` of the model: the state of
/// every node and the binary state of every edge of the complete
/// interaction graph.
///
/// # Example
///
/// ```
/// use netcon_core::Population;
///
/// let mut pop: Population<&str> = Population::new(3, "q0");
/// pop.set_state(1, "leader");
/// pop.edges_mut().activate(0, 1);
/// assert_eq!(*pop.state(1), "leader");
/// assert_eq!(pop.edges().active_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Population<S> {
    states: Vec<S>,
    edges: EdgeSet,
}

impl<S: Clone> Population<S> {
    /// Creates a population of `n` nodes, all in `initial`, with every edge
    /// inactive — the model's initial configuration.
    #[must_use]
    pub fn new(n: usize, initial: S) -> Self {
        Self {
            states: vec![initial; n],
            edges: EdgeSet::new(n),
        }
    }

    /// Creates a population from explicit node states and edge states.
    ///
    /// Used for problems whose input is part of the initial configuration,
    /// e.g. Graph-Replication where `V₁` starts in `q₀` with `E₁` active
    /// and `V₂` starts in `r₀`.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != edges.n()`.
    #[must_use]
    pub fn from_parts(states: Vec<S>, edges: EdgeSet) -> Self {
        assert_eq!(
            states.len(),
            edges.n(),
            "state vector and edge set disagree on population size"
        );
        Self { states, edges }
    }

    /// The population size `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.states.len()
    }

    /// The state of node `u`.
    #[must_use]
    pub fn state(&self, u: usize) -> &S {
        &self.states[u]
    }

    /// Sets the state of node `u`.
    pub fn set_state(&mut self, u: usize, state: S) {
        self.states[u] = state;
    }

    /// All node states, indexed by node.
    #[must_use]
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The active-edge set (the output network when all states are output
    /// states).
    #[must_use]
    pub fn edges(&self) -> &EdgeSet {
        &self.edges
    }

    /// Mutable access to the edge set, for preparing initial
    /// configurations. Protocol execution goes through
    /// [`Simulation`](crate::Simulation) instead.
    pub fn edges_mut(&mut self) -> &mut EdgeSet {
        &mut self.edges
    }

    /// The number of nodes whose state satisfies `pred`.
    pub fn count_where(&self, pred: impl Fn(&S) -> bool) -> usize {
        self.states.iter().filter(|s| pred(s)).count()
    }

    /// The indices of nodes whose state satisfies `pred`.
    pub fn nodes_where(&self, pred: impl Fn(&S) -> bool) -> Vec<usize> {
        (0..self.n()).filter(|&u| pred(&self.states[u])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_population_is_initial_configuration() {
        let pop: Population<u8> = Population::new(5, 0);
        assert_eq!(pop.n(), 5);
        assert!(pop.states().iter().all(|&s| s == 0));
        assert_eq!(pop.edges().active_count(), 0);
    }

    #[test]
    fn count_and_select() {
        let mut pop: Population<u8> = Population::new(4, 0);
        pop.set_state(2, 9);
        assert_eq!(pop.count_where(|&s| s == 9), 1);
        assert_eq!(pop.nodes_where(|&s| s == 0), vec![0, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn mismatched_parts_panic() {
        let _ = Population::from_parts(vec![0u8; 3], EdgeSet::new(4));
    }
}
