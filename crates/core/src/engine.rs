//! Shared engine internals: convergence bookkeeping and the incremental
//! effective-pair index used by both [`Simulation`](crate::Simulation) and
//! [`EventSim`](crate::EventSim).
//!
//! Both engines agree on what they record per interaction — total steps,
//! effective interactions, edge events, and the steps of the last output
//! change / last effective interaction — so the two loops share one
//! [`Bookkeeping`] value and one way of turning it into a
//! [`RunOutcome`](crate::RunOutcome). Likewise, the O(n)-per-interaction
//! maintenance of "which pairs currently have an applicable transition"
//! is one algorithm ([`EffectIndex`]), reused by `EventSim`'s sampler and
//! by `Simulation`'s optional quiescence tracker.

use crate::compiled::EffectTable;
use crate::sim::RunOutcome;
use crate::{Link, Machine, Population};

/// Maps a raw 64-bit draw to a uniform value on the half-open unit
/// interval `(0, 1]` with 53-bit resolution — the draw both event engines
/// feed into [`geometric_skip`].
///
/// The `+ 1` excludes 0 (whose logarithm is −∞) and includes 1 (zero
/// skips), mirroring the inversion convention of the original `EventSim`
/// sampler bit for bit.
#[inline]
#[must_use]
pub fn unit_open01(raw: u64) -> f64 {
    ((raw >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Inversion of the geometric law shared by [`EventSim`](crate::EventSim)
/// and [`BucketSim`](crate::BucketSim): the number of consecutive
/// scheduler draws that miss a candidate set hit with probability `p`,
/// derived from one uniform `u ∈ (0, 1]` as `⌊ln u / ln(1−p)⌋`.
///
/// `P(skips ≥ t) = (1−p)^t` exactly (up to f64 rounding), so feeding both
/// engines the same *skip schedule* (the same stream of `u`s) makes their
/// skip counts directly comparable: the engine with the larger candidate
/// set (larger `p`) never skips more — the monotonicity the coin-level
/// proptests pin.
///
/// Returns an `f64` so callers can compare against a remaining-budget
/// window before truncating (the value can exceed `u64::MAX` when `p` is
/// tiny and `u` is close to 0).
#[inline]
#[must_use]
pub fn geometric_skip(u01: f64, p: f64) -> f64 {
    debug_assert!(p > 0.0 && p <= 1.0);
    (u01.ln() / (-p).ln_1p()).floor()
}

/// The output graph of a configuration: active edges restricted to nodes
/// in output states (`G(C)` in §3.1). Shared by both engines'
/// `output_graph` methods.
pub(crate) fn output_graph<M: Machine>(
    machine: &M,
    pop: &Population<M::State>,
) -> netcon_graph::EdgeSet {
    let mut out = netcon_graph::EdgeSet::new(pop.n());
    for (u, v) in pop.edges().active_edges() {
        if machine.is_output(pop.state(u)) && machine.is_output(pop.state(v)) {
            out.activate(u, v);
        }
    }
    out
}

/// The per-run counters every engine maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Bookkeeping {
    /// Scheduler-selected interactions so far (including ineffective ones).
    pub steps: u64,
    /// Effective interactions so far.
    pub effective_steps: u64,
    /// Edge activations/deactivations so far.
    pub edge_events: u64,
    /// Step of the most recent edge change (0 if none yet).
    pub last_output_change: u64,
    /// Step of the most recent effective interaction (0 if none yet).
    pub last_effective: u64,
}

impl Bookkeeping {
    /// Records an effective interaction at the current `steps` count.
    pub fn record_effective(&mut self, edge_changed: bool) {
        if edge_changed {
            self.edge_events += 1;
            self.last_output_change = self.steps;
        }
        self.effective_steps += 1;
        self.last_effective = self.steps;
    }

    /// The [`RunOutcome`] for a stable predicate observed right now.
    pub fn stabilized_now(&self) -> RunOutcome {
        RunOutcome::Stabilized {
            detected_at: self.steps,
            converged_at: self.last_output_change,
            last_effective: self.last_effective,
        }
    }
}

/// A set of unordered node pairs supporting O(1) insert, remove,
/// membership, and uniform sampling by position.
///
/// The members live in a dense vector (swap-remove keeps it compact); the
/// position map is a full `n × n` matrix — twice the memory of a
/// triangular map (`4n²` bytes), but the event engine's per-interaction
/// rescan then reads one *contiguous* row per touched node, which is
/// what the O(n)-maintenance hot loop is bound on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairSet {
    n: usize,
    /// Words per row of the membership bitset.
    row_words: usize,
    /// Packed members `(u << 16) | v` with `u < v`.
    members: Vec<u32>,
    /// `pos[u * n + v]` (and mirror `[v * n + u]`) → position in
    /// `members` + 1, or 0 when absent.
    pos: Vec<u32>,
    /// Membership bitset, one row per node (bit `v` of row `u` and bit
    /// `u` of row `v`): lets the engines diff a whole row against a
    /// desired-membership mask word-wise.
    rows: Vec<u64>,
}

impl PairSet {
    /// Creates an empty set over `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n > 65535` (members are packed into `u16` halves).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n <= usize::from(u16::MAX), "PairSet packs nodes into u16");
        let row_words = n.div_ceil(64);
        Self {
            n,
            row_words,
            members: Vec::new(),
            pos: vec![0; n * n],
            rows: vec![0; n * row_words],
        }
    }

    /// The membership bitset row of node `u` (bit `v` ⇔ `{u, v}` is a
    /// member).
    #[must_use]
    pub fn row_bits(&self, u: usize) -> &[u64] {
        &self.rows[u * self.row_words..(u + 1) * self.row_words]
    }

    /// The number of member pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `{u, v}` is a member.
    #[must_use]
    pub fn contains(&self, u: usize, v: usize) -> bool {
        self.pos[u * self.n + v] != 0
    }

    /// Inserts or removes `{u, v}` according to `member` (no-ops when the
    /// membership already matches).
    pub fn set(&mut self, u: usize, v: usize, member: bool) {
        debug_assert!(u != v && u < self.n && v < self.n);
        let i = u * self.n + v;
        let p = self.pos[i];
        if member {
            if p == 0 {
                let (a, b) = if u < v { (u, v) } else { (v, u) };
                self.members.push((a as u32) << 16 | b as u32);
                let at = u32::try_from(self.members.len()).expect("≤ n²/2 members");
                self.pos[i] = at;
                self.pos[v * self.n + u] = at;
                self.rows[u * self.row_words + v / 64] |= 1u64 << (v % 64);
                self.rows[v * self.row_words + u / 64] |= 1u64 << (u % 64);
            }
        } else if p != 0 {
            let hole = (p - 1) as usize;
            let last = *self.members.last().expect("non-empty: p != 0");
            self.members.swap_remove(hole);
            self.pos[i] = 0;
            self.pos[v * self.n + u] = 0;
            self.rows[u * self.row_words + v / 64] &= !(1u64 << (v % 64));
            self.rows[v * self.row_words + u / 64] &= !(1u64 << (u % 64));
            if hole < self.members.len() {
                let (lu, lv) = ((last >> 16) as usize, (last & 0xFFFF) as usize);
                self.pos[lu * self.n + lv] = p;
                self.pos[lv * self.n + lu] = p;
            }
        }
    }

    /// The member at position `i` (for uniform sampling), as `(u, v)` with
    /// `u < v`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> (usize, usize) {
        let packed = self.members[i];
        ((packed >> 16) as usize, (packed & 0xFFFF) as usize)
    }

    /// Iterates the member pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.members
            .iter()
            .map(|&p| ((p >> 16) as usize, (p & 0xFFFF) as usize))
    }

    /// Bytes of heap memory held by this set (position matrix, membership
    /// bitset, member vector) — the Θ(n²) bulk of the dense event engine.
    #[must_use]
    pub fn approx_mem_bytes(&self) -> u64 {
        (self.pos.capacity() * 4 + self.rows.capacity() * 8 + self.members.capacity() * 4) as u64
    }
}

/// Applies a desired-membership bitset row for node `u` to `pairs`: only
/// the XOR diff against the current row touches the set, in increasing-`v`
/// order — the word-parallel tail shared by [`EffectIndex::rescan`] and
/// the scanning-mode registry in [`event`](crate::event).
///
/// The increasing-`v` application order is part of the engines'
/// reproducibility contract: it determines the member order inside
/// `pairs`, which the samplers index by position.
pub(crate) fn apply_desired_row(pairs: &mut PairSet, u: usize, desired: &[u64]) {
    for (k, &want) in desired.iter().enumerate() {
        let mut changed = want ^ pairs.row_bits(u)[k];
        while changed != 0 {
            let b = changed.trailing_zeros() as usize;
            changed &= changed - 1;
            let w = k * 64 + b;
            pairs.set(u, w, want >> b & 1 == 1);
        }
    }
}

/// Dense-index view of a machine's effectiveness relation plus the current
/// per-node state indices — the incremental core shared by `EventSim` and
/// `Simulation::track_effective`.
///
/// The `index_of` function pointer is captured where the
/// `EnumerableMachine` bound is available, so the generic engine loops can
/// maintain the index without carrying the bound themselves.
#[derive(Debug, Clone)]
pub(crate) struct EffectIndex<M: Machine> {
    table: EffectTable,
    /// Dense state index of every node.
    idx: Vec<u16>,
    /// One node bitset per state (bit `u` of row `s` ⇔ `idx[u] == s`),
    /// `row_words` words each — the input of the word-parallel rescan.
    state_nodes: Vec<u64>,
    /// Scratch row for the desired-membership mask.
    scratch: Vec<u64>,
    row_words: usize,
    index_of: fn(&M, &M::State) -> usize,
}

impl<M: Machine> EffectIndex<M> {
    /// Builds the index and the initial possibly-effective pair set with a
    /// full O(n²) scan of `pop`.
    pub fn build(
        machine: &M,
        pop: &Population<M::State>,
        table: EffectTable,
        index_of: fn(&M, &M::State) -> usize,
    ) -> (Self, PairSet) {
        let n = pop.n();
        let idx: Vec<u16> = (0..n)
            .map(|u| u16::try_from(index_of(machine, pop.state(u))).expect("≤ 65536 states"))
            .collect();
        let row_words = n.div_ceil(64);
        let mut state_nodes = vec![0u64; table.size() * row_words];
        for (u, &s) in idx.iter().enumerate() {
            state_nodes[s as usize * row_words + u / 64] |= 1u64 << (u % 64);
        }
        let mut pairs = PairSet::new(n);
        for u in 0..n {
            for (v, active) in pop.edges().row(u) {
                if v > u && table.can_affect(idx[u] as usize, idx[v] as usize, Link::from(active))
                {
                    pairs.set(u, v, true);
                }
            }
        }
        (
            Self {
                table,
                idx,
                state_nodes,
                scratch: vec![0u64; row_words],
                row_words,
                index_of,
            },
            pairs,
        )
    }

    /// The dense state index of node `u`.
    pub fn state_index(&self, u: usize) -> usize {
        self.idx[u] as usize
    }

    /// The effect table.
    pub fn table(&self) -> &EffectTable {
        &self.table
    }

    /// Bytes of heap memory held by the index (state indices, per-state
    /// node bitsets, scratch row, effect table).
    pub fn approx_mem_bytes(&self) -> u64 {
        (self.idx.capacity() * 2 + (self.state_nodes.capacity() + self.scratch.capacity()) * 8)
            as u64
            + self.table.approx_mem_bytes()
    }

    /// Updates the index after an effective interaction between `u` and
    /// `v`: re-derives both state indices and rescans the two incident
    /// pair rows (O(n), word-parallel for small machines).
    pub fn on_interaction(
        &mut self,
        machine: &M,
        pop: &Population<M::State>,
        pairs: &mut PairSet,
        u: usize,
        v: usize,
    ) {
        self.reindex(machine, pop, u);
        self.reindex(machine, pop, v);
        self.rescan(pop, pairs, u);
        self.rescan(pop, pairs, v);
    }

    /// Re-derives `idx[u]` and keeps the per-state node bitsets in sync.
    fn reindex(&mut self, machine: &M, pop: &Population<M::State>, u: usize) {
        let new = u16::try_from((self.index_of)(machine, pop.state(u))).expect("≤ 65536 states");
        let old = self.idx[u];
        if old != new {
            let (word, bit) = (u / 64, 1u64 << (u % 64));
            self.state_nodes[old as usize * self.row_words + word] &= !bit;
            self.state_nodes[new as usize * self.row_words + word] |= bit;
            self.idx[u] = new;
        }
    }

    /// Recomputes the membership of every pair incident to `u`.
    ///
    /// This is the engine's hot loop (O(n) per effective interaction),
    /// and for machines with ≤ 32 states it is *word-parallel*: the
    /// desired membership row is the OR of the node bitsets of the states
    /// `u`'s state is effective against (edge-blind), patched for the
    /// O(degree) active neighbours, then XOR-diffed against the current
    /// membership row so only genuinely changed pairs touch the set —
    /// `O(n·|Q|/64 + degree + changes)` rather than `O(n)` element
    /// operations.
    fn rescan(&mut self, pop: &Population<M::State>, pairs: &mut PairSet, u: usize) {
        let iu = self.idx[u] as usize;
        if let Some(row_mask) = self.table.affect_row(iu) {
            let wpr = self.row_words;
            // Desired membership, assuming every incident edge is off.
            self.scratch.fill(0);
            for s in 0..self.table.size() {
                if row_mask >> (s << 1) & 1 == 1 {
                    let row = &self.state_nodes[s * wpr..(s + 1) * wpr];
                    for (d, &w) in self.scratch.iter_mut().zip(row) {
                        *d |= w;
                    }
                }
            }
            // Patch the active neighbours with the edge-on relation, and
            // drop the self-pair.
            for w in pop.edges().neighbors(u) {
                let on = row_mask >> ((usize::from(self.idx[w]) << 1) | 1) & 1 == 1;
                if on {
                    self.scratch[w / 64] |= 1u64 << (w % 64);
                } else {
                    self.scratch[w / 64] &= !(1u64 << (w % 64));
                }
            }
            self.scratch[u / 64] &= !(1u64 << (u % 64));
            // Apply exactly the diff.
            apply_desired_row(pairs, u, &self.scratch);
        } else {
            for (w, active) in pop.edges().row(u) {
                pairs.set(
                    u,
                    w,
                    self.table
                        .can_affect(iu, self.idx[w] as usize, Link::from(active)),
                );
            }
        }
    }
}

/// Capacity of the scanning-mode observed-state registry: affect masks
/// are single `u64` rows, so at most 64 distinct states can be live at
/// once before [`ScanIndex`] falls back to plain scanning.
const MAX_SCAN_SLOTS: usize = 64;

/// Populations below this size skip the registry entirely: maintaining
/// it costs up to `4 · MAX_SCAN_SLOTS` `can_affect` queries per *novel*
/// state, which only beats the plain `2n`-query rescan once `n` is
/// comfortably past the registry size.
const SCAN_INDEX_MIN_N: usize = 256;

/// Dynamic observed-state index for machines *without* dense state ids —
/// the scanning-mode counterpart of [`EffectIndex`].
///
/// `EventSim::new_scanning` used to re-query `can_affect` against all
/// `n − 1` partners of a touched node after every effective interaction,
/// even when the machine rules almost every state pair out. This index
/// discovers the distinct states actually present at runtime (linear
/// `PartialEq` dedup over ≤ [`MAX_SCAN_SLOTS`] live slots, refcounted so
/// departed states free their slot), memoizes the pairwise `can_affect`
/// bits between live slots, and keeps the same per-state node bitsets as
/// `EffectIndex` — so the rescan becomes the identical word-parallel
/// desired-row diff ([`apply_desired_row`]), pruning every ruled-out
/// state in one OR per 64 nodes instead of 64 machine queries.
///
/// Machines whose live state diversity exceeds the registry (or tiny
/// populations where the registry cannot pay for itself) overflow into
/// the original plain scan, permanently and exactly: membership is the
/// same `can_affect` truth either way, applied in the same increasing-
/// neighbour order, so executions are bit-identical across the modes.
#[derive(Debug, Clone)]
pub(crate) struct ScanIndex<M: Machine> {
    /// Live registered states (`None` = free slot).
    slots: Vec<Option<M::State>>,
    /// Nodes currently in each slot's state.
    refcount: Vec<u32>,
    /// Slot of every node.
    node_slot: Vec<u32>,
    /// One node bitset per slot, `row_words` words each.
    state_nodes: Vec<u64>,
    scratch: Vec<u64>,
    /// Memoized `can_affect(slot s, slot t, link)` bits: bit `t` of
    /// `affect_off[s]` / `affect_on[s]`.
    affect_off: Vec<u64>,
    affect_on: Vec<u64>,
    row_words: usize,
    /// Set when the registry gave up; the engine plain-scans from then on.
    overflow: bool,
}

impl<M: Machine> ScanIndex<M> {
    /// Builds the registry from the initial configuration. Returns an
    /// overflowed (inert) index when the population is too small to pay
    /// for it or the distinct-state count exceeds the registry.
    pub fn build(machine: &M, pop: &Population<M::State>) -> Self {
        let n = pop.n();
        let row_words = n.div_ceil(64);
        let mut sx = Self {
            slots: Vec::new(),
            refcount: Vec::new(),
            node_slot: vec![0; n],
            state_nodes: Vec::new(),
            scratch: vec![0; row_words],
            affect_off: Vec::new(),
            affect_on: Vec::new(),
            row_words,
            overflow: n < SCAN_INDEX_MIN_N,
        };
        if sx.overflow {
            return sx;
        }
        for u in 0..n {
            let Some(k) = sx.find_or_register(machine, pop.state(u)) else {
                sx.overflow = true;
                return sx;
            };
            sx.refcount[k] += 1;
            sx.node_slot[u] = k as u32;
            sx.state_nodes[k * row_words + u / 64] |= 1u64 << (u % 64);
        }
        sx
    }

    /// Bytes of heap memory held by the registry (state payloads of the
    /// registered states excluded).
    pub fn approx_mem_bytes(&self) -> u64 {
        (self.slots.capacity() * std::mem::size_of::<Option<M::State>>()
            + self.refcount.capacity() * 4
            + self.node_slot.capacity() * 4
            + (self.state_nodes.capacity()
                + self.scratch.capacity()
                + self.affect_off.capacity()
                + self.affect_on.capacity())
                * 8) as u64
    }

    /// Finds the slot holding `state`, registering it in a free slot (and
    /// memoizing its `can_affect` bits against every live slot) if novel.
    /// `None` when the registry is full.
    fn find_or_register(&mut self, machine: &M, state: &M::State) -> Option<usize> {
        if let Some(k) = self
            .slots
            .iter()
            .position(|s| s.as_ref() == Some(state))
        {
            return Some(k);
        }
        let k = match self.slots.iter().position(Option::is_none) {
            Some(free) => free,
            None if self.slots.len() < MAX_SCAN_SLOTS => {
                self.slots.push(None);
                self.refcount.push(0);
                self.affect_off.push(0);
                self.affect_on.push(0);
                self.state_nodes
                    .resize(self.state_nodes.len() + self.row_words, 0);
                self.slots.len() - 1
            }
            None => return None,
        };
        debug_assert!(self.state_nodes[k * self.row_words..(k + 1) * self.row_words]
            .iter()
            .all(|&w| w == 0));
        // Memoize both directions against every live slot (the rescan of
        // a node in slot s reads row s with s as the first argument, so
        // symmetry of the machine is not assumed). The self-pair is
        // covered once `slots[k]` is set.
        self.slots[k] = Some(state.clone());
        self.affect_off[k] = 0;
        self.affect_on[k] = 0;
        for t in 0..self.slots.len() {
            let (tb, kb) = (1u64 << t, 1u64 << k);
            // Bits aimed at free slots stay stale — harmless, since free
            // slots have empty node bitsets until re-registration rewrites
            // them right here.
            let Some(other) = &self.slots[t] else { continue };
            let me = self.slots[k].as_ref().expect("just set");
            if machine.can_affect(me, other, Link::Off) {
                self.affect_off[k] |= tb;
            }
            if machine.can_affect(me, other, Link::On) {
                self.affect_on[k] |= tb;
            }
            if t != k {
                self.affect_off[t] &= !kb;
                self.affect_on[t] &= !kb;
                if machine.can_affect(other, me, Link::Off) {
                    self.affect_off[t] |= kb;
                }
                if machine.can_affect(other, me, Link::On) {
                    self.affect_on[t] |= kb;
                }
            }
        }
        Some(k)
    }

    /// Re-derives the slot of node `u` after its state may have changed.
    /// Returns `false` when the registry overflowed.
    fn reassign(&mut self, machine: &M, pop: &Population<M::State>, u: usize) -> bool {
        let old = self.node_slot[u] as usize;
        if self.slots[old].as_ref() == Some(pop.state(u)) {
            return true;
        }
        // Leave the old slot first so a refcount-0 slot is reusable for
        // the new state.
        let (word, bit) = (u / 64, 1u64 << (u % 64));
        self.state_nodes[old * self.row_words + word] &= !bit;
        self.refcount[old] -= 1;
        if self.refcount[old] == 0 {
            self.slots[old] = None;
        }
        let Some(k) = self.find_or_register(machine, pop.state(u)) else {
            return false;
        };
        self.refcount[k] += 1;
        self.node_slot[u] = k as u32;
        self.state_nodes[k * self.row_words + word] |= bit;
        true
    }

    /// Updates the index after an effective interaction and rescans the
    /// two incident pair rows word-parallel. Returns `false` when the
    /// registry is overflowed — the caller must fall back to plain
    /// rescans for this (and every later) interaction.
    pub fn on_interaction(
        &mut self,
        machine: &M,
        pop: &Population<M::State>,
        pairs: &mut PairSet,
        u: usize,
        v: usize,
    ) -> bool {
        if self.overflow {
            return false;
        }
        if !self.reassign(machine, pop, u) || !self.reassign(machine, pop, v) {
            self.overflow = true;
            return false;
        }
        self.rescan(pop, pairs, u);
        self.rescan(pop, pairs, v);
        true
    }

    /// The word-parallel desired-membership rescan of node `u` — the same
    /// algorithm as [`EffectIndex::rescan`], over the observed-state
    /// registry.
    fn rescan(&mut self, pop: &Population<M::State>, pairs: &mut PairSet, u: usize) {
        let su = self.node_slot[u] as usize;
        let wpr = self.row_words;
        self.scratch.fill(0);
        let mut mask = self.affect_off[su];
        while mask != 0 {
            let t = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let row = &self.state_nodes[t * wpr..(t + 1) * wpr];
            for (d, &w) in self.scratch.iter_mut().zip(row) {
                *d |= w;
            }
        }
        for w in pop.edges().neighbors(u) {
            let on = self.affect_on[su] >> self.node_slot[w] & 1 == 1;
            if on {
                self.scratch[w / 64] |= 1u64 << (w % 64);
            } else {
                self.scratch[w / 64] &= !(1u64 << (w % 64));
            }
        }
        self.scratch[u / 64] &= !(1u64 << (u % 64));
        apply_desired_row(pairs, u, &self.scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_set_insert_remove_sample() {
        let mut s = PairSet::new(6);
        assert!(s.is_empty());
        s.set(4, 1, true);
        s.set(2, 3, true);
        s.set(1, 4, true); // duplicate (order-insensitive): no-op
        assert_eq!(s.len(), 2);
        assert!(s.contains(1, 4) && s.contains(3, 2));
        let mut all: Vec<_> = s.iter().collect();
        all.sort_unstable();
        assert_eq!(all, vec![(1, 4), (2, 3)]);
        s.set(1, 4, false);
        assert_eq!(s.len(), 1);
        assert!(!s.contains(4, 1));
        assert_eq!(s.get(0), (2, 3));
        s.set(2, 3, false);
        s.set(2, 3, false); // removing an absent pair is a no-op
        assert!(s.is_empty());
    }

    #[test]
    fn pair_set_swap_remove_keeps_positions_consistent() {
        let mut s = PairSet::new(8);
        for u in 0..8 {
            for v in (u + 1)..8 {
                s.set(u, v, true);
            }
        }
        assert_eq!(s.len(), 28);
        // Remove half the pairs in an arbitrary order and verify the
        // remaining memberships survive all the swap-removes.
        for u in 0..8 {
            for v in (u + 1)..8 {
                if (u + v) % 2 == 0 {
                    s.set(u, v, false);
                }
            }
        }
        for u in 0..8 {
            for v in (u + 1)..8 {
                assert_eq!(s.contains(u, v), (u + v) % 2 == 1, "pair ({u},{v})");
            }
        }
        let from_iter: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(from_iter.len(), s.len());
    }

    #[test]
    fn bookkeeping_records_and_reports() {
        let mut b = Bookkeeping {
            steps: 10,
            ..Bookkeeping::default()
        };
        b.record_effective(false);
        assert_eq!((b.effective_steps, b.last_effective, b.edge_events), (1, 10, 0));
        b.steps = 17;
        b.record_effective(true);
        assert_eq!((b.edge_events, b.last_output_change, b.last_effective), (1, 17, 17));
        assert_eq!(
            b.stabilized_now(),
            RunOutcome::Stabilized {
                detected_at: 17,
                converged_at: 17,
                last_effective: 17
            }
        );
    }
}
