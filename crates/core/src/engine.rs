//! Shared engine internals: convergence bookkeeping and the incremental
//! effective-pair index used by both [`Simulation`](crate::Simulation) and
//! [`EventSim`](crate::EventSim).
//!
//! Both engines agree on what they record per interaction — total steps,
//! effective interactions, edge events, and the steps of the last output
//! change / last effective interaction — so the two loops share one
//! [`Bookkeeping`] value and one way of turning it into a
//! [`RunOutcome`](crate::RunOutcome). Likewise, the O(n)-per-interaction
//! maintenance of "which pairs currently have an applicable transition"
//! is one algorithm ([`EffectIndex`]), reused by `EventSim`'s sampler and
//! by `Simulation`'s optional quiescence tracker.

use crate::compiled::EffectTable;
use crate::sim::RunOutcome;
use crate::{Link, Machine, Population};

/// Maps a raw 64-bit draw to a uniform value on the half-open unit
/// interval `(0, 1]` with 53-bit resolution — the draw both event engines
/// feed into [`geometric_skip`].
///
/// The `+ 1` excludes 0 (whose logarithm is −∞) and includes 1 (zero
/// skips), mirroring the inversion convention of the original `EventSim`
/// sampler bit for bit.
#[inline]
#[must_use]
pub fn unit_open01(raw: u64) -> f64 {
    ((raw >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Inversion of the geometric law shared by [`EventSim`](crate::EventSim)
/// and [`BucketSim`](crate::BucketSim): the number of consecutive
/// scheduler draws that miss a candidate set hit with probability `p`,
/// derived from one uniform `u ∈ (0, 1]` as `⌊ln u / ln(1−p)⌋`.
///
/// `P(skips ≥ t) = (1−p)^t` exactly (up to f64 rounding), so feeding both
/// engines the same *skip schedule* (the same stream of `u`s) makes their
/// skip counts directly comparable: the engine with the larger candidate
/// set (larger `p`) never skips more — the monotonicity the coin-level
/// proptests pin.
///
/// Returns an `f64` so callers can compare against a remaining-budget
/// window before truncating (the value can exceed `u64::MAX` when `p` is
/// tiny and `u` is close to 0).
#[inline]
#[must_use]
pub fn geometric_skip(u01: f64, p: f64) -> f64 {
    debug_assert!(p > 0.0 && p <= 1.0);
    (u01.ln() / (-p).ln_1p()).floor()
}

/// Survival function of the negative hypergeometric skip law: the
/// probability that the first `t` draws of a uniform random permutation of
/// `remaining` items, `hits` of them marked, are all unmarked.
///
/// `S(t) = ∏_{j=0}^{hits−1} (remaining − t − j)/(remaining − j)` — the
/// `hits`-factor form (each of the `hits` marked items independently-ish
/// avoids the length-`t` prefix), equal to the draw-by-draw product
/// `∏_{i=0}^{t−1} (misses − i)/(remaining − i)` that the naive engine
/// realizes one scheduler draw at a time.
fn nh_survival(remaining: u64, hits: u64, t: u64) -> f64 {
    if t > remaining - hits {
        return 0.0;
    }
    let mut s = 1.0f64;
    for j in 0..hits {
        s *= (remaining - t - j) as f64 / (remaining - j) as f64;
        if s == 0.0 {
            break;
        }
    }
    s
}

/// Smallest `t` in `[lo, hi]` with `nh_survival(t + 1) < u01` (the
/// survival function is non-increasing in `t`, so the predicate is
/// monotone). The caller guarantees the answer lies in the window.
fn nh_bisect(u01: f64, remaining: u64, hits: u64, lo: u64, hi: u64) -> u64 {
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if nh_survival(remaining, hits, mid + 1) < u01 {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Inversion of the *negative hypergeometric* skip law used by
/// [`RoundSim`](crate::RoundSim): drawing without replacement from
/// `remaining` unscheduled pairs of which `hits` are candidates, the
/// number of non-candidate draws before the first candidate, derived from
/// one uniform `u ∈ (0, 1]`.
///
/// This is the within-round counterpart of [`geometric_skip`]: under the
/// ShuffledRounds scheduler the rest of a round is a uniform permutation
/// of the remaining pairs, so `P(skips ≥ t) = ∏_{i<t} (misses−i)/(remaining−i)`
/// (hypergeometric counts instead of the i.i.d. `(1−p)^t`). Like its
/// geometric sibling the law is self-similar under truncation — `t`
/// failures leave a uniform permutation of `remaining − t` pairs with the
/// same `hits` — so stopping mid-skip at a budget and resampling on
/// resume is exact, which is what lets `run_to` pause anywhere.
///
/// The returned skip count never exceeds `remaining − hits` (a round
/// cannot run out of candidates before its last candidate is drawn).
/// Cost: `O(min(skips, hits·log remaining))` — a short sequential walk of
/// the draw-by-draw product when the candidate set is dense, a bisection
/// on the `hits`-factor survival form when it is sparse.
///
/// # Panics
///
/// Debug-asserts `1 ≤ hits ≤ remaining` and `u01 ∈ (0, 1]`.
#[must_use]
pub fn hypergeometric_skip(u01: f64, remaining: u64, hits: u64) -> u64 {
    debug_assert!(hits >= 1 && hits <= remaining);
    debug_assert!(u01 > 0.0 && u01 <= 1.0);
    let misses = remaining - hits;
    if misses == 0 {
        return 0;
    }
    // The result is the smallest t with S(t+1) < u (the same bracketing
    // convention as geometric_skip: S(t) ≥ u > S(t+1) ⇔ skips = t).
    let expect = misses / (hits + 1) + 1;
    if hits.saturating_mul(34) > expect.saturating_mul(4) {
        // Dense candidate set: the expected skip count is tiny, so walk
        // the draw-by-draw product. The cap bounds a pathological tail
        // (probability ≲ e⁻³²) which falls through to the bisection.
        let cap = expect.saturating_mul(32).min(misses);
        let mut surv = 1.0f64;
        for t in 0..cap {
            surv *= (misses - t) as f64 / (remaining - t) as f64;
            if surv < u01 {
                return t;
            }
        }
        if cap == misses {
            // S(misses + 1) = 0 < u: the permutation is out of misses.
            return misses;
        }
        nh_bisect(u01, remaining, hits, cap, misses)
    } else {
        nh_bisect(u01, remaining, hits, 0, misses)
    }
}

/// Inversion of the hypergeometric *count* law: drawing `draws` items
/// without replacement from `total` items of which `marked` are marked,
/// the number of marked items drawn, derived from one uniform
/// `u ∈ (0, 1]`.
///
/// [`RoundSim`](crate::RoundSim) uses it to split a batch of skipped
/// ineffective draws between the explicitly-tracked resolved pairs and
/// the anonymous unresolved pool: the skips are uniform without
/// replacement over their union, so the split is exactly this law.
///
/// The probability table is built by ratio recurrences outward from the
/// mode (whose unnormalized mass is pinned at 1, so nothing near the
/// bulk under- or overflows), then inverted as the smallest `x` with
/// `CDF(x) ≥ u`. Cost and transient memory are O(range) where
/// `range = min(marked, draws, total − marked, total − draws)`.
///
/// # Panics
///
/// Debug-asserts `marked ≤ total`, `draws ≤ total`, and `u01 ∈ (0, 1]`.
#[must_use]
pub fn hypergeometric_count(u01: f64, marked: u64, total: u64, draws: u64) -> u64 {
    debug_assert!(marked <= total && draws <= total);
    debug_assert!(u01 > 0.0 && u01 <= 1.0);
    let unmarked = total - marked;
    let lo = draws.saturating_sub(unmarked);
    let hi = marked.min(draws);
    if lo == hi {
        return lo;
    }
    // q(x+1)/q(x) for the pmf q(x) = C(marked, x)·C(unmarked, draws−x).
    let ratio = |x: u64| -> f64 {
        ((marked - x) as f64 * (draws - x) as f64)
            / ((x + 1) as f64 * (unmarked + x + 1 - draws) as f64)
    };
    let mode = ((u128::from(draws + 1) * u128::from(marked + 1)) / u128::from(total + 2)) as u64;
    let mode = mode.clamp(lo, hi);
    let mut pmf = vec![0.0f64; (hi - lo + 1) as usize];
    pmf[(mode - lo) as usize] = 1.0;
    let mut q = 1.0f64;
    for x in mode..hi {
        q *= ratio(x);
        pmf[(x + 1 - lo) as usize] = q;
    }
    q = 1.0;
    for x in (lo..mode).rev() {
        q /= ratio(x);
        pmf[(x - lo) as usize] = q;
    }
    let z: f64 = pmf.iter().sum();
    let target = u01 * z;
    let mut cum = 0.0f64;
    for (i, &p) in pmf.iter().enumerate() {
        cum += p;
        if cum >= target {
            return lo + i as u64;
        }
    }
    hi
}

/// Windowed variant of [`hypergeometric_count`] for huge parameters:
/// identical law, but the ratio-recurrence table is built only on a
/// `±(12σ + 32)` window around the mode instead of the full support, so
/// the cost is O(σ) instead of O(range). The truncated tail mass is
/// below `e⁻⁷²` relative — smaller than the `f64` rounding already
/// inherent in the dense table — so the two functions agree in
/// distribution; they may differ only on draws landing more than 12
/// standard deviations into a tail. Delegates to the exact-support
/// version whenever the full range is small.
///
/// The sparse round engine uses this to split skipped scheduled
/// occurrences between pools whose sizes scale with `n²`.
///
/// # Panics
///
/// Debug-asserts the same preconditions as [`hypergeometric_count`].
#[must_use]
pub fn hypergeometric_count_large(u01: f64, marked: u64, total: u64, draws: u64) -> u64 {
    debug_assert!(marked <= total && draws <= total);
    debug_assert!(u01 > 0.0 && u01 <= 1.0);
    let unmarked = total - marked;
    let lo = draws.saturating_sub(unmarked);
    let hi = marked.min(draws);
    if hi - lo <= 4096 {
        return hypergeometric_count(u01, marked, total, draws);
    }
    let (nf, kf, mf) = (total as f64, draws as f64, marked as f64);
    let p = mf / nf;
    let sigma = (kf * p * (1.0 - p) * ((nf - kf) / (nf - 1.0))).sqrt();
    let half = (12.0 * sigma) as u64 + 32;
    let mode = ((u128::from(draws + 1) * u128::from(marked + 1)) / u128::from(total + 2)) as u64;
    let mode = mode.clamp(lo, hi);
    let wlo = mode.saturating_sub(half).max(lo);
    let whi = mode.saturating_add(half).min(hi);
    let ratio = |x: u64| -> f64 {
        ((marked - x) as f64 * (draws - x) as f64)
            / ((x + 1) as f64 * (unmarked + x + 1 - draws) as f64)
    };
    let mut pmf = vec![0.0f64; (whi - wlo + 1) as usize];
    pmf[(mode - wlo) as usize] = 1.0;
    let mut q = 1.0f64;
    for x in mode..whi {
        q *= ratio(x);
        pmf[(x + 1 - wlo) as usize] = q;
    }
    q = 1.0;
    for x in (wlo..mode).rev() {
        q /= ratio(x);
        pmf[(x - wlo) as usize] = q;
    }
    let z: f64 = pmf.iter().sum();
    let target = u01 * z;
    let mut cum = 0.0f64;
    for (i, &p) in pmf.iter().enumerate() {
        cum += p;
        if cum >= target {
            return wlo + i as u64;
        }
    }
    whi
}

/// A cached inversion table for [`geometric_skip`] at one fixed hit
/// probability `p`: for small skip counts the floor inversion is a pure
/// threshold function of the raw draw's 53-bit mantissa, so the table
/// stores the integer cut points and the steady-state path answers most
/// draws with one binary search over 64 `u64`s instead of an `ln`.
///
/// **Bit-identical by construction**: each cut point is found by binary
/// search *over the real function* — `cuts[t]` is the smallest mantissa
/// value `j = (raw >> 11) + 1` with
/// `geometric_skip(unit_open01(raw), p) ≤ t` — so on a cache hit the
/// answer equals what the direct computation would have produced for the
/// same raw draw, and a miss (skip beyond the tabled horizon, or a
/// different `p`) falls back to the direct computation on the *same*
/// draw. The engines' coin streams are therefore unchanged.
#[derive(Debug, Clone)]
pub struct GeoSkipCache {
    p: f64,
    /// `cuts[t]` = smallest mantissa `j` whose skip is ≤ `t`;
    /// non-increasing in `t` (larger `u` ⇒ fewer skips).
    cuts: Vec<u64>,
}

/// Tabled skip horizon: draws that skip more than this many candidates
/// fall back to the direct `ln` inversion. 64 entries cover
/// `1 − (1−p)^65` of draws — essentially all of them in the dense-`p`
/// steady state the cache targets.
pub const GEO_CACHE_HORIZON: usize = 64;

impl GeoSkipCache {
    /// Builds the table for hit probability `p ∈ (0, 1)`.
    #[must_use]
    pub fn build(p: f64) -> Self {
        debug_assert!(p > 0.0 && p < 1.0);
        let skip_of = |j: u64| geometric_skip(j as f64 * (1.0 / (1u64 << 53) as f64), p);
        let mut cuts = Vec::with_capacity(GEO_CACHE_HORIZON + 1);
        for t in 0..=GEO_CACHE_HORIZON as u64 {
            // Smallest j in [1, 2⁵³] with skip(j) ≤ t; skip is
            // non-increasing in j and skip(2⁵³) = 0.
            let (mut lo, mut hi) = (1u64, 1u64 << 53);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if skip_of(mid) <= t as f64 {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            cuts.push(lo);
        }
        Self { p, cuts }
    }

    /// The probability the table was built for.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The skip count for a raw 64-bit draw, or `None` when the draw
    /// falls beyond the tabled horizon (caller recomputes directly from
    /// the same draw).
    #[inline]
    #[must_use]
    pub fn lookup(&self, raw: u64) -> Option<f64> {
        let j = (raw >> 11) + 1;
        if j < self.cuts[GEO_CACHE_HORIZON] {
            return None;
        }
        // cuts is non-increasing; the skip is the first t with cuts[t] ≤ j.
        Some(self.cuts.partition_point(|&c| c > j) as f64)
    }
}

/// Streak-counting lazy builder for [`GeoSkipCache`]: engines call
/// [`note`](Self::note) with the current hit probability before each
/// skip draw and get a cache back once the same `p` has recurred long
/// enough to amortize the table build.
#[derive(Debug, Clone, Default)]
pub(crate) struct GeoCacheSlot {
    cache: Option<GeoSkipCache>,
    streak_p: f64,
    streak: u32,
}

/// Builds after this many consecutive draws at one `p` (the table build
/// costs ~64 binary searches of ~53 `ln` evaluations).
const GEO_CACHE_STREAK: u32 = 512;

impl GeoCacheSlot {
    /// Returns the cache valid for `p`, if one is (or just became) warm.
    #[inline]
    pub(crate) fn note(&mut self, p: f64) -> Option<&GeoSkipCache> {
        if let Some(c) = &self.cache {
            if c.p() == p {
                return self.cache.as_ref();
            }
        }
        if self.streak_p == p {
            self.streak += 1;
            if self.streak >= GEO_CACHE_STREAK && p > 0.0 && p < 1.0 {
                self.cache = Some(GeoSkipCache::build(p));
                return self.cache.as_ref();
            }
        } else {
            self.streak_p = p;
            self.streak = 1;
        }
        None
    }
}

/// The output graph of a configuration: active edges restricted to nodes
/// in output states (`G(C)` in §3.1). Shared by both engines'
/// `output_graph` methods.
pub(crate) fn output_graph<M: Machine>(
    machine: &M,
    pop: &Population<M::State>,
) -> netcon_graph::EdgeSet {
    let mut out = netcon_graph::EdgeSet::new(pop.n());
    for (u, v) in pop.edges().active_edges() {
        if machine.is_output(pop.state(u)) && machine.is_output(pop.state(v)) {
            out.activate(u, v);
        }
    }
    out
}

/// The per-run counters every engine maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Bookkeeping {
    /// Scheduler-selected interactions so far (including ineffective ones).
    pub steps: u64,
    /// Effective interactions so far.
    pub effective_steps: u64,
    /// Edge activations/deactivations so far.
    pub edge_events: u64,
    /// Step of the most recent edge change (0 if none yet).
    pub last_output_change: u64,
    /// Step of the most recent effective interaction (0 if none yet).
    pub last_effective: u64,
}

impl Bookkeeping {
    /// Records an effective interaction at the current `steps` count.
    pub fn record_effective(&mut self, edge_changed: bool) {
        if edge_changed {
            self.edge_events += 1;
            self.last_output_change = self.steps;
        }
        self.effective_steps += 1;
        self.last_effective = self.steps;
    }

    /// The [`RunOutcome`] for a stable predicate observed right now.
    pub fn stabilized_now(&self) -> RunOutcome {
        RunOutcome::Stabilized {
            detected_at: self.steps,
            converged_at: self.last_output_change,
            last_effective: self.last_effective,
        }
    }
}

/// A set of unordered node pairs supporting O(1) insert, remove,
/// membership, and uniform sampling by position.
///
/// The members live in a dense vector (swap-remove keeps it compact); the
/// position map is a full `n × n` matrix — twice the memory of a
/// triangular map (`4n²` bytes), but the event engine's per-interaction
/// rescan then reads one *contiguous* row per touched node, which is
/// what the O(n)-maintenance hot loop is bound on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairSet {
    n: usize,
    /// Words per row of the membership bitset.
    row_words: usize,
    /// Packed members `(u << 16) | v` with `u < v`.
    members: Vec<u32>,
    /// `pos[u * n + v]` (and mirror `[v * n + u]`) → position in
    /// `members` + 1, or 0 when absent.
    pos: Vec<u32>,
    /// Membership bitset, one row per node (bit `v` of row `u` and bit
    /// `u` of row `v`): lets the engines diff a whole row against a
    /// desired-membership mask word-wise.
    rows: Vec<u64>,
}

impl PairSet {
    /// Creates an empty set over `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n > 65535` (members are packed into `u16` halves).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n <= usize::from(u16::MAX), "PairSet packs nodes into u16");
        let row_words = n.div_ceil(64);
        Self {
            n,
            row_words,
            members: Vec::new(),
            pos: vec![0; n * n],
            rows: vec![0; n * row_words],
        }
    }

    /// The membership bitset row of node `u` (bit `v` ⇔ `{u, v}` is a
    /// member).
    #[must_use]
    pub fn row_bits(&self, u: usize) -> &[u64] {
        &self.rows[u * self.row_words..(u + 1) * self.row_words]
    }

    /// The number of member pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `{u, v}` is a member.
    #[must_use]
    pub fn contains(&self, u: usize, v: usize) -> bool {
        self.pos[u * self.n + v] != 0
    }

    /// Inserts or removes `{u, v}` according to `member` (no-ops when the
    /// membership already matches).
    pub fn set(&mut self, u: usize, v: usize, member: bool) {
        debug_assert!(u != v && u < self.n && v < self.n);
        let i = u * self.n + v;
        let p = self.pos[i];
        if member {
            if p == 0 {
                let (a, b) = if u < v { (u, v) } else { (v, u) };
                self.members.push((a as u32) << 16 | b as u32);
                let at = u32::try_from(self.members.len()).expect("≤ n²/2 members");
                self.pos[i] = at;
                self.pos[v * self.n + u] = at;
                self.rows[u * self.row_words + v / 64] |= 1u64 << (v % 64);
                self.rows[v * self.row_words + u / 64] |= 1u64 << (u % 64);
            }
        } else if p != 0 {
            let hole = (p - 1) as usize;
            let last = *self.members.last().expect("non-empty: p != 0");
            self.members.swap_remove(hole);
            self.pos[i] = 0;
            self.pos[v * self.n + u] = 0;
            self.rows[u * self.row_words + v / 64] &= !(1u64 << (v % 64));
            self.rows[v * self.row_words + u / 64] &= !(1u64 << (u % 64));
            if hole < self.members.len() {
                let (lu, lv) = ((last >> 16) as usize, (last & 0xFFFF) as usize);
                self.pos[lu * self.n + lv] = p;
                self.pos[lv * self.n + lu] = p;
            }
        }
    }

    /// The member at position `i` (for uniform sampling), as `(u, v)` with
    /// `u < v`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> (usize, usize) {
        let packed = self.members[i];
        ((packed >> 16) as usize, (packed & 0xFFFF) as usize)
    }

    /// Iterates the member pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.members
            .iter()
            .map(|&p| ((p >> 16) as usize, (p & 0xFFFF) as usize))
    }

    /// Removes every member in O(members) — the per-round reset of the
    /// [`RoundSim`](crate::RoundSim) bookkeeping sets (the Θ(n²) position
    /// matrix is only ever touched where members actually lived).
    pub fn clear(&mut self) {
        for i in 0..self.members.len() {
            let packed = self.members[i];
            let (u, v) = ((packed >> 16) as usize, (packed & 0xFFFF) as usize);
            self.pos[u * self.n + v] = 0;
            self.pos[v * self.n + u] = 0;
            self.rows[u * self.row_words + v / 64] &= !(1u64 << (v % 64));
            self.rows[v * self.row_words + u / 64] &= !(1u64 << (u % 64));
        }
        self.members.clear();
    }

    /// Bytes of heap memory held by this set (position matrix, membership
    /// bitset, member vector) — the Θ(n²) bulk of the dense event engine.
    #[must_use]
    pub fn approx_mem_bytes(&self) -> u64 {
        (self.pos.capacity() * 4 + self.rows.capacity() * 8 + self.members.capacity() * 4) as u64
    }
}

/// Applies a desired-membership bitset row for node `u` to `pairs`: only
/// the XOR diff against the current row touches the set, in increasing-`v`
/// order — the word-parallel tail shared by [`EffectIndex::rescan`] and
/// the scanning-mode registry in [`event`](crate::event).
///
/// The increasing-`v` application order is part of the engines'
/// reproducibility contract: it determines the member order inside
/// `pairs`, which the samplers index by position.
pub(crate) fn apply_desired_row(pairs: &mut PairSet, u: usize, desired: &[u64]) {
    for (k, &want) in desired.iter().enumerate() {
        let mut changed = want ^ pairs.row_bits(u)[k];
        while changed != 0 {
            let b = changed.trailing_zeros() as usize;
            changed &= changed - 1;
            let w = k * 64 + b;
            pairs.set(u, w, want >> b & 1 == 1);
        }
    }
}

/// Dense-index view of a machine's effectiveness relation plus the current
/// per-node state indices — the incremental core shared by `EventSim` and
/// `Simulation::track_effective`.
///
/// The `index_of` function pointer is captured where the
/// `EnumerableMachine` bound is available, so the generic engine loops can
/// maintain the index without carrying the bound themselves.
#[derive(Debug, Clone)]
pub(crate) struct EffectIndex<M: Machine> {
    table: EffectTable,
    /// Dense state index of every node.
    idx: Vec<u16>,
    /// One node bitset per state (bit `u` of row `s` ⇔ `idx[u] == s`),
    /// `row_words` words each — the input of the word-parallel rescan.
    state_nodes: Vec<u64>,
    /// Ghost mask for faulted runs: bit `u` set ⇔ node `u` is absent
    /// (crashed or not yet arrived) and must never be a candidate. The
    /// word-parallel rescan excludes absent nodes automatically (they
    /// are cleared from `state_nodes` and hold no active edges); the
    /// per-pair fallback for > 32-state machines consults this mask.
    absent: Vec<u64>,
    /// Scratch row for the desired-membership mask.
    scratch: Vec<u64>,
    row_words: usize,
    index_of: fn(&M, &M::State) -> usize,
}

impl<M: Machine> EffectIndex<M> {
    /// Builds the index and the initial possibly-effective pair set with a
    /// full O(n²) scan of `pop`.
    pub fn build(
        machine: &M,
        pop: &Population<M::State>,
        table: EffectTable,
        index_of: fn(&M, &M::State) -> usize,
    ) -> (Self, PairSet) {
        let n = pop.n();
        let idx: Vec<u16> = (0..n)
            .map(|u| u16::try_from(index_of(machine, pop.state(u))).expect("≤ 65536 states"))
            .collect();
        let row_words = n.div_ceil(64);
        let mut state_nodes = vec![0u64; table.size() * row_words];
        for (u, &s) in idx.iter().enumerate() {
            state_nodes[s as usize * row_words + u / 64] |= 1u64 << (u % 64);
        }
        let mut pairs = PairSet::new(n);
        for u in 0..n {
            for (v, active) in pop.edges().row(u) {
                if v > u && table.can_affect(idx[u] as usize, idx[v] as usize, Link::from(active))
                {
                    pairs.set(u, v, true);
                }
            }
        }
        (
            Self {
                table,
                idx,
                state_nodes,
                absent: vec![0u64; row_words],
                scratch: vec![0u64; row_words],
                row_words,
                index_of,
            },
            pairs,
        )
    }

    /// Marks node `x` absent (a ghost): it leaves its per-state node
    /// bitset so no word-parallel rescan ever proposes a pair with it,
    /// and the fallback path masks it explicitly. The caller clears
    /// `x`'s pair row and edges; `idx[x]` is retained (an arrived node
    /// re-enters with its unchanged initial state).
    pub fn set_absent(&mut self, x: usize) {
        let (word, bit) = (x / 64, 1u64 << (x % 64));
        self.state_nodes[self.idx[x] as usize * self.row_words + word] &= !bit;
        self.absent[word] |= bit;
    }

    /// Marks node `x` present again (an arrival): re-enters its state's
    /// node bitset. The caller rescans `x`'s pair row afterwards.
    pub fn set_present(&mut self, x: usize) {
        let (word, bit) = (x / 64, 1u64 << (x % 64));
        self.state_nodes[self.idx[x] as usize * self.row_words + word] |= bit;
        self.absent[word] &= !bit;
    }

    /// Whether node `x` is currently marked absent.
    pub fn is_absent(&self, x: usize) -> bool {
        self.absent[x / 64] >> (x % 64) & 1 == 1
    }

    /// Recomputes the membership of every pair incident to `u` — the
    /// public entry the fault layer uses after an arrival flips `u`
    /// back to present.
    pub fn rescan_node(&mut self, pop: &Population<M::State>, pairs: &mut PairSet, u: usize) {
        debug_assert!(!self.is_absent(u), "rescan of an absent node");
        self.rescan(pop, pairs, u);
    }

    /// The dense state index of node `u`.
    pub fn state_index(&self, u: usize) -> usize {
        self.idx[u] as usize
    }

    /// The effect table.
    pub fn table(&self) -> &EffectTable {
        &self.table
    }

    /// Bytes of heap memory held by the index (state indices, per-state
    /// node bitsets, scratch row, effect table).
    pub fn approx_mem_bytes(&self) -> u64 {
        (self.idx.capacity() * 2
            + (self.state_nodes.capacity() + self.absent.capacity() + self.scratch.capacity()) * 8)
            as u64
            + self.table.approx_mem_bytes()
    }

    /// Updates the index after a *state-only* change of node `u` (a
    /// crash notification): re-derives `u`'s state index and rescans its
    /// incident pair row. The single-node analogue of
    /// [`on_interaction`](EffectIndex::on_interaction).
    pub fn on_state_change(
        &mut self,
        machine: &M,
        pop: &Population<M::State>,
        pairs: &mut PairSet,
        u: usize,
    ) {
        self.reindex(machine, pop, u);
        self.rescan(pop, pairs, u);
    }

    /// Updates the index after an effective interaction between `u` and
    /// `v`: re-derives both state indices and rescans the two incident
    /// pair rows (O(n), word-parallel for small machines).
    pub fn on_interaction(
        &mut self,
        machine: &M,
        pop: &Population<M::State>,
        pairs: &mut PairSet,
        u: usize,
        v: usize,
    ) {
        self.reindex(machine, pop, u);
        self.reindex(machine, pop, v);
        self.rescan(pop, pairs, u);
        self.rescan(pop, pairs, v);
    }

    /// Re-derives `idx[u]` and keeps the per-state node bitsets in sync.
    fn reindex(&mut self, machine: &M, pop: &Population<M::State>, u: usize) {
        let new = u16::try_from((self.index_of)(machine, pop.state(u))).expect("≤ 65536 states");
        let old = self.idx[u];
        if old != new {
            let (word, bit) = (u / 64, 1u64 << (u % 64));
            self.state_nodes[old as usize * self.row_words + word] &= !bit;
            self.state_nodes[new as usize * self.row_words + word] |= bit;
            self.idx[u] = new;
        }
    }

    /// Recomputes the membership of every pair incident to `u`.
    ///
    /// This is the engine's hot loop (O(n) per effective interaction),
    /// and for machines with ≤ 32 states it is *word-parallel*: the
    /// desired membership row is the OR of the node bitsets of the states
    /// `u`'s state is effective against (edge-blind), patched for the
    /// O(degree) active neighbours, then XOR-diffed against the current
    /// membership row so only genuinely changed pairs touch the set —
    /// `O(n·|Q|/64 + degree + changes)` rather than `O(n)` element
    /// operations.
    fn rescan(&mut self, pop: &Population<M::State>, pairs: &mut PairSet, u: usize) {
        let iu = self.idx[u] as usize;
        if let Some(row_mask) = self.table.affect_row(iu) {
            let wpr = self.row_words;
            // Desired membership, assuming every incident edge is off.
            self.scratch.fill(0);
            for s in 0..self.table.size() {
                if row_mask >> (s << 1) & 1 == 1 {
                    let row = &self.state_nodes[s * wpr..(s + 1) * wpr];
                    for (d, &w) in self.scratch.iter_mut().zip(row) {
                        *d |= w;
                    }
                }
            }
            // Patch the active neighbours with the edge-on relation, and
            // drop the self-pair.
            for w in pop.edges().neighbors(u) {
                let on = row_mask >> ((usize::from(self.idx[w]) << 1) | 1) & 1 == 1;
                if on {
                    self.scratch[w / 64] |= 1u64 << (w % 64);
                } else {
                    self.scratch[w / 64] &= !(1u64 << (w % 64));
                }
            }
            self.scratch[u / 64] &= !(1u64 << (u % 64));
            // Apply exactly the diff.
            apply_desired_row(pairs, u, &self.scratch);
        } else {
            for (w, active) in pop.edges().row(u) {
                pairs.set(
                    u,
                    w,
                    self.absent[w / 64] >> (w % 64) & 1 == 0
                        && self
                            .table
                            .can_affect(iu, self.idx[w] as usize, Link::from(active)),
                );
            }
        }
    }
}

/// Capacity of the scanning-mode observed-state registry: affect masks
/// are single `u64` rows, so at most 64 distinct states can be live at
/// once before [`ScanIndex`] falls back to plain scanning.
const MAX_SCAN_SLOTS: usize = 64;

/// Populations below this size skip the registry entirely: maintaining
/// it costs up to `4 · MAX_SCAN_SLOTS` `can_affect` queries per *novel*
/// state, which only beats the plain `2n`-query rescan once `n` is
/// comfortably past the registry size.
const SCAN_INDEX_MIN_N: usize = 256;

/// Dynamic observed-state index for machines *without* dense state ids —
/// the scanning-mode counterpart of [`EffectIndex`].
///
/// `EventSim::new_scanning` used to re-query `can_affect` against all
/// `n − 1` partners of a touched node after every effective interaction,
/// even when the machine rules almost every state pair out. This index
/// discovers the distinct states actually present at runtime (linear
/// `PartialEq` dedup over ≤ [`MAX_SCAN_SLOTS`] live slots, refcounted so
/// departed states free their slot), memoizes the pairwise `can_affect`
/// bits between live slots, and keeps the same per-state node bitsets as
/// `EffectIndex` — so the rescan becomes the identical word-parallel
/// desired-row diff ([`apply_desired_row`]), pruning every ruled-out
/// state in one OR per 64 nodes instead of 64 machine queries.
///
/// Machines whose live state diversity exceeds the registry (or tiny
/// populations where the registry cannot pay for itself) overflow into
/// the original plain scan, permanently and exactly: membership is the
/// same `can_affect` truth either way, applied in the same increasing-
/// neighbour order, so executions are bit-identical across the modes.
#[derive(Debug, Clone)]
pub(crate) struct ScanIndex<M: Machine> {
    /// Live registered states (`None` = free slot).
    slots: Vec<Option<M::State>>,
    /// Nodes currently in each slot's state.
    refcount: Vec<u32>,
    /// Slot of every node.
    node_slot: Vec<u32>,
    /// One node bitset per slot, `row_words` words each.
    state_nodes: Vec<u64>,
    scratch: Vec<u64>,
    /// Memoized `can_affect(slot s, slot t, link)` bits: bit `t` of
    /// `affect_off[s]` / `affect_on[s]`.
    affect_off: Vec<u64>,
    affect_on: Vec<u64>,
    row_words: usize,
    /// Set when the registry gave up; the engine plain-scans from then on.
    overflow: bool,
}

impl<M: Machine> ScanIndex<M> {
    /// Builds the registry from the initial configuration. Returns an
    /// overflowed (inert) index when the population is too small to pay
    /// for it or the distinct-state count exceeds the registry.
    pub fn build(machine: &M, pop: &Population<M::State>) -> Self {
        let n = pop.n();
        let row_words = n.div_ceil(64);
        let mut sx = Self {
            slots: Vec::new(),
            refcount: Vec::new(),
            node_slot: vec![0; n],
            state_nodes: Vec::new(),
            scratch: vec![0; row_words],
            affect_off: Vec::new(),
            affect_on: Vec::new(),
            row_words,
            overflow: n < SCAN_INDEX_MIN_N,
        };
        if sx.overflow {
            return sx;
        }
        for u in 0..n {
            let Some(k) = sx.find_or_register(machine, pop.state(u)) else {
                sx.overflow = true;
                return sx;
            };
            sx.refcount[k] += 1;
            sx.node_slot[u] = k as u32;
            sx.state_nodes[k * row_words + u / 64] |= 1u64 << (u % 64);
        }
        sx
    }

    /// Bytes of heap memory held by the registry (state payloads of the
    /// registered states excluded).
    pub fn approx_mem_bytes(&self) -> u64 {
        (self.slots.capacity() * std::mem::size_of::<Option<M::State>>()
            + self.refcount.capacity() * 4
            + self.node_slot.capacity() * 4
            + (self.state_nodes.capacity()
                + self.scratch.capacity()
                + self.affect_off.capacity()
                + self.affect_on.capacity())
                * 8) as u64
    }

    /// Finds the slot holding `state`, registering it in a free slot (and
    /// memoizing its `can_affect` bits against every live slot) if novel.
    /// `None` when the registry is full.
    fn find_or_register(&mut self, machine: &M, state: &M::State) -> Option<usize> {
        if let Some(k) = self
            .slots
            .iter()
            .position(|s| s.as_ref() == Some(state))
        {
            return Some(k);
        }
        let k = match self.slots.iter().position(Option::is_none) {
            Some(free) => free,
            None if self.slots.len() < MAX_SCAN_SLOTS => {
                self.slots.push(None);
                self.refcount.push(0);
                self.affect_off.push(0);
                self.affect_on.push(0);
                self.state_nodes
                    .resize(self.state_nodes.len() + self.row_words, 0);
                self.slots.len() - 1
            }
            None => return None,
        };
        debug_assert!(self.state_nodes[k * self.row_words..(k + 1) * self.row_words]
            .iter()
            .all(|&w| w == 0));
        // Memoize both directions against every live slot (the rescan of
        // a node in slot s reads row s with s as the first argument, so
        // symmetry of the machine is not assumed). The self-pair is
        // covered once `slots[k]` is set.
        self.slots[k] = Some(state.clone());
        self.affect_off[k] = 0;
        self.affect_on[k] = 0;
        for t in 0..self.slots.len() {
            let (tb, kb) = (1u64 << t, 1u64 << k);
            // Bits aimed at free slots stay stale — harmless, since free
            // slots have empty node bitsets until re-registration rewrites
            // them right here.
            let Some(other) = &self.slots[t] else { continue };
            let me = self.slots[k].as_ref().expect("just set");
            if machine.can_affect(me, other, Link::Off) {
                self.affect_off[k] |= tb;
            }
            if machine.can_affect(me, other, Link::On) {
                self.affect_on[k] |= tb;
            }
            if t != k {
                self.affect_off[t] &= !kb;
                self.affect_on[t] &= !kb;
                if machine.can_affect(other, me, Link::Off) {
                    self.affect_off[t] |= kb;
                }
                if machine.can_affect(other, me, Link::On) {
                    self.affect_on[t] |= kb;
                }
            }
        }
        Some(k)
    }

    /// Re-derives the slot of node `u` after its state may have changed.
    /// Returns `false` when the registry overflowed.
    fn reassign(&mut self, machine: &M, pop: &Population<M::State>, u: usize) -> bool {
        let old = self.node_slot[u] as usize;
        if self.slots[old].as_ref() == Some(pop.state(u)) {
            return true;
        }
        // Leave the old slot first so a refcount-0 slot is reusable for
        // the new state.
        let (word, bit) = (u / 64, 1u64 << (u % 64));
        self.state_nodes[old * self.row_words + word] &= !bit;
        self.refcount[old] -= 1;
        if self.refcount[old] == 0 {
            self.slots[old] = None;
        }
        let Some(k) = self.find_or_register(machine, pop.state(u)) else {
            return false;
        };
        self.refcount[k] += 1;
        self.node_slot[u] = k as u32;
        self.state_nodes[k * self.row_words + word] |= bit;
        true
    }

    /// Updates the index after an effective interaction and rescans the
    /// two incident pair rows word-parallel. Returns `false` when the
    /// registry is overflowed — the caller must fall back to plain
    /// rescans for this (and every later) interaction.
    pub fn on_interaction(
        &mut self,
        machine: &M,
        pop: &Population<M::State>,
        pairs: &mut PairSet,
        u: usize,
        v: usize,
    ) -> bool {
        if self.overflow {
            return false;
        }
        if !self.reassign(machine, pop, u) || !self.reassign(machine, pop, v) {
            self.overflow = true;
            return false;
        }
        self.rescan(pop, pairs, u);
        self.rescan(pop, pairs, v);
        true
    }

    /// The word-parallel desired-membership rescan of node `u` — the same
    /// algorithm as [`EffectIndex::rescan`], over the observed-state
    /// registry.
    fn rescan(&mut self, pop: &Population<M::State>, pairs: &mut PairSet, u: usize) {
        let su = self.node_slot[u] as usize;
        let wpr = self.row_words;
        self.scratch.fill(0);
        let mut mask = self.affect_off[su];
        while mask != 0 {
            let t = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let row = &self.state_nodes[t * wpr..(t + 1) * wpr];
            for (d, &w) in self.scratch.iter_mut().zip(row) {
                *d |= w;
            }
        }
        for w in pop.edges().neighbors(u) {
            let on = self.affect_on[su] >> self.node_slot[w] & 1 == 1;
            if on {
                self.scratch[w / 64] |= 1u64 << (w % 64);
            } else {
                self.scratch[w / 64] &= !(1u64 << (w % 64));
            }
        }
        self.scratch[u / 64] &= !(1u64 << (u % 64));
        apply_desired_row(pairs, u, &self.scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_set_insert_remove_sample() {
        let mut s = PairSet::new(6);
        assert!(s.is_empty());
        s.set(4, 1, true);
        s.set(2, 3, true);
        s.set(1, 4, true); // duplicate (order-insensitive): no-op
        assert_eq!(s.len(), 2);
        assert!(s.contains(1, 4) && s.contains(3, 2));
        let mut all: Vec<_> = s.iter().collect();
        all.sort_unstable();
        assert_eq!(all, vec![(1, 4), (2, 3)]);
        s.set(1, 4, false);
        assert_eq!(s.len(), 1);
        assert!(!s.contains(4, 1));
        assert_eq!(s.get(0), (2, 3));
        s.set(2, 3, false);
        s.set(2, 3, false); // removing an absent pair is a no-op
        assert!(s.is_empty());
    }

    #[test]
    fn pair_set_swap_remove_keeps_positions_consistent() {
        let mut s = PairSet::new(8);
        for u in 0..8 {
            for v in (u + 1)..8 {
                s.set(u, v, true);
            }
        }
        assert_eq!(s.len(), 28);
        // Remove half the pairs in an arbitrary order and verify the
        // remaining memberships survive all the swap-removes.
        for u in 0..8 {
            for v in (u + 1)..8 {
                if (u + v) % 2 == 0 {
                    s.set(u, v, false);
                }
            }
        }
        for u in 0..8 {
            for v in (u + 1)..8 {
                assert_eq!(s.contains(u, v), (u + v) % 2 == 1, "pair ({u},{v})");
            }
        }
        let from_iter: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(from_iter.len(), s.len());
    }

    #[test]
    fn pair_set_clear_empties_everything() {
        let mut s = PairSet::new(9);
        for u in 0..9 {
            for v in (u + 1)..9 {
                if (u * v) % 3 == 0 {
                    s.set(u, v, true);
                }
            }
        }
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        for u in 0..9 {
            for v in 0..9 {
                if u != v {
                    assert!(!s.contains(u, v), "({u},{v}) survived clear");
                }
            }
        }
        assert!(s.row_bits(4).iter().all(|&w| w == 0));
        // The set is fully reusable after a clear.
        s.set(2, 7, true);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0), (2, 7));
    }

    /// Exact negative-hypergeometric survival by draw-by-draw rationals.
    fn nh_survival_exact(remaining: u64, hits: u64, t: u64) -> f64 {
        let misses = remaining - hits;
        if t > misses {
            return 0.0;
        }
        (0..t)
            .map(|i| (misses - i) as f64 / (remaining - i) as f64)
            .product()
    }

    #[test]
    fn hypergeometric_skip_brackets_the_survival_function() {
        // skip = t ⇔ S(t) ≥ u > S(t+1), for both the walk regime (dense
        // hits) and the bisection regime (sparse hits).
        for &(r, k) in &[(10u64, 1u64), (10, 5), (10, 9), (400, 2), (400, 300), (5000, 3)] {
            for i in 0..200u64 {
                let u = (i as f64 + 0.5) / 200.0;
                let t = hypergeometric_skip(u, r, k);
                assert!(t <= r - k);
                let hi = nh_survival_exact(r, k, t);
                let lo = nh_survival_exact(r, k, t + 1);
                assert!(
                    u <= hi * (1.0 + 1e-9) && u > lo * (1.0 - 1e-9),
                    "r={r} k={k} u={u}: skip {t} outside bracket ({lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn hypergeometric_skip_edge_cases() {
        // All pairs are candidates: never skip.
        assert_eq!(hypergeometric_skip(0.3, 7, 7), 0);
        // u = 1 maps to zero skips (the geometric convention).
        assert_eq!(hypergeometric_skip(1.0, 100, 1), 0);
        // One candidate among many, u tiny: the round exhausts its misses
        // and the skip count saturates at remaining − hits.
        assert_eq!(hypergeometric_skip(1e-300, 50, 1), 49);
        // Two remaining, one candidate: S(1) = 1/2 splits the unit draw.
        assert_eq!(hypergeometric_skip(0.6, 2, 1), 0);
        assert_eq!(hypergeometric_skip(0.4, 2, 1), 1);
    }

    /// Exact hypergeometric pmf via factorial ratios (small inputs).
    fn hg_pmf_exact(marked: u64, total: u64, draws: u64, x: u64) -> f64 {
        fn choose(n: u64, k: u64) -> f64 {
            if k > n {
                return 0.0;
            }
            (0..k).map(|i| (n - i) as f64 / (k - i) as f64).product()
        }
        choose(marked, x) * choose(total - marked, draws - x) / choose(total, draws)
    }

    #[test]
    fn hypergeometric_count_inverts_the_cdf() {
        for &(marked, total, draws) in
            &[(3u64, 10u64, 4u64), (5, 12, 7), (1, 6, 5), (6, 9, 8), (4, 8, 4)]
        {
            for i in 0..400u64 {
                let u = (i as f64 + 0.5) / 400.0;
                let x = hypergeometric_count(u, marked, total, draws);
                // x is the smallest value with CDF(x) ≥ u.
                let cdf = |y: u64| -> f64 {
                    (0..=y).map(|j| hg_pmf_exact(marked, total, draws, j)).sum()
                };
                assert!(
                    cdf(x) >= u * (1.0 - 1e-9),
                    "m={marked} t={total} d={draws} u={u}: CDF({x}) too small"
                );
                if x > draws.saturating_sub(total - marked) {
                    assert!(
                        cdf(x - 1) < u * (1.0 + 1e-9),
                        "m={marked} t={total} d={draws} u={u}: {x} not minimal"
                    );
                }
            }
        }
    }

    #[test]
    fn hypergeometric_count_degenerate_ranges() {
        // Everything must be drawn from the marked side.
        assert_eq!(hypergeometric_count(0.5, 4, 4, 3), 3);
        // No marked items at all.
        assert_eq!(hypergeometric_count(0.5, 0, 9, 4), 0);
        // Drawing the whole population takes every marked item.
        assert_eq!(hypergeometric_count(0.5, 3, 7, 7), 3);
        // draws > unmarked forces a lower bound above zero.
        assert_eq!(hypergeometric_count(1e-12, 5, 8, 6), 3);
    }

    /// The windowed large-parameter splitter delegates exactly on small
    /// ranges and lands inside the correct CDF bracket on huge ones.
    #[test]
    fn hypergeometric_count_large_matches_the_law() {
        // Small ranges: bit-identical delegation.
        for &(m, t, d) in &[(5u64, 12u64, 7u64), (300, 1000, 400), (2000, 9000, 3000)] {
            for i in 0..50u64 {
                let u = (i as f64 + 0.5) / 50.0;
                assert_eq!(
                    hypergeometric_count_large(u, m, t, d),
                    hypergeometric_count(u, m, t, d)
                );
            }
        }
        // Huge parameters: the result must bracket u in the normalized
        // window CDF (checked via the same mode-pinned recurrence).
        let (m, t, d) = (40_000_000u64, 100_000_000u64, 25_000_000u64);
        let mean = d as f64 * m as f64 / t as f64;
        let sigma = (d as f64 * 0.4 * 0.6 * ((t - d) as f64 / (t - 1) as f64)).sqrt();
        for i in 0..40u64 {
            let u = (i as f64 + 0.5) / 40.0;
            let x = hypergeometric_count_large(u, m, t, d) as f64;
            assert!(
                (x - mean).abs() < 8.0 * sigma,
                "u={u}: {x} implausibly far from mean {mean} (σ={sigma})"
            );
        }
        // Monotone in u (a CDF inversion must be).
        let mut prev = 0;
        for i in 0..200u64 {
            let u = (i as f64 + 0.5) / 200.0;
            let x = hypergeometric_count_large(u, m, t, d);
            assert!(x >= prev, "inversion not monotone at u={u}");
            prev = x;
        }
    }

    /// Cache hits must be bit-identical to the direct inversion on the
    /// same raw draw, and misses must be exactly the beyond-horizon
    /// draws.
    #[test]
    fn geo_skip_cache_is_bit_identical_over_its_domain() {
        for &p in &[0.5f64, 0.1, 0.037, 0.9, 1.0 / 3.0, 0.004] {
            let cache = GeoSkipCache::build(p);
            assert_eq!(cache.p(), p);
            let mut raw = 0x9E3779B97F4A7C15u64;
            for _ in 0..4000 {
                raw = raw.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let direct = geometric_skip(unit_open01(raw), p);
                match cache.lookup(raw) {
                    Some(hit) => assert_eq!(
                        hit.to_bits(),
                        direct.to_bits(),
                        "p={p} raw={raw:#x}: cache {hit} ≠ direct {direct}"
                    ),
                    None => assert!(
                        direct > GEO_CACHE_HORIZON as f64,
                        "p={p} raw={raw:#x}: miss but direct skip {direct} is in-horizon"
                    ),
                }
            }
            // Boundary mantissas around every cut point.
            for t in 0..=GEO_CACHE_HORIZON {
                let j = cache.cuts[t];
                for cand in [j.saturating_sub(1).max(1), j, (j + 1).min(1 << 53)] {
                    let raw = (cand - 1) << 11;
                    let direct = geometric_skip(unit_open01(raw), p);
                    if let Some(hit) = cache.lookup(raw) {
                        assert_eq!(hit.to_bits(), direct.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn geo_cache_slot_warms_up_on_a_streak_and_resets_on_change() {
        let mut slot = GeoCacheSlot::default();
        for _ in 0..511 {
            assert!(slot.note(0.25).is_none());
        }
        assert!(slot.note(0.25).is_some(), "warm after the streak");
        assert!(slot.note(0.25).is_some(), "stays warm");
        assert!(slot.note(0.5).is_none(), "new p invalidates");
        for _ in 0..600 {
            slot.note(0.5);
        }
        assert_eq!(slot.note(0.5).map(GeoSkipCache::p), Some(0.5));
    }

    #[test]
    fn bookkeeping_records_and_reports() {
        let mut b = Bookkeeping {
            steps: 10,
            ..Bookkeeping::default()
        };
        b.record_effective(false);
        assert_eq!((b.effective_steps, b.last_effective, b.edge_events), (1, 10, 0));
        b.steps = 17;
        b.record_effective(true);
        assert_eq!((b.edge_events, b.last_output_change, b.last_effective), (1, 17, 17));
        assert_eq!(
            b.stabilized_now(),
            RunOutcome::Stabilized {
                detected_at: 17,
                converged_at: 17,
                last_effective: 17
            }
        );
    }
}
