//! The sparse exact ShuffledRounds engine: [`RoundSim`](crate::RoundSim)'s
//! skip laws in O(n + |Q|²) memory, via counted cohorts of scheduled
//! identities.
//!
//! [`RoundSim`](crate::RoundSim) keeps three dense pair sets (≈ `13n²`
//! bytes), which caps round-denominated statistics near n ≈ 6 000 under
//! the default budget. This engine lifts its A/B/U partition to
//! [`BucketSim`](crate::BucketSim)-style state-bucket counting so the same
//! execution law fits in O(n + |Q|²): nodes untouched this round are
//! grouped by their round-start class, pairs of untouched nodes exist only
//! as bucket-size products, and the identities the dense engine resolves
//! eagerly are kept as *counted cohorts* resolved on demand.
//!
//! # The counted-superset accounting
//!
//! A ShuffledRounds round is a uniform permutation of the `m = n(n−1)/2`
//! unordered pairs. Mid-round the engine must answer two queries exactly:
//! how many unscheduled candidates remain (`k`, the hits side of the
//! [`hypergeometric_skip`] law), and — when skips consume `t` unscheduled
//! non-candidates — *which* pairs were consumed, because a rejected or
//! skipped pair cannot recur until the next round. The dense engine
//! answers with per-pair bits; this engine answers with five strata:
//!
//! 1. **Bulk**: pairs of untouched nodes whose round-start class pair is a
//!    candidate on an inactive link. Counted as bucket products
//!    (`Σ c_q·c_q′`); never consumed by skips (skips take non-candidates
//!    only), so every bulk pair is an unscheduled candidate.
//! 2. **Urns**: when a node `t` is first touched, its pairs with the
//!    still-untouched nodes of each class `q` become one *urn* — a cohort
//!    with frozen membership, tracked as counts `(cnt, unc)` of members
//!    and unscheduled members. Candidate-class urns split off the bulk
//!    with `unc = cnt`; others split off the pool by one
//!    [`hypergeometric_count_large`] draw.
//! 3. **The pool**: pairs untracked by any of the above (non-candidate
//!    class products and pairs incident to dead nodes), as global counts.
//! 4. **Explicit pairs**: every active edge and every pair of touched
//!    nodes that is (or once was) individually resolved, with exact
//!    scheduled/candidate flags — the analog of the dense engine's
//!    resolved sets, O(touched + edges) of them.
//! 5. **The ledger**: a skip batch of `t` draws splits between the
//!    explicit non-candidates and the anonymous mass by one
//!    hypergeometric count; the anonymous share is recorded as a ledger
//!    entry `(u_rem, h_rem)` instead of being attributed to individual
//!    urns. When a cohort later *needs* its exact unscheduled count (its
//!    candidacy flips, or a member is resolved individually), it replays
//!    the entries since its cursor, drawing its share of each batch by
//!    sequential multivariate-hypergeometric conditioning.
//!
//! Unscheduled-candidate availability is then
//! `k = bulk + Σ_cand-urns unc + |explicit cand unscheduled|`, and every
//! draw — skip counts, stratum choice, member materialization, urn
//! resolution — has exactly the conditional law of the uniform permutation
//! given the history, so the engine is **distribution-identical** to
//! [`Simulation`](crate::Simulation) under
//! [`ShuffledRounds`](crate::ShuffledRounds) and to
//! [`RoundSim`](crate::RoundSim), up to f64 rounding of the inversion
//! draws. Three invariants carry the argument:
//!
//! - **Clean candidate urns**: a candidate urn's membership is exactly
//!   the untouched nodes of its class (`cnt = |ubucket|`) — members are
//!   extracted eagerly the moment they are touched — so drawing a uniform
//!   *member* and decrementing both counts has the law of drawing a
//!   uniform *unscheduled* member (the scheduled subset is uniform and
//!   exchangeable, so the drawn member's marginal is uniform either way).
//! - **Touched pairs are explicit when they matter**: a pair of touched
//!   nodes enters the explicit set the moment it becomes a candidate (the
//!   touched-bucket scan after every class change), so stale urn members
//!   are always non-candidates and counted correctly.
//! - **Conservation**: `bulk + Σ unc + |explicit unscheduled| +
//!   anonymous-unscheduled = m − steps mod m`
//!   ([`pool_invariant_holds`](RoundBucketSim::pool_invariant_holds)),
//!   preserved by every draw, touch, flip, and fault event.
//!
//! Fault events ride the same machinery as the other engines: the draw
//! space stays frozen at the capacity, crashes only reclassify (dead
//! pairs keep consuming their round occurrences as non-candidates), and
//! arrivals join as fresh cohorts sourced from the pool. The
//! `fault_bookkeeping` proptests in `tests/engine_equivalence.rs` check
//! the candidate counts against brute force after adversarial histories.
//!
//! Memory: O(n) round bookkeeping plus O(touched · |Q|) urn counts and
//! O(touched + edges) explicit pairs, all reset each round — no Θ(n²)
//! structure anywhere. [`Engine::auto_for`](crate::Engine::auto_for)
//! routes ShuffledRounds requests here when
//! [`RoundSim::dense_mem_estimate`](crate::RoundSim::dense_mem_estimate)
//! exceeds the budget; `docs/engines.md` has the five-engine table.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::bucket::SparsePop;
use crate::compiled::{EffectTable, EnumerableMachine};
use crate::engine::{hypergeometric_count_large, hypergeometric_skip, unit_open01, Bookkeeping};
use crate::event::EventStep;
use crate::fault::adversary::ConfigSnapshot;
use crate::fault::{sample_without_replacement, DueFault, FaultPlan, FaultState, ResolvedFault};
use crate::sim::{RunOutcome, StepResult};
use crate::{Link, Population};

/// Monomorphic indexed-interaction entry point captured from
/// [`EnumerableMachine::interact_indexed`] at construction.
type InteractFn<M> = fn(&M, usize, usize, Link, &mut SmallRng) -> Option<(usize, usize, Link)>;

/// Canonical key of an unordered node pair (min in the high half).
#[inline]
fn pkey(a: usize, b: usize) -> u64 {
    ((a.min(b) as u64) << 32) | a.max(b) as u64
}

/// Inverse of [`pkey`].
#[inline]
fn punpack(key: u64) -> (usize, usize) {
    ((key >> 32) as usize, (key & 0xFFFF_FFFF) as usize)
}

/// Key of the urn owned by touched node `t` over round-start class `q`.
#[inline]
fn ukey(t: usize, q: usize) -> u64 {
    ((t as u64) << 16) | q as u64
}

/// An explicit (individually resolved) pair.
#[derive(Debug, Clone, Copy)]
struct XPair {
    /// Whether the pair's round occurrence has been consumed.
    sched: bool,
    /// Whether the pair is currently a candidate (states + link admit an
    /// effective transition between two alive nodes).
    cand: bool,
    /// Position in `x_c_u`/`x_nc_u` (valid only while unscheduled).
    pos: u32,
}

/// A frozen-membership cohort: the pairs `(t, w)` between one touched
/// owner `t` and the nodes of one round-start class `q` that were still
/// untouched when `t` was touched.
#[derive(Debug, Clone, Copy)]
struct Urn {
    /// Members still anonymous (neither explicit nor drawn).
    cnt: u64,
    /// Unscheduled members among `cnt` — exact for candidate urns, debt
    /// pending since `cursor` for non-candidate ones.
    unc: u64,
    /// First ledger entry not yet resolved against this cohort.
    cursor: u32,
    /// First `touch_log[q]` entry not yet purged out of this urn.
    purge_cursor: u32,
    /// Whether the members are candidates (owner alive and
    /// `can_affect(state(t), q, Off)`). Candidate urns are *clean*:
    /// `cnt = |ubucket[q]|`, no pending debt.
    cand: bool,
    /// Position in `cand_urns_by_class[q]` while `cand`.
    cpos: u32,
}

/// One skip batch's anonymous share: of `u_rem` anonymous unscheduled
/// pairs at batch time, `h_rem` were scheduled — both decremented as
/// cohorts resolve their shares out of the entry.
#[derive(Debug, Clone, Copy)]
struct LogEntry {
    u_rem: u64,
    h_rem: u64,
}

/// An event-driven execution of a machine on a population under the
/// [`ShuffledRounds`](crate::ShuffledRounds) scheduler in sparse memory.
///
/// Mirrors the [`RoundSim`](crate::RoundSim) API — same [`advance`]
/// contract, same run loops, same round-denominated accessors — but
/// predicates read a [`SparsePop`] view like
/// [`BucketSim`](crate::BucketSim)'s, and nothing Θ(n²) is ever
/// allocated. See the [module docs](self) for the exactness argument.
///
/// [`advance`]: Self::advance
///
/// # Example
///
/// ```
/// use netcon_core::{Link, ProtocolBuilder, RoundBucketSim};
///
/// let mut b = ProtocolBuilder::new("matching");
/// let a = b.state("a");
/// let m = b.state("b");
/// b.rule((a, a, Link::Off), (m, m, Link::On));
/// let protocol = b.build()?.compile();
///
/// // 100k nodes allocate O(n), not the dense engine's ≈ 130 GB.
/// let mut sim = RoundBucketSim::new(protocol, 100_000, 1);
/// let out = sim.run_until_edges(|sp| sp.active_count() == 50_000, u64::MAX);
/// assert!(out.stabilized());
/// // Every pair occurs once per round, so the matching completes in
/// // round 1.
/// assert_eq!(sim.last_output_change_round(), 1);
/// # Ok::<(), netcon_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RoundBucketSim<M: EnumerableMachine> {
    machine: M,
    sp: SparsePop,
    rng: SmallRng,
    book: Bookkeeping,
    table: EffectTable,
    interact: InteractFn<M>,
    state_at: fn(&M, usize) -> M::State,
    /// Unordered class pairs `(q1 ≤ q2)` with `can_affect(q1, q2, Off)` —
    /// the bulk strata, fixed at construction.
    sup_pairs: Vec<(u16, u16)>,
    /// Number of machine states (bucket vector length).
    nq: usize,
    /// Pairs per round, `capacity·(capacity−1)/2`.
    m: u64,
    faults: Option<FaultState>,
    /// Engine-side liveness mirror (`FaultState` tracks the plan's view).
    alive: Vec<bool>,
    // ---- per-round state, rebuilt by `start_round` ----
    /// Round-start class of every node.
    rs_class: Vec<u16>,
    /// Whether the node has been touched this round (dead nodes are
    /// born touched).
    touched: Vec<bool>,
    /// Whether the node was dead at round start (stays set on arrival —
    /// the pair locator routes around it).
    reset_dead: Vec<bool>,
    /// Touch sequence number (0 = untouched); the earlier-touched
    /// endpoint of a pair owns the urn that holds it.
    tseq: Vec<u32>,
    seq_next: u32,
    /// Untouched alive nodes per round-start class.
    ubuckets: Vec<Vec<u32>>,
    upos: Vec<u32>,
    /// Touched alive nodes per *current* class.
    tbuckets: Vec<Vec<u32>>,
    tpos: Vec<u32>,
    /// Touch order per round-start class (arrivals excluded — they were
    /// never urn members).
    touch_log: Vec<Vec<u32>>,
    /// Explicit pairs by canonical key.
    x: HashMap<u64, XPair>,
    /// Unscheduled explicit candidates (keys; positions mirrored).
    x_c_u: Vec<u64>,
    /// Unscheduled explicit non-candidates.
    x_nc_u: Vec<u64>,
    /// Explicit partners per node (for reclassification on class change).
    x_by_node: Vec<Vec<u32>>,
    /// Scheduled explicit pairs that are currently candidates.
    x_sched_cand: u64,
    /// Urns by [`ukey`].
    urns: HashMap<u64, Urn>,
    /// Candidate urns grouped by member class (walked to draw).
    cand_urns_by_class: Vec<Vec<u64>>,
    /// Σ `unc` over candidate urns.
    rows_avail: u64,
    /// Σ `cnt − unc` over candidate urns (scheduled but still effective).
    cand_sched_urns: u64,
    /// Anonymous pool: members and unscheduled members (debt pending
    /// since `pool_cursor`).
    pool_cnt: u64,
    pool_unc: u64,
    pool_cursor: u32,
    /// Total anonymous non-candidate unscheduled pairs (pool + NC urns),
    /// maintained eagerly — the authoritative count the skip batches
    /// consume from.
    anon_nc_unc: u64,
    /// Whether the current round was entered by a quiescent landing: all
    /// `m` pairs were re-anchored in the anonymous pool (a uniform
    /// scheduled prefix spans *every* pair under quiescence), so urns
    /// frozen this round must split off the pool, never the bulk.
    pool_round: bool,
    /// Skip-batch ledger (see [`LogEntry`]).
    log: Vec<LogEntry>,
}

impl<M: EnumerableMachine> RoundBucketSim<M> {
    /// Creates a sparse ShuffledRounds simulation of `machine` on `n`
    /// nodes in the initial configuration, reproducible from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `n > 2³¹` (node ids are `u32`), the machine has
    /// more than 65536 states (class ids are `u16`), or the machine's
    /// `can_affect` is not symmetric in its node arguments (a
    /// [`Machine`](crate::Machine) contract violation; the scheduler
    /// presents pairs in a fixed node order).
    #[must_use]
    pub fn new(machine: M, n: usize, seed: u64) -> Self {
        assert!(n >= 2, "pairwise interactions need at least 2 processes");
        assert!(n <= 1 << 31, "RoundBucketSim packs node ids into u32");
        let num_states = machine.num_states();
        assert!(
            num_states <= usize::from(u16::MAX) + 1,
            "RoundBucketSim's dense class index is u16: more than 65536 states"
        );
        let initial = machine.state_index(&machine.initial_state());
        let sp = SparsePop::new(n, num_states, initial);
        Self::from_sparse(machine, sp, seed)
    }

    /// Creates a sparse round simulation from an explicit dense
    /// configuration (one scan of its active edges).
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new).
    #[must_use]
    pub fn from_population(machine: M, pop: Population<M::State>, seed: u64) -> Self {
        let n = pop.n();
        assert!(n >= 2, "pairwise interactions need at least 2 processes");
        assert!(n <= 1 << 31, "RoundBucketSim packs node ids into u32");
        let num_states = machine.num_states();
        assert!(
            num_states <= usize::from(u16::MAX) + 1,
            "RoundBucketSim's dense class index is u16: more than 65536 states"
        );
        let mut sp = SparsePop::new(n, num_states, machine.state_index(pop.state(0)));
        for u in 0..n {
            sp.set_state_index(u, machine.state_index(pop.state(u)));
        }
        for (u, v) in pop.edges().active_edges() {
            sp.set_edge(u, v, true);
        }
        Self::from_sparse(machine, sp, seed)
    }

    /// Creates a faulted sparse round simulation: `n` live nodes plus one
    /// *ghost* slot per planned arrival, sharing the fault semantics of
    /// [`RoundSim::new_faulted`](crate::RoundSim::new_faulted) — the
    /// round length is fixed at `capacity·(capacity−1)/2` and ghost pairs
    /// sit in the anonymous pool, so every skip law and round statistic
    /// matches the other engines under the identical [`FaultPlan`].
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new) (with the capacity in place of `n`).
    #[must_use]
    pub fn new_faulted(machine: M, n: usize, seed: u64, plan: FaultPlan) -> Self {
        assert!(n >= 2, "pairwise interactions need at least 2 processes");
        let fs = FaultState::new(plan, n);
        let mut sim = Self::new(machine, fs.capacity(), seed);
        for ghost in n..fs.capacity() {
            sim.alive[ghost] = false;
            sim.sp.bucket_remove(ghost);
        }
        sim.start_round(0);
        sim.faults = Some(fs);
        sim
    }

    fn from_sparse(machine: M, sp: SparsePop, seed: u64) -> Self {
        let table = machine.effect_table();
        assert!(
            table.is_symmetric(),
            "RoundBucketSim requires can_affect to be symmetric in its node arguments"
        );
        let nq = table.size();
        let mut sup_pairs = Vec::new();
        for q1 in 0..nq {
            for q2 in q1..nq {
                if table.can_affect(q1, q2, Link::Off) {
                    sup_pairs.push((q1 as u16, q2 as u16));
                }
            }
        }
        let n = sp.n();
        let m = (n as u64) * (n as u64 - 1) / 2;
        let mut sim = Self {
            machine,
            sp,
            rng: SmallRng::seed_from_u64(seed),
            book: Bookkeeping::default(),
            table,
            interact: |m: &M, a, b, link, rng: &mut SmallRng| m.interact_indexed(a, b, link, rng),
            state_at: |m: &M, i: usize| m.state_at(i),
            sup_pairs,
            nq,
            m,
            faults: None,
            alive: vec![true; n],
            rs_class: vec![0; n],
            touched: vec![false; n],
            reset_dead: vec![false; n],
            tseq: vec![0; n],
            seq_next: 1,
            ubuckets: vec![Vec::new(); nq],
            upos: vec![0; n],
            tbuckets: vec![Vec::new(); nq],
            tpos: vec![0; n],
            touch_log: vec![Vec::new(); nq],
            x: HashMap::new(),
            x_c_u: Vec::new(),
            x_nc_u: Vec::new(),
            x_by_node: vec![Vec::new(); n],
            x_sched_cand: 0,
            urns: HashMap::new(),
            cand_urns_by_class: vec![Vec::new(); nq],
            rows_avail: 0,
            cand_sched_urns: 0,
            pool_cnt: 0,
            pool_unc: 0,
            pool_cursor: 0,
            anon_nc_unc: 0,
            pool_round: false,
            log: Vec::new(),
        };
        sim.start_round(0);
        sim
    }

    /// The current configuration.
    #[must_use]
    pub fn view(&self) -> &SparsePop {
        &self.sp
    }

    /// The machine being executed.
    #[must_use]
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// The fault state, if this engine was built with a [`FaultPlan`].
    #[must_use]
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// Steps taken so far (including skipped ineffective draws).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.book.steps
    }

    /// Effective interactions so far.
    #[must_use]
    pub fn effective_steps(&self) -> u64 {
        self.book.effective_steps
    }

    /// Edge activations/deactivations so far.
    #[must_use]
    pub fn edge_events(&self) -> u64 {
        self.book.edge_events
    }

    /// The step of the most recent edge change (0 if none yet).
    #[must_use]
    pub fn last_output_change(&self) -> u64 {
        self.book.last_output_change
    }

    /// The step of the most recent effective interaction (0 if none yet).
    #[must_use]
    pub fn last_effective(&self) -> u64 {
        self.book.last_effective
    }

    /// The number of scheduler draws in one round: every unordered pair
    /// exactly once, `capacity·(capacity−1)/2`.
    #[must_use]
    pub fn pairs_per_round(&self) -> u64 {
        self.m
    }

    /// Rounds completed so far, `steps / pairs_per_round()`.
    #[must_use]
    pub fn rounds_completed(&self) -> u64 {
        self.book.steps / self.m
    }

    /// The 1-based round containing draw `step` (0 for `step = 0`).
    #[must_use]
    pub fn round_of(&self, step: u64) -> u64 {
        step.div_ceil(self.m)
    }

    /// The round of the most recent edge change — `converged_at` in
    /// rounds once a run stabilizes (0 if no edge ever changed).
    #[must_use]
    pub fn last_output_change_round(&self) -> u64 {
        self.round_of(self.book.last_output_change)
    }

    /// The round of the most recent effective interaction (0 if none).
    #[must_use]
    pub fn last_effective_round(&self) -> u64 {
        self.round_of(self.book.last_effective)
    }

    /// The number of currently effective pairs, scheduled or not —
    /// exact, unlike [`BucketSim`](crate::BucketSim)'s counted superset.
    #[must_use]
    pub fn effective_pairs(&self) -> u64 {
        self.avail() + self.x_sched_cand + self.cand_sched_urns
    }

    /// The number of effective pairs not yet scheduled this round — the
    /// `hits` side of the next hypergeometric skip.
    #[must_use]
    pub fn unscheduled_candidates(&self) -> u64 {
        self.avail()
    }

    /// Whether no pair of nodes has any effective interaction — O(|Q|²):
    /// every stratum's candidate count is zero. Quiescence is
    /// scheduler-independent, so this is the same predicate as
    /// [`RoundSim::is_quiescent`](crate::RoundSim::is_quiescent).
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.avail() == 0 && self.x_sched_cand == 0 && self.cand_sched_urns == 0
    }

    /// Whether the round partition accounts for every unscheduled pair:
    /// `bulk + Σ cand-urn unc + |explicit unscheduled| + anonymous
    /// unscheduled = m − steps mod m`. Every draw and fault event must
    /// preserve this; the mutation-bookkeeping proptests check it after
    /// every event.
    #[must_use]
    pub fn pool_invariant_holds(&self) -> bool {
        self.bulk_total()
            + self.rows_avail
            + self.x_c_u.len() as u64
            + self.x_nc_u.len() as u64
            + self.anon_nc_unc
            == self.m - self.book.steps % self.m
    }

    /// Materializes the dense configuration — Θ(n²) bits for the edge
    /// set; for inspection and small-n testing only.
    #[must_use]
    pub fn to_population(&self) -> Population<M::State> {
        let states = (0..self.sp.n())
            .map(|u| (self.state_at)(&self.machine, self.sp.state_index(u)))
            .collect();
        Population::from_parts(states, self.sp.to_edgeset())
    }

    /// Bytes of heap memory held by the engine: the sparse configuration,
    /// the per-round bucket vectors, the explicit-pair and urn maps, and
    /// the effect table — O(n + |Q|² + touched), against the dense round
    /// engine's ≈ `13n²`.
    #[must_use]
    pub fn approx_mem_bytes(&self) -> u64 {
        let vecs = |vs: &Vec<Vec<u32>>| -> u64 {
            vs.iter().map(|v| v.capacity() as u64 * 4).sum::<u64>() + vs.capacity() as u64 * 24
        };
        self.sp.approx_mem_bytes()
            + self.table.approx_mem_bytes()
            + (self.sup_pairs.capacity() * 4) as u64
            + (self.alive.capacity()
                + self.touched.capacity()
                + self.reset_dead.capacity()
                + self.rs_class.capacity() * 2
                + self.tseq.capacity() * 4
                + self.upos.capacity() * 4
                + self.tpos.capacity() * 4) as u64
            + vecs(&self.ubuckets)
            + vecs(&self.tbuckets)
            + vecs(&self.touch_log)
            + vecs(&self.x_by_node)
            + (self.x.capacity() * 24) as u64
            + ((self.x_c_u.capacity() + self.x_nc_u.capacity()) * 8) as u64
            + (self.urns.capacity() * 48) as u64
            + self
                .cand_urns_by_class
                .iter()
                .map(|v| v.capacity() as u64 * 8 + 24)
                .sum::<u64>()
            + (self.log.capacity() * 16) as u64
    }

    /// One uniform draw on `(0, 1]` from the engine's coin stream.
    #[inline]
    fn u01(&mut self) -> f64 {
        unit_open01(self.rng.next_u64())
    }

    /// Unscheduled bulk pairs: Σ over candidate class pairs of the
    /// untouched-bucket products — O(|Q|²) worst case, O(|sup_pairs|)
    /// always.
    fn bulk_total(&self) -> u64 {
        let mut total = 0u64;
        for &(q1, q2) in &self.sup_pairs {
            let c1 = self.ubuckets[usize::from(q1)].len() as u64;
            total += if q1 == q2 {
                c1 * c1.saturating_sub(1) / 2
            } else {
                c1 * self.ubuckets[usize::from(q2)].len() as u64
            };
        }
        total
    }

    /// Unscheduled candidates across all strata — the `hits` side of the
    /// skip law.
    fn avail(&self) -> u64 {
        self.bulk_total() + self.rows_avail + self.x_c_u.len() as u64
    }
}

// ---------------------------------------------------------------------
// Round bookkeeping: touches, urns, the ledger, and explicit pairs.
// ---------------------------------------------------------------------
impl<M: EnumerableMachine> RoundBucketSim<M> {
    /// Rebuilds the round partition at a round boundary. `pre_scheduled`
    /// is nonzero only when landing a quiescent jump mid-round: that many
    /// pool pairs are already consumed (a uniform subset — exact, because
    /// under quiescence no draw is effective and the bulk is empty, so
    /// the landed round's history is exchangeable).
    fn start_round(&mut self, pre_scheduled: u64) {
        for q in 0..self.nq {
            self.ubuckets[q].clear();
            self.tbuckets[q].clear();
            self.touch_log[q].clear();
            self.cand_urns_by_class[q].clear();
        }
        self.urns.clear();
        self.log.clear();
        for &key in self.x.keys() {
            let (a, b) = punpack(key);
            self.x_by_node[a].clear();
            self.x_by_node[b].clear();
        }
        self.x.clear();
        self.x_c_u.clear();
        self.x_nc_u.clear();
        self.x_sched_cand = 0;
        self.rows_avail = 0;
        self.cand_sched_urns = 0;
        self.seq_next = 1;
        let n = self.sp.n();
        for u in 0..n {
            self.rs_class[u] = self.sp.state_index(u) as u16;
            self.touched[u] = !self.alive[u];
            self.reset_dead[u] = !self.alive[u];
            self.tseq[u] = 0;
            if self.alive[u] {
                let q = usize::from(self.rs_class[u]);
                self.upos[u] = self.ubuckets[q].len() as u32;
                self.ubuckets[q].push(u as u32);
            }
        }
        // A quiescent landing re-anchors every pair in the anonymous
        // pool: under quiescence every pair is certainly ineffective —
        // including active edges whose *class* pair is Off-effective (a
        // stable FT-star's spokes) — so the elapsed prefix is a uniform
        // subset of all `m` pairs, and the bulk strata (which assume
        // never-skip-consumed pairs) must stay out of play for the whole
        // landed round.
        self.pool_round = pre_scheduled > 0;
        if self.pool_round {
            self.pool_cnt = self.m;
        } else {
            self.pool_cnt = self.m - self.bulk_total();
        }
        self.pool_unc = self.pool_cnt - pre_scheduled;
        self.pool_cursor = 0;
        self.anon_nc_unc = self.pool_unc;
        // Active edges become explicit pairs, in canonical ascending
        // order. At a plain reset every pull takes a fast path (nothing
        // is scheduled yet), so this consumes no coins; at a quiescent
        // landing the pulls draw each pair's scheduled status from the
        // pool marginals.
        for u in 0..n {
            let mut nbrs: Vec<usize> = self.sp.neighbors(u).filter(|&w| w > u).collect();
            if nbrs.is_empty() {
                continue;
            }
            nbrs.sort_unstable();
            for w in nbrs {
                self.ensure_touched(u);
                self.ensure_touched(w);
                // When the owner's urn over w's class is a candidate urn
                // (the edge spans an Off-link-effective class pair),
                // touching w already extracted this pair eagerly.
                if self.x.contains_key(&pkey(u, w)) {
                    continue;
                }
                let unsched = self.locate_and_pull(u, w);
                self.insert_explicit(u, w, !unsched);
            }
        }
        debug_assert!(self.pool_invariant_holds());
        // A quiescent landing must leave the engine quiescent: every
        // extracted pair is ineffective and no candidate member can
        // survive the extraction loop (an untouched candidate would be a
        // genuinely effective pair, contradicting quiescence).
        debug_assert!(pre_scheduled == 0 || self.is_quiescent());
    }

    /// Inserts `u` into the touched bucket of class `q`.
    fn tbucket_insert(&mut self, u: usize, q: usize) {
        self.tpos[u] = self.tbuckets[q].len() as u32;
        self.tbuckets[q].push(u as u32);
    }

    /// Removes `u` from the touched bucket of class `q`.
    fn tbucket_remove(&mut self, u: usize, q: usize) {
        let pos = self.tpos[u] as usize;
        debug_assert_eq!(self.tbuckets[q][pos] as usize, u);
        self.tbuckets[q].swap_remove(pos);
        if pos < self.tbuckets[q].len() {
            let moved = self.tbuckets[q][pos] as usize;
            self.tpos[moved] = pos as u32;
        }
    }

    /// First half of a touch: stamps the sequence number, moves `u` out
    /// of its untouched bucket (shrinking every open urn's frozen-member
    /// view *before* any new pair is materialized), logs the touch for
    /// later non-candidate purges, and joins the touched buckets.
    fn pre_mark(&mut self, u: usize) {
        debug_assert!(!self.touched[u] && self.alive[u]);
        self.touched[u] = true;
        self.tseq[u] = self.seq_next;
        self.seq_next += 1;
        let q = usize::from(self.rs_class[u]);
        let pos = self.upos[u] as usize;
        debug_assert_eq!(self.ubuckets[q][pos] as usize, u);
        self.ubuckets[q].swap_remove(pos);
        if pos < self.ubuckets[q].len() {
            let moved = self.ubuckets[q][pos] as usize;
            self.upos[moved] = pos as u32;
        }
        self.touch_log[q].push(u as u32);
        self.tbucket_insert(u, q);
    }

    /// Second half of a touch: eagerly extracts `u` out of every
    /// candidate urn over `u`'s class (keeping candidate urns *clean*),
    /// then freezes `u`'s own urns — one per nonempty untouched class.
    fn finish_touch(&mut self, u: usize) {
        let q = usize::from(self.rs_class[u]);
        let keys: Vec<u64> = self.cand_urns_by_class[q].clone();
        for key in keys {
            let t = (key >> 16) as usize;
            if self.x.contains_key(&pkey(t, u)) {
                continue;
            }
            let unsched = self.cand_urn_pull(key);
            self.insert_explicit(t, u, !unsched);
        }
        for q2 in 0..self.nq {
            let k = self.ubuckets[q2].len() as u64;
            if k > 0 {
                self.make_urn(u, q2, k, self.pool_round);
            }
        }
    }

    /// Touches `u` if it is still untouched.
    fn ensure_touched(&mut self, u: usize) {
        if !self.touched[u] {
            self.pre_mark(u);
            self.finish_touch(u);
        }
    }

    /// Freezes the urn `(t, q)` over the `k` current members of
    /// `ubuckets[q]`. Candidate-class cohorts (by *round-start* class of
    /// `t`) split off the bulk fully unscheduled — bulk pairs are never
    /// skip-consumed; everything else splits off the pool by one
    /// hypergeometric count. `force_pool` is set for arrivals, whose
    /// pairs were all pool (dead-incident) regardless of class.
    fn make_urn(&mut self, t: usize, q: usize, k: u64, force_pool: bool) {
        let sup = !force_pool
            && self
                .table
                .can_affect(usize::from(self.rs_class[t]), q, Link::Off);
        let (cnt, unc) = if sup {
            (k, k)
        } else {
            self.resolve_pool();
            debug_assert!(k <= self.pool_cnt);
            let h = if self.pool_unc == self.pool_cnt {
                k
            } else {
                let u = self.u01();
                hypergeometric_count_large(u, self.pool_unc, self.pool_cnt, k)
            };
            self.pool_cnt -= k;
            self.pool_unc -= h;
            (k, h)
        };
        let cand = self.alive[t] && self.table.can_affect(self.sp.state_index(t), q, Link::Off);
        let mut urn = Urn {
            cnt,
            unc,
            cursor: self.log.len() as u32,
            purge_cursor: self.touch_log[q].len() as u32,
            cand,
            cpos: 0,
        };
        if cand {
            if !sup {
                // Pool pairs leave the anonymous-NC stratum on promotion.
                debug_assert!(self.anon_nc_unc >= unc);
                self.anon_nc_unc -= unc;
            }
            self.rows_avail += unc;
            self.cand_sched_urns += cnt - unc;
            urn.cpos = self.cand_urns_by_class[q].len() as u32;
            self.cand_urns_by_class[q].push(ukey(t, q));
        } else if sup {
            // Bulk pairs entering a non-candidate cohort join the
            // anonymous-NC stratum (a state change between pre_mark and
            // urn creation; normally unreachable).
            self.anon_nc_unc += unc;
        }
        let prev = self.urns.insert(ukey(t, q), urn);
        debug_assert!(prev.is_none());
    }

    /// Consumes `t` skipped occurrences: splits them between the explicit
    /// non-candidates (resolved pair by pair) and the anonymous mass
    /// (recorded as one ledger batch).
    fn schedule_skips(&mut self, t: u64) {
        if t == 0 {
            return;
        }
        let bx = self.x_nc_u.len() as u64;
        debug_assert!(t <= bx + self.anon_nc_unc);
        let from_x = if bx == 0 {
            0
        } else if t == bx + self.anon_nc_unc {
            bx
        } else {
            let u = self.u01();
            hypergeometric_count_large(u, bx, bx + self.anon_nc_unc, t)
        };
        for _ in 0..from_x {
            let i = self.rng.random_range(0..self.x_nc_u.len());
            let key = self.x_list_remove(false, i);
            self.x.get_mut(&key).unwrap().sched = true;
        }
        let h = t - from_x;
        if h > 0 {
            self.log.push(LogEntry {
                u_rem: self.anon_nc_unc,
                h_rem: h,
            });
            self.anon_nc_unc -= h;
        }
    }

    /// Brings a non-candidate cohort's unscheduled count up to date by
    /// drawing its share of every ledger batch since its cursor —
    /// sequential multivariate-hypergeometric conditioning: each batch of
    /// `h_rem` scheduled among `u_rem` anonymous unscheduled splits
    /// hypergeometrically between this cohort's `unc` and the rest.
    fn resolve_urn(&mut self, key: u64) {
        let urn = self.urns.get(&key).expect("cohort exists");
        debug_assert!(!urn.cand);
        let from = urn.cursor as usize;
        if from == self.log.len() {
            return;
        }
        let unc = urn.unc;
        let new_unc = resolve_cohort(&mut self.rng, &mut self.log, from, unc);
        let urn = self.urns.get_mut(&key).unwrap();
        urn.unc = new_unc;
        urn.cursor = self.log.len() as u32;
    }

    /// As [`resolve_urn`](Self::resolve_urn), for the pool cohort.
    fn resolve_pool(&mut self) {
        let from = self.pool_cursor as usize;
        if from == self.log.len() {
            return;
        }
        self.pool_unc = resolve_cohort(&mut self.rng, &mut self.log, from, self.pool_unc);
        self.pool_cursor = self.log.len() as u32;
    }

    /// Draws one member out of a *candidate* urn and reports whether it
    /// was unscheduled. Clean urns have no ledger debt, so the split is a
    /// single uniform index against `(unc, cnt)`.
    fn cand_urn_pull(&mut self, key: u64) -> bool {
        let urn = self.urns.get_mut(&key).expect("cohort exists");
        debug_assert!(urn.cand && urn.cnt > 0);
        let unsched = urn.unc == urn.cnt || self.rng.random_range(0..urn.cnt) < urn.unc;
        urn.cnt -= 1;
        if unsched {
            urn.unc -= 1;
            self.rows_avail -= 1;
        } else {
            self.cand_sched_urns -= 1;
        }
        unsched
    }

    /// Extracts every touched member still counted inside a
    /// *non-candidate* cohort (they were left stale while the cohort was
    /// NC — safe, because NC members cannot be drawn — but must become
    /// explicit before the cohort turns candidate again). The cohort's
    /// ledger debt must already be resolved.
    fn purge_urn(&mut self, key: u64) {
        let t = (key >> 16) as usize;
        let q = (key & 0xFFFF) as usize;
        let urn = self.urns.get(&key).expect("cohort exists");
        debug_assert!(!urn.cand && urn.cursor as usize == self.log.len());
        let from = urn.purge_cursor as usize;
        let snapshot: Vec<u32> = self.touch_log[q][from..].to_vec();
        self.urns.get_mut(&key).unwrap().purge_cursor = self.touch_log[q].len() as u32;
        for w32 in snapshot {
            let w = w32 as usize;
            debug_assert_ne!(w, t);
            if self.x.contains_key(&pkey(t, w)) {
                continue;
            }
            let urn = self.urns.get_mut(&key).unwrap();
            debug_assert!(urn.cnt > 0);
            let unsched = urn.unc == urn.cnt || self.rng.random_range(0..urn.cnt) < urn.unc;
            urn.cnt -= 1;
            if unsched {
                urn.unc -= 1;
                debug_assert!(self.anon_nc_unc > 0);
                self.anon_nc_unc -= 1;
            }
            self.insert_explicit(t, w, !unsched);
        }
    }

    /// Resolves one specific pair of touched alive nodes out of whatever
    /// cohort holds it, reporting whether it was unscheduled. The
    /// earlier-touched endpoint owns the urn; pairs whose later-touched
    /// endpoint was dead at round start (arrivals) were never urn members
    /// and resolve against the pool.
    fn locate_and_pull(&mut self, a: usize, b: usize) -> bool {
        debug_assert!(self.touched[a] && self.touched[b] && a != b);
        debug_assert!(self.tseq[a] >= 1 && self.tseq[b] >= 1);
        let (own, mem) = if self.tseq[a] < self.tseq[b] {
            (a, b)
        } else {
            (b, a)
        };
        if self.reset_dead[mem] {
            return self.pool_pull();
        }
        let key = ukey(own, usize::from(self.rs_class[mem]));
        if self.urns.get(&key).expect("cohort exists").cand {
            self.cand_urn_pull(key)
        } else {
            self.resolve_urn(key);
            let urn = self.urns.get_mut(&key).unwrap();
            debug_assert!(urn.cnt > 0);
            let unsched = urn.unc == urn.cnt || self.rng.random_range(0..urn.cnt) < urn.unc;
            urn.cnt -= 1;
            if unsched {
                urn.unc -= 1;
                debug_assert!(self.anon_nc_unc > 0);
                self.anon_nc_unc -= 1;
            }
            unsched
        }
    }

    /// Resolves one pair out of the anonymous pool.
    fn pool_pull(&mut self) -> bool {
        self.resolve_pool();
        debug_assert!(self.pool_cnt > 0);
        let unsched = self.pool_unc == self.pool_cnt || self.rng.random_range(0..self.pool_cnt) < self.pool_unc;
        self.pool_cnt -= 1;
        if unsched {
            self.pool_unc -= 1;
            debug_assert!(self.anon_nc_unc > 0);
            self.anon_nc_unc -= 1;
        }
        unsched
    }
}

/// Replays the ledger entries from `from` against one cohort holding
/// `unc` unscheduled members, returning its updated count. Each entry
/// recorded `h_rem` scheduled draws out of `u_rem` anonymous unscheduled
/// pairs; conditioning sequentially, this cohort's share of the batch is
/// hypergeometric with `unc` marked among `u_rem`, and the entry shrinks
/// by what this cohort took so later cohorts resolve against the rest.
fn resolve_cohort(rng: &mut SmallRng, log: &mut [LogEntry], from: usize, mut unc: u64) -> u64 {
    for e in &mut log[from..] {
        if unc == 0 {
            break;
        }
        debug_assert!(unc <= e.u_rem);
        let h = if e.h_rem == 0 {
            0
        } else if unc == e.u_rem {
            e.h_rem
        } else {
            hypergeometric_count_large(unit_open01(rng.next_u64()), unc, e.u_rem, e.h_rem)
        };
        e.u_rem -= unc;
        e.h_rem -= h;
        unc -= h;
    }
    unc
}

// ---------------------------------------------------------------------
// Explicit pairs and reclassification.
// ---------------------------------------------------------------------
impl<M: EnumerableMachine> RoundBucketSim<M> {
    /// Registers a freshly resolved pair as explicit with the given
    /// scheduled status. Candidacy is computed from the live states and
    /// link; both endpoints must already be touched and the pair must not
    /// be explicit yet.
    fn insert_explicit(&mut self, a: usize, b: usize, sched: bool) {
        let (a, b) = (a.min(b), a.max(b));
        debug_assert!(self.touched[a] && self.touched[b]);
        let link = Link::from(self.sp.is_active(a, b));
        let cand = self.alive[a]
            && self.alive[b]
            && self
                .table
                .can_affect(self.sp.state_index(a), self.sp.state_index(b), link);
        let mut pos = 0u32;
        if !sched {
            let list = if cand { &mut self.x_c_u } else { &mut self.x_nc_u };
            pos = list.len() as u32;
            list.push(pkey(a, b));
        } else if cand {
            self.x_sched_cand += 1;
        }
        let prev = self.x.insert(pkey(a, b), XPair { sched, cand, pos });
        debug_assert!(prev.is_none(), "pair resolved twice");
        self.x_by_node[a].push(b as u32);
        self.x_by_node[b].push(a as u32);
    }

    /// Swap-removes the entry at `pos` from the unscheduled candidate
    /// (`cand_list`) or non-candidate list, fixing the moved pair's
    /// mirrored position. Returns the removed key.
    fn x_list_remove(&mut self, cand_list: bool, pos: usize) -> u64 {
        let list = if cand_list { &mut self.x_c_u } else { &mut self.x_nc_u };
        let key = list.swap_remove(pos);
        if pos < list.len() {
            let moved = list[pos];
            self.x.get_mut(&moved).unwrap().pos = pos as u32;
        }
        key
    }

    /// Re-derives an explicit pair's candidacy after a state, edge, or
    /// liveness change at either endpoint.
    fn recompute_x(&mut self, a: usize, b: usize) {
        let (a, b) = (a.min(b), a.max(b));
        let key = pkey(a, b);
        let link = Link::from(self.sp.is_active(a, b));
        let cand = self.alive[a]
            && self.alive[b]
            && self
                .table
                .can_affect(self.sp.state_index(a), self.sp.state_index(b), link);
        let xp = *self.x.get(&key).expect("explicit pair exists");
        if xp.cand == cand {
            return;
        }
        if xp.sched {
            self.x.get_mut(&key).unwrap().cand = cand;
            if cand {
                self.x_sched_cand += 1;
            } else {
                self.x_sched_cand -= 1;
            }
        } else {
            let removed = self.x_list_remove(!cand, xp.pos as usize);
            debug_assert_eq!(removed, key);
            let list = if cand { &mut self.x_c_u } else { &mut self.x_nc_u };
            let npos = list.len() as u32;
            list.push(key);
            let e = self.x.get_mut(&key).unwrap();
            e.cand = cand;
            e.pos = npos;
        }
    }

    /// Swap-removes a promoted-urn list entry, fixing the moved urn's
    /// mirrored position.
    fn cand_list_remove(&mut self, q: usize, pos: usize) {
        self.cand_urns_by_class[q].swap_remove(pos);
        if pos < self.cand_urns_by_class[q].len() {
            let moved = self.cand_urns_by_class[q][pos];
            self.urns.get_mut(&moved).unwrap().cpos = pos as u32;
        }
    }

    /// Re-derives the candidacy of every cohort owned by `u` after a
    /// state or liveness change. Demotions park the cohort's count behind
    /// a fresh ledger cursor; promotions first settle the ledger debt and
    /// purge stale touched members, restoring the clean-urn invariant.
    fn update_urn_flags(&mut self, u: usize) {
        for q in 0..self.nq {
            let key = ukey(u, q);
            let Some(urn) = self.urns.get(&key) else {
                continue;
            };
            let new_cand = self.alive[u] && self.table.can_affect(self.sp.state_index(u), q, Link::Off);
            if urn.cand == new_cand {
                continue;
            }
            if new_cand {
                self.resolve_urn(key);
                self.purge_urn(key);
                let urn = self.urns.get_mut(&key).unwrap();
                urn.cand = true;
                let (cnt, unc) = (urn.cnt, urn.unc);
                urn.cpos = self.cand_urns_by_class[q].len() as u32;
                self.cand_urns_by_class[q].push(key);
                debug_assert!(self.anon_nc_unc >= unc);
                self.anon_nc_unc -= unc;
                self.rows_avail += unc;
                self.cand_sched_urns += cnt - unc;
            } else {
                let cursor = self.log.len() as u32;
                let urn = self.urns.get_mut(&key).unwrap();
                urn.cand = false;
                urn.cursor = cursor;
                let (cnt, unc, cpos) = (urn.cnt, urn.unc, urn.cpos);
                self.rows_avail -= unc;
                self.cand_sched_urns -= cnt - unc;
                self.anon_nc_unc += unc;
                self.cand_list_remove(q, cpos as usize);
            }
        }
    }

    /// Forces every pair of `u` with a touched node whose current class
    /// can affect `u`'s to become explicit — touched×touched candidates
    /// never hide inside cohorts, which keeps stale NC urn members safe.
    fn tbucket_sup_scan(&mut self, u: usize) {
        let su = self.sp.state_index(u);
        for q2 in 0..self.nq {
            if !self.table.can_affect(su, q2, Link::Off) {
                continue;
            }
            if self.tbuckets[q2].is_empty() {
                continue;
            }
            let members: Vec<u32> = self.tbuckets[q2].clone();
            for t32 in members {
                let t = t32 as usize;
                if t == u || self.x.contains_key(&pkey(t, u)) {
                    continue;
                }
                let unsched = self.locate_and_pull(t, u);
                self.insert_explicit(t, u, !unsched);
            }
        }
    }

    /// Applies a state transition to a touched alive node: moves its
    /// touched bucket, re-flags its cohorts and explicit pairs, and pulls
    /// any newly-candidate touched×touched pairs explicit.
    fn apply_state_change(&mut self, u: usize, new: usize) {
        let old = self.sp.state_index(u);
        if old == new {
            return;
        }
        debug_assert!(self.touched[u] && self.alive[u]);
        self.tbucket_remove(u, old);
        self.sp.set_state_index(u, new);
        self.tbucket_insert(u, new);
        self.update_urn_flags(u);
        let partners: Vec<u32> = self.x_by_node[u].clone();
        for w in partners {
            self.recompute_x(u, w as usize);
        }
        self.tbucket_sup_scan(u);
    }
}

// ---------------------------------------------------------------------
// The advance loop.
// ---------------------------------------------------------------------
impl<M: EnumerableMachine> RoundBucketSim<M> {
    /// Runs until the next *candidate* draw and applies it, without
    /// taking the step count past `max_steps`. Identical contract to
    /// [`RoundSim::advance`](crate::RoundSim::advance): skipped
    /// non-candidates consume their round occurrences exactly, and the
    /// returned [`EventStep`] matches the naive ShuffledRounds loop in
    /// distribution draw for draw.
    pub fn advance(&mut self, max_steps: u64) -> EventStep {
        if self.is_quiescent() {
            return EventStep::Quiescent;
        }
        loop {
            let remaining_budget = max_steps.saturating_sub(self.book.steps);
            if remaining_budget == 0 {
                return EventStep::BudgetExhausted;
            }
            let pos = self.book.steps % self.m;
            let r = self.m - pos;
            let k = self.avail();
            if k == 0 {
                // Every remaining pair this round is scheduled or
                // ineffective: burn the round out (or stop mid-burn).
                // When the budget reaches the boundary, take the whole
                // round without resolving identities — the round reset
                // would discard them, and drawing them here would
                // desynchronize the coin stream between a straight run
                // and one stopped exactly on the boundary.
                if r <= remaining_budget {
                    self.book.steps += r;
                    self.start_round(0);
                    if self.book.steps == max_steps {
                        return EventStep::BudgetExhausted;
                    }
                    continue;
                }
                self.schedule_skips(remaining_budget);
                self.book.steps = max_steps;
                return EventStep::BudgetExhausted;
            }
            let u = self.u01();
            let skipped = hypergeometric_skip(u, r, k);
            if skipped >= remaining_budget {
                // The next candidate lies beyond the budget; consume the
                // in-budget skips only. `skipped ≤ r − 1`, so this never
                // lands exactly on a round boundary.
                self.schedule_skips(remaining_budget);
                self.book.steps = max_steps;
                return EventStep::BudgetExhausted;
            }
            self.schedule_skips(skipped);
            self.book.steps += skipped + 1;
            return self.apply_candidate(skipped);
        }
    }

    /// Draws the candidate uniformly across the three unscheduled-
    /// candidate strata (bulk products, candidate-urn rows, explicit
    /// pairs), materializes it, and applies the interaction.
    fn apply_candidate(&mut self, skipped: u64) -> EventStep {
        let bulk = self.bulk_total();
        let k = bulk + self.rows_avail + self.x_c_u.len() as u64;
        debug_assert!(k > 0);
        let mut idx = self.rng.random_range(0..k);
        let (a, b) = if idx < bulk {
            let (a, b) = self.draw_bulk(idx);
            // Both endpoints leave the untouched buckets before any urn
            // freezes or eager extraction runs, so the drawn pair is
            // claimed exactly once.
            self.pre_mark(a);
            self.pre_mark(b);
            self.insert_explicit(a, b, true);
            self.finish_touch(a);
            self.finish_touch(b);
            (a.min(b), a.max(b))
        } else {
            idx -= bulk;
            if idx < self.rows_avail {
                let (t, w) = self.draw_urn(idx);
                self.pre_mark(w);
                self.insert_explicit(t, w, true);
                self.finish_touch(w);
                (t.min(w), t.max(w))
            } else {
                let key = self.x_list_remove(true, (idx - self.rows_avail) as usize);
                self.x.get_mut(&key).unwrap().sched = true;
                self.x_sched_cand += 1;
                punpack(key)
            }
        };
        let link = Link::from(self.sp.is_active(a, b));
        let outcome = (self.interact)(
            &self.machine,
            self.sp.state_index(a),
            self.sp.state_index(b),
            link,
            &mut self.rng,
        );
        let pair = (a, b);
        let Some((a2, b2, l2)) = outcome else {
            if self.book.steps.is_multiple_of(self.m) {
                self.start_round(0);
            }
            debug_assert!(self.pool_invariant_holds());
            return EventStep::Candidate {
                skipped,
                result: StepResult::Ineffective { pair },
            };
        };
        let edge_changed = l2 != link;
        if edge_changed {
            self.sp.set_edge(a, b, l2.is_on());
        }
        self.book.record_effective(edge_changed);
        if self.book.steps.is_multiple_of(self.m) {
            // The candidate landed on the round boundary: apply the
            // state writes directly and let the reset rebuild everything.
            self.sp.set_state_index(a, a2);
            self.sp.set_state_index(b, b2);
            self.start_round(0);
        } else {
            self.apply_state_change(a, a2);
            self.apply_state_change(b, b2);
            self.recompute_x(a, b);
        }
        debug_assert!(self.pool_invariant_holds());
        EventStep::Candidate {
            skipped,
            result: StepResult::Effective { pair, edge_changed },
        }
    }

    /// Materializes bulk candidate number `idx` in sup-pair walk order:
    /// pick the class-pair stratum by cumulative weight, then uniform
    /// members within it.
    fn draw_bulk(&mut self, mut idx: u64) -> (usize, usize) {
        for pi in 0..self.sup_pairs.len() {
            let (q1, q2) = self.sup_pairs[pi];
            let (q1, q2) = (usize::from(q1), usize::from(q2));
            let c1 = self.ubuckets[q1].len() as u64;
            let w = if q1 == q2 {
                c1 * c1.saturating_sub(1) / 2
            } else {
                c1 * self.ubuckets[q2].len() as u64
            };
            if idx >= w {
                idx -= w;
                continue;
            }
            return if q1 == q2 {
                let i = self.rng.random_range(0..c1) as usize;
                let mut j = self.rng.random_range(0..c1 - 1) as usize;
                if j >= i {
                    j += 1;
                }
                (self.ubuckets[q1][i] as usize, self.ubuckets[q1][j] as usize)
            } else {
                let i = self.rng.random_range(0..c1) as usize;
                let c2 = self.ubuckets[q2].len() as u64;
                let j = self.rng.random_range(0..c2) as usize;
                (self.ubuckets[q1][i] as usize, self.ubuckets[q2][j] as usize)
            };
        }
        unreachable!("bulk index within bulk_total");
    }

    /// Materializes candidate-urn row number `idx`: pick the urn by its
    /// unscheduled weight, then a uniform member — exact because clean
    /// urns hold every untouched node of the class and the scheduled
    /// subset is exchangeable. Decrements the urn.
    fn draw_urn(&mut self, mut idx: u64) -> (usize, usize) {
        for q in 0..self.nq {
            for li in 0..self.cand_urns_by_class[q].len() {
                let key = self.cand_urns_by_class[q][li];
                let unc = self.urns.get(&key).unwrap().unc;
                if idx >= unc {
                    idx -= unc;
                    continue;
                }
                let t = (key >> 16) as usize;
                debug_assert_eq!(
                    self.urns.get(&key).unwrap().cnt,
                    self.ubuckets[q].len() as u64,
                    "candidate urns are clean"
                );
                let j = self.rng.random_range(0..self.ubuckets[q].len());
                let w = self.ubuckets[q][j] as usize;
                let urn = self.urns.get_mut(&key).unwrap();
                urn.cnt -= 1;
                urn.unc -= 1;
                self.rows_avail -= 1;
                return (t, w);
            }
        }
        unreachable!("urn index within rows_avail");
    }

    /// Advances the clock through quiescent rounds without touching the
    /// configuration. Landing mid-round hands the already-elapsed draws
    /// to [`schedule_skips`]; landing in a later round rebuilds the
    /// partition with the elapsed prefix pre-consumed from the pool.
    ///
    /// [`schedule_skips`]: Self::schedule_skips
    fn jump_quiescent_to(&mut self, target: u64) {
        debug_assert!(self.is_quiescent() && target >= self.book.steps);
        let remaining = self.m - self.book.steps % self.m;
        if target - self.book.steps < remaining {
            let t = target - self.book.steps;
            self.schedule_skips(t);
            self.book.steps = target;
            return;
        }
        self.book.steps = target;
        self.start_round(target % self.m);
    }
}

// ---------------------------------------------------------------------
// Run loops (predicates over the sparse view) and the fault layer.
// ---------------------------------------------------------------------
impl<M: EnumerableMachine> RoundBucketSim<M> {
    /// Runs until `stable` holds or `max_steps` total steps have elapsed —
    /// the sparse counterpart of
    /// [`RoundSim::run_until`](crate::RoundSim::run_until), with the same
    /// predicate-evaluation points (initially and after every effective
    /// interaction). The predicate reads the [`SparsePop`] view, like
    /// [`BucketSim::run_until`](crate::BucketSim::run_until).
    ///
    /// If the configuration quiesces while `stable` is false, the clock
    /// jumps to the budget and the exhausted budget is reported
    /// immediately.
    pub fn run_until(
        &mut self,
        mut stable: impl FnMut(&SparsePop) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        if stable(&self.sp) {
            return self.book.stabilized_now();
        }
        loop {
            match self.advance(max_steps) {
                EventStep::Quiescent => {
                    if max_steps > self.book.steps {
                        self.jump_quiescent_to(max_steps);
                    }
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    };
                }
                EventStep::BudgetExhausted => {
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    }
                }
                EventStep::Candidate { result, .. } => {
                    if result.is_effective() && stable(&self.sp) {
                        return self.book.stabilized_now();
                    }
                }
            }
        }
    }

    /// Like [`run_until`](Self::run_until) but only re-evaluates the
    /// predicate when an edge changes. Correct (and faster) for
    /// predicates that depend only on the output graph.
    pub fn run_until_edges(
        &mut self,
        mut stable: impl FnMut(&SparsePop) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        if stable(&self.sp) {
            return self.book.stabilized_now();
        }
        loop {
            match self.advance(max_steps) {
                EventStep::Quiescent => {
                    if max_steps > self.book.steps {
                        self.jump_quiescent_to(max_steps);
                    }
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    };
                }
                EventStep::BudgetExhausted => {
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    }
                }
                EventStep::Candidate {
                    result:
                        StepResult::Effective {
                            edge_changed: true, ..
                        },
                    ..
                } => {
                    if stable(&self.sp) {
                        return self.book.stabilized_now();
                    }
                }
                EventStep::Candidate { .. } => {}
            }
        }
    }

    /// Advances until the step counter reaches exactly `target` — the
    /// negative hypergeometric law is self-similar under truncation (see
    /// [`hypergeometric_skip`]), so stopping and resuming mid-skip is
    /// exact.
    pub fn run_to(&mut self, target: u64) {
        while self.book.steps < target {
            match self.advance(target) {
                EventStep::Quiescent => {
                    self.jump_quiescent_to(target);
                    return;
                }
                EventStep::BudgetExhausted => return,
                EventStep::Candidate { .. } => {}
            }
        }
    }

    /// Applies one resolved fault event, reclassifying exactly the
    /// cohorts and explicit pairs whose effectiveness flipped. The draw
    /// space stays frozen at the capacity: dead pairs keep consuming
    /// their round occurrences as anonymous non-candidates, so the pool
    /// does *not* shrink on a crash and `pool_invariant_holds` is
    /// preserved.
    fn apply_resolved(&mut self, resolved: ResolvedFault) {
        match resolved {
            ResolvedFault::Noop => {}
            ResolvedFault::Crash(x) => {
                // Touch x first (it may still be anonymous), then flip
                // every structure that keys on its liveness: its cohorts
                // all demote to non-candidates, its explicit pairs all
                // turn ineffective, and its untouched pairs stop being
                // counted (x leaves the touched buckets; its urn rows
                // were just demoted).
                self.ensure_touched(x);
                self.alive[x] = false;
                self.tbucket_remove(x, self.sp.state_index(x));
                self.sp.bucket_remove(x);
                self.update_urn_flags(x);
                let partners: Vec<u32> = self.x_by_node[x].clone();
                for w in partners {
                    self.recompute_x(x, w as usize);
                }
                // Drop x's active edges (explicit pairs by invariant),
                // notifications in ascending node order like the other
                // engines.
                let mut neighbors: Vec<usize> = self.sp.neighbors(x).collect();
                neighbors.sort_unstable();
                for &w in &neighbors {
                    self.sp.set_edge(x, w, false);
                    self.recompute_x(x, w);
                }
                if !neighbors.is_empty() {
                    self.book.edge_events += neighbors.len() as u64;
                    self.book.last_output_change = self.book.steps;
                }
                for &w in &neighbors {
                    let sw = self.sp.state_index(w);
                    if let Some(new) = self.machine.notify_indexed(sw) {
                        if new != sw {
                            self.ensure_touched(w);
                            self.apply_state_change(w, new);
                        }
                    }
                }
            }
            ResolvedFault::Arrive(x) => {
                // The ghost was born touched; it joins as a live node
                // with fresh pool-sourced cohorts over the untouched
                // classes. `reset_dead` stays set: pairs owned by
                // earlier-touched nodes were never in their urns (x was
                // dead then) and keep resolving against the pool.
                debug_assert!(!self.alive[x] && self.touched[x] && self.reset_dead[x]);
                self.alive[x] = true;
                self.sp.bucket_insert(x);
                let q = self.sp.state_index(x);
                self.rs_class[x] = q as u16;
                self.tseq[x] = self.seq_next;
                self.seq_next += 1;
                self.tbucket_insert(x, q);
                for q2 in 0..self.nq {
                    let k = self.ubuckets[q2].len() as u64;
                    if k > 0 {
                        self.make_urn(x, q2, k, true);
                    }
                }
                self.tbucket_sup_scan(x);
            }
            ResolvedFault::DeleteEdge(u, v) => self.delete_edge_fault(u, v),
            ResolvedFault::DeleteRandomEdges { count, mut rng } => {
                // The dense engines sample from the triangular-index
                // order, lexicographic in (min, max) — sort the
                // adjacency-derived list to match.
                let mut edges: Vec<(usize, usize)> = Vec::with_capacity(self.sp.active_count());
                for u in 0..self.sp.n() {
                    edges.extend(self.sp.neighbors(u).filter(|&w| w > u).map(|w| (u, w)));
                }
                edges.sort_unstable();
                for (u, v) in sample_without_replacement(&mut rng, edges, count) {
                    self.delete_edge_fault(u, v);
                }
            }
        }
        debug_assert!(self.pool_invariant_holds());
    }

    /// Deactivates edge `{u, v}` as a fault (no-op when inactive) and
    /// reclassifies the single affected pair — explicit by the
    /// active-edge invariant.
    fn delete_edge_fault(&mut self, u: usize, v: usize) {
        if !self.sp.is_active(u, v) {
            return;
        }
        self.sp.set_edge(u, v, false);
        self.book.edge_events += 1;
        self.book.last_output_change = self.book.steps;
        self.recompute_x(u, v);
    }

    /// Normalizes the configuration for an adversary decision: dense
    /// state indices plus the active-edge set read off the sparse
    /// adjacency (the snapshot sorts, so iteration order is moot).
    fn config_snapshot(&self) -> ConfigSnapshot {
        let states = (0..self.sp.n()).map(|u| self.sp.state_index(u)).collect();
        let mut edges = Vec::with_capacity(self.sp.active_count());
        for u in 0..self.sp.n() {
            edges.extend(self.sp.neighbors(u).filter(|&w| w > u).map(|w| (u, w)));
        }
        ConfigSnapshot::new(states, edges)
    }

    /// Applies everything due at the current step counter: scheduled
    /// plan events in order, and adversary decisions resolved against
    /// a fresh configuration snapshot.
    fn apply_due_faults(&mut self) {
        loop {
            let due = self
                .faults
                .as_ref()
                .and_then(|fs| fs.due_fault(self.book.steps));
            match due {
                Some(DueFault::Event) => {
                    let resolved = self
                        .faults
                        .as_mut()
                        .expect("due implies a plan")
                        .resolve_next()
                        .expect("due_fault implies a pending event");
                    self.apply_resolved(resolved);
                }
                Some(DueFault::Decision) => {
                    let snap = self.config_snapshot();
                    let damage = self
                        .faults
                        .as_mut()
                        .expect("due implies a plan")
                        .resolve_due_decision(&snap);
                    for resolved in damage {
                        self.apply_resolved(resolved);
                    }
                }
                None => return,
            }
        }
    }

    /// Applies every remaining plan event *now*, regardless of its
    /// scheduled time (see
    /// [`Simulation::apply_faults_now`](crate::Simulation::apply_faults_now)).
    /// Adversary decisions are *not* drained: they are tied to their
    /// decision draws.
    ///
    /// # Panics
    ///
    /// Panics if the engine has no fault plan.
    pub fn apply_faults_now(&mut self) {
        assert!(self.faults.is_some(), "apply_faults_now needs a fault plan");
        loop {
            let Some(resolved) = self.faults.as_mut().and_then(FaultState::resolve_next) else {
                return;
            };
            self.apply_resolved(resolved);
        }
    }

    /// Advances to exactly `target` total steps, applying plan events at
    /// their scheduled times on the way (same stop/resume exactness as
    /// [`RoundSim::run_faulted_to`](crate::RoundSim::run_faulted_to)).
    ///
    /// # Panics
    ///
    /// Panics if the engine has no fault plan.
    pub fn run_faulted_to(&mut self, target: u64) {
        assert!(self.faults.is_some(), "run_faulted_to needs a fault plan");
        self.apply_due_faults();
        loop {
            let next = self.faults.as_ref().and_then(FaultState::next_at);
            match next {
                Some(at) if at <= target => {
                    self.run_to(at);
                    self.apply_due_faults();
                }
                _ => {
                    self.run_to(target);
                    return;
                }
            }
        }
    }

    /// Runs a faulted execution to stability — same semantics as
    /// [`RoundSim::run_faulted_until`](crate::RoundSim::run_faulted_until):
    /// the predicate is not consulted while plan events are pending.
    ///
    /// # Panics
    ///
    /// Panics if the engine has no fault plan.
    pub fn run_faulted_until(
        &mut self,
        mut stable: impl FnMut(&SparsePop, &FaultState) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        assert!(self.faults.is_some(), "run_faulted_until needs a fault plan");
        self.apply_due_faults();
        loop {
            let next = self.faults.as_ref().and_then(FaultState::next_at);
            match next {
                Some(at) if at <= max_steps => {
                    self.run_to(at);
                    self.apply_due_faults();
                }
                Some(_) => {
                    self.run_to(max_steps);
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    };
                }
                None => break,
            }
        }
        if stable(&self.sp, self.faults.as_ref().expect("asserted above")) {
            return self.book.stabilized_now();
        }
        loop {
            match self.advance(max_steps) {
                EventStep::Quiescent => {
                    if max_steps > self.book.steps {
                        self.jump_quiescent_to(max_steps);
                    }
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    };
                }
                EventStep::BudgetExhausted => {
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    }
                }
                EventStep::Candidate { result, .. } => {
                    if result.is_effective()
                        && stable(&self.sp, self.faults.as_ref().expect("asserted above"))
                    {
                        return self.book.stabilized_now();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProtocolBuilder, RuleProtocol, RoundSim};

    const OFF: Link = Link::Off;
    const ON: Link = Link::On;

    fn matching_protocol() -> RuleProtocol {
        let mut b = ProtocolBuilder::new("matching");
        let a = b.state("a");
        let m = b.state("b");
        b.rule((a, a, OFF), (m, m, ON));
        b.build().expect("valid")
    }

    /// Match in one round, dissolve each matched edge at its next
    /// occurrence: converges in exactly two rounds under any box
    /// schedule (see the workspace-level regression test).
    fn dissolve_protocol() -> RuleProtocol {
        let mut b = ProtocolBuilder::new("dissolve");
        let a = b.state("a");
        let m = b.state("b");
        let d = b.state("c");
        b.rule((a, a, OFF), (m, m, ON));
        b.rule((m, m, ON), (d, d, OFF));
        b.build().expect("valid")
    }

    #[test]
    fn matching_converges_in_round_one() {
        for seed in 0..20 {
            let mut sim = RoundBucketSim::new(matching_protocol(), 20, seed);
            let out = sim.run_until_edges(|sp| sp.active_count() == 10, 10_000);
            assert!(out.stabilized(), "seed {seed}: {out:?}");
            // Every (a, a) pair occurs within round 1, so no two nodes
            // can both survive it unmatched.
            assert!(sim.steps() <= sim.pairs_per_round(), "seed {seed}");
            assert_eq!(sim.last_output_change_round(), 1, "seed {seed}");
            assert_eq!(sim.effective_steps(), 10);
            assert!(sim.is_quiescent());
        }
    }

    #[test]
    fn dissolve_takes_exactly_two_rounds() {
        // n even: round 1 matches everyone (any two unmatched nodes
        // would have matched when their pair came up), and each matched
        // pair recurs exactly once in round 2, where it dissolves. The
        // convergence round is therefore deterministically 2.
        let p = dissolve_protocol();
        let d = p.state("c").expect("dissolved state exists");
        let di = p.state_index(&d);
        for seed in 0..20 {
            let mut sim = RoundBucketSim::new(p.clone(), 12, 100 + seed);
            let out = sim.run_until_edges(
                |sp| sp.count_index(di) == sp.n() && sp.active_count() == 0,
                200_000,
            );
            assert!(out.stabilized(), "seed {seed}: {out:?}");
            let converged = out.converged_at().expect("stabilized");
            assert_eq!(sim.round_of(converged), 2, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut sim = RoundBucketSim::new(matching_protocol(), 16, seed);
            let out = sim.run_until_edges(|sp| sp.active_count() == 8, 100_000);
            (out, sim.steps(), sim.edge_events(), sim.rounds_completed())
        };
        assert_eq!(run(9), run(9));
        assert!(run(9).0.stabilized());
    }

    #[test]
    fn compiled_and_interpreted_agree_step_for_step() {
        let p = matching_protocol();
        let mut a = RoundBucketSim::new(p.clone(), 15, 31);
        let mut b = RoundBucketSim::new(p.compile(), 15, 31);
        loop {
            let (ra, rb) = (a.advance(u64::MAX), b.advance(u64::MAX));
            assert_eq!(ra, rb);
            assert_eq!(a.steps(), b.steps());
            if ra == EventStep::Quiescent {
                break;
            }
        }
        assert_eq!(a.to_population(), b.to_population());
    }

    #[test]
    fn budget_is_respected_exactly_and_resumes() {
        let mut sim = RoundBucketSim::new(matching_protocol(), 50, 3);
        let out = sim.run_until(|_| false, 1_000);
        assert_eq!(out, RunOutcome::MaxSteps { steps: 1_000 });
        assert_eq!(sim.steps(), 1_000);
        // Resume mid-round: the skip law is self-similar, the run goes on.
        sim.run_to(2_000);
        assert_eq!(sim.steps(), 2_000);
        let out = sim.run_until_edges(|sp| sp.active_count() == 25, u64::MAX);
        assert!(out.stabilized());
    }

    #[test]
    fn quiescent_unstable_returns_budget_immediately() {
        let mut b = ProtocolBuilder::new("inert");
        let _ = b.state("a");
        let p = b.build().expect("valid");
        let mut sim = RoundBucketSim::new(p, 8, 0);
        let out = sim.run_until(|_| false, u64::MAX);
        assert_eq!(out, RunOutcome::MaxSteps { steps: u64::MAX });
    }

    #[test]
    fn quiescence_after_convergence_jumps_to_target() {
        let mut sim = RoundBucketSim::new(matching_protocol(), 10, 5);
        sim.run_until_edges(|sp| sp.active_count() == 5, u64::MAX);
        let done = sim.steps();
        sim.run_to(done + 1_000_000);
        assert_eq!(sim.steps(), done + 1_000_000);
        assert_eq!(sim.effective_steps(), 5);
        assert!(sim.pool_invariant_holds());
    }

    #[test]
    fn round_bookkeeping_is_consistent() {
        let mut sim = RoundBucketSim::new(dissolve_protocol(), 10, 77);
        let m = sim.pairs_per_round();
        assert_eq!(m, 45);
        sim.run_to(3 * m + 7);
        assert_eq!(sim.rounds_completed(), 3);
        assert_eq!(sim.round_of(0), 0);
        assert_eq!(sim.round_of(1), 1);
        assert_eq!(sim.round_of(m), 1);
        assert_eq!(sim.round_of(m + 1), 2);
        assert!(sim.last_output_change_round() <= sim.round_of(sim.steps()));
    }

    #[test]
    fn tracks_dense_round_engine_on_average() {
        // Cheap smoke check of the exactness argument (the full paired
        // statistical tests live in the workspace-level suite): mean
        // converged_at against RoundSim over matched trial counts.
        let trials = 60;
        let mean = |sparse: bool| -> f64 {
            (0..trials)
                .map(|seed| {
                    let out = if sparse {
                        RoundBucketSim::new(matching_protocol(), 12, 1000 + seed)
                            .run_until_edges(|sp| sp.active_count() == 6, u64::MAX)
                    } else {
                        RoundSim::new(matching_protocol(), 12, 2000 + seed).run_until_edges(
                            |p| p.edges().active_count() == 6,
                            u64::MAX,
                        )
                    };
                    out.converged_at().expect("stabilizes") as f64
                })
                .sum::<f64>()
                / f64::from(trials as u32)
        };
        let (s, d) = (mean(true), mean(false));
        assert!(
            (s - d).abs() / d < 0.35,
            "sparse-round {s:.1} vs dense-round {d:.1} means too far apart"
        );
    }

    #[test]
    fn randomized_identity_candidates_count_as_real_steps() {
        // (a, b, 0) → ½ identity, ½ swap: candidates may resolve
        // ineffective; each consumes its occurrence in the round.
        let mut b = ProtocolBuilder::new("lazy-swap");
        let a = b.state("a");
        let c = b.state("b");
        b.initial(a);
        b.rule_random((a, c, OFF), [(1, (a, c, OFF)), (1, (c, a, OFF))]);
        let p = b.build().expect("valid");
        let mut pop = Population::new(4, a);
        pop.set_state(0, c);
        let mut sim = RoundBucketSim::from_population(p, pop, 11);
        let mut saw_ineffective = false;
        for _ in 0..200 {
            match sim.advance(u64::MAX) {
                EventStep::Candidate {
                    result: StepResult::Ineffective { .. },
                    ..
                } => saw_ineffective = true,
                EventStep::Quiescent => panic!("lazy-swap never quiesces"),
                _ => {}
            }
        }
        assert!(saw_ineffective, "identity branch should occur in 200 draws");
        assert!(sim.steps() >= 200);
    }

    #[test]
    fn initial_configuration_can_be_stable() {
        let mut sim = RoundBucketSim::new(matching_protocol(), 6, 2);
        let out = sim.run_until(|_| true, 10);
        assert_eq!(
            out,
            RunOutcome::Stabilized {
                detected_at: 0,
                converged_at: 0,
                last_effective: 0
            }
        );
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_population_rejected() {
        let _ = RoundBucketSim::new(matching_protocol(), 1, 0);
    }

    #[test]
    fn pool_invariant_survives_fault_events() {
        use crate::fault::{FaultEvent, FaultPlan};
        let plan = FaultPlan::new(4)
            .at(10, FaultEvent::CrashRandom)
            .at(25, FaultEvent::Arrive)
            .at(40, FaultEvent::DeleteRandomActiveEdges(1));
        let mut sim = RoundBucketSim::new_faulted(dissolve_protocol(), 10, 17, plan);
        assert!(sim.pool_invariant_holds());
        for target in [10, 25, 40, 70, 200] {
            sim.run_faulted_to(target);
            assert!(sim.pool_invariant_holds(), "after step {target}");
        }
        let fs = sim.fault_state().expect("faulted");
        assert_eq!(fs.alive_count(), 10);
        assert_eq!(fs.capacity(), 11);
    }

    #[test]
    fn faulted_matching_still_completes_in_round_one() {
        // A crash at t = 0 leaves 8 live `a` nodes (plus one ghost):
        // every live (a, a) pair still occurs within round 1, so the
        // matching among the living is maximal by the round's end.
        for seed in 0..10 {
            use crate::fault::{FaultEvent, FaultPlan};
            let plan = FaultPlan::new(seed).at(0, FaultEvent::CrashRandom);
            let mut sim = RoundBucketSim::new_faulted(matching_protocol(), 9, 300 + seed, plan);
            let out = sim.run_faulted_until(|sp, _| sp.active_count() == 4, 1_000_000);
            assert!(out.stabilized(), "seed {seed}: {out:?}");
            assert_eq!(sim.last_output_change_round(), 1, "seed {seed}");
            assert!(sim.pool_invariant_holds());
        }
    }

    #[test]
    fn memory_stays_far_below_the_dense_round_engine() {
        let n = 4096;
        let mut sim = RoundBucketSim::new(matching_protocol(), n, 0);
        sim.run_until_edges(|sp| sp.active_count() == n / 2, u64::MAX);
        let measured = sim.approx_mem_bytes();
        let dense = RoundSim::<RuleProtocol>::dense_mem_estimate(n);
        assert!(
            measured * 20 < dense,
            "sparse {measured} bytes should be well under dense {dense}"
        );
    }

    #[test]
    fn matching_at_one_hundred_thousand_nodes() {
        // The n = 100k frontier the dense round engine cannot touch
        // (≈ 130 GB): one round of draws, O(n) memory, still exact.
        let n = 100_000;
        let mut sim = RoundBucketSim::new(matching_protocol(), n, 42);
        let out = sim.run_until_edges(|sp| sp.active_count() == n / 2, u64::MAX);
        assert!(out.stabilized(), "{out:?}");
        assert_eq!(sim.last_output_change_round(), 1);
        assert_eq!(sim.effective_steps(), n as u64 / 2);
        assert!(sim.is_quiescent());
    }
}
