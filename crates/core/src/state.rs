//! Value types for node states and edge states.

use std::fmt;

/// A node state of a flat (rule-table) protocol.
///
/// States are dense indices into the protocol's state set `Q`; the
/// [`ProtocolBuilder`](crate::ProtocolBuilder) hands them out and maps them
/// back to their paper names. The type is deliberately opaque: a `StateId`
/// from one protocol is meaningless in another.
///
/// # Example
///
/// ```
/// use netcon_core::ProtocolBuilder;
///
/// let mut b = ProtocolBuilder::new("demo");
/// let q0 = b.state("q0");
/// let q1 = b.state("q1");
/// assert_ne!(q0, q1);
/// assert_eq!(q0.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(u16);

impl StateId {
    /// Creates a state id from a raw index.
    ///
    /// Prefer obtaining ids from
    /// [`ProtocolBuilder::state`](crate::ProtocolBuilder::state); this
    /// constructor exists for tests and table-driven tooling.
    #[must_use]
    pub const fn new(index: u16) -> Self {
        Self(index)
    }

    /// The dense index of this state in `Q`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q#{}", self.0)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The binary state of a connection between two processes.
///
/// The paper's edge states `{0, 1}`: an edge in state 1 is *active* (it
/// exists in the output network), an edge in state 0 is *inactive*. All
/// edges start [`Link::Off`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub enum Link {
    /// The connection is inactive (edge state 0). The initial state of
    /// every edge.
    #[default]
    Off,
    /// The connection is active (edge state 1).
    On,
}

impl Link {
    /// Whether the connection is active.
    #[must_use]
    pub const fn is_on(self) -> bool {
        matches!(self, Link::On)
    }
}

impl From<bool> for Link {
    fn from(active: bool) -> Self {
        if active {
            Link::On
        } else {
            Link::Off
        }
    }
}

impl From<Link> for bool {
    fn from(link: Link) -> Self {
        link.is_on()
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", if self.is_on() { 1 } else { 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_roundtrip() {
        assert_eq!(Link::from(true), Link::On);
        assert_eq!(Link::from(false), Link::Off);
        assert!(bool::from(Link::On));
        assert!(Link::default() == Link::Off, "all edges start inactive");
    }

    #[test]
    fn state_id_index() {
        assert_eq!(StateId::new(7).index(), 7);
        assert_eq!(format!("{:?}", StateId::new(3)), "q#3");
    }
}
