//! The exact event-driven engine: skip ineffective steps, simulate only
//! the interactions that can matter.
//!
//! Under the uniform random scheduler almost every selected pair of a
//! converging execution has no applicable transition — the paper's Θ(n³)
//! and Θ(n⁴) sequential running times are overwhelmingly idle draws. The
//! naive [`Simulation`](crate::Simulation) pays for each of them;
//! [`EventSim`] does not, while remaining *exact*:
//!
//! 1. It maintains the set `E` of **possibly-effective** pairs — pairs
//!    `{u, v}` with `can_affect(state(u), state(v), link(u, v))` —
//!    incrementally: only the ≤ `2(n−1)` pairs incident to an applied
//!    interaction can change membership, so each applied interaction costs
//!    O(n) ([`PairSet`] + [`EffectTable`](crate::EffectTable)).
//! 2. With `k = |E|` and `m = n(n−1)/2`, the number of consecutive draws
//!    that miss `E` is geometric with success probability `p = k/m`
//!    (states are frozen during misses, so draws are i.i.d.). `EventSim`
//!    samples that count in one inversion draw
//!    (`⌊ln U / ln(1−p)⌋`, `U` uniform on `(0, 1]`) and jumps the step
//!    counter, instead of making the draws.
//! 3. It then selects an *ordered* pair uniformly from `E` — exactly the
//!    conditional law of the uniform scheduler given that the draw hit
//!    `E` — and applies `interact` with real coins. (A possibly-effective
//!    pair may still resolve ineffective when a randomized rule samples
//!    the identity; such candidates are simulated explicitly, again
//!    matching the naive engine.)
//!
//! Every statistic the engines report — `steps`, `effective_steps`,
//! `edge_events`, `converged_at`, `last_effective`, and the full
//! configuration process — therefore has **identical distribution** to
//! [`Simulation`](crate::Simulation) under the uniform scheduler (up to
//! the f64 rounding of the inversion draw), at a cost proportional to the
//! number of *effective* interactions. The one behavioural difference is
//! benign: where the naive engine would grind through its whole step
//! budget on a quiescent-but-unstable configuration, `EventSim` detects
//! quiescence (the pair set is empty) and reports the exhausted budget
//! immediately.
//!
//! Construction requires an [`EnumerableMachine`] (dense state indices →
//! precomputed effect table); [`EventSim::new_scanning`] accepts any
//! [`Machine`] and queries `can_affect` per pair instead,
//! trading constant factors for generality — it relies only on the
//! documented contract that `can_affect` never under-approximates.
//!
//! Memory: the pair-position map is a full `n × n` matrix (4n² bytes —
//! its contiguous rows are what the maintenance loop streams over), plus
//! membership/adjacency bitsets (~n²/4 bytes) and 4 bytes per member
//! pair: ~150 MB at `n = 6_000`, ~400 MB at `n = 10_000`
//! ([`approx_mem_bytes`](EventSim::approx_mem_bytes) measures the live
//! figure). Past the tens of thousands of nodes, the state-bucketed
//! [`BucketSim`](crate::BucketSim) runs the same distribution in
//! O(n + |Q|²) memory; [`Engine::auto`](crate::Engine::auto) picks
//! between the two by a memory budget.

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::compiled::EnumerableMachine;
use crate::engine::{
    apply_desired_row, geometric_skip, unit_open01, Bookkeeping, EffectIndex, GeoCacheSlot,
    PairSet, ScanIndex,
};
use crate::fault::adversary::ConfigSnapshot;
use crate::fault::{sample_without_replacement, DueFault, FaultPlan, FaultState, ResolvedFault};
use crate::sim::{RunOutcome, StepResult};
use crate::{Link, Machine, Population};

/// Monomorphic indexed-interaction entry point captured from
/// [`EnumerableMachine::interact_indexed`] at construction.
type InteractFn<M> = fn(&M, usize, usize, Link, &mut SmallRng) -> Option<(usize, usize, Link)>;

/// How the engine decides pair effectiveness.
#[derive(Debug, Clone)]
enum Effects<M: Machine> {
    /// Query `Machine::can_affect` with the live states (any machine),
    /// pruned through the dynamic observed-state registry where it pays
    /// off (see [`ScanIndex`]).
    Scan(ScanIndex<M>),
    /// Dense index table plus monomorphic interaction (enumerable
    /// machines). The function pointers are captured where the
    /// `EnumerableMachine` bound is known.
    Indexed {
        index: EffectIndex<M>,
        state_at: fn(&M, usize) -> M::State,
        interact: InteractFn<M>,
    },
}

/// The result of one [`EventSim::advance`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventStep {
    /// No pair has an applicable transition; the configuration can never
    /// change again. The step counter is left untouched.
    Quiescent,
    /// The step budget was reached (the counter now equals it) before the
    /// next possibly-effective draw; no interaction was applied.
    BudgetExhausted,
    /// Ineffective draws were skipped and one candidate interaction was
    /// simulated; `result` tells whether its coins made it effective.
    Candidate {
        /// Ineffective draws skipped before the candidate.
        skipped: u64,
        /// The candidate interaction's outcome.
        result: StepResult,
    },
}

/// An event-driven execution of a machine on a population under the
/// uniform random scheduler.
///
/// Mirrors the [`Simulation`](crate::Simulation) API (`run_until`,
/// `run_until_edges`, accessors) with identical output distribution; see
/// the [module docs](self) for the exactness argument. There is no
/// scheduler parameter: the geometric skip law is specific to the uniform
/// scheduler, which is also the one all running-time claims in the paper
/// are stated for.
///
/// # Example
///
/// ```
/// use netcon_core::{EventSim, Link, ProtocolBuilder};
/// use netcon_graph::properties::is_maximum_matching;
///
/// let mut b = ProtocolBuilder::new("matching");
/// let a = b.state("a");
/// let m = b.state("b");
/// b.rule((a, a, Link::Off), (m, m, Link::On));
/// let protocol = b.build()?;
///
/// let mut sim = EventSim::new(protocol, 30, 1);
/// let outcome = sim.run_until(|p| is_maximum_matching(p.edges()), 1_000_000);
/// assert!(outcome.stabilized());
/// assert!(sim.is_quiescent()); // O(1): the possibly-effective set is empty
/// # Ok::<(), netcon_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EventSim<M: Machine> {
    machine: M,
    pop: Population<M::State>,
    rng: SmallRng,
    book: Bookkeeping,
    pairs: PairSet,
    effects: Effects<M>,
    faults: Option<FaultState>,
    /// Lazy inversion table for the hot `geometric_skip` parameter.
    geo: GeoCacheSlot,
}

impl<M: EnumerableMachine> EventSim<M> {
    /// Creates an event-driven simulation of `machine` on `n` nodes in the
    /// initial configuration, reproducible from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the machine has more than 65536 states.
    ///
    /// # Example
    ///
    /// ```
    /// use netcon_core::{EventSim, Link, ProtocolBuilder};
    /// let mut b = ProtocolBuilder::new("pairing");
    /// let a = b.state("a");
    /// let p = b.state("b");
    /// b.rule((a, a, Link::Off), (p, p, Link::On));
    /// let sim = EventSim::new(b.build()?.compile(), 64, 7);
    /// assert_eq!(sim.steps(), 0);
    /// assert_eq!(sim.effective_pairs(), 64 * 63 / 2); // all (a, a, 0) pairs
    /// # Ok::<(), netcon_core::ProtocolError>(())
    /// ```
    #[must_use]
    pub fn new(machine: M, n: usize, seed: u64) -> Self {
        let pop = Population::new(n, machine.initial_state());
        Self::from_population(machine, pop, seed)
    }

    /// Creates an event-driven simulation from an explicit configuration
    /// (one O(n²) effectiveness scan).
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer than 2 nodes or the machine has
    /// more than 65536 states.
    #[must_use]
    pub fn from_population(machine: M, pop: Population<M::State>, seed: u64) -> Self {
        assert!(pop.n() >= 2, "pairwise interactions need at least 2 processes");
        assert!(
            machine.num_states() <= usize::from(u16::MAX) + 1,
            "EventSim's dense index is u16: more than 65536 states"
        );
        let table = machine.effect_table();
        let (index, pairs) =
            EffectIndex::build(&machine, &pop, table, |m: &M, s: &M::State| m.state_index(s));
        Self {
            machine,
            pop,
            rng: SmallRng::seed_from_u64(seed),
            book: Bookkeeping::default(),
            pairs,
            effects: Effects::Indexed {
                index,
                state_at: |m: &M, i: usize| m.state_at(i),
                interact: |m: &M, a, b, link, rng: &mut SmallRng| {
                    m.interact_indexed(a, b, link, rng)
                },
            },
            faults: None,
            geo: GeoCacheSlot::default(),
        }
    }

    /// Creates a faulted event-driven simulation of `machine` on `n`
    /// initially-present nodes: the draw space is pre-sized to
    /// `n + plan.arrival_count()` (arrival slots start as inert ghosts)
    /// and `plan`'s events are applied by
    /// [`run_faulted_until`](Self::run_faulted_until) /
    /// [`run_faulted_to`](Self::run_faulted_to) /
    /// [`apply_faults_now`](Self::apply_faults_now). Always uses the
    /// indexed effectiveness backend; see [`fault`](crate::fault) for
    /// the ghost-node model.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the machine has more than 65536 states.
    #[must_use]
    pub fn new_faulted(machine: M, n: usize, seed: u64, plan: FaultPlan) -> Self {
        assert!(n >= 2, "pairwise interactions need at least 2 processes");
        let fs = FaultState::new(plan, n);
        let mut sim = Self::new(machine, fs.capacity(), seed);
        for ghost in n..fs.capacity() {
            sim.detach_node(ghost);
        }
        sim.faults = Some(fs);
        sim
    }
}

impl<M: Machine> EventSim<M> {
    /// Creates an event-driven simulation for a machine *without* dense
    /// state indices: pair effectiveness is decided by calling
    /// [`Machine::can_affect`] on the live states (O(n) calls per applied
    /// interaction, against bit lookups on the indexed path).
    ///
    /// Exactness requires only the documented `can_affect` contract: it
    /// may over-approximate (false positives are simulated and resolve
    /// ineffective) but must never return `false` for a pair `interact`
    /// could change.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new_scanning(machine: M, n: usize, seed: u64) -> Self {
        let pop = Population::new(n, machine.initial_state());
        Self::from_population_scanning(machine, pop, seed)
    }

    /// [`new_scanning`](Self::new_scanning) from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer than 2 nodes.
    #[must_use]
    pub fn from_population_scanning(machine: M, pop: Population<M::State>, seed: u64) -> Self {
        assert!(pop.n() >= 2, "pairwise interactions need at least 2 processes");
        let n = pop.n();
        let mut pairs = PairSet::new(n);
        for u in 0..n {
            for (v, active) in pop.edges().row(u) {
                if v > u && machine.can_affect(pop.state(u), pop.state(v), Link::from(active)) {
                    pairs.set(u, v, true);
                }
            }
        }
        let scan = ScanIndex::build(&machine, &pop);
        Self {
            machine,
            pop,
            rng: SmallRng::seed_from_u64(seed),
            book: Bookkeeping::default(),
            pairs,
            effects: Effects::Scan(scan),
            faults: None,
            geo: GeoCacheSlot::default(),
        }
    }

    /// The fault bookkeeping, if this engine was constructed with a
    /// [`FaultPlan`].
    #[must_use]
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// The current configuration.
    #[must_use]
    pub fn population(&self) -> &Population<M::State> {
        &self.pop
    }

    /// The machine being executed.
    #[must_use]
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Steps taken so far (including skipped ineffective draws).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.book.steps
    }

    /// Effective interactions so far.
    #[must_use]
    pub fn effective_steps(&self) -> u64 {
        self.book.effective_steps
    }

    /// Edge activations/deactivations so far.
    #[must_use]
    pub fn edge_events(&self) -> u64 {
        self.book.edge_events
    }

    /// The step of the most recent edge change (0 if none yet).
    #[must_use]
    pub fn last_output_change(&self) -> u64 {
        self.book.last_output_change
    }

    /// The step of the most recent effective interaction (0 if none yet).
    #[must_use]
    pub fn last_effective(&self) -> u64 {
        self.book.last_effective
    }

    /// The number of currently possibly-effective pairs.
    #[must_use]
    pub fn effective_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Bytes of heap memory held by the engine: the pair set (its Θ(n²)
    /// position matrix and membership bitsets), the dense edge set, the
    /// node states, and the effectiveness index. Heap payloads *inside*
    /// composite states are not counted.
    #[must_use]
    pub fn approx_mem_bytes(&self) -> u64 {
        let states = (self.pop.n() * std::mem::size_of::<M::State>()) as u64;
        self.pairs.approx_mem_bytes()
            + self.pop.edges().approx_mem_bytes()
            + states
            + match &self.effects {
                Effects::Scan(sx) => sx.approx_mem_bytes(),
                Effects::Indexed { index, .. } => index.approx_mem_bytes(),
            }
    }

    /// A priori estimate of [`approx_mem_bytes`](Self::approx_mem_bytes)
    /// for a fresh indexed engine on `n` nodes — what
    /// [`Engine::auto`](crate::Engine::auto) weighs against its memory
    /// budget *before* allocating anything. Dominated by the pair-position
    /// matrix (`4n²`), the pair membership bitsets (`n²/8`), and the edge
    /// set (`3n²/16`); the member vector is excluded (it grows with the
    /// live effective set).
    #[must_use]
    pub fn dense_mem_estimate(n: usize) -> u64 {
        let n = n as u64;
        4 * n * n + n * n / 8 + 3 * n * n / 16 + 16 * n
    }

    /// Skips the geometric number of ineffective draws and simulates the
    /// next candidate interaction, without letting the step counter pass
    /// `max_steps`.
    pub fn advance(&mut self, max_steps: u64) -> EventStep {
        let k = self.pairs.len();
        if k == 0 {
            return EventStep::Quiescent;
        }
        let n = self.pop.n();
        let m = n * (n - 1) / 2;
        let remaining = max_steps.saturating_sub(self.book.steps);
        if remaining == 0 {
            return EventStep::BudgetExhausted;
        }
        let skipped = if k == m {
            0
        } else {
            // Inversion of the geometric law: P(skips ≥ t) = (1−p)^t.
            let p = k as f64 / m as f64;
            // The inversion table answers with the same value the direct
            // computation would produce for this raw draw; a miss falls
            // back to the `ln` inversion on the *same* draw, so the coin
            // stream is bit-identical either way.
            let raw = self.rng.next_u64();
            let g = self
                .geo
                .note(p)
                .and_then(|c| c.lookup(raw))
                .unwrap_or_else(|| geometric_skip(unit_open01(raw), p));
            // The candidate lands at steps + skips + 1: past the budget
            // means the whole remaining window is ineffective (this is
            // exact — P(skips ≥ r) equals the naive engine's probability
            // of r ineffective draws in a row).
            if g >= remaining as f64 {
                self.book.steps = max_steps;
                return EventStep::BudgetExhausted;
            }
            g as u64
        };
        self.book.steps += skipped + 1;

        // Uniform over *ordered* possibly-effective pairs — the uniform
        // scheduler's law conditioned on hitting the set.
        let r = self.rng.random_range(0..2 * k);
        let (mut u_n, mut v_n) = self.pairs.get(r / 2);
        if r % 2 == 1 {
            std::mem::swap(&mut u_n, &mut v_n);
        }
        let pair = (u_n, v_n);
        let link = Link::from(self.pop.edges().is_active(u_n, v_n));

        let outcome = match &self.effects {
            Effects::Scan(_) => {
                self.machine
                    .interact(self.pop.state(u_n), self.pop.state(v_n), link, &mut self.rng)
            }
            Effects::Indexed {
                index,
                state_at,
                interact,
            } => interact(
                &self.machine,
                index.state_index(u_n),
                index.state_index(v_n),
                link,
                &mut self.rng,
            )
            .map(|(a2, b2, l2)| {
                (
                    state_at(&self.machine, a2),
                    state_at(&self.machine, b2),
                    l2,
                )
            }),
        };
        let Some((a2, b2, l2)) = outcome else {
            // A randomized rule sampled the identity: one real step, no
            // change (exactly what the naive engine would record).
            return EventStep::Candidate {
                skipped,
                result: StepResult::Ineffective { pair },
            };
        };
        let edge_changed = l2 != link;
        if edge_changed {
            self.pop.edges_mut().set(u_n, v_n, l2.is_on());
        }
        self.pop.set_state(u_n, a2);
        self.pop.set_state(v_n, b2);
        self.book.record_effective(edge_changed);
        match &mut self.effects {
            Effects::Scan(sx) => {
                if !sx.on_interaction(&self.machine, &self.pop, &mut self.pairs, u_n, v_n) {
                    // Registry overflowed (or never applied): plain
                    // machine-query rescans, identical membership.
                    Self::rescan(&self.machine, &self.pop, &mut self.pairs, u_n);
                    Self::rescan(&self.machine, &self.pop, &mut self.pairs, v_n);
                }
            }
            Effects::Indexed { index, .. } => {
                index.on_interaction(&self.machine, &self.pop, &mut self.pairs, u_n, v_n);
            }
        }
        EventStep::Candidate {
            skipped,
            result: StepResult::Effective { pair, edge_changed },
        }
    }

    /// Recomputes (by machine query) the membership of every pair incident
    /// to `u` — the scanning-mode half of the incremental maintenance.
    fn rescan(machine: &M, pop: &Population<M::State>, pairs: &mut PairSet, u: usize) {
        for (w, active) in pop.edges().row(u) {
            pairs.set(
                u,
                w,
                machine.can_affect(pop.state(u), pop.state(w), Link::from(active)),
            );
        }
    }

    /// Runs until `stable` holds or `max_steps` total steps have elapsed —
    /// the event-driven counterpart of
    /// [`Simulation::run_until`](crate::Simulation::run_until), with the
    /// same predicate-evaluation points (initially and after every
    /// effective interaction) and the same outcome distribution.
    ///
    /// If the configuration quiesces while `stable` is false, the naive
    /// engine would idle through the rest of the budget; this engine
    /// reports the exhausted budget immediately.
    pub fn run_until(
        &mut self,
        mut stable: impl FnMut(&Population<M::State>) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        if stable(&self.pop) {
            return self.book.stabilized_now();
        }
        loop {
            match self.advance(max_steps) {
                EventStep::Quiescent => {
                    // The naive engine would idle out the rest of the
                    // budget; jump straight to it.
                    self.book.steps = self.book.steps.max(max_steps);
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    };
                }
                EventStep::BudgetExhausted => {
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    }
                }
                EventStep::Candidate { result, .. } => {
                    if result.is_effective() && stable(&self.pop) {
                        return self.book.stabilized_now();
                    }
                }
            }
        }
    }

    /// Like [`run_until`](Self::run_until) but only re-evaluates the
    /// predicate when an edge changes. Correct (and faster) for predicates
    /// that depend only on the output graph.
    pub fn run_until_edges(
        &mut self,
        mut stable: impl FnMut(&Population<M::State>) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        if stable(&self.pop) {
            return self.book.stabilized_now();
        }
        loop {
            match self.advance(max_steps) {
                EventStep::Quiescent => {
                    self.book.steps = self.book.steps.max(max_steps);
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    };
                }
                EventStep::BudgetExhausted => {
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    }
                }
                EventStep::Candidate {
                    result:
                        StepResult::Effective {
                            edge_changed: true, ..
                        },
                    ..
                } => {
                    if stable(&self.pop) {
                        return self.book.stabilized_now();
                    }
                }
                EventStep::Candidate { .. } => {}
            }
        }
    }

    /// Advances until the step counter reaches exactly `target` (the
    /// event-driven counterpart of
    /// [`Simulation::run_for`](crate::Simulation::run_for) with an
    /// absolute target) — geometric memorylessness makes stopping and
    /// resuming mid-skip exact.
    pub fn run_to(&mut self, target: u64) {
        while self.book.steps < target {
            match self.advance(target) {
                EventStep::Quiescent => {
                    self.book.steps = target;
                    return;
                }
                EventStep::BudgetExhausted => return,
                EventStep::Candidate { .. } => {}
            }
        }
    }

    /// Retires node `x` from the candidate structures: deactivates its
    /// incident active edges, clears its pair row, and marks it absent
    /// in the index. Returns the former neighbors, in ascending order.
    fn detach_node(&mut self, x: usize) -> Vec<usize> {
        let neighbors: Vec<usize> = self.pop.edges().neighbors(x).collect();
        for &w in &neighbors {
            self.pop.edges_mut().set(x, w, false);
        }
        match &mut self.effects {
            Effects::Indexed { index, .. } => index.set_absent(x),
            Effects::Scan(_) => {
                unreachable!("faulted EventSim always uses the indexed backend")
            }
        }
        let zeros = vec![0u64; self.pairs.row_bits(x).len()];
        apply_desired_row(&mut self.pairs, x, &zeros);
        neighbors
    }

    /// Applies one resolved fault event (alive flags already flipped by
    /// the resolver): reclassifies candidates and records fault-induced
    /// edge deletions as output-graph changes.
    fn apply_resolved(&mut self, resolved: ResolvedFault) {
        match resolved {
            ResolvedFault::Noop => {}
            ResolvedFault::Crash(x) => {
                let neighbors = self.detach_node(x);
                if !neighbors.is_empty() {
                    self.book.edge_events += neighbors.len() as u64;
                    self.book.last_output_change = self.book.steps;
                }
                // Crash notifications, in ascending node order (see
                // `Machine::on_crash_notify`): state-only changes, so
                // only the notified node's pair row needs rescanning.
                for &w in &neighbors {
                    if let Some(s2) = self.machine.on_crash_notify(self.pop.state(w)) {
                        if *self.pop.state(w) != s2 {
                            self.pop.set_state(w, s2);
                            let Effects::Indexed { index, .. } = &mut self.effects else {
                                unreachable!("faulted EventSim always uses the indexed backend")
                            };
                            index.on_state_change(&self.machine, &self.pop, &mut self.pairs, w);
                        }
                    }
                }
            }
            ResolvedFault::Arrive(x) => {
                let Effects::Indexed { index, .. } = &mut self.effects else {
                    unreachable!("faulted EventSim always uses the indexed backend")
                };
                index.set_present(x);
                index.rescan_node(&self.pop, &mut self.pairs, x);
            }
            ResolvedFault::DeleteEdge(u, v) => self.delete_edge_fault(u, v),
            ResolvedFault::DeleteRandomEdges { count, mut rng } => {
                // Canonical triangular-index order, shared by every
                // engine, so the draw depends only on the configuration.
                let edges: Vec<(usize, usize)> = self.pop.edges().active_edges().collect();
                for (u, v) in sample_without_replacement(&mut rng, edges, count) {
                    self.delete_edge_fault(u, v);
                }
            }
        }
    }

    /// Deactivates edge `{u, v}` as a fault (no-op when inactive) and
    /// reclassifies the single affected pair.
    fn delete_edge_fault(&mut self, u: usize, v: usize) {
        if !self.pop.edges().is_active(u, v) {
            return;
        }
        self.pop.edges_mut().set(u, v, false);
        self.book.edge_events += 1;
        self.book.last_output_change = self.book.steps;
        let Effects::Indexed { index, .. } = &self.effects else {
            unreachable!("faulted EventSim always uses the indexed backend")
        };
        // A dead endpoint implies an inactive edge, so both ends are
        // alive here; only the link of this one pair changed.
        let (a, b) = (u.min(v), u.max(v));
        let eff = index
            .table()
            .can_affect(index.state_index(a), index.state_index(b), Link::Off);
        self.pairs.set(a, b, eff);
    }

    /// Normalizes the configuration for an adversary decision: dense
    /// state indices plus the active-edge set.
    fn config_snapshot(&self) -> ConfigSnapshot {
        let Effects::Indexed { index, .. } = &self.effects else {
            unreachable!("faulted EventSim always uses the indexed backend")
        };
        let states = (0..self.pop.n()).map(|u| index.state_index(u)).collect();
        ConfigSnapshot::new(states, self.pop.edges().active_edges())
    }

    /// Applies everything due at the current step counter: scheduled
    /// plan events in order, and adversary decisions resolved against
    /// a fresh configuration snapshot.
    fn apply_due_faults(&mut self) {
        loop {
            let due = self
                .faults
                .as_ref()
                .and_then(|fs| fs.due_fault(self.book.steps));
            match due {
                Some(DueFault::Event) => {
                    let resolved = self
                        .faults
                        .as_mut()
                        .expect("due implies a plan")
                        .resolve_next()
                        .expect("due_fault implies a pending event");
                    self.apply_resolved(resolved);
                }
                Some(DueFault::Decision) => {
                    let snap = self.config_snapshot();
                    let damage = self
                        .faults
                        .as_mut()
                        .expect("due implies a plan")
                        .resolve_due_decision(&snap);
                    for resolved in damage {
                        self.apply_resolved(resolved);
                    }
                }
                None => return,
            }
        }
    }

    /// Applies every remaining plan event *now*, regardless of its
    /// scheduled time (see
    /// [`Simulation::apply_faults_now`](crate::Simulation::apply_faults_now)).
    /// Adversary decisions are *not* drained: they are tied to their
    /// decision draws.
    ///
    /// # Panics
    ///
    /// Panics if the engine has no fault plan.
    pub fn apply_faults_now(&mut self) {
        assert!(self.faults.is_some(), "apply_faults_now needs a fault plan");
        loop {
            let Some(resolved) = self.faults.as_mut().and_then(FaultState::resolve_next) else {
                return;
            };
            self.apply_resolved(resolved);
        }
    }

    /// Advances to exactly `target` total steps, applying plan events
    /// at their scheduled times on the way. Stopping at a fault
    /// boundary (or any event time) and resuming is coin-for-coin
    /// identical to running through: `run_to` decomposes the run at
    /// event times either way, and event randomness never touches the
    /// engine RNG.
    ///
    /// # Panics
    ///
    /// Panics if the engine has no fault plan.
    pub fn run_faulted_to(&mut self, target: u64) {
        assert!(self.faults.is_some(), "run_faulted_to needs a fault plan");
        self.apply_due_faults();
        loop {
            let next = self.faults.as_ref().and_then(FaultState::next_at);
            match next {
                Some(at) if at <= target => {
                    self.run_to(at);
                    self.apply_due_faults();
                }
                _ => {
                    self.run_to(target);
                    return;
                }
            }
        }
    }

    /// Runs a faulted execution to stability: plan events at their
    /// scheduled times, then `stable` over (configuration, fault
    /// state) once the plan is exhausted. The predicate is not
    /// consulted while events are pending — a network that looks
    /// stable before its last fault is not stable.
    ///
    /// # Panics
    ///
    /// Panics if the engine has no fault plan.
    pub fn run_faulted_until(
        &mut self,
        mut stable: impl FnMut(&Population<M::State>, &FaultState) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        assert!(self.faults.is_some(), "run_faulted_until needs a fault plan");
        self.apply_due_faults();
        loop {
            let next = self.faults.as_ref().and_then(FaultState::next_at);
            match next {
                Some(at) if at <= max_steps => {
                    self.run_to(at);
                    self.apply_due_faults();
                }
                Some(_) => {
                    self.run_to(max_steps);
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    };
                }
                None => break,
            }
        }
        if stable(&self.pop, self.faults.as_ref().expect("asserted above")) {
            return self.book.stabilized_now();
        }
        loop {
            match self.advance(max_steps) {
                EventStep::Quiescent => {
                    self.book.steps = self.book.steps.max(max_steps);
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    };
                }
                EventStep::BudgetExhausted => {
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    }
                }
                EventStep::Candidate { result, .. } => {
                    if result.is_effective()
                        && stable(&self.pop, self.faults.as_ref().expect("asserted above"))
                    {
                        return self.book.stabilized_now();
                    }
                }
            }
        }
    }

    /// Whether no pair of nodes has any effective interaction — O(1): the
    /// incrementally-maintained possibly-effective set is empty. (Compare
    /// [`Simulation::is_quiescent`](crate::Simulation::is_quiescent)'s
    /// O(n²) fallback scan.)
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether no pair of nodes has an interaction that could change an
    /// edge in the current configuration — O(k) over the
    /// possibly-effective set rather than O(n²) over all pairs.
    #[must_use]
    pub fn is_edge_quiescent(&self) -> bool {
        self.pairs.iter().all(|(u, v)| {
            let link = Link::from(self.pop.edges().is_active(u, v));
            match &self.effects {
                Effects::Scan(_) => {
                    !self
                        .machine
                        .can_affect_edge(self.pop.state(u), self.pop.state(v), link)
                }
                Effects::Indexed { index, .. } => !index.table().can_affect_edge(
                    index.state_index(u),
                    index.state_index(v),
                    link,
                ),
            }
        })
    }

    /// The output graph: active edges restricted to nodes in output
    /// states.
    #[must_use]
    pub fn output_graph(&self) -> netcon_graph::EdgeSet {
        crate::engine::output_graph(&self.machine, &self.pop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProtocolBuilder, RuleProtocol, Simulation};
    use netcon_graph::properties::is_maximum_matching;

    const OFF: Link = Link::Off;
    const ON: Link = Link::On;

    fn matching_protocol() -> RuleProtocol {
        let mut b = ProtocolBuilder::new("matching");
        let a = b.state("a");
        let m = b.state("b");
        b.rule((a, a, OFF), (m, m, ON));
        b.build().expect("valid")
    }

    #[test]
    fn matching_converges_and_quiesces() {
        let mut sim = EventSim::new(matching_protocol(), 20, 123);
        let outcome = sim.run_until_edges(|p| is_maximum_matching(p.edges()), 200_000);
        assert!(outcome.stabilized(), "matching should form: {outcome:?}");
        assert!(sim.is_quiescent());
        assert!(sim.is_edge_quiescent());
        assert_eq!(sim.population().edges().active_count(), 10);
        assert_eq!(sim.effective_steps(), 10);
        assert_eq!(sim.effective_pairs(), 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut sim = EventSim::new(matching_protocol(), 16, seed);
            let out = sim.run_until_edges(|p| is_maximum_matching(p.edges()), 100_000);
            (out, sim.steps(), sim.edge_events())
        };
        assert_eq!(run(9), run(9));
        assert!(run(9).0.stabilized());
    }

    #[test]
    fn indexed_and_scanning_modes_agree_step_for_step() {
        // Same machine, same seed: the two effectiveness backends must
        // produce bit-identical executions (they share the maintenance
        // order and the sampling stream). n = 15 keeps the scanning side
        // on the plain per-pair scan; n = 300 activates the observed-
        // state registry, whose word-parallel rescan must preserve the
        // exact same membership order.
        for n in [15, 300] {
            let mut a = EventSim::new(matching_protocol(), n, 77);
            let mut b = EventSim::new_scanning(matching_protocol(), n, 77);
            loop {
                let (ra, rb) = (a.advance(u64::MAX), b.advance(u64::MAX));
                assert_eq!(ra, rb, "n={n}");
                assert_eq!(a.steps(), b.steps(), "n={n}");
                if ra == EventStep::Quiescent {
                    break;
                }
            }
            assert_eq!(a.population(), b.population(), "n={n}");
        }
    }

    #[test]
    fn scanning_registry_overflow_falls_back_exactly() {
        // 100 distinct live states out of the gate: the 64-slot observed-
        // state registry overflows and the scanning engine must keep the
        // plain-scan behaviour, bit-identical to the indexed mode (which
        // itself exercises the >32-state non-word-parallel rescan here).
        let mut b = ProtocolBuilder::new("many-states");
        let ids: Vec<_> = (0..100).map(|i| b.state(format!("s{i}"))).collect();
        for i in 0..100 {
            b.rule(
                (ids[i], ids[(i + 1) % 100], OFF),
                (ids[(i + 2) % 100], ids[(i + 3) % 100], ON),
            );
        }
        let p = b.build().expect("valid");
        let mut pop = Population::new(300, ids[0]);
        for u in 0..300 {
            pop.set_state(u, ids[u % 100]);
        }
        let mut a = EventSim::from_population(p.clone(), pop.clone(), 42);
        let mut s = EventSim::from_population_scanning(p, pop, 42);
        for _ in 0..200 {
            let (ra, rs) = (a.advance(u64::MAX), s.advance(u64::MAX));
            assert_eq!(ra, rs);
            if ra == EventStep::Quiescent {
                break;
            }
        }
        assert_eq!(a.population(), s.population());
        assert_eq!(a.steps(), s.steps());
    }

    #[test]
    fn compiled_and_interpreted_agree_step_for_step() {
        let p = matching_protocol();
        let mut a = EventSim::new(p.clone(), 15, 31);
        let mut b = EventSim::new(p.compile(), 15, 31);
        loop {
            let (ra, rb) = (a.advance(u64::MAX), b.advance(u64::MAX));
            assert_eq!(ra, rb);
            if ra == EventStep::Quiescent {
                break;
            }
        }
        assert_eq!(a.population().edges(), b.population().edges());
        assert_eq!(a.steps(), b.steps());
    }

    #[test]
    fn budget_is_respected_exactly() {
        let mut sim = EventSim::new(matching_protocol(), 50, 3);
        let out = sim.run_until(|_| false, 1_000);
        assert_eq!(out, RunOutcome::MaxSteps { steps: 1_000 });
        assert_eq!(sim.steps(), 1_000);
    }

    #[test]
    fn run_to_lands_exactly_and_quiescence_jumps() {
        let mut sim = EventSim::new(matching_protocol(), 10, 5);
        sim.run_to(123);
        assert_eq!(sim.steps(), 123);
        // Exhaust the matching, then ask for more steps: the quiescent
        // configuration idles to the target instantly.
        sim.run_until_edges(|p| is_maximum_matching(p.edges()), u64::MAX);
        let done = sim.steps();
        sim.run_to(done + 1_000_000);
        assert_eq!(sim.steps(), done + 1_000_000);
        assert_eq!(sim.effective_steps(), 5);
    }

    #[test]
    fn quiescent_unstable_returns_budget_immediately() {
        // One state, no rules: quiescent from the start, never "stable".
        let mut b = ProtocolBuilder::new("inert");
        let _ = b.state("a");
        let p = b.build().expect("valid");
        let mut sim = EventSim::new(p, 8, 0);
        let out = sim.run_until(|_| false, u64::MAX);
        assert_eq!(out, RunOutcome::MaxSteps { steps: u64::MAX });
    }

    #[test]
    fn quiescence_with_spent_budget_never_rewinds_steps() {
        let mut sim = EventSim::new(matching_protocol(), 10, 5);
        sim.run_until_edges(|p| is_maximum_matching(p.edges()), u64::MAX);
        let done = sim.steps();
        // A later run with a budget below the current counter must be a
        // no-op, not a rewind.
        let out = sim.run_until(|_| false, done / 2);
        assert_eq!(out, RunOutcome::MaxSteps { steps: done });
        assert_eq!(sim.steps(), done);
    }

    #[test]
    fn initial_configuration_can_be_stable() {
        let mut sim = EventSim::new(matching_protocol(), 6, 2);
        let out = sim.run_until(|_| true, 10);
        assert_eq!(
            out,
            RunOutcome::Stabilized {
                detected_at: 0,
                converged_at: 0,
                last_effective: 0
            }
        );
    }

    #[test]
    fn randomized_identity_candidates_count_as_real_steps() {
        // (a, b, 0) → ½ identity, ½ swap: candidates may resolve
        // ineffective, but each consumes exactly one step.
        let mut b = ProtocolBuilder::new("lazy-swap");
        let a = b.state("a");
        let c = b.state("b");
        b.initial(a);
        b.rule_random((a, c, OFF), [(1, (a, c, OFF)), (1, (c, a, OFF))]);
        let p = b.build().expect("valid");
        let mut pop = Population::new(4, a);
        pop.set_state(0, c);
        let mut sim = EventSim::from_population(p, pop, 11);
        let mut saw_ineffective = false;
        for _ in 0..200 {
            match sim.advance(u64::MAX) {
                EventStep::Candidate {
                    result: StepResult::Ineffective { .. },
                    ..
                } => saw_ineffective = true,
                EventStep::Quiescent => panic!("lazy-swap never quiesces"),
                _ => {}
            }
        }
        assert!(saw_ineffective, "identity branch should occur in 200 draws");
        assert!(sim.steps() >= 200);
    }

    #[test]
    fn tracks_naive_engine_on_average() {
        // Cheap smoke check of the exactness argument (the full paired
        // statistical tests live in the workspace-level suite).
        let trials = 60;
        let mean = |event: bool| -> f64 {
            (0..trials)
                .map(|seed| {
                    let stable = |p: &Population<StateId>| is_maximum_matching(p.edges());
                    let out = if event {
                        EventSim::new(matching_protocol(), 12, 1000 + seed)
                            .run_until_edges(stable, u64::MAX)
                    } else {
                        Simulation::new(matching_protocol(), 12, 2000 + seed)
                            .run_until_edges(stable, u64::MAX)
                    };
                    out.converged_at().expect("stabilizes") as f64
                })
                .sum::<f64>()
                / f64::from(trials as u32)
        };
        let (e, n) = (mean(true), mean(false));
        assert!(
            (e - n).abs() / n < 0.35,
            "event {e:.1} vs naive {n:.1} means too far apart"
        );
    }

    use crate::StateId;

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_population_rejected() {
        let _ = EventSim::new(matching_protocol(), 1, 0);
    }

    #[test]
    fn output_graph_respects_output_states() {
        let mut b = ProtocolBuilder::new("half-out");
        let a = b.state("a");
        let m = b.state("b");
        b.rule((a, a, OFF), (m, m, ON));
        b.output_states(&[a]);
        let p = b.build().expect("valid");
        let mut sim = EventSim::new(p, 10, 11);
        sim.run_until_edges(|p| is_maximum_matching(p.edges()), 100_000);
        assert_eq!(sim.output_graph().active_count(), 0);
        assert!(sim.population().edges().active_count() > 0);
    }

    #[test]
    fn fault_bookkeeping_matches_brute_force_recomputation() {
        use crate::fault::{FaultEvent, FaultPlan};
        let plan = FaultPlan::new(5)
            .at(0, FaultEvent::Crash(2))
            .at(30, FaultEvent::Arrive)
            .at(60, FaultEvent::CrashRandom)
            .at(90, FaultEvent::DeleteRandomActiveEdges(1));
        let m = matching_protocol().compile();
        let mut sim = EventSim::new_faulted(m.clone(), 9, 21, plan);
        sim.run_faulted_to(200);
        let fs = sim.fault_state().expect("faulted");
        let pop = sim.population();
        // The maintained candidate set must equal the effective pairs of
        // the final configuration, recomputed from scratch: pairs with a
        // dead endpoint are certainly ineffective (their edges are gone
        // and their states frozen), everything else follows the table.
        let table = m.effect_table();
        let mut expected = 0;
        for u in 0..pop.n() {
            for v in u + 1..pop.n() {
                if fs.is_alive(u)
                    && fs.is_alive(v)
                    && table.can_affect(
                        m.state_index(pop.state(u)),
                        m.state_index(pop.state(v)),
                        Link::from(pop.edges().is_active(u, v)),
                    )
                {
                    expected += 1;
                }
            }
        }
        assert_eq!(sim.effective_pairs(), expected);
        for u in 0..pop.n() {
            if !fs.is_alive(u) {
                assert_eq!(pop.edges().degree(u), 0, "ghost {u} kept an edge");
            }
        }
    }
}
