//! Deterministic seed derivation for reproducible experiments.
//!
//! Every simulation is driven by a single `u64` seed. Sweeps that run many
//! trials derive statistically independent per-trial seeds from a base
//! seed with SplitMix64, so experiment outputs are reproducible yet
//! uncorrelated across trials.

/// One step of the SplitMix64 generator: maps `x` to a well-mixed 64-bit
/// value. This is the finalizer recommended for seeding Xoshiro-family
/// generators (which back `SmallRng`).
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives the seed for trial `stream` of an experiment with base seed
/// `base`.
///
/// # Example
///
/// ```
/// use netcon_core::seeds::derive;
///
/// let a = derive(42, 0);
/// let b = derive(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive(42, 0), "derivation is deterministic");
/// ```
#[must_use]
pub fn derive(base: u64, stream: u64) -> u64 {
    splitmix64(base ^ splitmix64(stream.wrapping_add(0xA076_1D64_78BD_642F)))
}

/// Derives the seed for a trial addressed by two stream coordinates —
/// the canonical derivation for two-dimensional sweeps (population size
/// × trial index), shared by `netcon-analysis` and the bench harness.
///
/// Equivalent to chaining [`derive`](fn@derive): the first coordinate re-keys the
/// base, the second selects the stream.
///
/// # Example
///
/// ```
/// use netcon_core::seeds::derive2;
///
/// assert_eq!(derive2(42, 64, 3), derive2(42, 64, 3));
/// assert_ne!(derive2(42, 64, 3), derive2(42, 64, 4));
/// assert_ne!(derive2(42, 64, 3), derive2(42, 32, 3));
/// ```
#[must_use]
pub fn derive2(base: u64, s1: u64, s2: u64) -> u64 {
    derive(derive(base, s1), s2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..1000u64 {
            assert!(seen.insert(derive(7, s)), "collision at stream {s}");
        }
    }

    #[test]
    fn different_bases_decorrelate() {
        assert_ne!(derive(1, 0), derive(2, 0));
    }

    #[test]
    fn two_coordinate_derivation_has_no_cheap_collisions() {
        let mut seen = std::collections::HashSet::new();
        for s1 in 0..40u64 {
            for s2 in 0..40u64 {
                assert!(seen.insert(derive2(7, s1, s2)), "collision at ({s1}, {s2})");
            }
        }
    }
}
