//! Interaction schedulers.
//!
//! The model's adversary picks one unordered pair of processes per step.
//! For running-time analysis the paper fixes the *uniform random
//! scheduler*, which picks each of the `n(n−1)/2` pairs independently and
//! uniformly (and is fair with probability 1). The deterministic
//! schedulers here are fair in the weaker "every pair infinitely often"
//! sense and are used to exercise protocol correctness under adversarial
//! but non-random interaction patterns.

use rand::{Rng, RngExt};

/// A source of pairwise interactions.
pub trait Scheduler {
    /// Returns the next interacting pair `(u, v)`, `u != v`, both `< n`.
    ///
    /// `rng` is the simulation's generator; deterministic schedulers
    /// ignore it.
    fn next_pair(&mut self, n: usize, rng: &mut dyn Rng) -> (usize, usize);

    /// A display name for reports.
    fn name(&self) -> &'static str;
}

/// The uniform random scheduler (§3.1): every step selects one of the
/// `n(n−1)/2` pairs independently and uniformly at random.
///
/// # Example
///
/// ```
/// use netcon_core::{Scheduler, Uniform};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(3);
/// let (u, v) = Uniform.next_pair(10, &mut rng);
/// assert!(u != v && u < 10 && v < 10);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Uniform;

impl Scheduler for Uniform {
    fn next_pair(&mut self, n: usize, rng: &mut dyn Rng) -> (usize, usize) {
        debug_assert!(n >= 2, "interactions need at least two processes");
        let u = rng.random_range(0..n);
        let mut v = rng.random_range(0..n - 1);
        if v >= u {
            v += 1;
        }
        (u, v)
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// A deterministic fair scheduler that cycles through all pairs in
/// lexicographic order: `(0,1), (0,2), …, (n−2,n−1), (0,1), …`.
///
/// Every pair occurs once per `n(n−1)/2` steps, so every pair occurs
/// infinitely often. Note this is *weak* fairness: it does not satisfy the
/// paper's configuration-based fairness condition in general, but it is a
/// legitimate adversary for protocols whose correctness argument only
/// needs every pair to keep interacting.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: Option<(usize, usize)>,
}

impl RoundRobin {
    /// Creates the scheduler, starting from pair `(0, 1)`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn next_pair(&mut self, n: usize, _rng: &mut dyn Rng) -> (usize, usize) {
        debug_assert!(n >= 2, "interactions need at least two processes");
        let (u, v) = match self.next {
            Some(p) if p.1 < n => p,
            _ => (0, 1),
        };
        // Advance lexicographically.
        self.next = Some(if v + 1 < n {
            (u, v + 1)
        } else if u + 2 < n {
            (u + 1, u + 2)
        } else {
            (0, 1)
        });
        (u, v)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// A fair randomized scheduler that plays every pair exactly once per
/// round, in a fresh random order each round (a random-permutation "box"
/// schedule).
///
/// Compared with [`Uniform`] it removes the coupon-collector slack inside
/// a round while keeping long-run statistics uniform, which makes it a
/// useful robustness check: a protocol whose correctness silently relied
/// on the uniform scheduler's independence tends to misbehave here.
///
/// For measurement (rather than adversarial stepping), prefer
/// [`RoundSim`](crate::RoundSim): it reproduces this scheduler's output
/// distribution exactly — including round-denominated convergence
/// times — while skipping the ineffective bulk of every round.
#[derive(Debug, Clone, Default)]
pub struct ShuffledRounds {
    order: Vec<(u32, u32)>,
    pos: usize,
}

impl ShuffledRounds {
    /// Creates the scheduler; the first round is shuffled on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for ShuffledRounds {
    fn next_pair(&mut self, n: usize, rng: &mut dyn Rng) -> (usize, usize) {
        debug_assert!(n >= 2, "interactions need at least two processes");
        let m = n * (n - 1) / 2;
        if self.order.len() != m {
            self.order.clear();
            for u in 0..n {
                for v in (u + 1)..n {
                    self.order.push((u as u32, v as u32));
                }
            }
            self.pos = 0;
        }
        if self.pos == 0 {
            // Fisher–Yates over the whole round.
            for i in (1..m).rev() {
                let j = rng.random_range(0..=i);
                self.order.swap(i, j);
            }
        }
        let (u, v) = self.order[self.pos];
        self.pos = (self.pos + 1) % m;
        (u as usize, v as usize)
    }

    fn name(&self) -> &'static str {
        "shuffled-rounds"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn collect_pairs<S: Scheduler>(mut s: S, n: usize, steps: usize) -> Vec<(usize, usize)> {
        let mut rng = SmallRng::seed_from_u64(0);
        (0..steps).map(|_| s.next_pair(n, &mut rng)).collect()
    }

    #[test]
    fn uniform_pairs_are_valid_and_cover() {
        let pairs = collect_pairs(Uniform, 6, 2000);
        let mut seen = std::collections::HashSet::new();
        for (u, v) in pairs {
            assert!(u != v && u < 6 && v < 6);
            seen.insert((u.min(v), u.max(v)));
        }
        assert_eq!(seen.len(), 15, "all pairs should occur in 2000 draws");
    }

    #[test]
    fn uniform_is_unbiased_over_pairs() {
        let n = 5;
        let m = 10;
        let mut counts = vec![0usize; m];
        let mut rng = SmallRng::seed_from_u64(7);
        let mut s = Uniform;
        let trials = 40_000;
        let es = netcon_graph::EdgeSet::new(n);
        for _ in 0..trials {
            let (u, v) = s.next_pair(n, &mut rng);
            counts[es.pair_index(u, v)] += 1;
        }
        let expect = trials as f64 / m as f64;
        for c in counts {
            assert!(
                (c as f64 - expect).abs() < 5.0 * expect.sqrt(),
                "pair count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn round_robin_covers_each_round() {
        let n = 5;
        let m = n * (n - 1) / 2;
        let pairs = collect_pairs(RoundRobin::new(), n, 2 * m);
        let first: std::collections::HashSet<_> = pairs[..m].iter().copied().collect();
        assert_eq!(first.len(), m);
        assert_eq!(&pairs[..m], &pairs[m..], "rounds repeat identically");
    }

    #[test]
    fn shuffled_rounds_cover_each_round() {
        let n = 6;
        let m = n * (n - 1) / 2;
        let pairs = collect_pairs(ShuffledRounds::new(), n, 3 * m);
        for round in pairs.chunks(m) {
            let distinct: std::collections::HashSet<_> = round.iter().copied().collect();
            assert_eq!(distinct.len(), m, "each round is a permutation of all pairs");
        }
    }

    #[test]
    fn round_robin_adapts_to_population_size() {
        // If n changes between calls the scheduler restarts cleanly.
        let mut s = RoundRobin::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = s.next_pair(10, &mut rng);
        let (u, v) = s.next_pair(2, &mut rng);
        assert!(u < 2 && v < 2 && u != v);
    }
}
