//! The exact event-driven ShuffledRounds engine: skip the ineffective
//! part of every round, simulate only the draws that can matter.
//!
//! [`ShuffledRounds`](crate::ShuffledRounds) plays every pair exactly
//! once per round, in a fresh uniform permutation each round — the
//! round-based regime in which parallel time is measured in *rounds*
//! rather than draws. The naive [`Simulation`](crate::Simulation)
//! realizes each round draw by draw (Θ(n²) per round, almost all of it
//! ineffective); [`RoundSim`] reproduces the same distribution while
//! paying only for the effective interactions plus O(n) maintenance each,
//! like [`EventSim`](crate::EventSim) does for the uniform scheduler.
//!
//! # Exactness
//!
//! Drawing without replacement makes the uniform scheduler's geometric
//! skip law inapplicable; two ideas replace it.
//!
//! 1. **Hypergeometric skips.** Mid-round, the rest of the round is a
//!    uniform permutation of the `r` not-yet-scheduled pairs, `k` of
//!    which are *candidates* (pairs whose states and link admit an
//!    effective transition — states are frozen during ineffective draws,
//!    so `k` is constant between candidates). The number of draws before
//!    the next candidate is negative hypergeometric —
//!    `P(skips ≥ t) = ∏_{i<t} (r−k−i)/(r−i)` — sampled in one inversion
//!    draw by [`hypergeometric_skip`], and
//!    the candidate itself is uniform among the `k` (independent of the
//!    skip count, by permutation symmetry). When `k = 0` the rest of the
//!    round is certainly ineffective and is consumed in one jump.
//! 2. **Lazy identities.** Unlike the i.i.d. case, the *identities* of
//!    skipped pairs matter: a pair already scheduled this round cannot
//!    recur until the next round. Materializing them would cost Θ(n²)
//!    per round again, so the engine keeps them latent: unscheduled
//!    pairs are partitioned into the candidate set `A` (exact
//!    [`PairSet`]), the *resolved* ineffective set `B` (pairs whose
//!    effectiveness changed at some point this round — only pairs
//!    incident to an applied interaction, O(n) per effective step), and
//!    an anonymous pool `U` of never-touched ineffective pairs tracked
//!    only by counts (`u_count` members, `u_rem` unscheduled). A skip
//!    batch of `t` draws splits between `B` and `U` by the
//!    hypergeometric count law
//!    ([`hypergeometric_count`]); the `B`
//!    casualties are removed uniformly (they are exchangeable), the `U`
//!    casualties just decrement `u_rem`. When a pool pair later turns
//!    effective, its scheduled-or-not status is *resolved on demand* by
//!    one urn draw — `P(still unscheduled) = u_rem / u_count` — which is
//!    exact because the scheduled subset of `U` is uniform (each batch
//!    drew uniformly without replacement, and members of `U` are
//!    indistinguishable by construction: all of them have been
//!    ineffective at every draw so far this round).
//!
//! Conditioned on the history visible to the naive engine (the applied
//! interactions and their positions), every quantity the engine samples —
//! skip counts, candidate identities, batch splits, urn resolutions — has
//! exactly the conditional law of the uniform-permutation rounds, so
//! `steps`, `effective_steps`, `edge_events`, `converged_at` (in draws
//! *and* in rounds) and the full configuration process are
//! **distribution-identical** to `Simulation` under
//! [`ShuffledRounds`](crate::ShuffledRounds), up to f64 rounding of the
//! inversion draws. The paired statistical checks live in
//! `tests/engine_equivalence.rs`; `docs/engines.md` consolidates the
//! argument.
//!
//! The effective set itself is maintained by the same
//! `Bookkeeping`/`EffectIndex` machinery as `EventSim` (word-parallel
//! desired-row rescans); reclassification rides the XOR diff of the two
//! touched [`PairSet`] rows. Pairs are presented to `interact` as
//! `(min, max)` — the order the naive scheduler uses — which is why the
//! engine, like [`BucketSim`](crate::BucketSim), requires `can_affect`
//! to be symmetric in its node arguments.
//!
//! Memory: three dense [`PairSet`]s (candidates, resolved-ineffective,
//! and the shared effective index) plus a scheduled-pair bitset —
//! ≈ `13n²` bytes, about 3× [`EventSim`](crate::EventSim)
//! ([`RoundSim::dense_mem_estimate`] is the a-priori figure the engine
//! selector weighs). Beyond the budget,
//! [`Engine::auto_for`](crate::Engine::auto_for) switches to
//! [`RoundBucketSim`](crate::RoundBucketSim), the sparse exact engine
//! that plays the same round law in O(n + |Q|²) memory.

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::compiled::EnumerableMachine;
use crate::engine::{
    apply_desired_row, hypergeometric_count, hypergeometric_skip, unit_open01, Bookkeeping,
    EffectIndex, PairSet,
};
use crate::event::EventStep;
use crate::fault::adversary::ConfigSnapshot;
use crate::fault::{sample_without_replacement, DueFault, FaultPlan, FaultState, ResolvedFault};
use crate::sim::{RunOutcome, StepResult};
use crate::{Link, Population};

/// Monomorphic indexed-interaction entry point captured from
/// [`EnumerableMachine::interact_indexed`] at construction.
type InteractFn<M> = fn(&M, usize, usize, Link, &mut SmallRng) -> Option<(usize, usize, Link)>;

/// Membership bitset over unordered pairs (one canonical bit per pair)
/// plus a member list for O(members) clearing: the round's
/// known-scheduled set, which only ever needs insert / contains / clear.
#[derive(Debug, Clone)]
struct SchedSet {
    row_words: usize,
    bits: Vec<u64>,
    members: Vec<u32>,
}

impl SchedSet {
    fn new(n: usize) -> Self {
        let row_words = n.div_ceil(64);
        Self {
            row_words,
            bits: vec![0; n * row_words],
            members: Vec::new(),
        }
    }

    fn contains(&self, u: usize, v: usize) -> bool {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.bits[a * self.row_words + b / 64] >> (b % 64) & 1 == 1
    }

    fn insert(&mut self, u: usize, v: usize) {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        debug_assert!(!self.contains(a, b));
        self.bits[a * self.row_words + b / 64] |= 1u64 << (b % 64);
        self.members.push((a as u32) << 16 | b as u32);
    }

    fn clear(&mut self) {
        for &packed in &self.members {
            let (a, b) = ((packed >> 16) as usize, (packed & 0xFFFF) as usize);
            self.bits[a * self.row_words + b / 64] &= !(1u64 << (b % 64));
        }
        self.members.clear();
    }

    fn approx_mem_bytes(&self) -> u64 {
        (self.bits.capacity() * 8 + self.members.capacity() * 4) as u64
    }
}

/// An event-driven execution of a machine on a population under the
/// [`ShuffledRounds`](crate::ShuffledRounds) scheduler.
///
/// Mirrors the [`EventSim`](crate::EventSim) API — [`advance`] returns
/// the same [`EventStep`], `run_until` / `run_until_edges` / `run_to`
/// have the same semantics — with identical output distribution to
/// [`Simulation`](crate::Simulation) under `ShuffledRounds` (see the
/// [module docs](self) for the exactness argument), plus round-level
/// bookkeeping: [`rounds_completed`](Self::rounds_completed),
/// [`round_of`](Self::round_of), and
/// [`last_output_change_round`](Self::last_output_change_round) measure
/// parallel time in rounds of `n(n−1)/2` draws.
///
/// [`advance`]: Self::advance
///
/// # Example
///
/// ```
/// use netcon_core::{Link, ProtocolBuilder, RoundSim};
/// use netcon_graph::properties::is_maximum_matching;
///
/// let mut b = ProtocolBuilder::new("matching");
/// let a = b.state("a");
/// let m = b.state("b");
/// b.rule((a, a, Link::Off), (m, m, Link::On));
/// let protocol = b.build()?;
///
/// let mut sim = RoundSim::new(protocol, 30, 1);
/// let outcome = sim.run_until(|p| is_maximum_matching(p.edges()), 1_000_000);
/// assert!(outcome.stabilized());
/// // Every pair occurs once per round, so the matching completes in
/// // round 1: any two still-unmatched nodes would have matched when
/// // their pair came up.
/// assert_eq!(sim.last_output_change_round(), 1);
/// assert!(sim.is_quiescent());
/// # Ok::<(), netcon_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RoundSim<M: EnumerableMachine> {
    machine: M,
    pop: Population<M::State>,
    rng: SmallRng,
    book: Bookkeeping,
    /// The exact effective set `E` for the current configuration,
    /// maintained by the shared [`EffectIndex`].
    pairs: PairSet,
    index: EffectIndex<M>,
    interact: InteractFn<M>,
    state_at: fn(&M, usize) -> M::State,
    /// `A`: effective and not yet scheduled this round.
    cand: PairSet,
    /// `B`: resolved, currently ineffective, not yet scheduled.
    ineff_rem: PairSet,
    /// `D`: resolved and scheduled this round.
    sched: SchedSet,
    /// Members of the anonymous pool `U` (resolved-nothing pairs).
    u_count: u64,
    /// Unscheduled members of `U`.
    u_rem: u64,
    /// Pairs per round, `n(n−1)/2`.
    m: u64,
    /// Scratch copies of the two touched `pairs` rows (pre-interaction),
    /// diffed against the updated rows to find reclassification work.
    old_row_u: Vec<u64>,
    old_row_v: Vec<u64>,
    faults: Option<FaultState>,
}

impl<M: EnumerableMachine> RoundSim<M> {
    /// Creates an event-driven ShuffledRounds simulation of `machine` on
    /// `n` nodes in the initial configuration, reproducible from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `n > 65535` (dense pair ids are `u16`), the
    /// machine has more than 65536 states, or the machine's `can_affect`
    /// is not symmetric in its node arguments (a
    /// [`Machine`](crate::Machine) contract violation; the scheduler
    /// presents pairs in a fixed node order).
    ///
    /// # Example
    ///
    /// ```
    /// use netcon_core::{Link, ProtocolBuilder, RoundSim};
    /// let mut b = ProtocolBuilder::new("pairing");
    /// let a = b.state("a");
    /// let p = b.state("b");
    /// b.rule((a, a, Link::Off), (p, p, Link::On));
    /// let sim = RoundSim::new(b.build()?.compile(), 16, 7);
    /// assert_eq!(sim.steps(), 0);
    /// assert_eq!(sim.pairs_per_round(), 16 * 15 / 2);
    /// # Ok::<(), netcon_core::ProtocolError>(())
    /// ```
    #[must_use]
    pub fn new(machine: M, n: usize, seed: u64) -> Self {
        let pop = Population::new(n, machine.initial_state());
        Self::from_population(machine, pop, seed)
    }

    /// Creates an event-driven ShuffledRounds simulation from an explicit
    /// configuration (one O(n²) effectiveness scan).
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new).
    #[must_use]
    pub fn from_population(machine: M, pop: Population<M::State>, seed: u64) -> Self {
        let n = pop.n();
        assert!(n >= 2, "pairwise interactions need at least 2 processes");
        assert!(
            machine.num_states() <= usize::from(u16::MAX) + 1,
            "RoundSim's dense index is u16: more than 65536 states"
        );
        let table = machine.effect_table();
        assert!(
            table.is_symmetric(),
            "RoundSim requires can_affect to be symmetric in its node arguments"
        );
        let (index, pairs) =
            EffectIndex::build(&machine, &pop, table, |m: &M, s: &M::State| m.state_index(s));
        let m = (n as u64) * (n as u64 - 1) / 2;
        let row_words = n.div_ceil(64);
        let mut sim = Self {
            machine,
            pop,
            rng: SmallRng::seed_from_u64(seed),
            book: Bookkeeping::default(),
            pairs,
            index,
            interact: |m: &M, a, b, link, rng: &mut SmallRng| m.interact_indexed(a, b, link, rng),
            state_at: |m: &M, i: usize| m.state_at(i),
            cand: PairSet::new(n),
            ineff_rem: PairSet::new(n),
            sched: SchedSet::new(n),
            u_count: 0,
            u_rem: 0,
            m,
            old_row_u: vec![0; row_words],
            old_row_v: vec![0; row_words],
            faults: None,
        };
        sim.reset_round();
        sim
    }

    /// Creates a faulted ShuffledRounds simulation: `n` live nodes plus
    /// one *ghost* slot per planned arrival, sharing the fault semantics
    /// of [`Simulation::new_faulted`](crate::Simulation::new_faulted).
    /// The round length is fixed at `capacity·(capacity−1)/2`: ghost
    /// pairs stay in the anonymous ineffective pool, so every skip law
    /// and the round-denominated statistics match the naive
    /// ShuffledRounds loop under the identical [`FaultPlan`].
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new) (with the capacity in place of `n`).
    #[must_use]
    pub fn new_faulted(machine: M, n: usize, seed: u64, plan: FaultPlan) -> Self {
        assert!(n >= 2, "pairwise interactions need at least 2 processes");
        let fs = FaultState::new(plan, n);
        let mut sim = Self::new(machine, fs.capacity(), seed);
        // Detach the ghost rows from the effective set, then rebuild the
        // round partition from the corrected set (steps is still 0).
        let zeros = vec![0u64; sim.old_row_u.len()];
        for ghost in n..fs.capacity() {
            sim.index.set_absent(ghost);
            apply_desired_row(&mut sim.pairs, ghost, &zeros);
        }
        sim.reset_round();
        sim.faults = Some(fs);
        sim
    }

    /// The fault state, if this engine was built with a [`FaultPlan`].
    #[must_use]
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// The current configuration.
    #[must_use]
    pub fn population(&self) -> &Population<M::State> {
        &self.pop
    }

    /// The machine being executed.
    #[must_use]
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Steps taken so far (including skipped ineffective draws).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.book.steps
    }

    /// Effective interactions so far.
    #[must_use]
    pub fn effective_steps(&self) -> u64 {
        self.book.effective_steps
    }

    /// Edge activations/deactivations so far.
    #[must_use]
    pub fn edge_events(&self) -> u64 {
        self.book.edge_events
    }

    /// The step of the most recent edge change (0 if none yet).
    #[must_use]
    pub fn last_output_change(&self) -> u64 {
        self.book.last_output_change
    }

    /// The step of the most recent effective interaction (0 if none yet).
    #[must_use]
    pub fn last_effective(&self) -> u64 {
        self.book.last_effective
    }

    /// The number of scheduler draws in one round: every unordered pair
    /// exactly once, `n(n−1)/2`.
    #[must_use]
    pub fn pairs_per_round(&self) -> u64 {
        self.m
    }

    /// Rounds completed so far, `steps / pairs_per_round()`.
    #[must_use]
    pub fn rounds_completed(&self) -> u64 {
        self.book.steps / self.m
    }

    /// The 1-based round containing draw `step` (0 for `step = 0`): the
    /// round-denominated reading of any step statistic.
    #[must_use]
    pub fn round_of(&self, step: u64) -> u64 {
        step.div_ceil(self.m)
    }

    /// The round of the most recent edge change — `converged_at` in
    /// rounds once a run stabilizes (0 if no edge ever changed).
    #[must_use]
    pub fn last_output_change_round(&self) -> u64 {
        self.round_of(self.book.last_output_change)
    }

    /// The round of the most recent effective interaction (0 if none).
    #[must_use]
    pub fn last_effective_round(&self) -> u64 {
        self.round_of(self.book.last_effective)
    }

    /// The number of currently effective pairs (scheduled or not).
    #[must_use]
    pub fn effective_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// The number of effective pairs not yet scheduled this round — the
    /// `hits` side of the next hypergeometric skip.
    #[must_use]
    pub fn unscheduled_candidates(&self) -> usize {
        self.cand.len()
    }

    /// Whether the round partition accounts for every unscheduled pair:
    /// `|A| + |B| + u_rem = m − steps mod m` (candidates, resolved
    /// ineffective, anonymous pool). Interactions and fault events must
    /// all preserve this; the mutation-bookkeeping proptests check it
    /// after every fault.
    #[must_use]
    pub fn pool_invariant_holds(&self) -> bool {
        self.cand.len() as u64 + self.ineff_rem.len() as u64 + self.u_rem
            == self.m - self.book.steps % self.m
    }

    /// Bytes of heap memory held by the engine: the effective index and
    /// its pair set, the two round-bookkeeping pair sets, the scheduled
    /// bitset, the dense edge set, and the node states. Heap payloads
    /// *inside* composite states are not counted.
    #[must_use]
    pub fn approx_mem_bytes(&self) -> u64 {
        let states = (self.pop.n() * std::mem::size_of::<M::State>()) as u64;
        self.pairs.approx_mem_bytes()
            + self.cand.approx_mem_bytes()
            + self.ineff_rem.approx_mem_bytes()
            + self.sched.approx_mem_bytes()
            + self.pop.edges().approx_mem_bytes()
            + states
            + self.index.approx_mem_bytes()
            + ((self.old_row_u.capacity() + self.old_row_v.capacity()) * 8) as u64
    }

    /// A priori estimate of [`approx_mem_bytes`](Self::approx_mem_bytes)
    /// for a fresh engine on `n` nodes — what
    /// [`Engine::auto_for`](crate::Engine::auto_for) weighs against its
    /// memory budget. Three dense pair sets (`4n²` position matrix plus
    /// `n²/8` bitset each), the scheduled bitset (`n²/8`), and the edge
    /// set (`3n²/16`): ≈ 3× the [`EventSim`](crate::EventSim) estimate.
    #[must_use]
    pub fn dense_mem_estimate(n: usize) -> u64 {
        let n = n as u64;
        3 * (4 * n * n + n * n / 8) + n * n / 8 + 3 * n * n / 16 + 32 * n
    }

    /// Whether no pair of nodes has any effective interaction — O(1):
    /// the incrementally-maintained effective set is empty. Quiescence is
    /// scheduler-independent, so this is the same predicate as
    /// [`EventSim::is_quiescent`](crate::EventSim::is_quiescent).
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The output graph: active edges restricted to nodes in output
    /// states.
    #[must_use]
    pub fn output_graph(&self) -> netcon_graph::EdgeSet {
        crate::engine::output_graph(&self.machine, &self.pop)
    }

    /// Starts a fresh round: every pair is unscheduled again, so the
    /// candidate set is exactly the effective set and the anonymous pool
    /// is its complement.
    fn reset_round(&mut self) {
        debug_assert_eq!(self.book.steps % self.m, 0);
        self.cand.clear();
        self.ineff_rem.clear();
        self.sched.clear();
        for (u, v) in self.pairs.iter() {
            self.cand.set(u, v, true);
        }
        self.u_count = self.m - self.pairs.len() as u64;
        self.u_rem = self.u_count;
    }

    /// Accounts for `t` skipped ineffective draws: splits them between
    /// the resolved ineffective set and the anonymous pool by the
    /// hypergeometric count law, removing the resolved casualties
    /// uniformly (exchangeable) and decrementing the pool's unscheduled
    /// count for the rest.
    fn schedule_skips(&mut self, t: u64) {
        if t == 0 {
            return;
        }
        let b = self.ineff_rem.len() as u64;
        debug_assert!(t <= b + self.u_rem);
        let from_b = if b == 0 {
            0
        } else if t == b + self.u_rem {
            b
        } else {
            hypergeometric_count(unit_open01(self.rng.next_u64()), b, b + self.u_rem, t)
        };
        for _ in 0..from_b {
            let i = self.rng.random_range(0..self.ineff_rem.len());
            let (u, v) = self.ineff_rem.get(i);
            self.ineff_rem.set(u, v, false);
            self.sched.insert(u, v);
        }
        self.u_rem -= t - from_b;
    }

    /// Reclassifies pair `{a, w}` after its effectiveness flipped to
    /// `now_eff`. Scheduled pairs are frozen until the round resets;
    /// anonymous-pool pairs are resolved by the urn draw.
    fn reclass_pair(&mut self, a: usize, w: usize, now_eff: bool) {
        if self.sched.contains(a, w) {
            return;
        }
        if now_eff {
            if self.ineff_rem.contains(a, w) {
                self.ineff_rem.set(a, w, false);
                self.cand.set(a, w, true);
            } else {
                // Fresh out of the anonymous pool: scheduled-or-not is
                // settled now. The scheduled subset of the pool is
                // uniform, so the marginal is u_rem / u_count.
                debug_assert!(self.u_count > 0);
                let unscheduled = self.rng.random_range(0..self.u_count) < self.u_rem;
                self.u_count -= 1;
                if unscheduled {
                    self.u_rem -= 1;
                    self.cand.set(a, w, true);
                } else {
                    self.sched.insert(a, w);
                }
            }
        } else {
            // An unscheduled pair can only lose effectiveness out of the
            // candidate set (effective pairs are never anonymous).
            debug_assert!(self.cand.contains(a, w));
            self.cand.set(a, w, false);
            self.ineff_rem.set(a, w, true);
        }
    }

    /// Walks the XOR diff of node `a`'s effective-set row against its
    /// pre-interaction copy, reclassifying every flipped pair. `skip`
    /// masks out the partner handled by the other row.
    fn reclass_row(&mut self, a: usize, old: &[u64], skip: Option<usize>) {
        for word in 0..old.len() {
            let mut changed = old[word] ^ self.pairs.row_bits(a)[word];
            if let Some(s) = skip {
                if s / 64 == word {
                    changed &= !(1u64 << (s % 64));
                }
            }
            while changed != 0 {
                let bit = changed.trailing_zeros() as usize;
                changed &= changed - 1;
                let w = word * 64 + bit;
                let now_eff = self.pairs.contains(a, w);
                self.reclass_pair(a, w, now_eff);
            }
        }
    }

    /// Fast-forwards a certainly-quiescent engine to `target` total steps
    /// while keeping the round partition exact, so a later fault (an
    /// arrival can revive a quiescent network) resumes correctly. Within
    /// the current round the skipped draws are split by the usual
    /// hypergeometric law; crossing a round boundary discards every
    /// resolved identity, and the landing round has all pairs anonymous
    /// with a uniformly-scheduled `pos`-subset — exact because no pair
    /// of the fresh round has been resolved.
    fn jump_quiescent_to(&mut self, target: u64) {
        debug_assert!(self.pairs.is_empty());
        let remaining = self.m - self.book.steps % self.m;
        if target - self.book.steps < remaining {
            self.schedule_skips(target - self.book.steps);
            self.book.steps = target;
            return;
        }
        self.book.steps = target;
        self.cand.clear();
        self.ineff_rem.clear();
        self.sched.clear();
        self.u_count = self.m;
        self.u_rem = self.m - target % self.m;
    }

    /// Skips the hypergeometric number of ineffective draws and simulates
    /// the next candidate interaction, without letting the step counter
    /// pass `max_steps` — the same contract as
    /// [`EventSim::advance`](crate::EventSim::advance).
    pub fn advance(&mut self, max_steps: u64) -> EventStep {
        if self.pairs.is_empty() {
            return EventStep::Quiescent;
        }
        loop {
            let remaining_budget = max_steps.saturating_sub(self.book.steps);
            if remaining_budget == 0 {
                return EventStep::BudgetExhausted;
            }
            let pos = self.book.steps % self.m;
            let r = self.m - pos;
            let k = self.cand.len() as u64;
            if k == 0 {
                // Every effective pair is already scheduled: the rest of
                // the round is certainly ineffective. When the budget
                // reaches (or passes) the round boundary, take the whole
                // round without resolving identities — `reset_round`
                // would discard them anyway, and drawing them here would
                // desynchronize the coin stream between a straight run
                // and one stopped exactly on the boundary.
                if r <= remaining_budget {
                    self.book.steps += r;
                    self.reset_round();
                    if self.book.steps == max_steps {
                        return EventStep::BudgetExhausted;
                    }
                    continue;
                }
                self.schedule_skips(remaining_budget);
                self.book.steps = max_steps;
                return EventStep::BudgetExhausted;
            }
            let skipped = hypergeometric_skip(unit_open01(self.rng.next_u64()), r, k);
            if skipped >= remaining_budget {
                // The candidate lands past the budget; everything up to
                // it is ineffective, and the skip law's self-similarity
                // under truncation makes a later resume exact.
                self.schedule_skips(remaining_budget);
                self.book.steps = max_steps;
                return EventStep::BudgetExhausted;
            }
            self.schedule_skips(skipped);
            self.book.steps += skipped + 1;
            return self.apply_candidate(skipped);
        }
    }

    /// Draws the candidate uniformly, schedules it, and simulates its
    /// interaction with real coins.
    fn apply_candidate(&mut self, skipped: u64) -> EventStep {
        let i = self.rng.random_range(0..self.cand.len());
        // PairSet members are stored (min, max) — the node order the
        // naive ShuffledRounds scheduler presents.
        let (u, v) = self.cand.get(i);
        self.cand.set(u, v, false);
        self.sched.insert(u, v);
        let pair = (u, v);
        let link = Link::from(self.pop.edges().is_active(u, v));
        let outcome = (self.interact)(
            &self.machine,
            self.index.state_index(u),
            self.index.state_index(v),
            link,
            &mut self.rng,
        );
        let Some((a2, b2, l2)) = outcome else {
            // A randomized rule sampled the identity: one real step, no
            // change — but the pair has consumed its occurrence this
            // round.
            if self.book.steps.is_multiple_of(self.m) {
                self.reset_round();
            }
            return EventStep::Candidate {
                skipped,
                result: StepResult::Ineffective { pair },
            };
        };
        let edge_changed = l2 != link;
        if edge_changed {
            self.pop.edges_mut().set(u, v, l2.is_on());
        }
        self.pop
            .set_state(u, (self.state_at)(&self.machine, a2));
        self.pop
            .set_state(v, (self.state_at)(&self.machine, b2));
        self.book.record_effective(edge_changed);
        // Snapshot the two touched effective-set rows, let the shared
        // index rescan them, then reclassify exactly the flipped pairs.
        self.old_row_u.copy_from_slice(self.pairs.row_bits(u));
        self.old_row_v.copy_from_slice(self.pairs.row_bits(v));
        self.index
            .on_interaction(&self.machine, &self.pop, &mut self.pairs, u, v);
        if self.book.steps.is_multiple_of(self.m) {
            // The candidate was the round's last draw; the next round
            // rebuilds everything from the effective set anyway.
            self.reset_round();
        } else {
            let old_u = std::mem::take(&mut self.old_row_u);
            let old_v = std::mem::take(&mut self.old_row_v);
            self.reclass_row(u, &old_u, None);
            self.reclass_row(v, &old_v, Some(u));
            self.old_row_u = old_u;
            self.old_row_v = old_v;
        }
        EventStep::Candidate {
            skipped,
            result: StepResult::Effective { pair, edge_changed },
        }
    }

    /// Runs until `stable` holds or `max_steps` total steps have elapsed —
    /// the ShuffledRounds counterpart of
    /// [`EventSim::run_until`](crate::EventSim::run_until), with the same
    /// predicate-evaluation points (initially and after every effective
    /// interaction) and the same outcome distribution as the naive loop.
    ///
    /// If the configuration quiesces while `stable` is false, the naive
    /// engine would idle through the rest of the budget; this engine
    /// reports the exhausted budget immediately.
    pub fn run_until(
        &mut self,
        mut stable: impl FnMut(&Population<M::State>) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        if stable(&self.pop) {
            return self.book.stabilized_now();
        }
        loop {
            match self.advance(max_steps) {
                EventStep::Quiescent => {
                    if max_steps > self.book.steps {
                        self.jump_quiescent_to(max_steps);
                    }
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    };
                }
                EventStep::BudgetExhausted => {
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    }
                }
                EventStep::Candidate { result, .. } => {
                    if result.is_effective() && stable(&self.pop) {
                        return self.book.stabilized_now();
                    }
                }
            }
        }
    }

    /// Like [`run_until`](Self::run_until) but only re-evaluates the
    /// predicate when an edge changes. Correct (and faster) for
    /// predicates that depend only on the output graph.
    pub fn run_until_edges(
        &mut self,
        mut stable: impl FnMut(&Population<M::State>) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        if stable(&self.pop) {
            return self.book.stabilized_now();
        }
        loop {
            match self.advance(max_steps) {
                EventStep::Quiescent => {
                    if max_steps > self.book.steps {
                        self.jump_quiescent_to(max_steps);
                    }
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    };
                }
                EventStep::BudgetExhausted => {
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    }
                }
                EventStep::Candidate {
                    result:
                        StepResult::Effective {
                            edge_changed: true, ..
                        },
                    ..
                } => {
                    if stable(&self.pop) {
                        return self.book.stabilized_now();
                    }
                }
                EventStep::Candidate { .. } => {}
            }
        }
    }

    /// Advances until the step counter reaches exactly `target` — the
    /// negative hypergeometric law is self-similar under truncation
    /// (see [`hypergeometric_skip`]), so
    /// stopping and resuming mid-skip is exact.
    pub fn run_to(&mut self, target: u64) {
        while self.book.steps < target {
            match self.advance(target) {
                EventStep::Quiescent => {
                    self.jump_quiescent_to(target);
                    return;
                }
                EventStep::BudgetExhausted => return,
                EventStep::Candidate { .. } => {}
            }
        }
    }

    /// Applies one resolved fault event, reclassifying exactly the pairs
    /// whose effectiveness flipped. Ghost pairs never flip: they stay in
    /// the anonymous pool for the rest of the round (they are certainly
    /// ineffective, which is all the pool records), so the pool does
    /// *not* shrink on a crash — `pool_invariant_holds` is preserved.
    fn apply_resolved(&mut self, resolved: ResolvedFault) {
        match resolved {
            ResolvedFault::Noop => {}
            ResolvedFault::Crash(x) => {
                // Detach x's effective-set row (every flip is eff→ineff:
                // cand → resolved-ineffective, scheduled pairs frozen)…
                let old: Vec<u64> = self.pairs.row_bits(x).to_vec();
                self.index.set_absent(x);
                let zeros = vec![0u64; old.len()];
                apply_desired_row(&mut self.pairs, x, &zeros);
                self.reclass_row(x, &old, None);
                // …then drop its active edges. The incident pairs are
                // already out of the effective set, so no further flips.
                let neighbors: Vec<usize> = self.pop.edges().neighbors(x).collect();
                for &w in &neighbors {
                    self.pop.edges_mut().set(x, w, false);
                }
                if !neighbors.is_empty() {
                    self.book.edge_events += neighbors.len() as u64;
                    self.book.last_output_change = self.book.steps;
                }
                // Crash notifications, in ascending node order: each is
                // a state-only change handled like any mid-round flip —
                // rescan the row, then reclassify exactly the diff
                // (scheduled pairs stay frozen, ineff→eff flips resolve
                // against the pool by the urn draw).
                for &w in &neighbors {
                    if let Some(s2) = self.machine.on_crash_notify(self.pop.state(w)) {
                        if *self.pop.state(w) != s2 {
                            let old_w: Vec<u64> = self.pairs.row_bits(w).to_vec();
                            self.pop.set_state(w, s2);
                            self.index
                                .on_state_change(&self.machine, &self.pop, &mut self.pairs, w);
                            self.reclass_row(w, &old_w, None);
                        }
                    }
                }
            }
            ResolvedFault::Arrive(x) => {
                // Re-admit x and rescan its row; every flip is
                // ineff→eff, resolved against the pool by the urn draw
                // (an arriving pair is exchangeable with any other pool
                // member: it has been ineffective all round).
                let old: Vec<u64> = self.pairs.row_bits(x).to_vec();
                self.index.set_present(x);
                self.index.rescan_node(&self.pop, &mut self.pairs, x);
                self.reclass_row(x, &old, None);
            }
            ResolvedFault::DeleteEdge(u, v) => self.delete_edge_fault(u, v),
            ResolvedFault::DeleteRandomEdges { count, mut rng } => {
                // Canonical triangular-index order, shared by every
                // engine, so the draw depends only on the configuration.
                let edges: Vec<(usize, usize)> = self.pop.edges().active_edges().collect();
                for (u, v) in sample_without_replacement(&mut rng, edges, count) {
                    self.delete_edge_fault(u, v);
                }
            }
        }
    }

    /// Deactivates edge `{u, v}` as a fault (no-op when inactive) and
    /// reclassifies the single affected pair.
    fn delete_edge_fault(&mut self, u: usize, v: usize) {
        if !self.pop.edges().is_active(u, v) {
            return;
        }
        self.pop.edges_mut().set(u, v, false);
        self.book.edge_events += 1;
        self.book.last_output_change = self.book.steps;
        // A dead endpoint implies an inactive edge, so both ends are
        // alive here; only the link of this one pair changed.
        let (a, b) = (u.min(v), u.max(v));
        let now_eff = self.index.table().can_affect(
            self.index.state_index(a),
            self.index.state_index(b),
            Link::Off,
        );
        if self.pairs.contains(a, b) != now_eff {
            self.pairs.set(a, b, now_eff);
            self.reclass_pair(a, b, now_eff);
        }
    }

    /// Normalizes the configuration for an adversary decision: dense
    /// state indices plus the active-edge set.
    fn config_snapshot(&self) -> ConfigSnapshot {
        let states = (0..self.pop.n()).map(|u| self.index.state_index(u)).collect();
        ConfigSnapshot::new(states, self.pop.edges().active_edges())
    }

    /// Applies everything due at the current step counter: scheduled
    /// plan events in order, and adversary decisions resolved against
    /// a fresh configuration snapshot.
    fn apply_due_faults(&mut self) {
        loop {
            let due = self
                .faults
                .as_ref()
                .and_then(|fs| fs.due_fault(self.book.steps));
            match due {
                Some(DueFault::Event) => {
                    let resolved = self
                        .faults
                        .as_mut()
                        .expect("due implies a plan")
                        .resolve_next()
                        .expect("due_fault implies a pending event");
                    self.apply_resolved(resolved);
                }
                Some(DueFault::Decision) => {
                    let snap = self.config_snapshot();
                    let damage = self
                        .faults
                        .as_mut()
                        .expect("due implies a plan")
                        .resolve_due_decision(&snap);
                    for resolved in damage {
                        self.apply_resolved(resolved);
                    }
                }
                None => return,
            }
        }
    }

    /// Applies every remaining plan event *now*, regardless of its
    /// scheduled time (see
    /// [`Simulation::apply_faults_now`](crate::Simulation::apply_faults_now)).
    /// Adversary decisions are *not* drained: they are tied to their
    /// decision draws.
    ///
    /// # Panics
    ///
    /// Panics if the engine has no fault plan.
    pub fn apply_faults_now(&mut self) {
        assert!(self.faults.is_some(), "apply_faults_now needs a fault plan");
        loop {
            let Some(resolved) = self.faults.as_mut().and_then(FaultState::resolve_next) else {
                return;
            };
            self.apply_resolved(resolved);
        }
    }

    /// Advances to exactly `target` total steps, applying plan events at
    /// their scheduled times on the way (same stop/resume exactness as
    /// [`EventSim::run_faulted_to`](crate::EventSim::run_faulted_to)).
    ///
    /// # Panics
    ///
    /// Panics if the engine has no fault plan.
    pub fn run_faulted_to(&mut self, target: u64) {
        assert!(self.faults.is_some(), "run_faulted_to needs a fault plan");
        self.apply_due_faults();
        loop {
            let next = self.faults.as_ref().and_then(FaultState::next_at);
            match next {
                Some(at) if at <= target => {
                    self.run_to(at);
                    self.apply_due_faults();
                }
                _ => {
                    self.run_to(target);
                    return;
                }
            }
        }
    }

    /// Runs a faulted execution to stability — same semantics as
    /// [`EventSim::run_faulted_until`](crate::EventSim::run_faulted_until):
    /// the predicate is not consulted while plan events are pending.
    ///
    /// # Panics
    ///
    /// Panics if the engine has no fault plan.
    pub fn run_faulted_until(
        &mut self,
        mut stable: impl FnMut(&Population<M::State>, &FaultState) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        assert!(self.faults.is_some(), "run_faulted_until needs a fault plan");
        self.apply_due_faults();
        loop {
            let next = self.faults.as_ref().and_then(FaultState::next_at);
            match next {
                Some(at) if at <= max_steps => {
                    self.run_to(at);
                    self.apply_due_faults();
                }
                Some(_) => {
                    self.run_to(max_steps);
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    };
                }
                None => break,
            }
        }
        if stable(&self.pop, self.faults.as_ref().expect("asserted above")) {
            return self.book.stabilized_now();
        }
        loop {
            match self.advance(max_steps) {
                EventStep::Quiescent => {
                    if max_steps > self.book.steps {
                        self.jump_quiescent_to(max_steps);
                    }
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    };
                }
                EventStep::BudgetExhausted => {
                    return RunOutcome::MaxSteps {
                        steps: self.book.steps,
                    }
                }
                EventStep::Candidate { result, .. } => {
                    if result.is_effective()
                        && stable(&self.pop, self.faults.as_ref().expect("asserted above"))
                    {
                        return self.book.stabilized_now();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProtocolBuilder, RuleProtocol, ShuffledRounds, Simulation};
    use netcon_graph::properties::is_maximum_matching;

    const OFF: Link = Link::Off;
    const ON: Link = Link::On;

    fn matching_protocol() -> RuleProtocol {
        let mut b = ProtocolBuilder::new("matching");
        let a = b.state("a");
        let m = b.state("b");
        b.rule((a, a, OFF), (m, m, ON));
        b.build().expect("valid")
    }

    /// Match in one round, dissolve each matched edge at its next
    /// occurrence: converges in exactly two rounds under any box
    /// schedule (see the workspace-level regression test).
    fn dissolve_protocol() -> RuleProtocol {
        let mut b = ProtocolBuilder::new("dissolve");
        let a = b.state("a");
        let m = b.state("b");
        let d = b.state("c");
        b.rule((a, a, OFF), (m, m, ON));
        b.rule((m, m, ON), (d, d, OFF));
        b.build().expect("valid")
    }

    #[test]
    fn matching_converges_in_round_one() {
        for seed in 0..20 {
            let mut sim = RoundSim::new(matching_protocol(), 20, seed);
            let out = sim.run_until_edges(|p| is_maximum_matching(p.edges()), 10_000);
            assert!(out.stabilized(), "seed {seed}: {out:?}");
            // Every (a, a) pair occurs within round 1, so no two nodes
            // can both survive it unmatched.
            assert!(sim.steps() <= sim.pairs_per_round(), "seed {seed}");
            assert_eq!(sim.last_output_change_round(), 1, "seed {seed}");
            assert_eq!(sim.effective_steps(), 10);
            assert!(sim.is_quiescent());
        }
    }

    #[test]
    fn dissolve_takes_exactly_two_rounds() {
        // n even: round 1 matches everyone (any two unmatched nodes
        // would have matched when their pair came up), and each matched
        // pair recurs exactly once in round 2, where it dissolves. The
        // convergence round is therefore deterministically 2.
        let p = dissolve_protocol();
        let d = p.state("c").expect("dissolved state exists");
        for seed in 0..20 {
            let mut sim = RoundSim::new(p.clone(), 12, 100 + seed);
            let out = sim.run_until_edges(
                |q| q.count_where(|s| *s == d) == q.n() && q.edges().active_count() == 0,
                200_000,
            );
            assert!(out.stabilized(), "seed {seed}: {out:?}");
            let converged = out.converged_at().expect("stabilized");
            assert_eq!(sim.round_of(converged), 2, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut sim = RoundSim::new(matching_protocol(), 16, seed);
            let out = sim.run_until_edges(|p| is_maximum_matching(p.edges()), 100_000);
            (out, sim.steps(), sim.edge_events(), sim.rounds_completed())
        };
        assert_eq!(run(9), run(9));
        assert!(run(9).0.stabilized());
    }

    #[test]
    fn compiled_and_interpreted_agree_step_for_step() {
        let p = matching_protocol();
        let mut a = RoundSim::new(p.clone(), 15, 31);
        let mut b = RoundSim::new(p.compile(), 15, 31);
        loop {
            let (ra, rb) = (a.advance(u64::MAX), b.advance(u64::MAX));
            assert_eq!(ra, rb);
            assert_eq!(a.steps(), b.steps());
            if ra == EventStep::Quiescent {
                break;
            }
        }
        assert_eq!(a.population(), b.population());
    }

    #[test]
    fn budget_is_respected_exactly_and_resumes() {
        let mut sim = RoundSim::new(matching_protocol(), 50, 3);
        let out = sim.run_until(|_| false, 1_000);
        assert_eq!(out, RunOutcome::MaxSteps { steps: 1_000 });
        assert_eq!(sim.steps(), 1_000);
        // Resume mid-round: the skip law is self-similar, the run goes on.
        sim.run_to(2_000);
        assert_eq!(sim.steps(), 2_000);
        let out = sim.run_until_edges(|p| is_maximum_matching(p.edges()), u64::MAX);
        assert!(out.stabilized());
    }

    #[test]
    fn quiescent_unstable_returns_budget_immediately() {
        let mut b = ProtocolBuilder::new("inert");
        let _ = b.state("a");
        let p = b.build().expect("valid");
        let mut sim = RoundSim::new(p, 8, 0);
        let out = sim.run_until(|_| false, u64::MAX);
        assert_eq!(out, RunOutcome::MaxSteps { steps: u64::MAX });
    }

    #[test]
    fn quiescence_after_convergence_jumps_to_target() {
        let mut sim = RoundSim::new(matching_protocol(), 10, 5);
        sim.run_until_edges(|p| is_maximum_matching(p.edges()), u64::MAX);
        let done = sim.steps();
        sim.run_to(done + 1_000_000);
        assert_eq!(sim.steps(), done + 1_000_000);
        assert_eq!(sim.effective_steps(), 5);
    }

    #[test]
    fn round_bookkeeping_is_consistent() {
        let mut sim = RoundSim::new(dissolve_protocol(), 10, 77);
        let m = sim.pairs_per_round();
        assert_eq!(m, 45);
        sim.run_to(3 * m + 7);
        assert_eq!(sim.rounds_completed(), 3);
        assert_eq!(sim.round_of(0), 0);
        assert_eq!(sim.round_of(1), 1);
        assert_eq!(sim.round_of(m), 1);
        assert_eq!(sim.round_of(m + 1), 2);
        assert!(sim.last_output_change_round() <= sim.round_of(sim.steps()));
    }

    #[test]
    fn tracks_naive_shuffled_engine_on_average() {
        // Cheap smoke check of the exactness argument (the full paired
        // statistical tests live in the workspace-level suite). The
        // matching time concentrates inside round 1, so compare mean
        // converged_at between RoundSim and the naive ShuffledRounds
        // loop.
        let trials = 60;
        let mean = |round: bool| -> f64 {
            (0..trials)
                .map(|seed| {
                    let stable =
                        |p: &Population<crate::StateId>| is_maximum_matching(p.edges());
                    let out = if round {
                        RoundSim::new(matching_protocol(), 12, 1000 + seed)
                            .run_until_edges(stable, u64::MAX)
                    } else {
                        Simulation::with_scheduler(
                            matching_protocol(),
                            12,
                            2000 + seed,
                            ShuffledRounds::new(),
                        )
                        .run_until_edges(stable, u64::MAX)
                    };
                    out.converged_at().expect("stabilizes") as f64
                })
                .sum::<f64>()
                / f64::from(trials as u32)
        };
        let (r, n) = (mean(true), mean(false));
        assert!(
            (r - n).abs() / n < 0.35,
            "round {r:.1} vs naive-shuffled {n:.1} means too far apart"
        );
    }

    #[test]
    fn randomized_identity_candidates_count_as_real_steps() {
        // (a, b, 0) → ½ identity, ½ swap: candidates may resolve
        // ineffective; each consumes its occurrence in the round.
        let mut b = ProtocolBuilder::new("lazy-swap");
        let a = b.state("a");
        let c = b.state("b");
        b.initial(a);
        b.rule_random((a, c, OFF), [(1, (a, c, OFF)), (1, (c, a, OFF))]);
        let p = b.build().expect("valid");
        let mut pop = Population::new(4, a);
        pop.set_state(0, c);
        let mut sim = RoundSim::from_population(p, pop, 11);
        let mut saw_ineffective = false;
        for _ in 0..200 {
            match sim.advance(u64::MAX) {
                EventStep::Candidate {
                    result: StepResult::Ineffective { .. },
                    ..
                } => saw_ineffective = true,
                EventStep::Quiescent => panic!("lazy-swap never quiesces"),
                _ => {}
            }
        }
        assert!(saw_ineffective, "identity branch should occur in 200 draws");
        assert!(sim.steps() >= 200);
    }

    #[test]
    fn initial_configuration_can_be_stable() {
        let mut sim = RoundSim::new(matching_protocol(), 6, 2);
        let out = sim.run_until(|_| true, 10);
        assert_eq!(
            out,
            RunOutcome::Stabilized {
                detected_at: 0,
                converged_at: 0,
                last_effective: 0
            }
        );
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_population_rejected() {
        let _ = RoundSim::new(matching_protocol(), 1, 0);
    }

    #[test]
    fn pool_invariant_survives_fault_events() {
        use crate::fault::{FaultEvent, FaultPlan};
        let plan = FaultPlan::new(4)
            .at(10, FaultEvent::CrashRandom)
            .at(25, FaultEvent::Arrive)
            .at(40, FaultEvent::DeleteRandomActiveEdges(1));
        let mut sim = RoundSim::new_faulted(dissolve_protocol(), 10, 17, plan);
        assert!(sim.pool_invariant_holds());
        for target in [10, 25, 40, 70, 200] {
            sim.run_faulted_to(target);
            assert!(sim.pool_invariant_holds(), "after step {target}");
        }
        let fs = sim.fault_state().expect("faulted");
        assert_eq!(fs.alive_count(), 10);
        assert_eq!(fs.capacity(), 11);
    }

    #[test]
    fn faulted_matching_still_completes_in_round_one() {
        // A crash at t = 0 leaves 8 live `a` nodes (plus one ghost):
        // every live (a, a) pair still occurs within round 1, so the
        // matching among the living is maximal by the round's end.
        for seed in 0..10 {
            use crate::fault::{FaultEvent, FaultPlan};
            let plan = FaultPlan::new(seed).at(0, FaultEvent::CrashRandom);
            let mut sim = RoundSim::new_faulted(matching_protocol(), 9, 300 + seed, plan);
            let out = sim.run_faulted_until(|p, _| p.edges().active_count() == 4, 1_000_000);
            assert!(out.stabilized(), "seed {seed}: {out:?}");
            assert_eq!(sim.last_output_change_round(), 1, "seed {seed}");
            assert!(sim.pool_invariant_holds());
        }
    }

    #[test]
    fn mem_estimate_tracks_measured() {
        let sim = RoundSim::new(matching_protocol(), 128, 0);
        let measured = sim.approx_mem_bytes();
        let estimate = RoundSim::<RuleProtocol>::dense_mem_estimate(128);
        assert!(
            measured <= estimate * 2 && estimate <= measured * 2,
            "estimate {estimate} vs measured {measured}"
        );
    }
}
