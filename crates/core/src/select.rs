//! Engine selection: one entry point that picks an exact engine for a
//! scheduler family by a memory budget.
//!
//! For the **uniform** scheduler, [`EventSim`] is the
//! fastest exact engine per effective interaction but holds Θ(n²) bytes;
//! [`BucketSim`] holds O(n + |Q|²) and pays a (usually tiny) rejection
//! overhead instead. Both produce identically-distributed executions, so
//! the only question is whether the dense structures fit:
//! [`Engine::auto`] answers it with [`EventSim::dense_mem_estimate`]
//! against a budget (`NETCON_ENGINE_MEM_BUDGET` bytes, default 512 MiB),
//! falling back to the sparse engine beyond it — or beyond the dense
//! pair set's `n ≤ 65535` id range, whatever the budget says.
//!
//! For the **ShuffledRounds** scheduler, [`Engine::auto_for`] routes to
//! the event-driven [`RoundSim`] while its (≈ 3× dense)
//! structures fit the same budget, and beyond that to the sparse
//! [`RoundBucketSim`] — the same round law in
//! O(n + |Q|²) memory, so round-denominated sweeps reach n ≥ 100 000.
//!
//! Stability predicates run against an [`EngineView`], which exposes the
//! configuration queries every engine can answer without materializing
//! anything dense.

use crate::bucket::{BucketSim, SparsePop};
use crate::compiled::EnumerableMachine;
use crate::event::EventSim;
use crate::fault::{FaultPlan, FaultState};
use crate::round::RoundSim;
use crate::round_bucket::RoundBucketSim;
use crate::sim::RunOutcome;
use crate::Population;

/// Default dense-engine memory budget: 512 MiB keeps the dense engine up
/// to n ≈ 11 000 and the CI box comfortable.
const DEFAULT_MEM_BUDGET: u64 = 512 << 20;

/// The scheduler family an auto-selected engine must reproduce.
///
/// Every engine the selector can pick is distribution-identical to the
/// naive [`Simulation`](crate::Simulation) *under its scheduler*; the
/// two families' running-time distributions differ (that difference is
/// exactly what round-based experiments measure), so the family is an
/// input to selection, not something the budget can trade away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The uniform random scheduler (§3.1) — the paper's running-time
    /// model. Routed to [`EventSim`] or
    /// [`BucketSim`].
    #[default]
    Uniform,
    /// The [`ShuffledRounds`](crate::ShuffledRounds) box scheduler —
    /// every pair once per round, rounds as parallel time. Routed to
    /// [`RoundSim`] or the naive loop.
    ShuffledRounds,
}

/// The configuration view a selected engine hands to stability
/// predicates: whatever the engine's representation, the same queries
/// answer — population size, active edges, degrees, dense state indices.
///
/// Dense-only extras (the full [`Population`]) are reachable on the
/// `Dense` arm; predicates that use them give up sparse-engine support.
#[derive(Debug)]
pub enum EngineView<'a, M: EnumerableMachine> {
    /// The dense engine's configuration.
    Dense {
        /// The full configuration.
        pop: &'a Population<M::State>,
        /// The machine (for state-index queries).
        machine: &'a M,
    },
    /// The sparse engine's configuration.
    Sparse {
        /// The sparse configuration.
        sp: &'a SparsePop,
        /// The machine (for state materialization).
        machine: &'a M,
    },
}

impl<M: EnumerableMachine> EngineView<'_, M> {
    /// The population size `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        match self {
            Self::Dense { pop, .. } => pop.n(),
            Self::Sparse { sp, .. } => sp.n(),
        }
    }

    /// The number of active edges.
    #[must_use]
    pub fn active_count(&self) -> usize {
        match self {
            Self::Dense { pop, .. } => pop.edges().active_count(),
            Self::Sparse { sp, .. } => sp.active_count(),
        }
    }

    /// The active degree of node `u`.
    #[must_use]
    pub fn degree(&self, u: usize) -> usize {
        match self {
            Self::Dense { pop, .. } => pop.edges().degree(u) as usize,
            Self::Sparse { sp, .. } => sp.degree(u),
        }
    }

    /// Whether the edge `{u, v}` is active.
    #[must_use]
    pub fn is_active(&self, u: usize, v: usize) -> bool {
        match self {
            Self::Dense { pop, .. } => pop.edges().is_active(u, v),
            Self::Sparse { sp, .. } => sp.is_active(u, v),
        }
    }

    /// The dense state index of node `u`.
    #[must_use]
    pub fn state_index(&self, u: usize) -> usize {
        match self {
            Self::Dense { pop, machine } => machine.state_index(pop.state(u)),
            Self::Sparse { sp, .. } => sp.state_index(u),
        }
    }

    /// The number of nodes in state index `s` — O(1) on the sparse view,
    /// an O(n) scan on the dense one.
    #[must_use]
    pub fn count_index(&self, s: usize) -> usize {
        match self {
            Self::Dense { pop, machine } => {
                pop.count_where(|st| machine.state_index(st) == s)
            }
            Self::Sparse { sp, .. } => sp.count_index(s),
        }
    }

    /// The nodes in state index `s` (arbitrary order) — bucket read on
    /// the sparse view, O(n) scan on the dense one.
    #[must_use]
    pub fn nodes_index(&self, s: usize) -> Vec<usize> {
        match self {
            Self::Dense { pop, machine } => {
                pop.nodes_where(|st| machine.state_index(st) == s)
            }
            Self::Sparse { sp, .. } => sp.nodes_index(s).iter().map(|&u| u as usize).collect(),
        }
    }

    /// Materializes the full dense configuration — a clone on the dense
    /// arm, an O(n²) edge-set build on the sparse arm. Escape hatch for
    /// legacy dense predicates at sizes where the sparse engine was
    /// chosen anyway; sparse-clean predicates should use the queries
    /// above instead.
    #[must_use]
    pub fn to_population(&self) -> Population<M::State> {
        match self {
            Self::Dense { pop, .. } => (*pop).clone(),
            Self::Sparse { sp, machine } => {
                let states = (0..sp.n())
                    .map(|u| machine.state_at(sp.state_index(u)))
                    .collect();
                Population::from_parts(states, sp.to_edgeset())
            }
        }
    }
}

/// An exact engine chosen by scheduler family and memory budget: under
/// [`SchedulerKind::Uniform`] the dense [`EventSim`] when its Θ(n²)
/// structures fit and the sparse [`BucketSim`] beyond; under
/// [`SchedulerKind::ShuffledRounds`] the event-driven [`RoundSim`] when
/// its (≈ 3× dense) structures fit and the sparse [`RoundBucketSim`]
/// beyond. Within a family every arm has identical output distribution,
/// so the choice is invisible to measurements.
///
/// # Example
///
/// ```
/// use netcon_core::{Engine, Link, ProtocolBuilder, SchedulerKind};
///
/// let mut b = ProtocolBuilder::new("matching");
/// let a = b.state("a");
/// let m = b.state("b");
/// b.rule((a, a, Link::Off), (m, m, Link::On));
/// let protocol = b.build()?.compile();
///
/// // Small population: the estimate fits any sane budget → dense.
/// let mut eng = Engine::auto(protocol.clone(), 100, 1);
/// assert!(!eng.is_sparse());
/// let out = eng.run_until(|v| v.active_count() == 50, 10_000_000);
/// assert!(out.stabilized());
///
/// // Tiny budget: the selector goes sparse, the run is equivalent.
/// let mut eng = Engine::with_budget(protocol.clone(), 100, 1, 1024);
/// assert!(eng.is_sparse());
/// assert!(eng.run_until(|v| v.active_count() == 50, 10_000_000).stabilized());
///
/// // Round-based sweeps route by the same budget to the round engine.
/// let mut eng = Engine::auto_for(protocol, 100, 1, SchedulerKind::ShuffledRounds);
/// assert_eq!(eng.kind(), "round-dense");
/// assert!(eng.run_until(|v| v.active_count() == 50, 10_000_000).stabilized());
/// # Ok::<(), netcon_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub enum Engine<M: EnumerableMachine + Clone> {
    /// The dense event engine (uniform scheduler).
    Dense {
        /// The engine.
        sim: Box<EventSim<M>>,
        /// A machine copy the view borrows during runs.
        machine: M,
    },
    /// The sparse bucket engine (uniform scheduler).
    Sparse {
        /// The engine.
        sim: Box<BucketSim<M>>,
        /// A machine copy the view borrows during runs.
        machine: M,
    },
    /// The event-driven round engine (ShuffledRounds scheduler).
    Round {
        /// The engine.
        sim: Box<RoundSim<M>>,
        /// A machine copy the view borrows during runs.
        machine: M,
    },
    /// The sparse round engine (ShuffledRounds beyond the budget):
    /// the same round law in O(n + |Q|²) memory.
    RoundSparse {
        /// The engine.
        sim: Box<RoundBucketSim<M>>,
        /// A machine copy the view borrows during runs.
        machine: M,
    },
}

impl<M: EnumerableMachine + Clone> Engine<M> {
    /// Selects a uniform-scheduler engine for `n` nodes under the default
    /// memory budget (`NETCON_ENGINE_MEM_BUDGET` bytes if set, else
    /// 512 MiB) and constructs it in the initial configuration.
    /// Shorthand for [`auto_for`](Self::auto_for) with
    /// [`SchedulerKind::Uniform`].
    #[must_use]
    pub fn auto(machine: M, n: usize, seed: u64) -> Self {
        Self::with_budget(machine, n, seed, Self::default_budget())
    }

    /// Selects an engine reproducing `scheduler` for `n` nodes under the
    /// default memory budget and constructs it in the initial
    /// configuration.
    #[must_use]
    pub fn auto_for(machine: M, n: usize, seed: u64, scheduler: SchedulerKind) -> Self {
        Self::with_budget_for(machine, n, seed, Self::default_budget(), scheduler)
    }

    /// Selects by an explicit budget: dense iff the dense estimate fits
    /// `budget_bytes` *and* `n` fits the dense pair set's `u16` node ids.
    /// Shorthand for [`with_budget_for`](Self::with_budget_for) with
    /// [`SchedulerKind::Uniform`].
    #[must_use]
    pub fn with_budget(machine: M, n: usize, seed: u64, budget_bytes: u64) -> Self {
        Self::with_budget_for(machine, n, seed, budget_bytes, SchedulerKind::Uniform)
    }

    /// Selects by an explicit budget within the given scheduler family:
    /// the event-driven engine whose a-priori memory estimate fits
    /// `budget_bytes` (and whose pair ids fit `n ≤ 65535`), else the
    /// family's fallback — [`BucketSim`] for uniform, the naive loop for
    /// ShuffledRounds.
    #[must_use]
    pub fn with_budget_for(
        machine: M,
        n: usize,
        seed: u64,
        budget_bytes: u64,
        scheduler: SchedulerKind,
    ) -> Self {
        let dense_ok = |estimate: u64| n <= usize::from(u16::MAX) && estimate <= budget_bytes;
        match scheduler {
            SchedulerKind::Uniform => {
                if dense_ok(EventSim::<M>::dense_mem_estimate(n)) {
                    let sim = Box::new(EventSim::new(machine.clone(), n, seed));
                    Engine::Dense { sim, machine }
                } else {
                    let sim = Box::new(BucketSim::new(machine.clone(), n, seed));
                    Engine::Sparse { sim, machine }
                }
            }
            SchedulerKind::ShuffledRounds => {
                if dense_ok(RoundSim::<M>::dense_mem_estimate(n)) {
                    let sim = Box::new(RoundSim::new(machine.clone(), n, seed));
                    Engine::Round { sim, machine }
                } else {
                    let sim = Box::new(RoundBucketSim::new(machine.clone(), n, seed));
                    Engine::RoundSparse { sim, machine }
                }
            }
        }
    }

    /// Selects a uniform-scheduler engine for a faulted run under the
    /// default memory budget — [`auto`](Self::auto) with a [`FaultPlan`].
    #[must_use]
    pub fn auto_faulted(machine: M, n: usize, seed: u64, plan: FaultPlan) -> Self {
        Self::with_budget_for_faulted(
            machine,
            n,
            seed,
            Self::default_budget(),
            SchedulerKind::Uniform,
            plan,
        )
    }

    /// Selects an engine reproducing `scheduler` for a faulted run under
    /// the default memory budget — [`auto_for`](Self::auto_for) with a
    /// [`FaultPlan`].
    #[must_use]
    pub fn auto_for_faulted(
        machine: M,
        n: usize,
        seed: u64,
        scheduler: SchedulerKind,
        plan: FaultPlan,
    ) -> Self {
        Self::with_budget_for_faulted(machine, n, seed, Self::default_budget(), scheduler, plan)
    }

    /// Selects by an explicit budget within a scheduler family and
    /// constructs the chosen engine with a [`FaultPlan`]. The dense
    /// estimates are sized on the *capacity* (`n` plus planned
    /// arrivals), since that is the node range every faulted engine
    /// allocates for.
    #[must_use]
    pub fn with_budget_for_faulted(
        machine: M,
        n: usize,
        seed: u64,
        budget_bytes: u64,
        scheduler: SchedulerKind,
        plan: FaultPlan,
    ) -> Self {
        let capacity = n + plan.arrival_count();
        let dense_ok =
            |estimate: u64| capacity <= usize::from(u16::MAX) && estimate <= budget_bytes;
        match scheduler {
            SchedulerKind::Uniform => {
                if dense_ok(EventSim::<M>::dense_mem_estimate(capacity)) {
                    let sim = Box::new(EventSim::new_faulted(machine.clone(), n, seed, plan));
                    Engine::Dense { sim, machine }
                } else {
                    let sim = Box::new(BucketSim::new_faulted(machine.clone(), n, seed, plan));
                    Engine::Sparse { sim, machine }
                }
            }
            SchedulerKind::ShuffledRounds => {
                if dense_ok(RoundSim::<M>::dense_mem_estimate(capacity)) {
                    let sim = Box::new(RoundSim::new_faulted(machine.clone(), n, seed, plan));
                    Engine::Round { sim, machine }
                } else {
                    let sim =
                        Box::new(RoundBucketSim::new_faulted(machine.clone(), n, seed, plan));
                    Engine::RoundSparse { sim, machine }
                }
            }
        }
    }

    /// The active memory budget (`NETCON_ENGINE_MEM_BUDGET` or the
    /// 512 MiB default).
    #[must_use]
    pub fn default_budget() -> u64 {
        std::env::var("NETCON_ENGINE_MEM_BUDGET")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_MEM_BUDGET)
    }

    /// Whether the sparse engine was selected.
    #[must_use]
    pub fn is_sparse(&self) -> bool {
        matches!(self, Engine::Sparse { .. })
    }

    /// The scheduler family the selected engine reproduces.
    #[must_use]
    pub fn scheduler(&self) -> SchedulerKind {
        match self {
            Engine::Dense { .. } | Engine::Sparse { .. } => SchedulerKind::Uniform,
            Engine::Round { .. } | Engine::RoundSparse { .. } => SchedulerKind::ShuffledRounds,
        }
    }

    /// `"event-dense"`, `"bucket-sparse"`, `"round-dense"`, or
    /// `"round-sparse"`, for bench records.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Engine::Dense { .. } => "event-dense",
            Engine::Sparse { .. } => "bucket-sparse",
            Engine::Round { .. } => "round-dense",
            Engine::RoundSparse { .. } => "round-sparse",
        }
    }

    /// Steps taken so far (including skipped ineffective draws).
    #[must_use]
    pub fn steps(&self) -> u64 {
        match self {
            Engine::Dense { sim, .. } => sim.steps(),
            Engine::Sparse { sim, .. } => sim.steps(),
            Engine::Round { sim, .. } => sim.steps(),
            Engine::RoundSparse { sim, .. } => sim.steps(),
        }
    }

    /// Effective interactions so far.
    #[must_use]
    pub fn effective_steps(&self) -> u64 {
        match self {
            Engine::Dense { sim, .. } => sim.effective_steps(),
            Engine::Sparse { sim, .. } => sim.effective_steps(),
            Engine::Round { sim, .. } => sim.effective_steps(),
            Engine::RoundSparse { sim, .. } => sim.effective_steps(),
        }
    }

    /// The step of the last output-graph (active edge set) change —
    /// what availability estimators use to attribute stable draws.
    #[must_use]
    pub fn last_output_change(&self) -> u64 {
        match self {
            Engine::Dense { sim, .. } => sim.last_output_change(),
            Engine::Sparse { sim, .. } => sim.last_output_change(),
            Engine::Round { sim, .. } => sim.last_output_change(),
            Engine::RoundSparse { sim, .. } => sim.last_output_change(),
        }
    }

    /// Edge activations/deactivations so far.
    #[must_use]
    pub fn edge_events(&self) -> u64 {
        match self {
            Engine::Dense { sim, .. } => sim.edge_events(),
            Engine::Sparse { sim, .. } => sim.edge_events(),
            Engine::Round { sim, .. } => sim.edge_events(),
            Engine::RoundSparse { sim, .. } => sim.edge_events(),
        }
    }

    /// Bytes of heap memory held by the selected engine.
    #[must_use]
    pub fn approx_mem_bytes(&self) -> u64 {
        match self {
            Engine::Dense { sim, .. } => sim.approx_mem_bytes(),
            Engine::Sparse { sim, .. } => sim.approx_mem_bytes(),
            Engine::Round { sim, .. } => sim.approx_mem_bytes(),
            Engine::RoundSparse { sim, .. } => sim.approx_mem_bytes(),
        }
    }

    /// Runs until `stable` holds over the engine's view or `max_steps`
    /// total steps have elapsed — the selected engine's `run_until`, with
    /// identical semantics on every arm.
    pub fn run_until(
        &mut self,
        mut stable: impl FnMut(&EngineView<'_, M>) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        match self {
            Engine::Dense { sim, machine } => {
                sim.run_until(|pop| stable(&EngineView::Dense { pop, machine }), max_steps)
            }
            Engine::Sparse { sim, machine } => {
                sim.run_until(|sp| stable(&EngineView::Sparse { sp, machine }), max_steps)
            }
            Engine::Round { sim, machine } => {
                sim.run_until(|pop| stable(&EngineView::Dense { pop, machine }), max_steps)
            }
            Engine::RoundSparse { sim, machine } => {
                sim.run_until(|sp| stable(&EngineView::Sparse { sp, machine }), max_steps)
            }
        }
    }

    /// Like [`run_until`](Self::run_until) but only re-evaluates the
    /// predicate when an edge changes.
    pub fn run_until_edges(
        &mut self,
        mut stable: impl FnMut(&EngineView<'_, M>) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        match self {
            Engine::Dense { sim, machine } => sim
                .run_until_edges(|pop| stable(&EngineView::Dense { pop, machine }), max_steps),
            Engine::Sparse { sim, machine } => {
                sim.run_until_edges(|sp| stable(&EngineView::Sparse { sp, machine }), max_steps)
            }
            Engine::Round { sim, machine } => sim
                .run_until_edges(|pop| stable(&EngineView::Dense { pop, machine }), max_steps),
            Engine::RoundSparse { sim, machine } => sim
                .run_until_edges(|sp| stable(&EngineView::Sparse { sp, machine }), max_steps),
        }
    }

    /// Advances until the step counter reaches exactly `target`.
    pub fn run_to(&mut self, target: u64) {
        match self {
            Engine::Dense { sim, .. } => sim.run_to(target),
            Engine::Sparse { sim, .. } => sim.run_to(target),
            Engine::Round { sim, .. } => sim.run_to(target),
            Engine::RoundSparse { sim, .. } => sim.run_to(target),
        }
    }

    /// Materializes the dense configuration (Θ(n²) on the sparse arm).
    #[must_use]
    pub fn to_population(&self) -> Population<M::State> {
        match self {
            Engine::Dense { sim, .. } => sim.population().clone(),
            Engine::Sparse { sim, .. } => sim.to_population(),
            Engine::Round { sim, .. } => sim.population().clone(),
            Engine::RoundSparse { sim, .. } => sim.to_population(),
        }
    }

    /// The fault state, if the engine was built with a [`FaultPlan`]
    /// (via [`auto_faulted`](Self::auto_faulted) and friends).
    #[must_use]
    pub fn fault_state(&self) -> Option<&FaultState> {
        match self {
            Engine::Dense { sim, .. } => sim.fault_state(),
            Engine::Sparse { sim, .. } => sim.fault_state(),
            Engine::Round { sim, .. } => sim.fault_state(),
            Engine::RoundSparse { sim, .. } => sim.fault_state(),
        }
    }

    /// Runs a faulted execution to stability: the selected engine's
    /// `run_faulted_until`, with the predicate reading the engine view
    /// plus the fault state. Identical semantics on every arm; the
    /// predicate is not consulted while plan events or adversary
    /// decisions are pending.
    ///
    /// # Panics
    ///
    /// Panics if the engine has no fault plan.
    pub fn run_faulted_until(
        &mut self,
        mut stable: impl FnMut(&EngineView<'_, M>, &FaultState) -> bool,
        max_steps: u64,
    ) -> RunOutcome {
        match self {
            Engine::Dense { sim, machine } => sim.run_faulted_until(
                |pop, fs| stable(&EngineView::Dense { pop, machine }, fs),
                max_steps,
            ),
            Engine::Sparse { sim, machine } => sim.run_faulted_until(
                |sp, fs| stable(&EngineView::Sparse { sp, machine }, fs),
                max_steps,
            ),
            Engine::Round { sim, machine } => sim.run_faulted_until(
                |pop, fs| stable(&EngineView::Dense { pop, machine }, fs),
                max_steps,
            ),
            Engine::RoundSparse { sim, machine } => sim.run_faulted_until(
                |sp, fs| stable(&EngineView::Sparse { sp, machine }, fs),
                max_steps,
            ),
        }
    }

    /// Advances to exactly `target` total steps, applying plan events
    /// and adversary decisions at their scheduled times on the way.
    ///
    /// # Panics
    ///
    /// Panics if the engine has no fault plan.
    pub fn run_faulted_to(&mut self, target: u64) {
        match self {
            Engine::Dense { sim, .. } => sim.run_faulted_to(target),
            Engine::Sparse { sim, .. } => sim.run_faulted_to(target),
            Engine::Round { sim, .. } => sim.run_faulted_to(target),
            Engine::RoundSparse { sim, .. } => sim.run_faulted_to(target),
        }
    }

    /// Applies every remaining plan event *now*, regardless of its
    /// scheduled time (the perturb-then-measure entry point of
    /// self-repair experiments).
    ///
    /// # Panics
    ///
    /// Panics if the engine has no fault plan.
    pub fn apply_faults_now(&mut self) {
        match self {
            Engine::Dense { sim, .. } => sim.apply_faults_now(),
            Engine::Sparse { sim, .. } => sim.apply_faults_now(),
            Engine::Round { sim, .. } => sim.apply_faults_now(),
            Engine::RoundSparse { sim, .. } => sim.apply_faults_now(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompiledTable, Link, ProtocolBuilder};

    fn matching() -> CompiledTable {
        let mut b = ProtocolBuilder::new("matching");
        let a = b.state("a");
        let m = b.state("b");
        b.rule((a, a, Link::Off), (m, m, Link::On));
        b.build().expect("valid").compile()
    }

    #[test]
    fn scheduler_kind_routes_round_engines() {
        let round = Engine::with_budget_for(matching(), 30, 1, u64::MAX, SchedulerKind::ShuffledRounds);
        assert_eq!(round.kind(), "round-dense");
        assert_eq!(round.scheduler(), SchedulerKind::ShuffledRounds);
        let sparse = Engine::with_budget_for(matching(), 30, 1, 1, SchedulerKind::ShuffledRounds);
        assert_eq!(sparse.kind(), "round-sparse");
        assert_eq!(sparse.scheduler(), SchedulerKind::ShuffledRounds);
        assert_eq!(
            Engine::auto(matching(), 30, 1).scheduler(),
            SchedulerKind::Uniform
        );
    }

    #[test]
    fn round_arms_run_the_same_protocol() {
        // A perfect matching completes within round 1 under any box
        // schedule, on both the event-driven and the naive arm.
        let m = 30 * 29 / 2;
        for budget in [u64::MAX, 1] {
            let mut eng =
                Engine::with_budget_for(matching(), 30, 5, budget, SchedulerKind::ShuffledRounds);
            let out = eng.run_until_edges(|v| v.active_count() == 15, u64::MAX);
            assert!(out.stabilized(), "budget {budget}: {out:?}");
            assert!(out.converged_at().expect("stabilized") <= m);
            assert_eq!(eng.effective_steps(), 15);
            let pop = eng.to_population();
            assert!(netcon_graph::properties::is_maximum_matching(pop.edges()));
            assert!(eng.approx_mem_bytes() > 0);
        }
    }

    #[test]
    fn budget_splits_dense_and_sparse() {
        let dense = Engine::with_budget(matching(), 64, 1, u64::MAX);
        assert!(!dense.is_sparse());
        assert_eq!(dense.kind(), "event-dense");
        let sparse = Engine::with_budget(matching(), 64, 1, 1);
        assert!(sparse.is_sparse());
        assert_eq!(sparse.kind(), "bucket-sparse");
        // Past the dense pair set's u16 ids the budget is irrelevant.
        let forced = Engine::with_budget(matching(), 70_000, 1, u64::MAX);
        assert!(forced.is_sparse());
    }

    #[test]
    fn both_arms_run_the_same_protocol() {
        for budget in [u64::MAX, 1] {
            let mut eng = Engine::with_budget(matching(), 30, 5, budget);
            let out = eng.run_until_edges(|v| v.active_count() == 15, u64::MAX);
            assert!(out.stabilized(), "budget {budget}: {out:?}");
            assert_eq!(eng.effective_steps(), 15);
            let pop = eng.to_population();
            assert!(netcon_graph::properties::is_maximum_matching(pop.edges()));
            assert!(eng.approx_mem_bytes() > 0);
        }
    }

    #[test]
    fn view_queries_agree_across_arms() {
        let run = |budget: u64| {
            let mut eng = Engine::with_budget(matching(), 20, 9, budget);
            eng.run_until(|_| false, 2_000);
            let mut counts = (0, 0);
            eng.run_until(
                |v| {
                    counts = (v.count_index(0), v.count_index(1));
                    assert_eq!(v.nodes_index(0).len() + v.nodes_index(1).len(), 20);
                    assert_eq!(v.n(), 20);
                    true
                },
                u64::MAX,
            );
            counts
        };
        let (d0, d1) = run(u64::MAX);
        let (s0, s1) = run(1);
        assert_eq!(d0 + d1, 20);
        assert_eq!(s0 + s1, 20);
    }

    #[test]
    fn faulted_engines_route_and_run_on_every_arm() {
        use crate::fault::{FaultEvent, FaultPlan};
        let plan = || FaultPlan::new(6).at(0, FaultEvent::CrashRandom);
        let configs = [
            (u64::MAX, SchedulerKind::Uniform, "event-dense"),
            (1, SchedulerKind::Uniform, "bucket-sparse"),
            (u64::MAX, SchedulerKind::ShuffledRounds, "round-dense"),
            (1, SchedulerKind::ShuffledRounds, "round-sparse"),
        ];
        for (budget, family, kind) in configs {
            let mut eng =
                Engine::with_budget_for_faulted(matching(), 9, 3, budget, family, plan());
            assert_eq!(eng.kind(), kind);
            let out = eng.run_faulted_until(|v, _| v.active_count() == 4, 10_000_000);
            assert!(out.stabilized(), "{kind}: {out:?}");
            let fs = eng.fault_state().expect("faulted");
            assert_eq!(fs.alive_count(), 8, "{kind}");
        }
    }

    #[test]
    fn view_degree_and_activity_agree_with_materialization() {
        let mut eng = Engine::with_budget(matching(), 16, 3, 1);
        eng.run_until_edges(|v| v.active_count() == 8, u64::MAX);
        eng.run_until(
            |v| {
                let pop = v.to_population();
                for u in 0..16 {
                    assert_eq!(v.degree(u), pop.edges().degree(u) as usize);
                    assert_eq!(v.state_index(u), 1);
                    for w in 0..16 {
                        if w != u {
                            assert_eq!(v.is_active(u, w), pop.edges().is_active(u, w));
                        }
                    }
                }
                true
            },
            u64::MAX,
        );
    }
}
