//! Property tests: the compiled lowering is observationally identical to
//! the interpreted rule table — on every `(a, b, link)` triple, for every
//! coin outcome, including the exact randomness consumption — and the
//! event-driven engine built on it reproduces the naive engine's
//! supporting invariants.

use netcon_core::{
    EnumerableMachine, EventSim, EventStep, Link, Machine, ProtocolBuilder, RuleProtocol,
    Simulation, StateId,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A random well-formed protocol over ≤ 6 states mixing deterministic and
/// weighted randomized rules (distinct unordered triples only).
fn arb_protocol() -> impl Strategy<Value = RuleProtocol> {
    (2u16..7, any::<u64>(), 1usize..12).prop_map(|(size, seed, rules)| {
        use rand::RngExt;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = ProtocolBuilder::new("random");
        let states: Vec<StateId> = (0..size).map(|i| b.state(format!("s{i}"))).collect();
        let mut used = std::collections::HashSet::new();
        for _ in 0..rules {
            let a = states[rng.random_range(0..states.len())];
            let c = states[rng.random_range(0..states.len())];
            let link = Link::from(rng.random_bool(0.5));
            if !used.insert((a.min(c), a.max(c), link)) {
                continue;
            }
            let triple = |rng: &mut SmallRng| {
                (
                    states[rng.random_range(0..states.len())],
                    states[rng.random_range(0..states.len())],
                    Link::from(rng.random_bool(0.5)),
                )
            };
            if rng.random_bool(0.5) {
                let t = triple(&mut rng);
                b.rule((a, c, link), t);
            } else {
                let alts: Vec<(u32, (StateId, StateId, Link))> = (0..rng.random_range(1..4usize))
                    .map(|_| (rng.random_range(1..4u32), triple(&mut rng)))
                    .collect();
                b.rule_random((a, c, link), alts);
            }
        }
        b.build().expect("distinct unordered triples are always valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled δ equals interpreted δ on the full domain, coin for coin:
    /// identically-seeded generators must produce identical outcomes AND
    /// end in identical generator states.
    #[test]
    fn compiled_table_agrees_on_every_triple_and_coin(p in arb_protocol(), seed in any::<u64>()) {
        let c = p.compile();
        for a in 0..p.size() {
            for b in 0..p.size() {
                for link in [Link::Off, Link::On] {
                    let (sa, sb) = (StateId::new(a as u16), StateId::new(b as u16));
                    for round in 0..4u64 {
                        let mut r1 = SmallRng::seed_from_u64(seed.wrapping_add(round));
                        let mut r2 = r1.clone();
                        prop_assert_eq!(
                            p.interact(&sa, &sb, link, &mut r1),
                            c.interact(&sa, &sb, link, &mut r2),
                            "δ disagrees at ({a}, {b}, {link})"
                        );
                        prop_assert_eq!(&r1, &r2, "coin consumption diverged at ({a}, {b}, {link})");
                    }
                    prop_assert_eq!(
                        p.can_affect(&sa, &sb, link),
                        c.can_affect(&sa, &sb, link)
                    );
                    prop_assert_eq!(
                        p.can_affect_edge(&sa, &sb, link),
                        c.can_affect_edge(&sa, &sb, link)
                    );
                }
            }
        }
        prop_assert_eq!(p.size(), c.num_states());
        prop_assert_eq!(p.initial_state(), c.initial_state());
    }

    /// `interact_indexed` (the engine's monomorphic entry point) agrees
    /// with the boxed-generator `interact` path on both representations.
    #[test]
    fn interact_indexed_agrees_with_interact(p in arb_protocol(), seed in any::<u64>()) {
        let c = p.compile();
        for a in 0..p.size() {
            for b in 0..p.size() {
                for link in [Link::Off, Link::On] {
                    let (sa, sb) = (StateId::new(a as u16), StateId::new(b as u16));
                    let mut r1 = SmallRng::seed_from_u64(seed);
                    let mut r2 = r1.clone();
                    let via_interact = p
                        .interact(&sa, &sb, link, &mut r1)
                        .map(|(x, y, l)| (x.index(), y.index(), l));
                    prop_assert_eq!(
                        via_interact,
                        c.interact_indexed(a, b, link, &mut r2)
                    );
                }
            }
        }
    }

    /// The event engine is internally consistent on random protocols: the
    /// possibly-effective set it maintains incrementally always equals
    /// what a fresh O(n²) scan of the configuration would produce.
    #[test]
    fn event_sim_pair_set_matches_fresh_scan(p in arb_protocol(), n in 2usize..10, seed in any::<u64>()) {
        let compiled = p.compile();
        let mut sim = EventSim::new(compiled.clone(), n, seed);
        for _ in 0..40 {
            if sim.advance(u64::MAX) == EventStep::Quiescent {
                break;
            }
            let fresh = EventSim::from_population(compiled.clone(), sim.population().clone(), 0);
            prop_assert_eq!(sim.effective_pairs(), fresh.effective_pairs());
            prop_assert_eq!(sim.is_quiescent(), fresh.is_quiescent());
            prop_assert_eq!(sim.is_edge_quiescent(), fresh.is_edge_quiescent());
        }
    }

    /// Naive runs over the compiled table are step-for-step identical to
    /// naive runs over the interpreted table under the same seed.
    #[test]
    fn compiled_simulation_reproduces_interpreted(p in arb_protocol(), n in 2usize..10, seed in any::<u64>()) {
        let mut s1 = Simulation::new(p.clone(), n, seed);
        let mut s2 = Simulation::new(p.compile(), n, seed);
        for _ in 0..300 {
            prop_assert_eq!(s1.step(), s2.step());
        }
        prop_assert_eq!(s1.population().edges(), s2.population().edges());
        prop_assert_eq!(s1.effective_steps(), s2.effective_steps());
    }
}
