//! Property-based tests of the rule-table layer against the model's
//! definition of δ (§3.1): random well-formed protocols must behave as
//! symmetric partial functions, `can_affect` must agree with `interact`,
//! and executions must be reproducible.

use netcon_core::{Link, Machine, ProtocolBuilder, RuleProtocol, Simulation, StateId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A random protocol over `size` states with rules on distinct unordered
/// triples (so it is always well-formed).
fn arb_protocol() -> impl Strategy<Value = RuleProtocol> {
    (2u16..6, any::<u64>(), 1usize..10).prop_map(|(size, seed, rules)| {
        use rand::RngExt;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = ProtocolBuilder::new("random");
        let states: Vec<StateId> = (0..size).map(|i| b.state(format!("s{i}"))).collect();
        let mut used = std::collections::HashSet::new();
        for _ in 0..rules {
            let a = states[rng.random_range(0..states.len())];
            let c = states[rng.random_range(0..states.len())];
            let link = Link::from(rng.random_bool(0.5));
            let key = (a.min(c), a.max(c), link);
            if !used.insert(key) {
                continue;
            }
            let rhs = (
                states[rng.random_range(0..states.len())],
                states[rng.random_range(0..states.len())],
                Link::from(rng.random_bool(0.5)),
            );
            b.rule((a, c, link), rhs);
        }
        b.build().expect("distinct unordered triples are always valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// δ symmetry: querying (a, b) and (b, a) gives mirrored results.
    #[test]
    fn interact_is_symmetric(p in arb_protocol(), a in 0u16..6, b in 0u16..6, on in any::<bool>()) {
        let (a, b) = (
            StateId::new(a % p.size() as u16),
            StateId::new(b % p.size() as u16),
        );
        prop_assume!(a != b);
        let link = Link::from(on);
        let mut r1 = SmallRng::seed_from_u64(0);
        let mut r2 = SmallRng::seed_from_u64(0);
        let fwd = p.interact(&a, &b, link, &mut r1);
        let bwd = p.interact(&b, &a, link, &mut r2);
        match (fwd, bwd) {
            (None, None) => {}
            (Some((x, y, l)), Some((y2, x2, l2))) => {
                prop_assert_eq!((x, y, l), (x2, y2, l2));
            }
            other => prop_assert!(false, "asymmetric: {other:?}"),
        }
    }

    /// `can_affect` is exactly "interact returns Some" for deterministic
    /// protocols.
    #[test]
    fn can_affect_matches_interact(p in arb_protocol(), a in 0u16..6, b in 0u16..6, on in any::<bool>()) {
        let (a, b) = (
            StateId::new(a % p.size() as u16),
            StateId::new(b % p.size() as u16),
        );
        let link = Link::from(on);
        let mut rng = SmallRng::seed_from_u64(0);
        let effective = p.interact(&a, &b, link, &mut rng).is_some();
        prop_assert_eq!(p.can_affect(&a, &b, link), effective);
    }

    /// Effective interactions always change something.
    #[test]
    fn effective_means_changed(p in arb_protocol(), a in 0u16..6, b in 0u16..6, on in any::<bool>()) {
        let (a, b) = (
            StateId::new(a % p.size() as u16),
            StateId::new(b % p.size() as u16),
        );
        let link = Link::from(on);
        let mut rng = SmallRng::seed_from_u64(1);
        if let Some((x, y, l)) = p.interact(&a, &b, link, &mut rng) {
            prop_assert!((x, y, l) != (a, b, link), "identity reported effective");
        }
    }

    /// Whole executions are reproducible from the seed, step for step.
    #[test]
    fn runs_reproduce(p in arb_protocol(), n in 2usize..12, seed in any::<u64>(), steps in 1u64..300) {
        let mut s1 = Simulation::new(p.clone(), n, seed);
        let mut s2 = Simulation::new(p, n, seed);
        for _ in 0..steps {
            prop_assert_eq!(s1.step(), s2.step());
        }
        prop_assert_eq!(s1.population(), s2.population());
        prop_assert_eq!(s1.effective_steps(), s2.effective_steps());
    }

    /// Quiescent configurations stay quiescent forever.
    #[test]
    fn quiescence_is_permanent(p in arb_protocol(), n in 2usize..8, seed in any::<u64>()) {
        let mut sim = Simulation::new(p, n, seed);
        sim.run_for(2_000);
        if sim.is_quiescent() {
            let before = sim.population().clone();
            sim.run_for(2_000);
            prop_assert_eq!(sim.population(), &before);
        }
    }
}
