//! Property-based tests of the rule-table layer against the model's
//! definition of δ (§3.1): random well-formed protocols must behave as
//! symmetric partial functions, `can_affect` must agree with `interact`,
//! and executions must be reproducible.

use netcon_core::{Link, Machine, ProtocolBuilder, RuleProtocol, Simulation, StateId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A random protocol over `size` states with rules on distinct unordered
/// triples (so it is always well-formed).
fn arb_protocol() -> impl Strategy<Value = RuleProtocol> {
    (2u16..6, any::<u64>(), 1usize..10).prop_map(|(size, seed, rules)| {
        use rand::RngExt;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = ProtocolBuilder::new("random");
        let states: Vec<StateId> = (0..size).map(|i| b.state(format!("s{i}"))).collect();
        let mut used = std::collections::HashSet::new();
        for _ in 0..rules {
            let a = states[rng.random_range(0..states.len())];
            let c = states[rng.random_range(0..states.len())];
            let link = Link::from(rng.random_bool(0.5));
            let key = (a.min(c), a.max(c), link);
            if !used.insert(key) {
                continue;
            }
            let rhs = (
                states[rng.random_range(0..states.len())],
                states[rng.random_range(0..states.len())],
                Link::from(rng.random_bool(0.5)),
            );
            b.rule((a, c, link), rhs);
        }
        b.build().expect("distinct unordered triples are always valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// δ symmetry: querying (a, b) and (b, a) gives mirrored results.
    #[test]
    fn interact_is_symmetric(p in arb_protocol(), a in 0u16..6, b in 0u16..6, on in any::<bool>()) {
        let (a, b) = (
            StateId::new(a % p.size() as u16),
            StateId::new(b % p.size() as u16),
        );
        prop_assume!(a != b);
        let link = Link::from(on);
        let mut r1 = SmallRng::seed_from_u64(0);
        let mut r2 = SmallRng::seed_from_u64(0);
        let fwd = p.interact(&a, &b, link, &mut r1);
        let bwd = p.interact(&b, &a, link, &mut r2);
        match (fwd, bwd) {
            (None, None) => {}
            (Some((x, y, l)), Some((y2, x2, l2))) => {
                prop_assert_eq!((x, y, l), (x2, y2, l2));
            }
            other => prop_assert!(false, "asymmetric: {other:?}"),
        }
    }

    /// `can_affect` is exactly "interact returns Some" for deterministic
    /// protocols.
    #[test]
    fn can_affect_matches_interact(p in arb_protocol(), a in 0u16..6, b in 0u16..6, on in any::<bool>()) {
        let (a, b) = (
            StateId::new(a % p.size() as u16),
            StateId::new(b % p.size() as u16),
        );
        let link = Link::from(on);
        let mut rng = SmallRng::seed_from_u64(0);
        let effective = p.interact(&a, &b, link, &mut rng).is_some();
        prop_assert_eq!(p.can_affect(&a, &b, link), effective);
    }

    /// Effective interactions always change something.
    #[test]
    fn effective_means_changed(p in arb_protocol(), a in 0u16..6, b in 0u16..6, on in any::<bool>()) {
        let (a, b) = (
            StateId::new(a % p.size() as u16),
            StateId::new(b % p.size() as u16),
        );
        let link = Link::from(on);
        let mut rng = SmallRng::seed_from_u64(1);
        if let Some((x, y, l)) = p.interact(&a, &b, link, &mut rng) {
            prop_assert!((x, y, l) != (a, b, link), "identity reported effective");
        }
    }

    /// Whole executions are reproducible from the seed, step for step.
    #[test]
    fn runs_reproduce(p in arb_protocol(), n in 2usize..12, seed in any::<u64>(), steps in 1u64..300) {
        let mut s1 = Simulation::new(p.clone(), n, seed);
        let mut s2 = Simulation::new(p, n, seed);
        for _ in 0..steps {
            prop_assert_eq!(s1.step(), s2.step());
        }
        prop_assert_eq!(s1.population(), s2.population());
        prop_assert_eq!(s1.effective_steps(), s2.effective_steps());
    }

    /// Quiescent configurations stay quiescent forever.
    #[test]
    fn quiescence_is_permanent(p in arb_protocol(), n in 2usize..8, seed in any::<u64>()) {
        let mut sim = Simulation::new(p, n, seed);
        sim.run_for(2_000);
        if sim.is_quiescent() {
            let before = sim.population().clone();
            sim.run_for(2_000);
            prop_assert_eq!(sim.population(), &before);
        }
    }
}

// --- Scheduler fairness invariants -----------------------------------------

use netcon_core::{RoundRobin, Scheduler, ShuffledRounds, Uniform};

/// Collects `steps` pairs, asserting each is valid for population size `n`.
fn collect_valid_pairs<S: Scheduler>(
    mut s: S,
    n: usize,
    steps: usize,
    seed: u64,
) -> Result<Vec<(usize, usize)>, proptest::TestCaseError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(steps);
    for _ in 0..steps {
        let (u, v) = s.next_pair(n, &mut rng);
        prop_assert!(u != v, "{}: self-interaction ({u}, {u})", s.name());
        prop_assert!(u < n && v < n, "{}: pair ({u}, {v}) out of range n={n}", s.name());
        pairs.push((u.min(v), u.max(v)));
    }
    Ok(pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The uniform random scheduler only emits valid pairs, and within a
    /// coupon-collector window it visits *every* pair (fairness holds with
    /// probability 1; at 64·m draws a miss has probability ≈ m·e⁻⁶⁴).
    #[test]
    fn uniform_scheduler_is_fair(n in 2usize..10, seed in any::<u64>()) {
        let m = n * (n - 1) / 2;
        let pairs = collect_valid_pairs(Uniform, n, 64 * m, seed)?;
        let distinct: std::collections::HashSet<_> = pairs.into_iter().collect();
        prop_assert_eq!(distinct.len(), m, "some pair never scheduled within 64·m draws");
    }

    /// Round-robin is fair by construction: every window of m consecutive
    /// steps from the start covers every pair exactly once. (No seed input:
    /// the scheduler is deterministic and ignores its RNG.)
    #[test]
    fn round_robin_rounds_cover_all_pairs(n in 2usize..12) {
        let m = n * (n - 1) / 2;
        let pairs = collect_valid_pairs(RoundRobin::new(), n, 3 * m, 0)?;
        for round in pairs.chunks(m) {
            let distinct: std::collections::HashSet<_> = round.iter().copied().collect();
            prop_assert_eq!(distinct.len(), m, "a round-robin round repeated a pair");
        }
    }

    /// Shuffled-rounds is fair per round: each round of m steps is a
    /// permutation of the full pair set, for any RNG seed.
    #[test]
    fn shuffled_rounds_cover_all_pairs(n in 2usize..10, seed in any::<u64>()) {
        let m = n * (n - 1) / 2;
        let pairs = collect_valid_pairs(ShuffledRounds::new(), n, 4 * m, seed)?;
        for round in pairs.chunks(m) {
            let distinct: std::collections::HashSet<_> = round.iter().copied().collect();
            prop_assert_eq!(distinct.len(), m, "a shuffled round repeated a pair");
        }
    }

    /// Fair schedulers really drive progress: starting from one infected
    /// node, the one-way epidemic (a, b) → (a, a) must reach everybody
    /// under round-robin within n rounds — a scheduler that starves any
    /// pair would leave susceptible nodes behind.
    #[test]
    fn fair_schedulers_drive_one_way_epidemic_to_quiescence(n in 2usize..10, source in any::<u64>()) {
        let mut b = ProtocolBuilder::new("epidemic");
        let a = b.state("a");
        let q = b.state("b");
        b.initial(q);
        b.rule((a, q, Link::Off), (a, a, Link::Off));
        let p = b.build().expect("well-formed");
        // All susceptible except one random source.
        let mut pop = netcon_core::Population::new(n, q);
        pop.set_state((source % n as u64) as usize, a);
        let mut sim =
            Simulation::from_population_with_scheduler(p, pop, 0, RoundRobin::new());
        prop_assert!(!sim.is_quiescent(), "source node must have work to do");
        // Each round-robin round infects at least one node; n rounds suffice.
        let m = (n * (n - 1) / 2) as u64;
        sim.run_for(m * n as u64);
        prop_assert!(sim.is_quiescent(), "epidemic not done after n rounds");
        prop_assert_eq!(
            sim.population().count_where(|s| *s == a), n,
            "a fair scheduler must infect every node"
        );
    }
}
