//! The population partitions used by the generic constructors of §6.1.
//!
//! * [`ud_protocol`] — the U–D partition of Theorem 14 (Fig. 4): the
//!   single rule `(q0, q0, 0) → (qu, qd, 1)` matches every `U`-node to a
//!   distinct `D`-node.
//! * [`udm_protocol`] — the (U, D, M) partition of Theorem 15 (Figs. 7–8),
//!   with the paper's four rules verbatim: unsatisfied `U`-nodes (`q'u`)
//!   either grab an isolated node as their `M`-partner or take another
//!   unsatisfied `U`-node (whose own `D`-partner is then released back to
//!   `q0`).

use netcon_core::{Link, Population, ProtocolBuilder, RuleProtocol, StateId};

/// U–D partition: `q0`.
pub const UD_Q0: StateId = StateId::new(0);
/// U–D partition: `qu` (upper row of Fig. 4).
pub const UD_QU: StateId = StateId::new(1);
/// U–D partition: `qd` (lower row of Fig. 4).
pub const UD_QD: StateId = StateId::new(2);

/// Builds the U–D partition NET of Theorem 14.
#[must_use]
pub fn ud_protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("UD-Partition");
    let q0 = b.state("q0");
    let qu = b.state("qu");
    let qd = b.state("qd");
    b.rule((q0, q0, Link::Off), (qu, qd, Link::On));
    b.build().expect("the U-D partition rule is well-formed")
}

/// Certifies stability of the U–D partition: at most one `q0` remains
/// (two `q0`s would still have an applicable rule).
#[must_use]
pub fn ud_is_stable(pop: &Population<StateId>) -> bool {
    pop.count_where(|s| *s == UD_Q0) <= 1
}

/// Census of a U–D partition configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdCensus {
    /// Nodes in `qu`.
    pub u: usize,
    /// Nodes in `qd`.
    pub d: usize,
    /// Unpartitioned nodes still in `q0`.
    pub unmatched: usize,
    /// Whether every `qu` has exactly one active edge, to a `qd` (a
    /// perfect matching between U and D).
    pub matching_ok: bool,
}

/// Takes the census of a U–D partition configuration.
#[must_use]
pub fn ud_census(pop: &Population<StateId>) -> UdCensus {
    let u = pop.count_where(|s| *s == UD_QU);
    let d = pop.count_where(|s| *s == UD_QD);
    let unmatched = pop.count_where(|s| *s == UD_Q0);
    let matching_ok = pop.nodes_where(|s| *s == UD_QU).iter().all(|&x| {
        pop.edges().degree(x) == 1
            && pop
                .edges()
                .neighbors(x)
                .all(|y| *pop.state(y) == UD_QD && pop.edges().degree(y) == 1)
    });
    UdCensus {
        u,
        d,
        unmatched,
        matching_ok,
    }
}

/// U–D–M partition: `q0`.
pub const UDM_Q0: StateId = StateId::new(0);
/// U–D–M partition: `q'u` (unsatisfied U-node: has a D-partner but no
/// M-partner yet).
pub const UDM_QUP: StateId = StateId::new(1);
/// U–D–M partition: `qd`.
pub const UDM_QD: StateId = StateId::new(2);
/// U–D–M partition: `qu` (satisfied U-node).
pub const UDM_QU: StateId = StateId::new(3);
/// U–D–M partition: `qm`.
pub const UDM_QM: StateId = StateId::new(4);
/// U–D–M partition: `q'm` (an ex-`q'u` grabbed as an M-partner, still
/// holding its own D-partner, which it must release).
pub const UDM_QMP: StateId = StateId::new(5);

/// Builds the (U, D, M) partition NET of Theorem 15:
///
/// ```text
/// (q0,  q0, 0) → (q'u, qd, 1)
/// (q'u, q0, 0) → (qu,  qm, 1)
/// (q'u, q'u, 0) → (qu, q'm, 1)
/// (q'm, qd, 1) → (qm,  q0, 0)
/// ```
#[must_use]
pub fn udm_protocol() -> RuleProtocol {
    let mut b = ProtocolBuilder::new("UDM-Partition");
    let q0 = b.state("q0");
    let qup = b.state("q'u");
    let qd = b.state("qd");
    let qu = b.state("qu");
    let qm = b.state("qm");
    let qmp = b.state("q'm");
    b.rule((q0, q0, Link::Off), (qup, qd, Link::On));
    b.rule((qup, q0, Link::Off), (qu, qm, Link::On));
    b.rule((qup, qup, Link::Off), (qu, qmp, Link::On));
    b.rule((qmp, qd, Link::On), (qm, q0, Link::Off));
    b.build().expect("the Theorem 15 rules are well-formed")
}

/// Certifies stability of the U–D–M partition: every node settled into a
/// `(qu, qd, qm)` triple, except the residue the rules cannot touch —
/// one isolated `q0` (n ≡ 1 mod 3) or one matched `(q'u, qd)` pair
/// (n ≡ 2 mod 3).
#[must_use]
pub fn udm_is_stable(pop: &Population<StateId>) -> bool {
    let q0 = pop.count_where(|s| *s == UDM_Q0);
    let qup = pop.count_where(|s| *s == UDM_QUP);
    let qmp = pop.count_where(|s| *s == UDM_QMP);
    if qmp != 0 {
        return false; // a q'm still has a qd to release
    }
    match pop.n() % 3 {
        0 => q0 == 0 && qup == 0,
        1 => q0 == 1 && qup == 0,
        _ => q0 == 0 && qup == 1,
    }
}

/// Census of a U–D–M partition configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdmCensus {
    /// Satisfied `qu` nodes.
    pub u: usize,
    /// `qd` nodes.
    pub d: usize,
    /// `qm` nodes.
    pub m: usize,
    /// Residue: `q0` plus unsatisfied/partial nodes.
    pub residue: usize,
    /// Whether every `qu` is connected to exactly one `qd` and one `qm`
    /// (the shape of Fig. 7).
    pub triples_ok: bool,
}

/// Takes the census of a U–D–M configuration.
#[must_use]
pub fn udm_census(pop: &Population<StateId>) -> UdmCensus {
    let u = pop.count_where(|s| *s == UDM_QU);
    let d = pop.count_where(|s| *s == UDM_QD);
    let m = pop.count_where(|s| *s == UDM_QM);
    let residue = pop.n() - u - d - m;
    let triples_ok = pop.nodes_where(|s| *s == UDM_QU).iter().all(|&x| {
        let mut qd_nbrs = 0;
        let mut qm_nbrs = 0;
        for y in pop.edges().neighbors(x) {
            match *pop.state(y) {
                s if s == UDM_QD => qd_nbrs += 1,
                s if s == UDM_QM || s == UDM_QMP => qm_nbrs += 1,
                _ => return false,
            }
        }
        qd_nbrs == 1 && qm_nbrs == 1
    });
    UdmCensus {
        u,
        d,
        m,
        residue,
        triples_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::assert_stabilizes;
    use netcon_core::{Machine, Simulation};

    #[test]
    fn ud_partition_halves_the_population() {
        for n in [2, 3, 8, 17, 64] {
            let sim = assert_stabilizes(ud_protocol(), n, 7, ud_is_stable, 10_000_000, 20_000);
            let c = ud_census(sim.population());
            assert_eq!(c.u, n / 2, "|U| = ⌊n/2⌋");
            assert_eq!(c.d, n / 2, "|D| = ⌊n/2⌋");
            assert_eq!(c.unmatched, n % 2);
            assert!(c.matching_ok, "U–D matching must be perfect (Fig. 4)");
        }
    }

    #[test]
    fn udm_partition_thirds_the_population() {
        for n in [3, 4, 5, 6, 24, 48] {
            let sim =
                assert_stabilizes(udm_protocol(), n, 5, udm_is_stable, 100_000_000, 40_000);
            let c = udm_census(sim.population());
            assert_eq!(c.u, n / 3, "|U| = ⌊n/3⌋ (n={n})");
            assert_eq!(c.d, n / 3 + usize::from(n % 3 == 2), "qd count (n={n})");
            assert_eq!(c.m, n / 3, "|M| = ⌊n/3⌋ (n={n})");
            assert!(c.triples_ok, "every qu must own one qd and one qm (Fig. 7)");
        }
    }

    #[test]
    fn udm_fig8_walkthrough() {
        // The exact sequence of Fig. 8: three (q'u, qd) pairs resolve into
        // two complete triples by stealing.
        let p = udm_protocol();
        let mut pop = Population::new(6, UDM_Q0);
        // (i) three unsatisfied pairs: (0,1), (2,3), (4,5).
        for (u, d) in [(0, 1), (2, 3), (4, 5)] {
            pop.set_state(u, UDM_QUP);
            pop.set_state(d, UDM_QD);
            pop.edges_mut().activate(u, d);
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        use rand::SeedableRng;
        // (ii)–(iii): q'u(0) meets q'u(2): 0 satisfied, 2 becomes q'm.
        let (a, b, l) = p
            .interact(&UDM_QUP, &UDM_QUP, Link::Off, &mut rng)
            .expect("rule applies");
        assert_eq!(l, Link::On);
        assert!(
            (a == UDM_QU && b == UDM_QMP) || (a == UDM_QMP && b == UDM_QU),
            "one satisfied, one grabbed"
        );
        // (iv): q'm releases its qd back to q0.
        let (a, b, l) = p
            .interact(&UDM_QMP, &UDM_QD, Link::On, &mut rng)
            .expect("release applies");
        assert_eq!((a, b, l), (UDM_QM, UDM_Q0, Link::Off));
        // (v): the remaining q'u takes the released q0 as its qm.
        let (a, b, l) = p
            .interact(&UDM_QUP, &UDM_Q0, Link::Off, &mut rng)
            .expect("grab applies");
        assert_eq!((a, b, l), (UDM_QU, UDM_QM, Link::On));
    }

    #[test]
    fn ud_census_counts_are_conserved() {
        let mut sim = Simulation::new(ud_protocol(), 20, 3);
        for _ in 0..50 {
            sim.run_for(20);
            let c = ud_census(sim.population());
            assert_eq!(c.u + c.d + c.unmatched, 20);
            assert_eq!(c.u, c.d, "U and D grow in lockstep");
        }
    }
}
