//! Generic (universal) network constructors — Section 6 of Michail &
//! Spirakis (PODC 2014).
//!
//! The paper's headline universality results build every construction
//! from the same ingredients, all implemented here at the
//! pairwise-interaction level:
//!
//! * [`partition`] — the U–D partition of Theorem 14 (Fig. 4) and the
//!   U–D–M partition of Theorem 15 (Figs. 7–8), as verbatim rule lists;
//! * [`line_tm`] — simulating a Turing machine on a self-assembled line
//!   with the `l`/`r`/`t` direction marks of Fig. 5, validated
//!   step-for-step against the reference interpreter in `netcon-tm`;
//! * [`constructor`] — the full Theorem 14 pipeline: measure the line,
//!   draw `G₂ ∈ G(m, ½)` equiprobably on the useful space by marking
//!   matched pairs (Fig. 6), decide `G₂ ∈ L`, redraw on reject and
//!   release on accept (Fig. 3's loop);
//! * [`supernodes`] — Theorem 18: organizing the population into `k`
//!   named supernodes, each a line of `⌈log k⌉` nodes with its name
//!   stored bitwise in its members.
//!
//! # Example
//!
//! ```
//! use netcon_core::Simulation;
//! use netcon_tm::decider::Connected;
//! use netcon_universal::constructor::{
//!     drawn_graph, is_stable, UniversalConstructor,
//! };
//!
//! // 8 nodes: 4 columns of waste construct a connected graph on the
//! // other 4.
//! let pop = UniversalConstructor::initial_population(4);
//! let uc = UniversalConstructor::new(Box::new(Connected));
//! let mut sim = Simulation::from_population(uc, pop, 99);
//! let out = sim.run_until(is_stable, 1_000_000_000);
//! assert!(out.stabilized());
//! assert!(netcon_graph::components::is_connected(&drawn_graph(
//!     sim.population()
//! )));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constructor;
pub mod line_tm;
pub mod partition;
pub mod supernodes;
