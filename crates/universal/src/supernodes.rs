//! Supernodes — Theorem 18: partitioning the population into `2^j` named
//! lines ("supernodes") of `j` nodes each, for the largest completed
//! phase `j`.
//!
//! A single leader (elected by pairwise duels; the loser *reverts* its
//! whole component back to free nodes, exactly as in the theorem's proof)
//! builds the structure in phases. During phase `j` it extends every
//! existing line to length `j` and then creates as many new length-`j`
//! lines, doubling the line count; every completed operation assigns the
//! line its fresh name, `cname` in binary, stored bitwise in the line's
//! members (member at position `p` holds bit `p`). When the free nodes
//! run out the structure stalls — necessarily with at most one recruiting
//! endpoint waiting forever — and the last completed phase leaves
//! `k = 2^j` uniquely-named supernodes of `⌈log k⌉ = j` nodes.
//!
//! All operations are pairwise: the leader is directly connected to the
//! left endpoint of every line (the paper's star-of-lines layout);
//! extension/creation orders travel down a line as member-to-member task
//! marks, recruits attach free nodes at the right endpoint, and
//! acknowledgements travel back rewriting the name bits (rewriting on the
//! acknowledgement pass keeps names consistent if an operation stalls).
//!
//! As with the universal constructor, counters that the paper keeps in
//! the leader's line-distributed memory live in the leader/task states
//! here (`O(log n)` bits each; see DESIGN.md §6).

use netcon_core::{Link, Machine, Population};
use rand::{Rng, RngExt};

/// A task mark travelling along a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Task {
    /// Travel right to the current right endpoint (extension order).
    Extend {
        /// The name the line will take once extended.
        name: u32,
        /// The line's length after the extension.
        len: u16,
    },
    /// Wait at the right endpoint for a free node to attach.
    Recruit {
        /// The name being assigned.
        name: u32,
        /// The line's target length.
        len: u16,
    },
    /// Travel left rewriting name bits after a completed recruit.
    AckLeft {
        /// The name being assigned.
        name: u32,
        /// The line's new length.
        len: u16,
    },
    /// Parked at the left endpoint: completion report for the leader.
    Done {
        /// The line's new length.
        len: u16,
    },
    /// Reversion mark: travels right, then releases the line from the
    /// right end inwards.
    Revert,
}

/// A line member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    /// Position within the line (0 = left endpoint, adjacent to the
    /// leader).
    pub pos: u16,
    /// This member's bit of the line's name (bit `pos`).
    pub bit: bool,
    /// Whether this member is currently the right endpoint.
    pub is_right_end: bool,
    /// The line's completed length (maintained at the left endpoint
    /// only).
    pub line_len: u16,
    /// An in-flight task mark, if any.
    pub task: Option<Task>,
}

/// The operation a busy leader is waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Extending an existing line.
    Extend,
    /// Creating a new line.
    Create,
}

/// The (candidate) leader's bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnLeader {
    /// Target line length of the current phase.
    pub target: u16,
    /// Next name to assign (reset to 0 each phase).
    pub cname: u32,
    /// Completed lines currently attached.
    pub lines: u32,
    /// Extensions still to perform this phase.
    pub extends_left: u32,
    /// Creations still to perform this phase.
    pub creates_left: u32,
    /// The in-flight operation, if any.
    pub busy: Option<OpKind>,
}

impl SnLeader {
    /// A fresh candidate leader (phase 1: create two lines of length 1).
    #[must_use]
    pub fn fresh() -> Self {
        Self {
            target: 1,
            cname: 0,
            lines: 0,
            extends_left: 0,
            creates_left: 2,
            busy: None,
        }
    }
}

/// A loser leader reverting its component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wrecker {
    /// Lines still to revert (including any partial line).
    pub lines_left: u32,
}

/// A node state of the supernode organizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnState {
    /// A leader (every node starts as one, with an empty component).
    Leader(SnLeader),
    /// A line member.
    Member(Member),
    /// A loser reverting its component.
    Wrecker(Wrecker),
    /// A free (released or defeated) node, available for recruitment.
    Free,
}

/// The supernode organizer machine.
#[derive(Debug, Clone, Copy, Default)]
pub struct Supernodes;

enum Effect {
    None,
    Update(SnState, SnState, Link),
    NeedsCoin,
}

impl Supernodes {
    fn bit_of(name: u32, pos: u16) -> bool {
        name >> pos & 1 == 1
    }

    #[allow(clippy::too_many_lines)]
    fn try_interact(a: &SnState, b: &SnState, link: Link, coin: Option<bool>) -> Effect {
        use SnState as S;
        match (a, b) {
            // ---- Duels (over inactive edges) ----
            (S::Leader(x), S::Leader(y)) if link == Link::Off => {
                // The loser reverts; with identical bookkeeping the winner
                // is chosen by the model's symmetry coin.
                let (a_wins, need_coin) = if x == y {
                    match coin {
                        None => return Effect::NeedsCoin,
                        Some(c) => (c, true),
                    }
                } else {
                    // Deterministic tie-break: the more advanced leader
                    // wins, so progress is never reverted needlessly.
                    (
                        (x.target, x.lines, x.cname) >= (y.target, y.lines, y.cname),
                        false,
                    )
                };
                let _ = need_coin;
                let loser_to_state = |l: &SnLeader| {
                    let partial = u32::from(matches!(l.busy, Some(OpKind::Create)));
                    if l.lines + partial == 0 {
                        S::Free
                    } else {
                        S::Wrecker(Wrecker {
                            lines_left: l.lines + partial,
                        })
                    }
                };
                if a_wins {
                    Effect::Update(a.clone(), loser_to_state(x_or(x, y, false)), link)
                } else {
                    Effect::Update(loser_to_state(x_or(x, y, true)), b.clone(), link)
                }
            }
            // ---- Leader ↔ free node: start a creation ----
            (S::Leader(l), S::Free) | (S::Free, S::Leader(l)) if link == Link::Off => {
                let leader_first = matches!(a, S::Leader(_));
                if l.busy.is_some() || l.extends_left > 0 || l.creates_left == 0 {
                    return Effect::None;
                }
                let mut l2 = l.clone();
                l2.busy = Some(OpKind::Create);
                let name = l.cname;
                let len = l.target;
                let member = Member {
                    pos: 0,
                    bit: Self::bit_of(name, 0),
                    is_right_end: true,
                    line_len: if len == 1 { 1 } else { 0 },
                    task: if len == 1 {
                        Some(Task::Done { len: 1 })
                    } else {
                        Some(Task::Recruit { name, len })
                    },
                };
                pack(
                    leader_first,
                    S::Leader(l2),
                    S::Member(member),
                    Link::On,
                )
            }
            // ---- Leader ↔ left endpoint over the star edge ----
            (S::Leader(l), S::Member(m)) | (S::Member(m), S::Leader(l))
                if link == Link::On && m.pos == 0 =>
            {
                let leader_first = matches!(a, S::Leader(_));
                match &m.task {
                    // Completion report.
                    Some(Task::Done { len }) => {
                        let Some(op) = l.busy else {
                            return Effect::None;
                        };
                        let mut l2 = l.clone();
                        let mut m2 = m.clone();
                        m2.task = None;
                        l2.busy = None;
                        l2.cname += 1;
                        match op {
                            OpKind::Extend => l2.extends_left -= 1,
                            OpKind::Create => {
                                l2.creates_left -= 1;
                                l2.lines += 1;
                            }
                        }
                        debug_assert_eq!(*len, l2.target);
                        if l2.extends_left == 0 && l2.creates_left == 0 {
                            // Phase complete: double up.
                            l2.target += 1;
                            l2.cname = 0;
                            l2.extends_left = l2.lines;
                            l2.creates_left = l2.lines;
                        }
                        pack(leader_first, S::Leader(l2), S::Member(m2), link)
                    }
                    // Issue an extension order to an unextended line.
                    None if l.busy.is_none()
                        && l.extends_left > 0
                        && m.line_len + 1 == l.target =>
                    {
                        let mut l2 = l.clone();
                        l2.busy = Some(OpKind::Extend);
                        let mut m2 = m.clone();
                        let name = l.cname;
                        let len = l.target;
                        m2.task = Some(if m.is_right_end {
                            // Length-1 line: the left endpoint recruits
                            // directly.
                            Task::Recruit { name, len }
                        } else {
                            Task::Extend { name, len }
                        });
                        pack(leader_first, S::Leader(l2), S::Member(m2), link)
                    }
                    _ => Effect::None,
                }
            }
            // ---- Wrecker ↔ its left endpoints ----
            (S::Wrecker(w), S::Member(m)) | (S::Member(m), S::Wrecker(w))
                if link == Link::On && m.pos == 0 =>
            {
                let wrecker_first = matches!(a, S::Wrecker(_));
                if m.is_right_end {
                    // Single-member line: release it directly.
                    let w2 = if w.lines_left == 1 {
                        S::Free
                    } else {
                        S::Wrecker(Wrecker {
                            lines_left: w.lines_left - 1,
                        })
                    };
                    return pack(wrecker_first, w2, S::Free, Link::Off);
                }
                if m.task == Some(Task::Revert) {
                    return Effect::None;
                }
                let mut m2 = m.clone();
                m2.task = Some(Task::Revert);
                pack(
                    wrecker_first,
                    S::Wrecker(*w),
                    S::Member(m2),
                    link,
                )
            }
            // ---- Member ↔ member along a line ----
            (S::Member(x), S::Member(y)) if link == Link::On => {
                let x_first = true;
                let _ = x_first;
                // Normalize: handle task movement from either side.
                if let Some(e) = Self::member_step(x, y, true) {
                    return e;
                }
                if let Some(e) = Self::member_step(y, x, false) {
                    return e;
                }
                Effect::None
            }
            // ---- Recruiting endpoint ↔ free node ----
            (S::Member(m), S::Free) | (S::Free, S::Member(m)) if link == Link::Off => {
                let member_first = matches!(a, S::Member(_));
                let Some(Task::Recruit { name, len }) = &m.task else {
                    return Effect::None;
                };
                debug_assert!(m.is_right_end);
                let new_pos = m.pos + 1;
                let mut m2 = m.clone();
                m2.is_right_end = false;
                let recruit_done = new_pos + 1 == *len;
                let new_member = Member {
                    pos: new_pos,
                    bit: Self::bit_of(*name, new_pos),
                    is_right_end: true,
                    line_len: 0,
                    task: if recruit_done {
                        None
                    } else {
                        Some(Task::Recruit {
                            name: *name,
                            len: *len,
                        })
                    },
                };
                m2.task = if recruit_done {
                    if m2.pos == 0 {
                        m2.line_len = *len;
                        Some(Task::Done { len: *len })
                    } else {
                        Some(Task::AckLeft {
                            name: *name,
                            len: *len,
                        })
                    }
                } else {
                    None
                };
                pack(member_first, S::Member(m2), S::Member(new_member), Link::On)
            }
            _ => Effect::None,
        }
    }

    /// Task movement between adjacent members `from → to` (returns `None`
    /// if this ordered direction has nothing to do).
    fn member_step(from: &Member, to: &Member, from_first: bool) -> Option<Effect> {
        let task = from.task.as_ref()?;
        match task {
            Task::Extend { name, len } if to.pos == from.pos + 1 && to.task.is_none() => {
                let mut f2 = from.clone();
                f2.task = None;
                let mut t2 = to.clone();
                t2.task = Some(if to.is_right_end {
                    Task::Recruit {
                        name: *name,
                        len: *len,
                    }
                } else {
                    Task::Extend {
                        name: *name,
                        len: *len,
                    }
                });
                Some(pack(
                    from_first,
                    SnState::Member(f2),
                    SnState::Member(t2),
                    Link::On,
                ))
            }
            Task::AckLeft { name, len } if to.pos + 1 == from.pos => {
                let mut f2 = from.clone();
                f2.task = None;
                f2.bit = Self::bit_of(*name, f2.pos);
                let mut t2 = to.clone();
                t2.bit = Self::bit_of(*name, t2.pos);
                t2.task = Some(if t2.pos == 0 {
                    t2.line_len = *len;
                    Task::Done { len: *len }
                } else {
                    Task::AckLeft {
                        name: *name,
                        len: *len,
                    }
                });
                Some(pack(
                    from_first,
                    SnState::Member(f2),
                    SnState::Member(t2),
                    Link::On,
                ))
            }
            Task::Revert => {
                if from.is_right_end {
                    // Release the right endpoint, passing the mark inwards.
                    if to.pos + 1 != from.pos {
                        return None;
                    }
                    let mut t2 = to.clone();
                    t2.is_right_end = true;
                    t2.task = Some(Task::Revert);
                    Some(pack(
                        from_first,
                        SnState::Free,
                        SnState::Member(t2),
                        Link::Off,
                    ))
                } else {
                    // Still travelling right.
                    if to.pos != from.pos + 1 {
                        return None;
                    }
                    let mut f2 = from.clone();
                    f2.task = None;
                    let mut t2 = to.clone();
                    t2.task = Some(Task::Revert);
                    Some(pack(
                        from_first,
                        SnState::Member(f2),
                        SnState::Member(t2),
                        Link::On,
                    ))
                }
            }
            _ => None,
        }
    }
}

/// Returns the loser reference (helper for the duel rule).
fn x_or<'a>(x: &'a SnLeader, y: &'a SnLeader, a_loses: bool) -> &'a SnLeader {
    if a_loses {
        x
    } else {
        y
    }
}

fn pack(first_stays_first: bool, x: SnState, y: SnState, link: Link) -> Effect {
    if first_stays_first {
        Effect::Update(x, y, link)
    } else {
        Effect::Update(y, x, link)
    }
}

impl Machine for Supernodes {
    type State = SnState;

    fn name(&self) -> &str {
        "Supernodes"
    }

    fn initial_state(&self) -> SnState {
        SnState::Leader(SnLeader::fresh())
    }

    fn interact(
        &self,
        a: &SnState,
        b: &SnState,
        link: Link,
        rng: &mut dyn Rng,
    ) -> Option<(SnState, SnState, Link)> {
        let effect = match Self::try_interact(a, b, link, None) {
            Effect::NeedsCoin => {
                let c = rng.random_bool(0.5);
                Self::try_interact(a, b, link, Some(c))
            }
            e => e,
        };
        match effect {
            Effect::None | Effect::NeedsCoin => None,
            Effect::Update(a2, b2, l2) => {
                if a2 == *a && b2 == *b && l2 == link {
                    None
                } else {
                    Some((a2, b2, l2))
                }
            }
        }
    }

    fn can_affect(&self, a: &SnState, b: &SnState, link: Link) -> bool {
        !matches!(Self::try_interact(a, b, link, None), Effect::None)
    }
}

/// A reconstructed supernode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Supernode {
    /// The line's name, assembled from its members' bits (member at
    /// position `p` holds bit `p`).
    pub name: u32,
    /// Member node indices in position order.
    pub members: Vec<usize>,
}

/// Reconstructs all lines attached to the (unique) leader, in arbitrary
/// order; `completed_len` filters to lines of exactly that length.
#[must_use]
pub fn supernodes_of(pop: &Population<SnState>, completed_len: u16) -> Vec<Supernode> {
    let mut out = Vec::new();
    let lefts = pop.nodes_where(|s| matches!(s, SnState::Member(m) if m.pos == 0));
    for left in lefts {
        // Walk rightwards by positions.
        let mut members = vec![left];
        let mut cur = left;
        loop {
            let pos = match pop.state(cur) {
                SnState::Member(m) => m.pos,
                _ => unreachable!("line walk stays on members"),
            };
            let next = pop.edges().neighbors(cur).find(|&v| {
                matches!(pop.state(v), SnState::Member(m) if m.pos == pos + 1)
            });
            match next {
                Some(v) => {
                    members.push(v);
                    cur = v;
                }
                None => break,
            }
        }
        if members.len() != completed_len as usize {
            continue;
        }
        let mut name = 0u32;
        for (p, &u) in members.iter().enumerate() {
            if let SnState::Member(m) = pop.state(u) {
                if m.bit {
                    name |= 1 << p;
                }
            }
        }
        out.push(Supernode { name, members });
    }
    out
}

/// Certifies output stability: a unique leader, no wreckers, no free
/// nodes, and no task in flight other than a single waiting recruit.
#[must_use]
pub fn is_stable(pop: &Population<SnState>) -> bool {
    let mut leaders = 0usize;
    let mut recruits = 0usize;
    for s in pop.states() {
        match s {
            SnState::Leader(_) => leaders += 1,
            SnState::Wrecker(_) | SnState::Free => return false,
            SnState::Member(m) => match &m.task {
                None => {}
                Some(Task::Recruit { .. }) => recruits += 1,
                Some(_) => return false,
            },
        }
    }
    leaders == 1 && recruits <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::assert_stabilizes;
    use netcon_core::Simulation;

    /// n = 1 + j·2^j completes phase j exactly.
    fn exact_n(j: u32) -> usize {
        1 + (j as usize) * (1usize << j)
    }

    #[test]
    fn builds_named_supernodes_for_exact_sizes() {
        for (j, seeds) in [(1u32, 0..4u64), (2, 0..4), (3, 0..2)] {
            let n = exact_n(j);
            for seed in seeds {
                let sim = assert_stabilizes(
                    Supernodes,
                    n,
                    seed,
                    is_stable,
                    2_000_000_000,
                    60_000,
                );
                let pop = sim.population();
                let sns = supernodes_of(pop, j as u16);
                assert_eq!(
                    sns.len(),
                    1 << j,
                    "phase {j} must complete with 2^{j} lines (n={n}, seed={seed})"
                );
                let mut names: Vec<u32> = sns.iter().map(|s| s.name).collect();
                names.sort_unstable();
                let expect: Vec<u32> = (0..1u32 << j).collect();
                assert_eq!(names, expect, "names must be exactly 0..2^{j}");
                // Every line has j members with positions 0..j.
                for sn in &sns {
                    assert_eq!(sn.members.len(), j as usize);
                }
            }
        }
    }

    #[test]
    fn leftover_nodes_do_not_break_naming() {
        // n = exact(2) + 2: phase 2 completes; phase 3 stalls.
        let n = exact_n(2) + 2;
        let sim = assert_stabilizes(Supernodes, n, 3, is_stable, 2_000_000_000, 60_000);
        let sns = supernodes_of(sim.population(), 2);
        // Lines still at length 2 keep their phase-2 names; at most two
        // were already extended to length 3.
        let extended = supernodes_of(sim.population(), 3);
        assert_eq!(sns.len() + extended.len(), 4);
    }

    #[test]
    fn node_conservation_throughout() {
        let mut sim = Simulation::new(Supernodes, exact_n(2), 8);
        for _ in 0..200 {
            sim.run_for(300);
            assert_eq!(sim.population().n(), exact_n(2));
        }
    }

    #[test]
    fn reversion_frees_losers() {
        // Two built-up leaders: force a duel by construction. Build a
        // small scenario: one leader with one length-1 line, another the
        // same; let them fight and verify the loser's component reverts.
        let mut pop = Population::new(6, SnState::Free);
        let leader = |lines: u32| {
            SnState::Leader(SnLeader {
                target: 2,
                cname: 0,
                lines,
                extends_left: lines,
                creates_left: lines,
                busy: None,
            })
        };
        let member = || {
            SnState::Member(Member {
                pos: 0,
                bit: false,
                is_right_end: true,
                line_len: 1,
                task: None,
            })
        };
        pop.set_state(0, leader(1));
        pop.set_state(1, member());
        pop.edges_mut().activate(0, 1);
        pop.set_state(2, leader(1));
        pop.set_state(3, member());
        pop.edges_mut().activate(2, 3);
        // Nodes 4, 5 free.
        let sim = Simulation::from_population(Supernodes, pop, 5);
        let sim = netcon_core::testing::assert_stabilizes_sim(
            sim,
            is_stable,
            500_000_000,
            50_000,
        );
        // A single leader, and 6 = 1 + ... nodes: phase 2 needs 1+2·4=9,
        // so the survivor stalls mid-phase; everyone else is a member.
        let pop = sim.population();
        assert_eq!(
            pop.count_where(|s| matches!(s, SnState::Leader(_))),
            1
        );
        assert_eq!(pop.count_where(|s| matches!(s, SnState::Free)), 0);
    }

    #[test]
    fn stable_configuration_has_at_most_one_recruiter() {
        let sim = assert_stabilizes(Supernodes, 12, 1, is_stable, 2_000_000_000, 60_000);
        let recruiting = sim
            .population()
            .count_where(|s| matches!(s, SnState::Member(m) if matches!(m.task, Some(Task::Recruit { .. }))));
        assert!(recruiting <= 1);
    }
}
