//! Simulating a Turing machine on a self-assembled line (Fig. 5 of the
//! paper).
//!
//! The nodes of a spanning line are the TM's tape cells; the head is a
//! state component that hops between adjacent nodes through pairwise
//! interactions. Because the head initially has no sense of direction, it
//! first *wanders*: it moves away from `t` marks it drops behind itself
//! until it hits an endpoint (which becomes the **right** end), then
//! *returns*, dropping `r` marks, until it reaches the other endpoint
//! (the **left** end) — at which point every non-head node to its right
//! carries an `r` mark and the TM proper starts. From then on the
//! invariant "`l` marks to the head's left, `r` marks to its right" tells
//! the head which neighbour is which: a right move goes to the `r`-marked
//! neighbour and leaves an `l` mark behind, and symmetrically.
//!
//! The machine here implements exactly that protocol as a composite-state
//! [`Machine`]; its executions are validated step-for-step against the
//! reference interpreter in `netcon-tm`.

use netcon_core::{Link, Machine, Population};
use netcon_tm::machine::{Move, TuringMachine};
use rand::Rng;

/// Direction marks of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mark {
    /// Unmarked.
    None,
    /// `t` — dropped behind the wandering head.
    T,
    /// `l` — this node is to the head's left.
    L,
    /// `r` — this node is to the head's right.
    R,
}

/// Which end of the line a node turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The first tape cell.
    Left,
    /// The last tape cell.
    Right,
}

/// The head's phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Looking for the right endpoint, dropping `t` marks.
    Wander,
    /// Walking back to the left endpoint, dropping `r` marks.
    Return,
    /// Executing TM transitions.
    Run,
    /// Halted accepting.
    Accepted,
    /// Halted rejecting.
    Rejected,
    /// Stuck (missing transition) or out of tape (off an endpoint).
    Fault,
}

/// The head component: the simulated control of the TM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Head {
    /// The TM control state (meaningful in `Run` mode and later).
    pub tm_state: u16,
    /// The phase of the simulation.
    pub mode: Mode,
}

/// The state of one line node (one tape cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeState {
    /// The tape symbol stored in this cell.
    pub sym: u8,
    /// The direction mark.
    pub mark: Mark,
    /// Whether this node is an endpoint of the line.
    pub is_end: bool,
    /// Which end, once discovered.
    pub side: Option<Side>,
    /// The head, if currently on this node.
    pub head: Option<Head>,
}

impl NodeState {
    fn plain(sym: u8) -> Self {
        Self {
            sym,
            mark: Mark::None,
            is_end: false,
            side: None,
            head: None,
        }
    }
}

/// The line-TM simulation machine: wraps the [`TuringMachine`] to
/// simulate.
#[derive(Debug, Clone)]
pub struct LineTm {
    tm: TuringMachine,
}

impl LineTm {
    /// Wraps `tm` for simulation on a population line.
    #[must_use]
    pub fn new(tm: TuringMachine) -> Self {
        Self { tm }
    }

    /// The simulated machine.
    #[must_use]
    pub fn tm(&self) -> &TuringMachine {
        &self.tm
    }

    /// Deterministic core: the interaction of the head's node `h` with an
    /// adjacent node `o`. Returns updated `(h, o)` or `None` if
    /// ineffective.
    fn apply(&self, h: &NodeState, o: &NodeState) -> Option<(NodeState, NodeState)> {
        let head = h.head.expect("apply called with head on h");
        if o.head.is_some() {
            return None; // two heads never arise; defensive
        }
        let mut h2 = *h;
        let mut o2 = *o;
        match head.mode {
            Mode::Accepted | Mode::Rejected | Mode::Fault => None,
            Mode::Wander => {
                if o.mark == Mark::T {
                    return None; // don't walk back over our own trail
                }
                h2.head = None;
                h2.mark = Mark::T;
                o2.head = Some(Head {
                    tm_state: head.tm_state,
                    mode: if o.is_end { Mode::Return } else { Mode::Wander },
                });
                if o.is_end {
                    o2.side = Some(Side::Right);
                }
                Some((h2, o2))
            }
            Mode::Return => {
                if !matches!(o.mark, Mark::T | Mark::None) {
                    return None; // only move towards the unreturned side
                }
                h2.head = None;
                h2.mark = Mark::R;
                if o.is_end {
                    o2.side = Some(Side::Left);
                    o2.head = Some(Head {
                        tm_state: self.tm.start_state(),
                        mode: Mode::Run,
                    });
                } else {
                    o2.head = Some(Head {
                        tm_state: head.tm_state,
                        mode: Mode::Return,
                    });
                }
                o2.mark = Mark::None;
                Some((h2, o2))
            }
            Mode::Run => {
                let Some((next, write, mv)) = self.tm.transition(head.tm_state, h.sym) else {
                    h2.head = Some(Head {
                        tm_state: head.tm_state,
                        mode: Mode::Fault,
                    });
                    return Some((h2, o2));
                };
                let halt_mode = if self.tm.is_accept(next) {
                    Some(Mode::Accepted)
                } else if self.tm.is_reject(next) {
                    Some(Mode::Rejected)
                } else {
                    None
                };
                match mv {
                    Move::Stay => {
                        // Applies regardless of which neighbour we met.
                        h2.sym = write;
                        h2.head = Some(Head {
                            tm_state: next,
                            mode: halt_mode.unwrap_or(Mode::Run),
                        });
                        if (h2, o2) == (*h, *o) {
                            return None;
                        }
                        Some((h2, o2))
                    }
                    Move::Right => {
                        if h.is_end && h.side == Some(Side::Right) {
                            h2.sym = write;
                            h2.head = Some(Head {
                                tm_state: next,
                                mode: Mode::Fault, // out of space
                            });
                            return Some((h2, o2));
                        }
                        if o.mark != Mark::R {
                            return None; // wrong neighbour for a right move
                        }
                        h2.sym = write;
                        h2.head = None;
                        h2.mark = Mark::L;
                        o2.head = Some(Head {
                            tm_state: next,
                            mode: halt_mode.unwrap_or(Mode::Run),
                        });
                        o2.mark = Mark::None;
                        Some((h2, o2))
                    }
                    Move::Left => {
                        if h.is_end && h.side == Some(Side::Left) {
                            h2.sym = write;
                            h2.head = Some(Head {
                                tm_state: next,
                                mode: Mode::Fault, // out of space
                            });
                            return Some((h2, o2));
                        }
                        if o.mark != Mark::L {
                            return None;
                        }
                        h2.sym = write;
                        h2.head = None;
                        h2.mark = Mark::R;
                        o2.head = Some(Head {
                            tm_state: next,
                            mode: halt_mode.unwrap_or(Mode::Run),
                        });
                        o2.mark = Mark::None;
                        Some((h2, o2))
                    }
                }
            }
        }
    }
}

impl Machine for LineTm {
    type State = NodeState;

    fn name(&self) -> &str {
        "Line-TM"
    }

    fn initial_state(&self) -> NodeState {
        NodeState::plain(netcon_tm::machine::BLANK)
    }

    fn interact(
        &self,
        a: &NodeState,
        b: &NodeState,
        link: Link,
        _rng: &mut dyn Rng,
    ) -> Option<(NodeState, NodeState, Link)> {
        if link != Link::On {
            return None; // the head only moves along the line
        }
        if a.head.is_some() {
            let (a2, b2) = self.apply(a, b)?;
            Some((a2, b2, link))
        } else if b.head.is_some() {
            let (b2, a2) = self.apply(b, a)?;
            Some((a2, b2, link))
        } else {
            None
        }
    }

    fn can_affect(&self, a: &NodeState, b: &NodeState, link: Link) -> bool {
        if link != Link::On {
            return false;
        }
        if a.head.is_some() {
            self.apply(a, b).is_some()
        } else if b.head.is_some() {
            self.apply(b, a).is_some()
        } else {
            false
        }
    }

    fn can_affect_edge(&self, _a: &NodeState, _b: &NodeState, _link: Link) -> bool {
        false // the simulation never touches edges
    }
}

/// Builds a line population of `space` cells with `bits` written from
/// node 0, the head placed on node `head_pos` in `Wander` mode — the
/// unoriented starting configuration of Fig. 5.
///
/// # Panics
///
/// Panics if `space < 2`, the input does not fit, or `head_pos` is out of
/// range.
#[must_use]
pub fn unoriented_line(bits: &[bool], space: usize, head_pos: usize) -> Population<NodeState> {
    assert!(space >= 2, "a line needs at least two cells");
    assert!(bits.len() <= space, "input does not fit");
    assert!(head_pos < space, "head position out of range");
    let mut pop = Population::new(space, NodeState::plain(netcon_tm::machine::BLANK));
    for i in 0..space {
        let mut s = NodeState::plain(if i < bits.len() {
            u8::from(bits[i])
        } else {
            netcon_tm::machine::BLANK
        });
        s.is_end = i == 0 || i == space - 1;
        pop.set_state(i, s);
    }
    let mut h = *pop.state(head_pos);
    h.head = Some(Head {
        tm_state: 0,
        mode: Mode::Wander,
    });
    pop.set_state(head_pos, h);
    for i in 0..space - 1 {
        pop.edges_mut().activate(i, i + 1);
    }
    pop
}

/// Builds an already-oriented line: node 0 is the left end holding the
/// head in `Run` mode, every other node carries an `r` mark — the
/// configuration reached after Fig. 5's initialization, with the tape
/// laid out left-to-right in node order. Used to validate the run phase
/// cell-for-cell against the reference interpreter.
///
/// # Panics
///
/// Panics if `space < 2` or the input does not fit.
#[must_use]
pub fn oriented_line(tm: &TuringMachine, bits: &[bool], space: usize) -> Population<NodeState> {
    let mut pop = unoriented_line(bits, space, 0);
    for i in 0..space {
        let mut s = *pop.state(i);
        s.head = None;
        s.mark = if i == 0 { Mark::None } else { Mark::R };
        s.side = match i {
            0 => Some(Side::Left),
            i if i == space - 1 => Some(Side::Right),
            _ => None,
        };
        pop.set_state(i, s);
    }
    let mut h = *pop.state(0);
    h.head = Some(Head {
        tm_state: tm.start_state(),
        mode: Mode::Run,
    });
    pop.set_state(0, h);
    pop
}

/// Finds the head: `(node index, head)`.
///
/// # Panics
///
/// Panics if the population holds no head or more than one (an engine
/// bug).
#[must_use]
pub fn head_of(pop: &Population<NodeState>) -> (usize, Head) {
    let heads: Vec<usize> = pop.nodes_where(|s| s.head.is_some());
    assert_eq!(heads.len(), 1, "exactly one head must exist");
    (heads[0], pop.state(heads[0]).head.expect("head present"))
}

/// The tape contents in left-to-right order (follows the line from the
/// discovered left endpoint; falls back to node order if orientation has
/// not finished).
#[must_use]
pub fn tape_of(pop: &Population<NodeState>) -> Vec<u8> {
    let n = pop.n();
    let left = (0..n).find(|&u| pop.state(u).side == Some(Side::Left));
    let Some(start) = left else {
        return (0..n).map(|u| pop.state(u).sym).collect();
    };
    // Walk the line from the left endpoint.
    let mut order = vec![start];
    let mut prev = None;
    let mut cur = start;
    while order.len() < n {
        let next = pop
            .edges()
            .neighbors(cur)
            .find(|&v| Some(v) != prev)
            .expect("line is connected");
        order.push(next);
        prev = Some(cur);
        cur = next;
    }
    order.into_iter().map(|u| pop.state(u).sym).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::Simulation;
    use netcon_tm::machine::{Halt, Tape};
    use netcon_tm::machines::{all_zeros_machine, bit_flipper, parity_machine, zigzag_machine};

    fn run_to_halt(
        tm: TuringMachine,
        pop: Population<NodeState>,
        seed: u64,
    ) -> Population<NodeState> {
        let mut sim = Simulation::from_population(LineTm::new(tm), pop, seed);
        let done = |p: &Population<NodeState>| {
            p.states().iter().any(|s| {
                s.head.is_some_and(|h| {
                    matches!(h.mode, Mode::Accepted | Mode::Rejected | Mode::Fault)
                })
            })
        };
        let out = sim.run_until(done, 100_000_000);
        assert!(out.stabilized(), "line TM did not halt");
        sim.population().clone()
    }

    /// The reference verdict for the same machine and input.
    fn reference(tm: &TuringMachine, bits: &[bool], space: usize) -> (Halt, Vec<u8>) {
        let mut tape = Tape::from_bits(bits, space);
        let halt = tm.run(&mut tape, 1 << 24);
        (halt, tape.cells().to_vec())
    }

    fn mode_matches(halt: Halt, mode: Mode) -> bool {
        matches!(
            (halt, mode),
            (Halt::Accept, Mode::Accepted) | (Halt::Reject, Mode::Rejected)
        )
    }

    #[test]
    fn oriented_run_matches_reference_interpreter() {
        for (tm, bits) in [
            (parity_machine(), vec![true, false, true, true]),
            (parity_machine(), vec![true, true]),
            (all_zeros_machine(), vec![false, false, false]),
            (all_zeros_machine(), vec![false, true, false]),
            (bit_flipper(), vec![true, false, true]),
            (zigzag_machine(), vec![true, true, false, true]),
        ] {
            let space = bits.len() + 2;
            let (halt, ref_tape) = reference(&tm, &bits, space);
            for seed in 0..3 {
                let pop = oriented_line(&tm, &bits, space);
                let fin = run_to_halt(tm.clone(), pop, seed);
                let (_, head) = head_of(&fin);
                assert!(
                    mode_matches(halt, head.mode),
                    "{}: {halt:?} vs {:?}",
                    tm.name(),
                    head.mode
                );
                assert_eq!(
                    tape_of(&fin)[..],
                    ref_tape[..],
                    "{}: tape mismatch",
                    tm.name()
                );
            }
        }
    }

    #[test]
    fn orientation_discovers_both_endpoints() {
        // Blank input: the all-zeros machine accepts immediately once the
        // head is oriented; check the marks invariant at that moment.
        let tm = all_zeros_machine();
        for head_pos in [0, 2, 4] {
            for seed in 0..3 {
                let pop = unoriented_line(&[], 5, head_pos);
                let fin = run_to_halt(tm.clone(), pop, seed);
                let (at, head) = head_of(&fin);
                assert_eq!(head.mode, Mode::Accepted);
                let left = fin.state(at);
                assert!(left.is_end && left.side == Some(Side::Left));
                // One endpoint is Left, the other Right.
                let rights = fin.nodes_where(|s| s.side == Some(Side::Right));
                assert_eq!(rights.len(), 1);
                assert!(fin.state(rights[0]).is_end);
            }
        }
    }

    #[test]
    fn orientation_ends_with_r_marks_to_the_right() {
        // A machine that halts instantly on the blank tape: freeze right
        // after orientation and inspect the Fig. 5 invariant.
        let tm = all_zeros_machine();
        let pop = unoriented_line(&[], 6, 3);
        let fin = run_to_halt(tm, pop, 9);
        let (at, _) = head_of(&fin);
        for u in 0..fin.n() {
            if u != at {
                assert_eq!(
                    fin.state(u).mark,
                    Mark::R,
                    "all non-head nodes carry r after initialization"
                );
            }
        }
    }

    #[test]
    fn unoriented_run_accepts_like_reference_on_palindromic_input() {
        // Symmetric input: the verdict is independent of which end becomes
        // "left", so the unoriented simulation must agree with the
        // reference.
        let tm = parity_machine();
        let bits = [true, false, false, true]; // palindrome, even ones
        let (halt, _) = reference(&tm, &bits, 6);
        // Pad symmetrically so reversal also leaves blanks at both ends…
        // simpler: use exact-length tape.
        let (halt_exact, _) = reference(&tm, &bits, 5);
        assert_eq!(halt, halt_exact);
        for seed in 0..5 {
            let pop = unoriented_line(&bits, 4, 1);
            let fin = run_to_halt(tm.clone(), pop, seed);
            let (_, head) = head_of(&fin);
            // 4 cells, input fills the tape: machine walks off the end →
            // the reference reports OutOfSpace; the line head faults.
            // Use 5 cells instead for a clean accept.
            let _ = fin;
            let pop = unoriented_line(&bits, 5, 2);
            let fin = run_to_halt(tm.clone(), pop, seed);
            let (_, head5) = head_of(&fin);
            assert!(
                mode_matches(halt, head5.mode),
                "seed {seed}: {halt:?} vs {:?} (4-cell head was {:?})",
                head5.mode,
                head.mode
            );
        }
    }

    #[test]
    fn out_of_space_faults() {
        // parity machine on a full tape: it runs right past the input and
        // needs one blank; with none it must fault — same as the
        // reference's OutOfSpace.
        let tm = parity_machine();
        let bits = [true, true];
        let (halt, _) = reference(&tm, &bits, 2);
        assert_eq!(halt, Halt::OutOfSpace);
        let pop = oriented_line(&tm, &bits, 2);
        let fin = run_to_halt(tm, pop, 3);
        let (_, head) = head_of(&fin);
        assert_eq!(head.mode, Mode::Fault);
    }

    #[test]
    fn simulation_never_touches_edges() {
        let tm = zigzag_machine();
        let pop = unoriented_line(&[true, false, true], 5, 2);
        let before = pop.edges().clone();
        let mut sim = Simulation::from_population(LineTm::new(tm), pop, 4);
        sim.run_for(50_000);
        assert_eq!(*sim.population().edges(), before);
    }
}
