//! The universal constructor of Theorem 14 (Figs. 3, 4 and 6).
//!
//! Starting from the U–D configuration of Fig. 4 — a line on the `U`
//! nodes, each matched to a distinct `D` node — the machine:
//!
//! 1. **measures** its line: a token walks from the leader endpoint to the
//!    far endpoint and back, counting columns (this is how the simulated
//!    TM learns its space);
//! 2. **draws** a random graph `G₂ ∈ G(m, ½)` on the `D` nodes: for every
//!    column pair `(i, j)` a token walks out and marks the two matched
//!    `D` nodes (Fig. 6); when the two marked `D` nodes meet they flip a
//!    fair coin, set their edge accordingly, and report the outcome back
//!    up through the token — so each `D` edge receives exactly one coin
//!    toss and all `2^(m choose 2)` graphs are equiprobable;
//! 3. **decides** `G₂ ∈ L` with the language's decider (the TM layer —
//!    validated separately on the population line in
//!    [`line_tm`](crate::line_tm));
//! 4. on reject, simply **redraws** (the next sweep overwrites every
//!    edge with a fresh coin — Fig. 3's loop); on accept, **releases**:
//!    a final sweep deactivates every matching edge and moves the `D`
//!    nodes into the output state, after which the machine freezes.
//!
//! ## Fidelity notes (see DESIGN.md §6)
//!
//! * The token walks use the same `l`-mark trail mechanics as the head
//!   movement of Fig. 5: outbound tokens avoid the marked neighbour and
//!   leave marks behind; inbound tokens follow and clear them. Every
//!   individual movement is a pairwise interaction between adjacent
//!   nodes, exactly as in the paper.
//! * The paper stores the column counters in the line's distributed
//!   binary memory; here tokens and the leader carry them in their own
//!   state (`O(log n)` bits each, so the state space is polynomial rather
//!   than constant — the interaction pattern, and hence the dynamics, are
//!   unchanged). Likewise the leader accumulates the drawn adjacency bits
//!   and invokes the decider directly instead of re-running the
//!   separately-validated line TM.
//! * Reinitialization-on-line-growth is replaced by starting from the
//!   completed partition + line (sequential composition); the
//!   interaction-level partition and line protocols are exercised by
//!   their own crates.

use netcon_core::{Link, Machine, Population};
use netcon_graph::matrix::AdjMatrix;
use netcon_graph::EdgeSet;
use netcon_tm::decider::GraphLanguage;
use rand::{Rng, RngExt};

/// Mark on a `D` node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DMark {
    /// Unmarked.
    None,
    /// First endpoint of the pair being drawn.
    DrawFirst,
    /// Second endpoint of the pair being drawn.
    DrawSecond,
    /// Holds the drawn coin value until the token collects it.
    Report(bool),
    /// Released into the output network.
    Released,
}

/// A `D` (useful-space) node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DNode {
    /// Current mark.
    pub mark: DMark,
}

/// The walking token's job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Job {
    /// Walk out to the far endpoint, counting columns.
    MeasureOut {
        /// Columns counted so far (the current position).
        count: u32,
    },
    /// Carry the measured column count home.
    MeasureBack {
        /// Total number of non-leader columns.
        count: u32,
    },
    /// Walk out to column `i` and mark its `D` partner as first.
    DrawOutFirst {
        /// Hops left to the first column.
        remaining: u32,
        /// Further hops from the first to the second column.
        gap: u32,
    },
    /// Walk on to column `j` and mark its `D` partner as second.
    DrawOutSecond {
        /// Hops left to the second column.
        remaining: u32,
    },
    /// Parked at the second column, waiting for the coin report.
    DrawWait,
    /// Carry the drawn bit home.
    DrawBack {
        /// The coin value for the current pair.
        bit: bool,
    },
    /// Walk out releasing every column's `D` partner.
    ReleaseOut {
        /// Whether this node's partner has been released yet.
        released_here: bool,
    },
    /// Walk home after the release sweep.
    ReleaseBack,
}

/// The leader's phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Measuring the line (learning `m`).
    Measure,
    /// Drawing and deciding random graphs.
    Draw,
    /// Releasing the accepted graph.
    Release,
    /// Frozen: the output is stable.
    Done,
}

/// The leader node's bookkeeping (the paper keeps this in the line's
/// distributed memory; see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Leader {
    /// Current phase.
    pub phase: Phase,
    /// Number of columns (`m` = |U| = |D|), known after measuring.
    pub m: u32,
    /// First column of the pair being drawn.
    pub i: u32,
    /// Second column of the pair being drawn.
    pub j: u32,
    /// Adjacency bits collected this sweep, in pair order.
    pub bits: Vec<bool>,
    /// Whether the token is away.
    pub token_out: bool,
    /// Whether the leader's own `D` partner is marked for the current
    /// pair (used when `i == 0`).
    pub self_marked: bool,
    /// Whether the leader's own `D` partner has been released.
    pub self_released: bool,
    /// Completed draw sweeps that ended in rejection (Fig. 3 loop count).
    pub rejections: u32,
}

/// A non-leader `U` node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plain {
    /// Trail mark for token routing (the `l` marks of Fig. 5).
    pub trail: bool,
    /// The far (non-leader) endpoint of the line.
    pub is_far_end: bool,
    /// The token, when parked here.
    pub token: Option<Job>,
}

/// A node state of the universal constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UcState {
    /// The leader `U` endpoint.
    Leader(Leader),
    /// Any other `U` node.
    U(Plain),
    /// A useful-space node.
    D(DNode),
}

/// The universal-constructor machine for a target language.
pub struct UniversalConstructor {
    lang: Box<dyn GraphLanguage + Send + Sync>,
}

impl std::fmt::Debug for UniversalConstructor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UniversalConstructor")
            .field("lang", &self.lang.name())
            .finish()
    }
}

enum Effect {
    None,
    Update(UcState, UcState),
    NeedsCoin,
}

impl UniversalConstructor {
    /// Creates the constructor for `lang`.
    #[must_use]
    pub fn new(lang: Box<dyn GraphLanguage + Send + Sync>) -> Self {
        Self { lang }
    }

    /// The target language.
    #[must_use]
    pub fn language(&self) -> &(dyn GraphLanguage + Send + Sync) {
        &*self.lang
    }

    /// The Fig. 4 starting configuration on `2m` nodes: `U` nodes
    /// `0..m` in a line (leader at node 0), `D` node `m + c` matched to
    /// `U` node `c`.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2`.
    #[must_use]
    pub fn initial_population(m: usize) -> Population<UcState> {
        assert!(m >= 2, "the constructor needs at least two columns");
        let mut pop = Population::new(
            2 * m,
            UcState::D(DNode { mark: DMark::None }),
        );
        pop.set_state(
            0,
            UcState::Leader(Leader {
                phase: Phase::Measure,
                m: 0,
                i: 0,
                j: 0,
                bits: Vec::new(),
                token_out: false,
                self_marked: false,
                self_released: false,
                rejections: 0,
            }),
        );
        for c in 1..m {
            pop.set_state(
                c,
                UcState::U(Plain {
                    trail: false,
                    is_far_end: c == m - 1,
                    token: None,
                }),
            );
        }
        for c in 0..m - 1 {
            pop.edges_mut().activate(c, c + 1);
        }
        for c in 0..m {
            pop.edges_mut().activate(c, m + c);
        }
        pop
    }

    /// The next job the leader launches, given its phase and pair.
    fn launch_job(leader: &Leader) -> Job {
        match leader.phase {
            Phase::Measure => Job::MeasureOut { count: 1 },
            Phase::Draw => {
                if leader.i == 0 {
                    Job::DrawOutSecond { remaining: leader.j }
                } else {
                    Job::DrawOutFirst {
                        remaining: leader.i,
                        gap: leader.j - leader.i,
                    }
                }
            }
            Phase::Release => Job::ReleaseOut {
                released_here: false,
            },
            Phase::Done => unreachable!("no launches when done"),
        }
    }

    /// Handles token arrival bookkeeping at a plain node (far-end
    /// turnarounds, countdown-zero job switches).
    fn arrive(job: Job, node: &Plain) -> Job {
        match job {
            Job::MeasureOut { count } => {
                if node.is_far_end {
                    Job::MeasureBack { count }
                } else {
                    Job::MeasureOut { count }
                }
            }
            other => other,
        }
    }

    /// The leader absorbs a returning token.
    fn absorb(&self, leader: &Leader, job: &Job) -> Leader {
        let mut l = leader.clone();
        l.token_out = false;
        match job {
            Job::MeasureBack { count } => {
                l.m = count + 1;
                l.phase = Phase::Draw;
                l.i = 0;
                l.j = 1;
                l.bits.clear();
                l.self_marked = false;
            }
            Job::DrawBack { bit } => {
                l.bits.push(*bit);
                l.self_marked = false;
                // Advance the pair (i, j) in row-major upper-triangle
                // order; decide when the sweep completes.
                if l.j + 1 < l.m {
                    l.j += 1;
                } else if l.i + 2 < l.m {
                    l.i += 1;
                    l.j = l.i + 1;
                } else {
                    // Sweep complete: decide.
                    let m = l.m as usize;
                    let mut g = AdjMatrix::new(m);
                    let mut it = l.bits.iter();
                    for a in 0..m {
                        for b in (a + 1)..m {
                            if *it.next().expect("one bit per pair") {
                                g.set(a, b, true);
                            }
                        }
                    }
                    if self.lang.accepts(&g) {
                        l.phase = Phase::Release;
                        l.self_released = false;
                    } else {
                        l.rejections += 1;
                        l.i = 0;
                        l.j = 1;
                        l.bits.clear();
                    }
                }
            }
            Job::ReleaseBack => {
                l.phase = Phase::Done;
            }
            other => unreachable!("leader absorbed an outbound job {other:?}"),
        }
        l
    }

    /// Deterministic interaction logic. `coin` supplies the fair coin for
    /// the draw rule; when `None` and a coin is required, reports
    /// [`Effect::NeedsCoin`] (used by `can_affect`).
    #[allow(clippy::too_many_lines)]
    fn try_interact(&self, a: &UcState, b: &UcState, link: Link, coin: Option<bool>) -> Effect {
        use UcState as S;
        match (a, b) {
            // ---- Leader ↔ adjacent plain U node: launch / absorb ----
            (S::Leader(l), S::U(p)) | (S::U(p), S::Leader(l)) if link == Link::On => {
                let leader_first = matches!(a, S::Leader(_));
                // Absorb an inbound token parked next to the leader.
                if let Some(job) = &p.token {
                    // When the line has a single non-leader column, the
                    // far end is adjacent to the leader and the release
                    // sweep turns around at delivery.
                    let job = if p.is_far_end
                        && matches!(job, Job::ReleaseOut { released_here: true })
                    {
                        Job::ReleaseBack
                    } else {
                        job.clone()
                    };
                    let inbound = matches!(
                        job,
                        Job::MeasureBack { .. } | Job::DrawBack { .. } | Job::ReleaseBack
                    );
                    if inbound {
                        let l2 = self.absorb(l, &job);
                        let mut p2 = p.clone();
                        p2.token = None;
                        return pack(leader_first, S::Leader(l2), S::U(p2));
                    }
                    return Effect::None;
                }
                // Launch a token if the phase calls for one.
                let ready = match l.phase {
                    Phase::Measure => !l.token_out,
                    Phase::Draw => {
                        !l.token_out && (l.i != 0 || l.self_marked)
                    }
                    Phase::Release => !l.token_out && l.self_released,
                    Phase::Done => false,
                };
                if !ready {
                    return Effect::None;
                }
                let mut l2 = l.clone();
                l2.token_out = true;
                let mut p2 = p.clone();
                let job = Self::launch_job(l);
                // The launch is the hop onto column 1.
                let job = match job {
                    Job::MeasureOut { .. } => Job::MeasureOut { count: 1 },
                    Job::DrawOutFirst { remaining, gap } => Job::DrawOutFirst {
                        remaining: remaining - 1,
                        gap,
                    },
                    Job::DrawOutSecond { remaining } => Job::DrawOutSecond {
                        remaining: remaining - 1,
                    },
                    other => other,
                };
                p2.token = Some(Self::arrive(job, p));
                pack(leader_first, S::Leader(l2), S::U(p2))
            }
            // ---- Leader ↔ its D partner ----
            (S::Leader(l), S::D(d)) | (S::D(d), S::Leader(l)) if link == Link::On => {
                let leader_first = matches!(a, S::Leader(_));
                match l.phase {
                    Phase::Draw if l.i == 0 && !l.self_marked && d.mark == DMark::None => {
                        let mut l2 = l.clone();
                        l2.self_marked = true;
                        let d2 = DNode {
                            mark: DMark::DrawFirst,
                        };
                        pack(leader_first, S::Leader(l2), S::D(d2))
                    }
                    Phase::Release if !l.self_released => {
                        let mut l2 = l.clone();
                        l2.self_released = true;
                        let d2 = DNode {
                            mark: DMark::Released,
                        };
                        // The matching edge is dropped: the D node is free.
                        if leader_first {
                            Effect::Update(S::Leader(l2), S::D(d2))
                        } else {
                            Effect::Update(S::D(d2), S::Leader(l2))
                        }
                    }
                    _ => Effect::None,
                }
            }
            // ---- Token-holding U node ↔ its D partner ----
            (S::U(p), S::D(d)) | (S::D(d), S::U(p)) if link == Link::On => {
                let u_first = matches!(a, S::U(_));
                let Some(job) = &p.token else {
                    return Effect::None;
                };
                match job {
                    Job::DrawOutFirst { remaining: 0, gap } if d.mark == DMark::None => {
                        let mut p2 = p.clone();
                        p2.token = Some(Job::DrawOutSecond { remaining: *gap });
                        pack(u_first, S::U(p2), S::D(DNode { mark: DMark::DrawFirst }))
                    }
                    Job::DrawOutSecond { remaining: 0 } if d.mark == DMark::None => {
                        let mut p2 = p.clone();
                        p2.token = Some(Job::DrawWait);
                        pack(u_first, S::U(p2), S::D(DNode { mark: DMark::DrawSecond }))
                    }
                    Job::DrawWait => {
                        if let DMark::Report(bit) = d.mark {
                            let mut p2 = p.clone();
                            p2.token = Some(Job::DrawBack { bit });
                            pack(u_first, S::U(p2), S::D(DNode { mark: DMark::None }))
                        } else {
                            Effect::None
                        }
                    }
                    Job::ReleaseOut {
                        released_here: false,
                    } if d.mark != DMark::Released => {
                        let mut p2 = p.clone();
                        p2.token = Some(Job::ReleaseOut {
                            released_here: true,
                        });
                        pack(u_first, S::U(p2), S::D(DNode { mark: DMark::Released }))
                    }
                    _ => Effect::None,
                }
            }
            // ---- Two marked D nodes: the coin toss (Fig. 6) ----
            (S::D(d1), S::D(d2)) => {
                let pair = matches!(
                    (d1.mark, d2.mark),
                    (DMark::DrawFirst, DMark::DrawSecond) | (DMark::DrawSecond, DMark::DrawFirst)
                );
                if !pair {
                    return Effect::None;
                }
                let Some(bit) = coin else {
                    return Effect::NeedsCoin;
                };
                let mk = |mark: DMark| UcState::D(DNode { mark });
                let (first_a, report) = if d1.mark == DMark::DrawFirst {
                    (true, DMark::Report(bit))
                } else {
                    (false, DMark::Report(bit))
                };
                let (a2, b2) = if first_a {
                    (mk(DMark::None), mk(report))
                } else {
                    (mk(report), mk(DMark::None))
                };
                Effect::Update(a2, b2)
            }
            // ---- Token movement along the line ----
            (S::U(p1), S::U(p2)) if link == Link::On => {
                match (&p1.token, &p2.token) {
                    (Some(_), None) => self.move_token(p1, p2, true),
                    (None, Some(_)) => self.move_token(p2, p1, false),
                    _ => Effect::None,
                }
            }
            _ => Effect::None,
        }
    }

    /// Moves (or refuses to move) the token from `from` to `to`;
    /// `from_first` preserves argument order in the returned effect.
    fn move_token(&self, from: &Plain, to: &Plain, from_first: bool) -> Effect {
        let job = from.token.clone().expect("token present");
        let outbound_job = |job: &Job| -> Option<Job> {
            match job {
                Job::MeasureOut { count } => Some(Job::MeasureOut { count: count + 1 }),
                Job::DrawOutFirst { remaining, gap } if *remaining > 0 => {
                    Some(Job::DrawOutFirst {
                        remaining: remaining - 1,
                        gap: *gap,
                    })
                }
                Job::DrawOutSecond { remaining } if *remaining > 0 => {
                    Some(Job::DrawOutSecond {
                        remaining: remaining - 1,
                    })
                }
                Job::ReleaseOut { released_here } if *released_here => {
                    Some(Job::ReleaseOut {
                        released_here: false,
                    })
                }
                _ => None,
            }
        };
        // The far end turns a finished release sweep around.
        let (job, inbound) = if from.is_far_end
            && matches!(job, Job::ReleaseOut { released_here: true })
        {
            (Job::ReleaseBack, true)
        } else {
            let inbound = matches!(
                job,
                Job::MeasureBack { .. } | Job::DrawBack { .. } | Job::ReleaseBack
            );
            (job, inbound)
        };
        if inbound {
            // Move towards the leader: follow the trail.
            if !to.trail {
                return Effect::None;
            }
            let mut f2 = from.clone();
            f2.token = None;
            let mut t2 = to.clone();
            t2.trail = false;
            t2.token = Some(job);
            return pack2(from_first, f2, t2);
        }
        if from.is_far_end {
            return Effect::None; // nowhere further out
        }
        // Outbound: avoid the trail (it leads back to the leader); a
        // token with local work pending (marking or releasing its D
        // partner, or waiting for a report) does not move.
        if to.trail || to.token.is_some() {
            return Effect::None;
        }
        let Some(job2) = outbound_job(&job) else {
            return Effect::None;
        };
        let mut f2 = from.clone();
        f2.token = None;
        f2.trail = true;
        let mut t2 = to.clone();
        t2.token = Some(Self::arrive(job2, to));
        pack2(from_first, f2, t2)
    }
}

/// Orders an update according to the original argument order.
fn pack(first_is_first: bool, x: UcState, y: UcState) -> Effect {
    if first_is_first {
        Effect::Update(x, y)
    } else {
        Effect::Update(y, x)
    }
}

fn pack2(from_first: bool, f: Plain, t: Plain) -> Effect {
    pack(from_first, UcState::U(f), UcState::U(t))
}

impl Machine for UniversalConstructor {
    type State = UcState;

    fn name(&self) -> &str {
        "Universal-Constructor"
    }

    fn initial_state(&self) -> UcState {
        UcState::D(DNode { mark: DMark::None })
    }

    fn is_output(&self, state: &UcState) -> bool {
        matches!(
            state,
            UcState::D(DNode {
                mark: DMark::Released
            })
        )
    }

    fn interact(
        &self,
        a: &UcState,
        b: &UcState,
        link: Link,
        rng: &mut dyn Rng,
    ) -> Option<(UcState, UcState, Link)> {
        // Determine whether a coin is needed without consuming randomness.
        let effect = match self.try_interact(a, b, link, None) {
            Effect::NeedsCoin => {
                let bit = rng.random_bool(0.5);
                self.try_interact(a, b, link, Some(bit))
            }
            e => e,
        };
        match effect {
            Effect::None | Effect::NeedsCoin => None,
            Effect::Update(a2, b2) => {
                let link2 = next_link(a, b, &a2, &b2, link);
                if a2 == *a && b2 == *b && link2 == link {
                    None
                } else {
                    Some((a2, b2, link2))
                }
            }
        }
    }

    fn can_affect(&self, a: &UcState, b: &UcState, link: Link) -> bool {
        !matches!(self.try_interact(a, b, link, None), Effect::None)
    }
}

/// Computes the new edge state from the transition's semantics: the
/// coin-toss rule sets the edge to the drawn bit, and release transitions
/// drop the matching edge; everything else preserves it.
fn next_link(a: &UcState, b: &UcState, a2: &UcState, b2: &UcState, link: Link) -> Link {
    use UcState as S;
    // Draw coin: one D transitions to Report(bit): edge becomes bit.
    for d in [a2, b2] {
        if let S::D(DNode {
            mark: DMark::Report(bit),
        }) = d
        {
            // Only when the *other* side also changed from a Draw mark.
            let was_pair = matches!(
                (a, b),
                (S::D(DNode { mark: DMark::DrawFirst }), S::D(_))
                    | (S::D(_), S::D(DNode { mark: DMark::DrawFirst }))
            );
            if was_pair {
                return Link::from(*bit);
            }
        }
    }
    // Release: a D becomes Released while its partner edge was on.
    let released_now = |x: &UcState, x2: &UcState| {
        !matches!(
            x,
            S::D(DNode {
                mark: DMark::Released
            })
        ) && matches!(
            x2,
            S::D(DNode {
                mark: DMark::Released
            })
        )
    };
    if released_now(a, a2) || released_now(b, b2) {
        return Link::Off;
    }
    link
}

/// Extracts the graph currently drawn on the `D` nodes, relabelled to
/// `0..m` in column order (assumes the canonical initial layout of
/// [`UniversalConstructor::initial_population`]).
#[must_use]
pub fn drawn_graph(pop: &Population<UcState>) -> EdgeSet {
    let d: Vec<usize> = pop.nodes_where(|s| matches!(s, UcState::D(_)));
    pop.edges().induced(&d)
}

/// The leader's bookkeeping, for inspection in tests and benches.
#[must_use]
pub fn leader_of(pop: &Population<UcState>) -> Option<&Leader> {
    pop.states().iter().find_map(|s| match s {
        UcState::Leader(l) => Some(l),
        _ => None,
    })
}

/// Certifies output stability: the leader is done and every `D` node is
/// released (no rule touches edges or marks from here).
#[must_use]
pub fn is_stable(pop: &Population<UcState>) -> bool {
    leader_of(pop).is_some_and(|l| l.phase == Phase::Done)
        && pop.states().iter().all(|s| match s {
            UcState::D(d) => d.mark == DMark::Released,
            _ => true,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::testing::assert_stabilizes_sim;
    use netcon_core::Simulation;
    use netcon_graph::components::is_connected;
    use netcon_graph::properties::degree_histogram;
    use netcon_tm::decider::{Connected, GraphLanguage, MinEdges, TriangleFree};

    fn run(m: usize, lang: Box<dyn GraphLanguage + Send + Sync>, seed: u64) -> Population<UcState> {
        let pop = UniversalConstructor::initial_population(m);
        let sim = Simulation::from_population(UniversalConstructor::new(lang), pop, seed);
        let sim = assert_stabilizes_sim(sim, is_stable, 2_000_000_000, 100_000);
        sim.population().clone()
    }

    #[test]
    fn constructs_a_connected_graph() {
        for m in [2, 4, 6] {
            for seed in 0..3 {
                let pop = run(m, Box::new(Connected), seed);
                let g = drawn_graph(&pop);
                assert_eq!(g.n(), m);
                assert!(is_connected(&g), "accepted graph must be connected");
                // All matching edges are gone: D nodes only connect to D.
                let hist = degree_histogram(pop.edges());
                let _ = hist;
                for u in pop.nodes_where(|s| matches!(s, UcState::D(_))) {
                    for v in pop.edges().neighbors(u) {
                        assert!(
                            matches!(pop.state(v), UcState::D(_)),
                            "released D nodes must not touch the waste"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rejection_loop_redraws_until_accept() {
        // A language rejecting ~everything sparse: at least 60% of the
        // possible edges. For m = 4 (6 pairs) P[accept] per draw is small
        // enough that rejections are very likely across seeds.
        let mut any_rejections = false;
        for seed in 0..5 {
            let lang = MinEdges::new("dense-60", |n| n * (n - 1) * 3 / 10);
            let pop = run(4, Box::new(lang), seed);
            let l = leader_of(&pop).expect("leader exists");
            any_rejections |= l.rejections > 0;
            let g = drawn_graph(&pop);
            assert!(g.active_count() >= 4 * 3 * 3 / 10);
        }
        assert!(
            any_rejections,
            "a 60%-density threshold should force at least one redraw across 5 runs"
        );
    }

    #[test]
    fn accepts_triangle_free_graphs() {
        for seed in 0..3 {
            let pop = run(5, Box::new(TriangleFree), seed);
            let g = drawn_graph(&pop);
            assert!(TriangleFree.accepts(&netcon_graph::matrix::AdjMatrix::from(&g)));
        }
    }

    #[test]
    fn measure_phase_learns_the_line_length() {
        for m in [2, 3, 7] {
            let pop = UniversalConstructor::initial_population(m);
            let mut sim = Simulation::from_population(
                UniversalConstructor::new(Box::new(Connected)),
                pop,
                1,
            );
            let measured = |p: &Population<UcState>| {
                leader_of(p).is_some_and(|l| l.phase != Phase::Measure)
            };
            assert!(sim.run_until(measured, 50_000_000).stabilized());
            assert_eq!(
                leader_of(sim.population()).expect("leader").m,
                m as u32,
                "leader must learn m = {m}"
            );
        }
    }

    #[test]
    fn draws_are_equiprobable_ish() {
        // m = 2: a single pair; the drawn graph is one coin. Over many
        // seeds both outcomes must appear for the always-accepting
        // language.
        let lang_factory = || MinEdges::new("anything", |_| 0);
        let mut edge_on = 0;
        let trials = 24;
        for seed in 0..trials {
            let pop = run(2, Box::new(lang_factory()), seed);
            if drawn_graph(&pop).active_count() == 1 {
                edge_on += 1;
            }
        }
        assert!(
            edge_on > 3 && edge_on < trials - 3,
            "single-edge coin should be fair-ish: {edge_on}/{trials}"
        );
    }

    #[test]
    fn output_states_are_only_released_d_nodes() {
        let uc = UniversalConstructor::new(Box::new(Connected));
        assert!(uc.is_output(&UcState::D(DNode {
            mark: DMark::Released
        })));
        assert!(!uc.is_output(&UcState::D(DNode { mark: DMark::None })));
        assert!(!uc.is_output(&UcState::U(Plain {
            trail: false,
            is_far_end: false,
            token: None,
        })));
    }
}
