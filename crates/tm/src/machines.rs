//! Concrete example Turing machines.
//!
//! These small machines serve two purposes: they validate the interpreter
//! against hand-computable languages, and they are the reference workload
//! for the population-line TM simulation of `netcon-universal` (Fig. 5 of
//! the paper), which must agree with [`TuringMachine::run`] step by step.

use crate::machine::{Move, TmBuilder, TuringMachine, BLANK};

/// A machine accepting bitstrings with an even number of `1`s.
///
/// Scans right, tracking parity in the control state; accepts/rejects on
/// the first blank. For a graph in adjacency-matrix encoding this decides
/// "the graph has an even number of edges" (each edge contributes two
/// `1`s, so every graph is accepted — useful as an always-true language
/// with a non-trivial run).
#[must_use]
pub fn parity_machine() -> TuringMachine {
    let mut b = TmBuilder::new("even-ones", 3);
    let even = b.state("even");
    let odd = b.state("odd");
    b.rule(even, 0, even, 0, Move::Right);
    b.rule(even, 1, odd, 1, Move::Right);
    b.rule(even, BLANK, b.accept(), BLANK, Move::Stay);
    b.rule(odd, 0, odd, 0, Move::Right);
    b.rule(odd, 1, even, 1, Move::Right);
    b.rule(odd, BLANK, b.reject(), BLANK, Move::Stay);
    b.build(even)
}

/// A machine accepting the all-zero string (for graphs: the empty graph).
#[must_use]
pub fn all_zeros_machine() -> TuringMachine {
    let mut b = TmBuilder::new("all-zeros", 3);
    let scan = b.state("scan");
    b.rule(scan, 0, scan, 0, Move::Right);
    b.rule(scan, 1, b.reject(), 1, Move::Stay);
    b.rule(scan, BLANK, b.accept(), BLANK, Move::Stay);
    b.build(scan)
}

/// A machine that flips every bit of its input, then accepts — exercises
/// writes, used by the line-simulation tests to check tape mutation.
#[must_use]
pub fn bit_flipper() -> TuringMachine {
    let mut b = TmBuilder::new("bit-flipper", 3);
    let scan = b.state("scan");
    b.rule(scan, 0, scan, 1, Move::Right);
    b.rule(scan, 1, scan, 0, Move::Right);
    b.rule(scan, BLANK, b.accept(), BLANK, Move::Stay);
    b.build(scan)
}

/// A machine that zig-zags: walks to the last non-blank cell, comes back
/// to the first cell, then accepts. Exercises both head directions for
/// the line-simulation tests (the `l`/`r` direction marks of Fig. 5).
#[must_use]
pub fn zigzag_machine() -> TuringMachine {
    // Symbol 3 marks the left end once visited.
    let mut b = TmBuilder::new("zigzag", 4);
    let right = b.state("right");
    let left = b.state("left");
    // Mark the first cell so the return trip can find it.
    let start = b.state("start");
    for sym in [0u8, 1] {
        b.rule(start, sym, right, 3, Move::Right);
        b.rule(right, sym, right, sym, Move::Right);
        b.rule(left, sym, left, sym, Move::Left);
    }
    b.rule(start, BLANK, b.accept(), BLANK, Move::Stay);
    b.rule(right, BLANK, left, BLANK, Move::Left);
    b.rule(left, 3, b.accept(), 3, Move::Stay);
    b.build(start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Halt, Tape};

    #[test]
    fn parity_accepts_even_rejects_odd() {
        let tm = parity_machine();
        for (bits, want) in [
            (vec![], Halt::Accept),
            (vec![true], Halt::Reject),
            (vec![true, true], Halt::Accept),
            (vec![true, false, true, true], Halt::Reject),
            (vec![false, false], Halt::Accept),
        ] {
            let mut tape = Tape::from_bits(&bits, bits.len() + 2);
            assert_eq!(tm.run(&mut tape, 10_000), want, "bits {bits:?}");
        }
    }

    #[test]
    fn all_zeros() {
        let tm = all_zeros_machine();
        let mut t = Tape::from_bits(&[false, false, false], 5);
        assert_eq!(tm.run(&mut t, 100), Halt::Accept);
        let mut t = Tape::from_bits(&[false, true], 5);
        assert_eq!(tm.run(&mut t, 100), Halt::Reject);
    }

    #[test]
    fn flipper_flips() {
        let tm = bit_flipper();
        let mut t = Tape::from_bits(&[true, false, true], 5);
        assert_eq!(tm.run(&mut t, 100), Halt::Accept);
        assert_eq!(&t.cells()[..3], &[0, 1, 0]);
    }

    #[test]
    fn zigzag_returns_home() {
        let tm = zigzag_machine();
        let mut t = Tape::from_bits(&[true, true, false, true], 6);
        assert_eq!(tm.run(&mut t, 1_000), Halt::Accept);
        assert_eq!(t.head(), 0, "head must end on the first cell");
    }
}
