//! Graph languages and their deciders.
//!
//! A universal constructor (Theorems 14–17) repeatedly draws a random
//! graph and runs "the TM that decides `L`" on its adjacency-matrix
//! encoding. This module provides that decision layer:
//!
//! * [`GraphLanguage`] — the interface the constructors consume;
//! * [`TmLanguage`] — a language decided by a literal [`TuringMachine`]
//!   run on the adjacency-matrix bitstring;
//! * a library of programmatic languages (connectivity, edge counts,
//!   triangle-freeness, bipartiteness, regularity, Hamiltonicity) whose
//!   working memory is allocated through a metered [`Workspace`], so each
//!   decider's declared space bound is *checked at run time* rather than
//!   taken on faith.
//!
//! The paper's simulations allocate `Θ(n)`, `Θ(n²)` or `Θ(log n)` bits of
//! distributed memory; `DGS(f(l))` is the class of graph languages
//! decidable in space `f(l)` where `l = n²` is the input length. Each
//! language here declares its bound as a function of `n` and the
//! [`Workspace`] enforces it.

use netcon_graph::matrix::AdjMatrix;

use crate::machine::{Halt, Tape, TuringMachine};

/// A decidable graph language, as consumed by the universal constructors.
pub trait GraphLanguage {
    /// Display name of the language.
    fn name(&self) -> &str;

    /// The declared space bound, in bits, for inputs on `n` nodes.
    fn space_bound_bits(&self, n: usize) -> usize;

    /// Decides membership of the graph.
    fn accepts(&self, g: &AdjMatrix) -> bool;
}

/// A metered bit workspace: deciders allocate all working memory through
/// this and it panics if the declared bound is exceeded.
///
/// # Example
///
/// ```
/// use netcon_tm::decider::Workspace;
///
/// let mut ws = Workspace::with_budget(128);
/// let visited = ws.bits(64);
/// assert_eq!(visited.len(), 64);
/// assert_eq!(ws.used_bits(), 64);
/// ```
#[derive(Debug)]
pub struct Workspace {
    budget_bits: usize,
    used_bits: usize,
}

impl Workspace {
    /// Creates a workspace allowed to hand out at most `budget_bits` bits.
    #[must_use]
    pub fn with_budget(budget_bits: usize) -> Self {
        Self {
            budget_bits,
            used_bits: 0,
        }
    }

    /// Bits handed out so far.
    #[must_use]
    pub fn used_bits(&self) -> usize {
        self.used_bits
    }

    /// Allocates a zeroed bit vector.
    ///
    /// # Panics
    ///
    /// Panics if the allocation would exceed the budget — the decider's
    /// declared space bound is violated.
    pub fn bits(&mut self, count: usize) -> Vec<bool> {
        self.charge(count);
        vec![false; count]
    }

    /// Allocates a zeroed vector of `count` integers of `width` bits each
    /// (e.g. node indices need `⌈log₂ n⌉` bits).
    ///
    /// # Panics
    ///
    /// Panics if the allocation would exceed the budget.
    pub fn ints(&mut self, count: usize, width: u32) -> Vec<usize> {
        self.charge(count * width as usize);
        vec![0usize; count]
    }

    fn charge(&mut self, bits: usize) {
        self.used_bits += bits;
        assert!(
            self.used_bits <= self.budget_bits,
            "decider exceeded its declared space bound: {} > {} bits",
            self.used_bits,
            self.budget_bits
        );
    }
}

fn index_width(n: usize) -> u32 {
    usize::BITS - n.next_power_of_two().leading_zeros()
}

/// `L = {G : G is connected}` — decided by BFS in `O(n log n)` bits.
///
/// Connectivity is the paper's running example of a language whose
/// constructor runs in polynomial expected time, since `G(n, 1/2)` is
/// almost surely connected (Remark 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct Connected;

impl GraphLanguage for Connected {
    fn name(&self) -> &str {
        "connected"
    }

    fn space_bound_bits(&self, n: usize) -> usize {
        // visited bits + an explicit queue of node indices.
        n + n * index_width(n) as usize + 64
    }

    fn accepts(&self, g: &AdjMatrix) -> bool {
        let n = g.n();
        if n <= 1 {
            return true;
        }
        let mut ws = Workspace::with_budget(self.space_bound_bits(n));
        let mut visited = ws.bits(n);
        let mut queue = ws.ints(n, index_width(n));
        let (mut head, mut tail) = (0usize, 0usize);
        visited[0] = true;
        queue[tail] = 0;
        tail += 1;
        let mut seen = 1usize;
        while head < tail {
            let u = queue[head];
            head += 1;
            for v in 0..n {
                if g.get(u, v) && !visited[v] {
                    visited[v] = true;
                    queue[tail] = v;
                    tail += 1;
                    seen += 1;
                }
            }
        }
        seen == n
    }
}

/// `L = {G : |E(G)| ≥ threshold(n)}` — a density threshold, decided by a
/// single counting pass in `O(log n)` bits (it is in `DGS(O(log l))`).
///
/// With `threshold(n)` above the `G(n, ½)` mean `n(n−1)/4`, this language
/// rejects roughly half of all draws, which makes the universal
/// constructor's repeat-until-accept loop (Fig. 3) visible in benchmarks.
pub struct MinEdges {
    threshold: Box<dyn Fn(usize) -> usize + Send + Sync>,
    name: String,
}

impl std::fmt::Debug for MinEdges {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MinEdges").field("name", &self.name).finish()
    }
}

impl MinEdges {
    /// A language of graphs with at least `threshold(n)` edges.
    #[must_use]
    pub fn new(name: impl Into<String>, threshold: impl Fn(usize) -> usize + Send + Sync + 'static) -> Self {
        Self {
            threshold: Box::new(threshold),
            name: name.into(),
        }
    }
}

impl GraphLanguage for MinEdges {
    fn name(&self) -> &str {
        &self.name
    }

    fn space_bound_bits(&self, n: usize) -> usize {
        // One edge counter of O(log n²) bits.
        2 * index_width(n * n.max(2)) as usize + 64
    }

    fn accepts(&self, g: &AdjMatrix) -> bool {
        let n = g.n();
        let mut count = 0usize;
        for u in 0..n {
            for v in (u + 1)..n {
                if g.get(u, v) {
                    count += 1;
                }
            }
        }
        count >= (self.threshold)(n)
    }
}

/// `L = {G : G is triangle-free}` — decided by scanning all triples with
/// `O(log n)` bits of counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct TriangleFree;

impl GraphLanguage for TriangleFree {
    fn name(&self) -> &str {
        "triangle-free"
    }

    fn space_bound_bits(&self, n: usize) -> usize {
        3 * index_width(n) as usize + 64
    }

    fn accepts(&self, g: &AdjMatrix) -> bool {
        let n = g.n();
        for a in 0..n {
            for b in (a + 1)..n {
                if !g.get(a, b) {
                    continue;
                }
                for c in (b + 1)..n {
                    if g.get(a, c) && g.get(b, c) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// `L = {G : G is bipartite}` — decided by BFS 2-colouring in `O(n log n)`
/// bits.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bipartite;

impl GraphLanguage for Bipartite {
    fn name(&self) -> &str {
        "bipartite"
    }

    fn space_bound_bits(&self, n: usize) -> usize {
        2 * n + n * index_width(n) as usize + 64
    }

    fn accepts(&self, g: &AdjMatrix) -> bool {
        let n = g.n();
        let mut ws = Workspace::with_budget(self.space_bound_bits(n));
        let mut colored = ws.bits(n);
        let mut color = ws.bits(n);
        let mut queue = ws.ints(n, index_width(n));
        for start in 0..n {
            if colored[start] {
                continue;
            }
            colored[start] = true;
            let (mut head, mut tail) = (0usize, 0usize);
            queue[tail] = start;
            tail += 1;
            while head < tail {
                let u = queue[head];
                head += 1;
                for v in 0..n {
                    if !g.get(u, v) {
                        continue;
                    }
                    if !colored[v] {
                        colored[v] = true;
                        color[v] = !color[u];
                        queue[tail] = v;
                        tail += 1;
                    } else if color[v] == color[u] {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// `L = {G : G is k-regular}` — decided by per-node degree counting in
/// `O(log n)` bits.
#[derive(Debug, Clone, Copy)]
pub struct Regular(
    /// The required degree `k`.
    pub usize,
);

impl GraphLanguage for Regular {
    fn name(&self) -> &str {
        "k-regular"
    }

    fn space_bound_bits(&self, n: usize) -> usize {
        2 * index_width(n) as usize + 64
    }

    fn accepts(&self, g: &AdjMatrix) -> bool {
        let n = g.n();
        (0..n).all(|u| (0..n).filter(|&v| g.get(u, v)).count() == self.0)
    }
}

/// `L = {G : G has a Hamiltonian cycle}` — decided by backtracking in
/// `O(n log n)` bits (the path stack). Exponential *time*, but the
/// constructors only bound space, and `G(n, ½)` is a.s. Hamiltonian
/// (Remark 1 names hamiltonicity as a polynomial-expected-time example).
#[derive(Debug, Clone, Copy, Default)]
pub struct Hamiltonian;

impl GraphLanguage for Hamiltonian {
    fn name(&self) -> &str {
        "hamiltonian"
    }

    fn space_bound_bits(&self, n: usize) -> usize {
        n + n * index_width(n) as usize + 64
    }

    fn accepts(&self, g: &AdjMatrix) -> bool {
        let n = g.n();
        if n < 3 {
            return false;
        }
        let mut ws = Workspace::with_budget(self.space_bound_bits(n));
        let mut used = ws.bits(n);
        let mut path = ws.ints(n, index_width(n));
        used[0] = true;
        path[0] = 0;
        fn extend(
            g: &AdjMatrix,
            used: &mut [bool],
            path: &mut [usize],
            depth: usize,
        ) -> bool {
            let n = g.n();
            if depth == n {
                return g.get(path[n - 1], path[0]);
            }
            let prev = path[depth - 1];
            for v in 0..n {
                if !used[v] && g.get(prev, v) {
                    used[v] = true;
                    path[depth] = v;
                    if extend(g, used, path, depth + 1) {
                        return true;
                    }
                    used[v] = false;
                }
            }
            false
        }
        extend(g, &mut used, &mut path, 1)
    }
}

/// A language decided by running a literal Turing machine on the
/// adjacency-matrix bitstring — the most faithful realization of the
/// paper's "execute on G₁ the TM that decides L" (Fig. 3).
pub struct TmLanguage {
    tm: TuringMachine,
    /// Tape cells allowed for inputs on `n` nodes.
    space: Box<dyn Fn(usize) -> usize + Send + Sync>,
    fuel: u64,
}

impl std::fmt::Debug for TmLanguage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TmLanguage")
            .field("tm", &self.tm.name())
            .finish()
    }
}

impl TmLanguage {
    /// Wraps `tm` with a tape-size function and a step budget.
    #[must_use]
    pub fn new(
        tm: TuringMachine,
        space: impl Fn(usize) -> usize + Send + Sync + 'static,
        fuel: u64,
    ) -> Self {
        Self {
            tm,
            space: Box::new(space),
            fuel,
        }
    }

    /// The wrapped machine.
    #[must_use]
    pub fn machine(&self) -> &TuringMachine {
        &self.tm
    }

    /// The tape length allocated for inputs on `n` nodes.
    #[must_use]
    pub fn tape_space(&self, n: usize) -> usize {
        (self.space)(n)
    }
}

impl GraphLanguage for TmLanguage {
    fn name(&self) -> &str {
        self.tm.name()
    }

    fn space_bound_bits(&self, n: usize) -> usize {
        // Each tape cell holds one symbol of ⌈log₂ symbols⌉ bits.
        self.tape_space(n) * (u8::BITS - (self.tm.symbol_count() - 1).leading_zeros()) as usize
    }

    fn accepts(&self, g: &AdjMatrix) -> bool {
        let mut tape = Tape::from_bits(&g.to_bits(), self.tape_space(g.n()));
        matches!(self.tm.run(&mut tape, self.fuel), Halt::Accept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_graph::gnp::gnp_half;
    use netcon_graph::EdgeSet;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn m(es: &EdgeSet) -> AdjMatrix {
        AdjMatrix::from(es)
    }

    #[test]
    fn connected_decider() {
        let path = EdgeSet::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let split = EdgeSet::from_edges(4, [(0, 1), (2, 3)]);
        assert!(Connected.accepts(&m(&path)));
        assert!(!Connected.accepts(&m(&split)));
    }

    #[test]
    fn min_edges_decider() {
        let lang = MinEdges::new("dense", |n| n);
        let ring = EdgeSet::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)));
        assert!(lang.accepts(&m(&ring)), "5 edges >= 5");
        let sparse = EdgeSet::from_edges(5, [(0, 1)]);
        assert!(!lang.accepts(&m(&sparse)));
    }

    #[test]
    fn triangle_free_decider() {
        let square = EdgeSet::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(TriangleFree.accepts(&m(&square)));
        let tri = EdgeSet::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert!(!TriangleFree.accepts(&m(&tri)));
    }

    #[test]
    fn bipartite_decider() {
        let square = EdgeSet::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(Bipartite.accepts(&m(&square)));
        let penta = EdgeSet::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)));
        assert!(!Bipartite.accepts(&m(&penta)));
    }

    #[test]
    fn regular_decider() {
        let ring = EdgeSet::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)));
        assert!(Regular(2).accepts(&m(&ring)));
        assert!(!Regular(3).accepts(&m(&ring)));
    }

    #[test]
    fn hamiltonian_decider() {
        let ring = EdgeSet::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)));
        assert!(Hamiltonian.accepts(&m(&ring)));
        let star = EdgeSet::from_edges(5, (1..5).map(|v| (0, v)));
        assert!(!Hamiltonian.accepts(&m(&star)));
    }

    #[test]
    fn tm_language_parity_agrees_with_direct_count() {
        // Every adjacency matrix has an even number of 1s; the TM accepts
        // all graphs, including the empty one.
        let lang = TmLanguage::new(crate::machines::parity_machine(), |n| n * n + 2, 1 << 20);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = gnp_half(6, &mut rng);
            assert!(lang.accepts(&m(&g)));
        }
    }

    #[test]
    fn random_graph_statistics_sanity() {
        // G(16, 1/2) is almost surely connected; over 50 seeded draws all
        // should be connected and non-bipartite.
        let mut rng = SmallRng::seed_from_u64(11);
        let mut connected = 0;
        for _ in 0..50 {
            let g = gnp_half(16, &mut rng);
            if Connected.accepts(&m(&g)) {
                connected += 1;
            }
        }
        assert!(connected >= 48, "{connected}/50 connected draws");
    }

    #[test]
    #[should_panic(expected = "space bound")]
    fn workspace_budget_is_enforced() {
        let mut ws = Workspace::with_budget(10);
        let _ = ws.bits(11);
    }
}
