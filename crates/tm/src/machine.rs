//! The space-bounded single-tape Turing-machine interpreter.

use std::collections::HashMap;

/// Head movement of a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Move one cell left.
    Left,
    /// Move one cell right.
    Right,
    /// Stay on the current cell.
    Stay,
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halt {
    /// The machine entered its accepting state.
    Accept,
    /// The machine entered its rejecting state.
    Reject,
    /// The head tried to leave the allocated tape — the space bound was
    /// exceeded (the simulating line has no cell there).
    OutOfSpace,
    /// The step budget was exhausted before halting.
    OutOfFuel,
    /// No transition was defined for the current (state, symbol) pair.
    Stuck,
}

/// A fixed-length tape: the machine's entire allocated space.
///
/// Cell values are small symbol ids; [`Tape::from_bits`] encodes a
/// bitstring (e.g. an adjacency matrix row-major encoding) using symbols
/// `0`/`1` followed by blanks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tape {
    cells: Vec<u8>,
    head: usize,
}

/// The blank symbol: every machine built by [`TmBuilder`] reserves 2 as
/// blank (0 and 1 encode input bits).
pub const BLANK: u8 = 2;

impl Tape {
    /// A tape of `space` blank cells with the head at cell 0.
    ///
    /// # Panics
    ///
    /// Panics if `space == 0`.
    #[must_use]
    pub fn blank(space: usize) -> Self {
        assert!(space > 0, "a tape needs at least one cell");
        Self {
            cells: vec![BLANK; space],
            head: 0,
        }
    }

    /// A tape of `space` cells whose prefix holds `bits` (0/1 symbols),
    /// the rest blank; head at cell 0.
    ///
    /// # Panics
    ///
    /// Panics if `space < bits.len()` or `space == 0`.
    #[must_use]
    pub fn from_bits(bits: &[bool], space: usize) -> Self {
        assert!(space >= bits.len(), "input does not fit in the tape");
        let mut t = Self::blank(space);
        for (i, &b) in bits.iter().enumerate() {
            t.cells[i] = u8::from(b);
        }
        t
    }

    /// The symbol under the head.
    #[must_use]
    pub fn read(&self) -> u8 {
        self.cells[self.head]
    }

    /// The head position.
    #[must_use]
    pub fn head(&self) -> usize {
        self.head
    }

    /// The tape contents.
    #[must_use]
    pub fn cells(&self) -> &[u8] {
        &self.cells
    }
}

/// A deterministic single-tape Turing machine with named states and a
/// dense transition table.
///
/// Build with [`TmBuilder`]; run with [`TuringMachine::run`].
#[derive(Debug, Clone)]
pub struct TuringMachine {
    name: String,
    state_names: Vec<String>,
    symbols: u8,
    start: u16,
    accept: u16,
    reject: u16,
    /// `delta[state * symbols + symbol]`.
    delta: Vec<Option<(u16, u8, Move)>>,
}

impl TuringMachine {
    /// The machine's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of control states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.state_names.len()
    }

    /// Number of tape symbols.
    #[must_use]
    pub fn symbol_count(&self) -> u8 {
        self.symbols
    }

    /// The start state id.
    #[must_use]
    pub fn start_state(&self) -> u16 {
        self.start
    }

    /// Whether `state` is the accept state.
    #[must_use]
    pub fn is_accept(&self, state: u16) -> bool {
        state == self.accept
    }

    /// Whether `state` is the reject state.
    #[must_use]
    pub fn is_reject(&self, state: u16) -> bool {
        state == self.reject
    }

    /// The transition for `(state, symbol)`, if any.
    #[must_use]
    pub fn transition(&self, state: u16, symbol: u8) -> Option<(u16, u8, Move)> {
        self.delta[state as usize * self.symbols as usize + symbol as usize]
    }

    /// Runs the machine on `tape` for at most `fuel` steps.
    pub fn run(&self, tape: &mut Tape, fuel: u64) -> Halt {
        let mut state = self.start;
        for _ in 0..fuel {
            if state == self.accept {
                return Halt::Accept;
            }
            if state == self.reject {
                return Halt::Reject;
            }
            let sym = tape.read();
            let Some((next, write, mv)) = self.transition(state, sym) else {
                return Halt::Stuck;
            };
            tape.cells[tape.head] = write;
            state = next;
            match mv {
                Move::Stay => {}
                Move::Left => {
                    if tape.head == 0 {
                        return Halt::OutOfSpace;
                    }
                    tape.head -= 1;
                }
                Move::Right => {
                    if tape.head + 1 == tape.cells.len() {
                        return Halt::OutOfSpace;
                    }
                    tape.head += 1;
                }
            }
        }
        if state == self.accept {
            Halt::Accept
        } else if state == self.reject {
            Halt::Reject
        } else {
            Halt::OutOfFuel
        }
    }

    /// Executes a single step from `(state, head)` on `tape`, returning
    /// the next control state. Exposed so the population-line simulation
    /// in `netcon-universal` can drive the same machine one interaction
    /// at a time and be checked against [`run`](Self::run).
    ///
    /// Returns `None` when no transition is defined.
    #[must_use]
    pub fn step(&self, state: u16, tape: &mut Tape) -> Option<(u16, Halt)> {
        if state == self.accept {
            return Some((state, Halt::Accept));
        }
        if state == self.reject {
            return Some((state, Halt::Reject));
        }
        let sym = tape.read();
        let (next, write, mv) = self.transition(state, sym)?;
        tape.cells[tape.head] = write;
        match mv {
            Move::Stay => {}
            Move::Left => {
                if tape.head == 0 {
                    return Some((next, Halt::OutOfSpace));
                }
                tape.head -= 1;
            }
            Move::Right => {
                if tape.head + 1 == tape.cells.len() {
                    return Some((next, Halt::OutOfSpace));
                }
                tape.head += 1;
            }
        }
        Some((next, Halt::OutOfFuel)) // OutOfFuel = "still running"
    }
}

/// Builder for [`TuringMachine`]s with named states.
///
/// Symbols are raw `u8` ids: by convention `0`/`1` are the input bits and
/// [`BLANK`] (= 2) is the blank; machines may use further symbols as
/// markers.
///
/// # Example
///
/// ```
/// use netcon_tm::machine::{Halt, Move, Tape, TmBuilder, BLANK};
///
/// // Accept iff the input starts with a 1.
/// let mut b = TmBuilder::new("starts-with-one", 3);
/// let s = b.state("scan");
/// b.rule(s, 1, b.accept(), 1, Move::Stay);
/// b.rule(s, 0, b.reject(), 0, Move::Stay);
/// b.rule(s, BLANK, b.reject(), BLANK, Move::Stay);
/// let tm = b.build(s);
/// assert_eq!(tm.run(&mut Tape::from_bits(&[true], 4), 100), Halt::Accept);
/// ```
#[derive(Debug)]
pub struct TmBuilder {
    name: String,
    symbols: u8,
    state_names: Vec<String>,
    by_name: HashMap<String, u16>,
    rules: Vec<(u16, u8, u16, u8, Move)>,
}

impl TmBuilder {
    /// Creates a builder for a machine over `symbols` tape symbols
    /// (`0..symbols`); `accept`/`reject` states are pre-declared.
    ///
    /// # Panics
    ///
    /// Panics if `symbols < 3` (inputs need 0, 1 and blank).
    #[must_use]
    pub fn new(name: impl Into<String>, symbols: u8) -> Self {
        assert!(symbols >= 3, "need at least symbols 0, 1 and blank");
        let mut b = Self {
            name: name.into(),
            symbols,
            state_names: Vec::new(),
            by_name: HashMap::new(),
            rules: Vec::new(),
        };
        let _ = b.state("accept");
        let _ = b.state("reject");
        b
    }

    /// The accept state.
    #[must_use]
    pub fn accept(&self) -> u16 {
        0
    }

    /// The reject state.
    #[must_use]
    pub fn reject(&self) -> u16 {
        1
    }

    /// Declares (or looks up) a control state.
    pub fn state(&mut self, name: impl Into<String>) -> u16 {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        let id = u16::try_from(self.state_names.len()).expect("too many states");
        self.by_name.insert(name.clone(), id);
        self.state_names.push(name);
        id
    }

    /// Adds the transition `(state, read) → (next, write, move)`.
    pub fn rule(&mut self, state: u16, read: u8, next: u16, write: u8, mv: Move) -> &mut Self {
        self.rules.push((state, read, next, write, mv));
        self
    }

    /// Finalizes the machine with the given start state.
    ///
    /// # Panics
    ///
    /// Panics if a rule references an undeclared state/symbol or redefines
    /// a `(state, symbol)` pair.
    #[must_use]
    pub fn build(&self, start: u16) -> TuringMachine {
        let n = self.state_names.len();
        let mut delta = vec![None; n * self.symbols as usize];
        for &(s, r, next, w, mv) in &self.rules {
            assert!((s as usize) < n && (next as usize) < n, "undeclared state");
            assert!(r < self.symbols && w < self.symbols, "undeclared symbol");
            let slot = &mut delta[s as usize * self.symbols as usize + r as usize];
            assert!(
                slot.is_none(),
                "duplicate rule for ({}, {r})",
                self.state_names[s as usize]
            );
            *slot = Some((next, w, mv));
        }
        TuringMachine {
            name: self.name.clone(),
            state_names: self.state_names.clone(),
            symbols: self.symbols,
            start,
            accept: 0,
            reject: 1,
            delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tape_roundtrip() {
        let t = Tape::from_bits(&[true, false, true], 5);
        assert_eq!(t.cells(), &[1, 0, 1, BLANK, BLANK]);
        assert_eq!(t.read(), 1);
    }

    #[test]
    fn out_of_space_is_detected() {
        // A machine that runs right forever.
        let mut b = TmBuilder::new("runner", 3);
        let s = b.state("go");
        for sym in 0..3 {
            b.rule(s, sym, s, sym, Move::Right);
        }
        let tm = b.build(s);
        let mut tape = Tape::blank(4);
        assert_eq!(tm.run(&mut tape, 100), Halt::OutOfSpace);
        // And left off the start cell as well.
        let mut b = TmBuilder::new("lefty", 3);
        let s = b.state("go");
        b.rule(s, BLANK, s, BLANK, Move::Left);
        let tm = b.build(s);
        assert_eq!(tm.run(&mut Tape::blank(4), 100), Halt::OutOfSpace);
    }

    #[test]
    fn fuel_exhaustion() {
        let mut b = TmBuilder::new("spinner", 3);
        let s = b.state("spin");
        b.rule(s, BLANK, s, BLANK, Move::Stay);
        let tm = b.build(s);
        assert_eq!(tm.run(&mut Tape::blank(2), 10), Halt::OutOfFuel);
    }

    #[test]
    fn stuck_on_missing_rule() {
        let mut b = TmBuilder::new("partial", 3);
        let s = b.state("s");
        b.rule(s, BLANK, s, BLANK, Move::Stay);
        let tm = b.build(s);
        assert_eq!(tm.run(&mut Tape::from_bits(&[true], 2), 10), Halt::Stuck);
    }

    #[test]
    fn step_matches_run() {
        let tm = crate::machines::parity_machine();
        let bits = [true, true, false, true];
        let mut t1 = Tape::from_bits(&bits, 8);
        let expect = tm.run(&mut t1, 1_000);
        let mut t2 = Tape::from_bits(&bits, 8);
        let mut state = tm.start_state();
        let mut result = Halt::OutOfFuel;
        for _ in 0..1_000 {
            let (next, halt) = tm.step(state, &mut t2).expect("no stuck");
            state = next;
            if halt != Halt::OutOfFuel {
                result = halt;
                break;
            }
        }
        assert_eq!(result, expect);
        assert_eq!(t1, t2, "step-wise execution matches batch execution");
    }

    #[test]
    #[should_panic(expected = "duplicate rule")]
    fn duplicate_rules_rejected() {
        let mut b = TmBuilder::new("dup", 3);
        let s = b.state("s");
        b.rule(s, 0, s, 0, Move::Stay);
        b.rule(s, 0, s, 1, Move::Stay);
        let _ = b.build(s);
    }
}
