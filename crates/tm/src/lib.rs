//! Space-bounded Turing-machine substrate for the universal constructors
//! of Section 6.
//!
//! The generic constructors of the paper organize part of the population
//! into a line that simulates a space-bounded TM deciding a graph language
//! `L ∈ DGS(f(l))`, where `l = Θ(n²)` is the length of the adjacency-
//! matrix encoding of the candidate graph. This crate provides:
//!
//! * [`machine`] — a single-tape TM interpreter with an explicit space
//!   bound (the tape *is* the allocated space; falling off either end is
//!   an out-of-space fault, exactly the constraint the simulating line
//!   imposes), plus a builder for writing machines by hand;
//! * [`machines`] — concrete example machines (bit-parity, all-zeros) used
//!   to validate both the interpreter and the population-line simulation
//!   in `netcon-universal`;
//! * [`decider`] — the [`GraphLanguage`](decider::GraphLanguage) interface
//!   consumed by the universal constructors, with a library of languages
//!   (connectivity, edge-count thresholds, triangle-freeness,
//!   bipartiteness, regularity, Hamiltonicity) whose workspace use is
//!   metered against a declared space bound.
//!
//! # Example
//!
//! ```
//! use netcon_tm::machine::{Halt, Tape};
//! use netcon_tm::machines::parity_machine;
//!
//! let tm = parity_machine();
//! // 3 ones → odd → reject; input written as bits, one cell each.
//! let mut tape = Tape::from_bits(&[true, false, true, true], 8);
//! assert_eq!(tm.run(&mut tape, 10_000), Halt::Reject);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decider;
pub mod machine;
pub mod machines;
