//! Plain-text table rendering for the bench harness reports.

/// A simple left-aligned text table.
///
/// # Example
///
/// ```
/// use netcon_analysis::table::TextTable;
///
/// let mut t = TextTable::new(&["protocol", "states"]);
/// t.row(&["Global-Star", "2"]);
/// let s = t.render();
/// assert!(s.contains("Global-Star"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are dropped.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| (*s).to_owned()).collect());
        self
    }

    /// Renders the table with a separator line under the header.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for i in 0..cols {
                let cell = cells.get(i).map_or("", String::as_str);
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_owned()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["a", "bbbb"]);
        t.row(&["xxxxx", "y"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a      bbbb"));
        assert!(lines[2].starts_with("xxxxx  y"));
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3"]);
        let out = t.render();
        assert_eq!(out.lines().count(), 4);
    }
}
