//! Parallel trial sweeps over a ladder of population sizes.

use netcon_core::{
    CompiledTable, Engine, EngineView, Machine, Population, RuleProtocol, SchedulerKind, StateId,
};

use crate::stats::Summary;

/// Configuration of a sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Population sizes to measure.
    pub sizes: Vec<usize>,
    /// Trials per size.
    pub trials: usize,
    /// Base seed; trial `t` of size `n` uses a seed derived from
    /// `(base_seed, n, t)` so sweeps are reproducible.
    pub base_seed: u64,
}

/// Measurements for one population size.
#[derive(Debug, Clone)]
pub struct SizeResult {
    /// The population size.
    pub n: usize,
    /// Raw per-trial measurements.
    pub samples: Vec<f64>,
    /// Summary statistics of `samples`.
    pub summary: Summary,
}

/// The result of a sweep: one [`SizeResult`] per configured size.
#[derive(Debug, Clone)]
pub struct SweepTable {
    /// Results in the order of `SweepConfig::sizes`.
    pub rows: Vec<SizeResult>,
}

impl SweepTable {
    /// `(n, mean)` pairs for fitting.
    #[must_use]
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.rows
            .iter()
            .map(|r| (r.n as f64, r.summary.mean))
            .collect()
    }
}

/// The canonical two-coordinate seed derivation from
/// [`netcon_core::seeds::derive2`], addressed by `(size, trial)`.
///
/// Until PR 2 this crate carried its own SplitMix64 variant; sweeps now
/// share the one derivation exported by the model crate. The documented
/// base-seed convention is therefore bumped: a sweep's per-trial seeds
/// changed once, and are stable again from here on.
fn derive_seed(base: u64, n: usize, trial: usize) -> u64 {
    netcon_core::seeds::derive2(base, n as u64, trial as u64)
}

/// Runs `workload(n, seed)` for every configured size and trial, spreading
/// trials over available CPU cores (scoped threads with an atomic
/// work-stealing counter). Returns the per-size summaries in configuration
/// order.
///
/// The workload must be deterministic given `(n, seed)` for the sweep to
/// be reproducible.
pub fn sweep<F>(cfg: &SweepConfig, workload: F) -> SweepTable
where
    F: Fn(usize, u64) -> f64 + Sync,
{
    // Flatten all (size, trial) jobs, run them on a simple work-stealing
    // index counter, then regroup.
    let jobs: Vec<(usize, usize)> = cfg
        .sizes
        .iter()
        .flat_map(|&n| (0..cfg.trials).map(move |t| (n, t)))
        .collect();
    let results = run_jobs(&jobs, |&(n, t)| workload(n, derive_seed(cfg.base_seed, n, t)));

    let mut rows = Vec::with_capacity(cfg.sizes.len());
    for (i, &n) in cfg.sizes.iter().enumerate() {
        let samples: Vec<f64> = (0..cfg.trials)
            .map(|t| results[i * cfg.trials + t])
            .collect();
        let summary = Summary::of(&samples);
        rows.push(SizeResult { n, samples, summary });
    }
    SweepTable { rows }
}

/// Sweeps a flat protocol's convergence time (`converged_at`, the paper's
/// sequential running time) on the **auto-selected event engine**: the
/// protocol is compiled once, each trial runs on
/// [`Engine::auto`](netcon_core::Engine::auto) — the dense event engine
/// within the memory budget, the sparse bucket engine beyond it — and
/// both arms' step counts are identical in distribution to the naive
/// loop at a fraction of the cost.
///
/// `stable` must certify output stability (as the per-protocol predicates
/// in `netcon-protocols` do). Trials that exhaust `max_steps` panic —
/// sweeps are measurements, and a censored sample would silently bias the
/// fit.
///
/// The dense predicate keeps this entry point source-compatible; when a
/// sweep size is large enough that the selector goes sparse, each
/// evaluation materializes a dense [`Population`] (Θ(n²)). Frontier-scale
/// sweeps should use [`sweep_converged_at_view`] with a sparse-clean
/// predicate instead.
///
/// # Panics
///
/// Panics if any trial fails to stabilize within `max_steps`.
pub fn sweep_converged_at<P>(
    cfg: &SweepConfig,
    protocol: &RuleProtocol,
    stable: P,
    max_steps: u64,
) -> SweepTable
where
    P: Fn(&Population<StateId>) -> bool + Sync,
{
    sweep_converged_at_view(cfg, protocol, |view| match view {
        EngineView::Dense { pop, .. } => stable(pop),
        sparse @ EngineView::Sparse { .. } => stable(&sparse.to_population()),
    }, max_steps)
}

/// [`sweep_converged_at`] with the predicate over the engine-selection
/// view, so sparse-clean predicates (e.g.
/// `simple_global_line::is_stable_view`) run at frontier sizes without
/// any Θ(n²) structure ever existing.
///
/// # Panics
///
/// Panics if any trial fails to stabilize within `max_steps`.
pub fn sweep_converged_at_view<P>(
    cfg: &SweepConfig,
    protocol: &RuleProtocol,
    stable: P,
    max_steps: u64,
) -> SweepTable
where
    P: Fn(&EngineView<'_, CompiledTable>) -> bool + Sync,
{
    let compiled = protocol.compile();
    let name = protocol.name().to_owned();
    sweep(cfg, |n, seed| {
        let mut eng = Engine::auto(compiled.clone(), n, seed);
        eng.run_until(|v| stable(v), max_steps)
            .converged_at()
            .unwrap_or_else(|| panic!("{name} did not stabilize on n={n} within {max_steps}"))
            as f64
    })
}

/// The number of ShuffledRounds rounds a single run needs to converge:
/// the smallest `ρ` such that the output graph never changes after round
/// `ρ` — the round-denominated (parallel-time) reading of the paper's
/// convergence time, measured on the **auto-selected round engine**
/// ([`Engine::auto_for`] with [`SchedulerKind::ShuffledRounds`]: the
/// event-driven [`netcon_core::RoundSim`] within the memory budget, the
/// sparse [`netcon_core::RoundBucketSim`] beyond it — identical
/// distribution either way).
///
/// `stable` must certify output stability, as the per-protocol
/// predicates in `netcon-protocols` do. When the selector goes sparse,
/// each evaluation of this dense predicate materializes a Θ(n²)
/// [`Population`]; frontier-scale round sweeps should use
/// [`rounds_to_converge_view`] with a sparse-clean predicate instead.
///
/// # Panics
///
/// Panics if the run fails to stabilize within `max_steps`.
#[must_use]
pub fn rounds_to_converge(
    protocol: &RuleProtocol,
    n: usize,
    seed: u64,
    stable: impl Fn(&Population<StateId>) -> bool,
    max_steps: u64,
) -> u64 {
    rounds_of_run(protocol.compile(), protocol.name(), n, seed, &stable, max_steps)
}

/// [`rounds_to_converge`] with the predicate over the engine-selection
/// view, so sparse-clean predicates run at frontier sizes (the sparse
/// round engine holds O(n + |Q|²); nothing Θ(n²) ever exists).
///
/// # Panics
///
/// Panics if the run fails to stabilize within `max_steps`.
#[must_use]
pub fn rounds_to_converge_view(
    protocol: &RuleProtocol,
    n: usize,
    seed: u64,
    stable: impl Fn(&EngineView<'_, CompiledTable>) -> bool,
    max_steps: u64,
) -> u64 {
    rounds_of_run_view(protocol.compile(), protocol.name(), n, seed, &stable, max_steps)
}

/// [`rounds_to_converge`] on an already-compiled table (so sweeps
/// compile once, not per trial), lowering the dense predicate onto the
/// view (Θ(n²) materialization per evaluation on the sparse arm).
fn rounds_of_run(
    compiled: CompiledTable,
    name: &str,
    n: usize,
    seed: u64,
    stable: &impl Fn(&Population<StateId>) -> bool,
    max_steps: u64,
) -> u64 {
    rounds_of_run_view(
        compiled,
        name,
        n,
        seed,
        &|view: &EngineView<'_, CompiledTable>| match view {
            EngineView::Dense { pop, .. } => stable(pop),
            sparse @ EngineView::Sparse { .. } => stable(&sparse.to_population()),
        },
        max_steps,
    )
}

/// The shared round-counting trial body: run the auto-selected round
/// engine to stability, convert `converged_at` to rounds.
fn rounds_of_run_view(
    compiled: CompiledTable,
    name: &str,
    n: usize,
    seed: u64,
    stable: &impl Fn(&EngineView<'_, CompiledTable>) -> bool,
    max_steps: u64,
) -> u64 {
    let mut eng = Engine::auto_for(compiled, n, seed, SchedulerKind::ShuffledRounds);
    let converged = eng
        .run_until(|view| stable(view), max_steps)
        .converged_at()
        .unwrap_or_else(|| panic!("{name} did not stabilize on n={n} within {max_steps}"));
    let pairs_per_round = (n as u64) * (n as u64 - 1) / 2;
    converged.div_ceil(pairs_per_round)
}

/// Sweeps a flat protocol's ShuffledRounds convergence time **in
/// rounds** over the configured sizes — the round-based fast path:
/// each trial runs [`rounds_to_converge`] on the auto-selected round
/// engine, at event-driven cost instead of Θ(n²) work per round.
///
/// # Panics
///
/// Panics if any trial fails to stabilize within `max_steps`.
pub fn sweep_rounds_to_converge<P>(
    cfg: &SweepConfig,
    protocol: &RuleProtocol,
    stable: P,
    max_steps: u64,
) -> SweepTable
where
    P: Fn(&Population<StateId>) -> bool + Sync,
{
    let compiled = protocol.compile();
    let name = protocol.name().to_owned();
    sweep(cfg, |n, seed| {
        rounds_of_run(compiled.clone(), &name, n, seed, &stable, max_steps) as f64
    })
}

/// [`sweep_rounds_to_converge`] with the predicate over the
/// engine-selection view — the frontier round-sweep path: at sizes where
/// the selector picks the sparse round engine (n ≳ 6 000 under the
/// default budget), a sparse-clean predicate keeps every trial
/// O(n + |Q|²), so round-denominated sweeps run at n = 100 000 and
/// beyond.
///
/// # Panics
///
/// Panics if any trial fails to stabilize within `max_steps`.
pub fn sweep_rounds_to_converge_view<P>(
    cfg: &SweepConfig,
    protocol: &RuleProtocol,
    stable: P,
    max_steps: u64,
) -> SweepTable
where
    P: Fn(&EngineView<'_, CompiledTable>) -> bool + Sync,
{
    let compiled = protocol.compile();
    let name = protocol.name().to_owned();
    sweep(cfg, |n, seed| {
        rounds_of_run_view(compiled.clone(), &name, n, seed, &stable, max_steps) as f64
    })
}

/// Runs `f` over `jobs` in parallel, preserving the order of results.
fn run_jobs<T: Sync, R: Send>(jobs: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    if jobs.is_empty() {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
        .min(jobs.len());
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        local.push((i, f(&jobs[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker threads do not panic"))
            .collect()
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_order_and_counts() {
        let cfg = SweepConfig {
            sizes: vec![4, 8, 2],
            trials: 5,
            base_seed: 0,
        };
        let t = sweep(&cfg, |n, _| n as f64);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0].n, 4);
        assert_eq!(t.rows[2].n, 2);
        assert!(t.rows.iter().all(|r| r.samples.len() == 5));
        assert_eq!(t.points()[1], (8.0, 8.0));
    }

    #[test]
    fn seeds_vary_per_trial_but_reproduce() {
        let cfg = SweepConfig {
            sizes: vec![10],
            trials: 6,
            base_seed: 42,
        };
        let a = sweep(&cfg, |_, seed| seed as f64);
        let b = sweep(&cfg, |_, seed| seed as f64);
        assert_eq!(a.rows[0].samples, b.rows[0].samples, "reproducible");
        let mut distinct = a.rows[0].samples.clone();
        distinct.sort_by(f64::total_cmp);
        distinct.dedup();
        assert_eq!(distinct.len(), 6, "per-trial seeds differ");
    }

    #[test]
    fn event_sweep_measures_convergence() {
        use netcon_core::{Link, ProtocolBuilder};
        // Maximum matching: Θ(n²) convergence, stable when no (a, a, 0)
        // pair remains — i.e. at most one node still in state a.
        let mut b = ProtocolBuilder::new("matching");
        let a = b.state("a");
        let m = b.state("b");
        b.rule((a, a, Link::Off), (m, m, Link::On));
        let p = b.build().expect("valid");
        let cfg = SweepConfig {
            sizes: vec![8, 16, 32],
            trials: 4,
            base_seed: 5,
        };
        let t = sweep_converged_at(&cfg, &p, |pop| pop.count_where(|s| *s == a) <= 1, u64::MAX);
        assert_eq!(t.rows.len(), 3);
        for r in &t.rows {
            assert!(r.summary.mean > 0.0, "n={} measured no steps", r.n);
            assert_eq!(r.samples.len(), 4);
        }
        // Reproducible: same config, same table.
        let t2 = sweep_converged_at(&cfg, &p, |pop| pop.count_where(|s| *s == a) <= 1, u64::MAX);
        assert_eq!(t.rows[1].samples, t2.rows[1].samples);
    }

    #[test]
    fn round_sweep_measures_rounds() {
        use netcon_core::{Link, ProtocolBuilder};
        // Maximum matching completes within round 1 under any box
        // schedule (every pair occurs once per round), so the sweep's
        // rounds column is deterministically 1 at every even size.
        let mut b = ProtocolBuilder::new("matching");
        let a = b.state("a");
        let m = b.state("b");
        b.rule((a, a, Link::Off), (m, m, Link::On));
        let p = b.build().expect("valid");
        let stable = move |pop: &Population<StateId>| pop.count_where(|s| *s == a) <= 1;
        let cfg = SweepConfig {
            sizes: vec![8, 16],
            trials: 3,
            base_seed: 11,
        };
        let t = sweep_rounds_to_converge(&cfg, &p, stable, u64::MAX);
        for r in &t.rows {
            assert!(
                r.samples.iter().all(|&x| x == 1.0),
                "n={}: rounds {:?}",
                r.n,
                r.samples
            );
        }
        // Single-run helper agrees.
        assert_eq!(rounds_to_converge(&p, 10, 3, stable, u64::MAX), 1);
    }

    #[test]
    fn round_sweep_view_runs_at_frontier_size() {
        use netcon_core::{EnumerableMachine, Link, ProtocolBuilder};
        // The view-predicate path never materializes a dense Population,
        // so a round-denominated sweep runs at n = 100 000 — far beyond
        // the dense round engine's memory budget, exercising the sparse
        // round engine end to end through `Engine::auto_for`.
        let mut b = ProtocolBuilder::new("matching");
        let a = b.state("a");
        let m = b.state("b");
        b.rule((a, a, Link::Off), (m, m, Link::On));
        let p = b.build().expect("valid");
        let ai = p.compile().state_index(&a);
        let cfg = SweepConfig {
            sizes: vec![100_000],
            trials: 1,
            base_seed: 23,
        };
        let t = sweep_rounds_to_converge_view(&cfg, &p, |v| v.count_index(ai) <= 1, u64::MAX);
        assert_eq!(t.rows[0].samples, vec![1.0], "matching finishes in round 1");
        // And the single-run view helper agrees at a small size with the
        // dense-predicate helper on the same seed.
        let dense = rounds_to_converge(
            &p,
            64,
            9,
            move |pop: &Population<StateId>| pop.count_where(|s| *s == a) <= 1,
            u64::MAX,
        );
        let view = rounds_to_converge_view(&p, 64, 9, |v| v.count_index(ai) <= 1, u64::MAX);
        assert_eq!(dense, view);
    }

    #[test]
    fn parallel_matches_serial_semantics() {
        let cfg = SweepConfig {
            sizes: (2..40).collect(),
            trials: 3,
            base_seed: 7,
        };
        let t = sweep(&cfg, |n, seed| (n as f64) * 1e6 + (seed % 1000) as f64);
        for (i, row) in t.rows.iter().enumerate() {
            assert_eq!(row.n, i + 2);
            for (t_idx, &v) in row.samples.iter().enumerate() {
                let expect =
                    (row.n as f64) * 1e6 + (derive_seed(7, row.n, t_idx) % 1000) as f64;
                assert_eq!(v, expect);
            }
        }
    }
}
