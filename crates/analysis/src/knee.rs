//! Availability-vs-fault-rate sweeps and knee detection: where does a
//! constructor's availability curve fall off a cliff?
//!
//! [`availability`](crate::availability) measures one protocol under
//! one fault stream. This module sweeps that measurement over a
//! *rate ladder* — a list of per-draw fault rates — and locates the
//! **knee**: the rate beyond which availability stops degrading
//! gracefully and collapses. Empirically the two regimes are close to
//! power laws in the rate (slow decay left of the knee, steep decay
//! right of it), so the knee is found by a two-segment log–log fit
//! reusing [`fit_power_law`]: every split of the ladder is scored by
//! the summed squared log-residuals of its two fits, and the best
//! split's boundary (geometric mean of the straddling rates) is the
//! knee.
//!
//! The sweep is schedule-agnostic: the caller supplies a *plan maker*
//! mapping `(rate, seed, n)` to a [`FaultPlan`], so the same ladder
//! runs under Poisson churn ([`poisson_crash_plan`]) or an adaptive
//! targeted adversary ([`periodic_adversary_plan`]) — the comparison
//! at the heart of the adversarial-frontier benchmark.

use netcon_core::{
    AdversaryPlan, AdversaryPolicy, Cadence, ChurnPlan, CompiledTable, EngineView, FaultPlan,
    FaultState, RuleProtocol,
};

use crate::availability::availability;
use crate::fit::{fit_power_law, PowerLawFit};

/// Availabilities below this are clamped before taking logs: a fully
/// dead curve segment still fits (flat at the clamp) instead of
/// panicking on `ln 0`.
const AVAILABILITY_CLAMP: f64 = 1e-6;

/// One rung of an availability-vs-rate ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePoint {
    /// Per-draw fault rate this rung was measured at.
    pub rate: f64,
    /// Mean fraction-of-draws-available across the rung's trials.
    pub availability: f64,
}

/// A detected availability knee: the rate at which the curve's log–log
/// slope breaks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Knee {
    /// The break rate — geometric mean of the two ladder rungs that
    /// straddle the best two-segment split.
    pub rate: f64,
    /// Power-law fit of availability-vs-rate left of the knee (the
    /// graceful-degradation regime).
    pub left: PowerLawFit,
    /// Power-law fit right of the knee (the collapse regime).
    pub right: PowerLawFit,
}

/// Sweeps mean availability over a ladder of fault rates.
///
/// For each `rate` in `rates`, runs `trials` independent measurements:
/// trial `t` gets seed [`seeds::derive2`](netcon_core::seeds::derive2)
/// `(base_seed, rate_index, t)` and a plan from
/// `make_plan(rate, seed, n)`, then measures
/// [`availability`] with `stable` and averages `fraction_available`
/// across the trials. Ladder order is preserved in the output, so a
/// monotone-degradation guardrail is a single pass over the result.
///
/// # Panics
///
/// Panics if `trials` is zero or any rate is not finite and positive.
#[allow(clippy::too_many_arguments)] // a sweep is its full parameter list
pub fn sweep_availability_vs_rate<F, P>(
    protocol: &RuleProtocol,
    n: usize,
    rates: &[f64],
    trials: usize,
    base_seed: u64,
    make_plan: F,
    stable: P,
    max_steps: u64,
) -> Vec<RatePoint>
where
    F: Fn(f64, u64, usize) -> FaultPlan,
    P: Fn(&EngineView<'_, CompiledTable>, &FaultState) -> bool,
{
    assert!(trials > 0, "sweep_availability_vs_rate needs trials > 0");
    assert!(
        rates.iter().all(|r| r.is_finite() && *r > 0.0),
        "rates must be finite and positive"
    );
    rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let mut sum = 0.0;
            for t in 0..trials {
                let seed = netcon_core::seeds::derive2(base_seed, i as u64, t as u64);
                let plan = make_plan(rate, seed, n);
                sum += availability(protocol, n, seed, plan, &stable, max_steps)
                    .fraction_available();
            }
            RatePoint {
                rate,
                availability: sum / trials as f64,
            }
        })
        .collect()
}

/// Poisson-churn plan maker: a crash stream at `rate` departures per
/// draw over `horizon` draws, floored at `min_alive` survivors.
///
/// Shape matches the `make_plan` argument of
/// [`sweep_availability_vs_rate`] once `horizon` and `min_alive` are
/// applied (e.g. via a closure).
#[must_use]
pub fn poisson_crash_plan(
    rate: f64,
    seed: u64,
    n: usize,
    horizon: u64,
    min_alive: usize,
) -> FaultPlan {
    ChurnPlan::new(seed)
        .departure_rate(rate)
        .min_alive(min_alive)
        .horizon(horizon)
        .compile(n)
}

/// Adaptive-adversary plan maker: a periodic [`Cadence`] striking once
/// every `⌈1/rate⌉` draws across `horizon` draws, running `policies`
/// at each decision, floored at `min_alive` survivors.
///
/// The expected damage per draw matches [`poisson_crash_plan`] at the
/// same `rate` (one strike per `1/rate` draws), which is what makes
/// the Poisson-vs-adversarial knee comparison apples-to-apples.
#[must_use]
pub fn periodic_adversary_plan(
    rate: f64,
    seed: u64,
    horizon: u64,
    policies: &[AdversaryPolicy],
    min_alive: usize,
) -> FaultPlan {
    assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
    let every = (1.0 / rate).ceil().max(1.0);
    let every = if every >= u64::MAX as f64 {
        u64::MAX
    } else {
        every as u64
    };
    let count = u32::try_from(horizon / every).unwrap_or(u32::MAX);
    let mut adv = AdversaryPlan::new(Cadence::Periodic {
        start: every,
        every,
        count,
    })
    .min_alive(min_alive);
    for &p in policies {
        adv = adv.policy(p);
    }
    FaultPlan::new(seed).with_adversary(adv)
}

/// Detects the availability knee of a rate ladder by exhaustive
/// two-segment log–log fitting.
///
/// Availabilities are clamped at `1e-6` before taking logs so dead
/// rungs fit flat instead of panicking. Every split leaving at least
/// two rungs per side is scored by the sum of squared log-residuals of
/// the two [`fit_power_law`] fits; the minimum wins. Returns `None`
/// when the ladder has fewer than four rungs (no split has two points
/// per side).
///
/// # Panics
///
/// Panics if any rate is not finite and positive.
#[must_use]
pub fn detect_knee(points: &[RatePoint]) -> Option<Knee> {
    assert!(
        points.iter().all(|p| p.rate.is_finite() && p.rate > 0.0),
        "rates must be finite and positive"
    );
    if points.len() < 4 {
        return None;
    }
    let clamped: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.rate, p.availability.max(AVAILABILITY_CLAMP)))
        .collect();
    let mut best: Option<(f64, usize, PowerLawFit, PowerLawFit)> = None;
    for split in 2..=clamped.len() - 2 {
        let left = fit_power_law(&clamped[..split]);
        let right = fit_power_law(&clamped[split..]);
        let sse = log_sse(&clamped[..split], left) + log_sse(&clamped[split..], right);
        if best.as_ref().is_none_or(|b| sse < b.0) {
            best = Some((sse, split, left, right));
        }
    }
    best.map(|(_, split, left, right)| Knee {
        rate: (clamped[split - 1].0 * clamped[split].0).sqrt(),
        left,
        right,
    })
}

/// Sum of squared residuals of `fit` over `points`, in log–log space.
fn log_sse(points: &[(f64, f64)], fit: PowerLawFit) -> f64 {
    points
        .iter()
        .map(|&(x, y)| {
            let predicted = fit.constant.ln() + fit.exponent * x.ln();
            (y.ln() - predicted).powi(2)
        })
        .sum()
}

/// Degradation guardrail: `true` when availability never *rises* by
/// more than `tol` as the rate climbs (the curve is monotone
/// non-increasing up to trial noise).
#[must_use]
pub fn monotone_nonincreasing(points: &[RatePoint], tol: f64) -> bool {
    points
        .windows(2)
        .all(|w| w[1].availability <= w[0].availability + tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A local FT-star transcription (mirrors `availability.rs`'s
    /// self-contained test style).
    fn star() -> RuleProtocol {
        use netcon_core::{Link, ProtocolBuilder};
        let mut b = ProtocolBuilder::new("ft-star");
        let c = b.state("c");
        let p = b.state("p");
        b.rule((c, c, Link::Off), (c, p, Link::On));
        b.rule((p, p, Link::On), (p, p, Link::Off));
        b.rule((c, p, Link::Off), (c, p, Link::On));
        b.rule((c, c, Link::On), (c, p, Link::On));
        b.on_crash(p, c);
        b.build().expect("valid")
    }

    fn star_stable(v: &EngineView<'_, CompiledTable>, fs: &FaultState) -> bool {
        let centres: Vec<usize> = (0..v.n())
            .filter(|&u| fs.is_alive(u) && v.state_index(u) == 0)
            .collect();
        let alive = fs.alive_count();
        centres.len() == 1
            && alive >= 1
            && v.active_count() == alive - 1
            && v.degree(centres[0]) == alive - 1
    }

    #[test]
    fn synthetic_two_regime_curve_has_a_knee_at_the_break() {
        // Flat-ish decay (slope -0.1) below rate 1e-3, collapse (slope
        // -2) above it.
        let knee_rate = 1e-3;
        let points: Vec<RatePoint> = (0..12)
            .map(|i| {
                let rate = 1e-5 * 2f64.powi(i);
                let availability = if rate <= knee_rate {
                    0.9 * (rate / knee_rate).powf(-0.1)
                } else {
                    0.9 * (rate / knee_rate).powf(-2.0)
                };
                RatePoint { rate, availability }
            })
            .collect();
        let knee = detect_knee(&points).expect("12 rungs is plenty");
        assert!(
            knee.rate >= 5e-4 && knee.rate <= 4e-3,
            "knee near the regime break: {knee:?}"
        );
        assert!(knee.left.exponent > knee.right.exponent, "collapse is steeper");
        assert!((knee.left.exponent - -0.1).abs() < 0.1);
        assert!((knee.right.exponent - -2.0).abs() < 0.3);
    }

    #[test]
    fn short_ladders_have_no_knee() {
        let points: Vec<RatePoint> = (0..3)
            .map(|i| RatePoint {
                rate: 10f64.powi(i - 4),
                availability: 0.5,
            })
            .collect();
        assert!(detect_knee(&points).is_none());
    }

    #[test]
    fn dead_rungs_clamp_instead_of_panicking() {
        let points: Vec<RatePoint> = (0..6)
            .map(|i| RatePoint {
                rate: 10f64.powi(i - 6),
                availability: if i < 3 { 0.8 } else { 0.0 },
            })
            .collect();
        let knee = detect_knee(&points).expect("clamped fit succeeds");
        assert!(knee.rate > 0.0);
    }

    #[test]
    fn monotone_guardrail_tolerates_noise_but_not_rises() {
        let mk = |avail: &[f64]| -> Vec<RatePoint> {
            avail
                .iter()
                .enumerate()
                .map(|(i, &a)| RatePoint {
                    rate: 10f64.powi(i as i32 - 5),
                    availability: a,
                })
                .collect()
        };
        assert!(monotone_nonincreasing(&mk(&[0.9, 0.8, 0.5, 0.1]), 0.0));
        assert!(monotone_nonincreasing(&mk(&[0.9, 0.91, 0.5]), 0.02));
        assert!(!monotone_nonincreasing(&mk(&[0.5, 0.9]), 0.02));
    }

    #[test]
    fn sweep_runs_both_schedules_on_the_same_ladder() {
        let proto = star();
        let n = 10;
        let horizon = 40_000;
        let rates = [1e-4, 4e-4];
        let poisson = sweep_availability_vs_rate(
            &proto,
            n,
            &rates,
            2,
            17,
            |rate, seed, n| poisson_crash_plan(rate, seed, n, horizon, 4),
            star_stable,
            u64::MAX,
        );
        let adversarial = sweep_availability_vs_rate(
            &proto,
            n,
            &rates,
            2,
            17,
            |rate, seed, _n| {
                periodic_adversary_plan(
                    rate,
                    seed,
                    horizon,
                    &[AdversaryPolicy::CrashMaxDegree],
                    4,
                )
            },
            star_stable,
            u64::MAX,
        );
        for pts in [&poisson, &adversarial] {
            assert_eq!(pts.len(), 2);
            for p in pts.iter() {
                assert!((0.0..=1.0).contains(&p.availability), "bounded: {p:?}");
            }
        }
        // Determinism: rerunning the poisson ladder reproduces it.
        let again = sweep_availability_vs_rate(
            &proto,
            n,
            &rates,
            2,
            17,
            |rate, seed, n| poisson_crash_plan(rate, seed, n, horizon, 4),
            star_stable,
            u64::MAX,
        );
        assert_eq!(poisson, again);
    }

    #[test]
    fn periodic_adversary_plan_matches_the_rate() {
        let plan = periodic_adversary_plan(
            1e-3,
            3,
            10_000,
            &[AdversaryPolicy::CrashMaxDegree],
            2,
        );
        let adv = plan.adversary().expect("adversarial plan");
        assert_eq!(adv.cadence().count(), 10, "10k draws at 1e-3 = 10 strikes");
        assert_eq!(plan.boundary_times().first(), Some(&1000));
        assert_eq!(plan.boundary_times().last(), Some(&10_000));
    }
}
