//! Self-repair measurements: perturb a stabilized network with a burst
//! of faults, then measure how long the protocol takes to re-stabilize.
//!
//! The paper's constructors are analyzed from the all-`q0` initial
//! configuration, but several of them are *self-stabilizing against
//! specific perturbations* (a star re-grows a deleted spoke; a line
//! absorbs a fresh node). [`repair_time`] quantifies that: run to
//! stability, apply a [`FaultSeverity`] burst of crashes / arrivals /
//! edge deletions in one shot, and run to stability again. The repair
//! time is the number of steps after the perturbation at which the
//! output graph last changed — 0 when the protocol has no rule that
//! re-fires on the damage (an honest "does not self-repair" reading,
//! not an error).
//!
//! Measurements ride the fault layer shared by all four engines
//! ([`netcon_core::fault`]), so they are engine-independent like every
//! other sweep in this crate.

use netcon_core::fault::{FaultEvent, FaultPlan, FaultState};
use netcon_core::{CompiledTable, Engine, EngineView, Machine, RuleProtocol};

use crate::sweep::{sweep, SweepConfig, SweepTable};

/// The perturbation applied between the two stabilization phases of a
/// [`repair_time`] measurement: how many nodes crash, how many fresh
/// nodes arrive, and how many uniformly-chosen active edges are deleted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSeverity {
    /// Uniformly-chosen alive nodes to crash.
    pub crashes: u32,
    /// Fresh nodes (in the initial state) to admit.
    pub arrivals: u32,
    /// Uniformly-chosen active edges to delete (at most the number of
    /// active edges at perturbation time).
    pub edge_deletions: u32,
}

impl Default for FaultSeverity {
    /// One crash, one arrival, one edge deletion — the mildest mixed
    /// perturbation.
    fn default() -> Self {
        Self {
            crashes: 1,
            arrivals: 1,
            edge_deletions: 1,
        }
    }
}

impl FaultSeverity {
    /// Parses the compact `"crashes,arrivals,edge_deletions"` form used
    /// by the bench harness's severity knob (e.g. `"2,1,3"`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field (or the arity
    /// problem) and the expected format — surfaced verbatim when a bad
    /// `NETCON_FAULT_SEVERITY` value reaches the bench harness.
    pub fn parse(s: &str) -> Result<Self, String> {
        const FORMAT: &str = "expected \"crashes,arrivals,edge_deletions\" (e.g. \"2,1,3\")";
        const FIELDS: [&str; 3] = ["crashes", "arrivals", "edge_deletions"];
        let parts: Vec<&str> = s.split(',').collect();
        if parts.len() != 3 {
            return Err(format!(
                "got {} comma-separated field(s) in {s:?}; {FORMAT}",
                parts.len()
            ));
        }
        let mut values = [0u32; 3];
        for ((raw, name), out) in parts.iter().zip(FIELDS).zip(&mut values) {
            *out = raw.trim().parse::<u32>().map_err(|e| {
                format!("bad {name} field {:?} in {s:?} ({e}); {FORMAT}", raw.trim())
            })?;
        }
        Ok(Self {
            crashes: values[0],
            arrivals: values[1],
            edge_deletions: values[2],
        })
    }

    /// The [`FaultPlan`] realizing this severity, reproducible from
    /// `seed`. Events are scheduled at `u64::MAX` — repair measurements
    /// apply them manually with
    /// [`Engine::apply_faults_now`](netcon_core::Engine::apply_faults_now)
    /// once the first phase has stabilized, since the stabilization step
    /// itself is random.
    #[must_use]
    pub fn plan(&self, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        for _ in 0..self.crashes {
            plan = plan.at(u64::MAX, FaultEvent::CrashRandom);
        }
        for _ in 0..self.arrivals {
            plan = plan.at(u64::MAX, FaultEvent::Arrive);
        }
        if self.edge_deletions > 0 {
            plan = plan.at(
                u64::MAX,
                FaultEvent::DeleteRandomActiveEdges(self.edge_deletions),
            );
        }
        plan
    }
}

/// One perturb-and-repair measurement (see [`repair_time`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairResult {
    /// When the unperturbed run converged (the paper's running time).
    pub converged_at: u64,
    /// The step at which the fault burst was applied (= the step the
    /// first phase's stability was detected).
    pub perturbed_at: u64,
    /// Steps from the perturbation to the last output change of the
    /// re-stabilized run: 0 when nothing re-fired on the damage.
    pub repair: u64,
}

/// Runs `protocol` to stability, applies the `severity` burst, runs to
/// stability again, and reports both phases. The engine is
/// [`Engine::auto_faulted`] — dense or sparse by the usual budget —
/// so the measurement is engine-independent.
///
/// `stable` reads the engine view *and* the fault state: a repair
/// predicate must judge stability relative to the alive population (a
/// crashed node cannot count against a spanning condition). It is
/// consulted with the pre-burst fault state in phase 1 and the
/// post-burst state in phase 2. Each phase gets its own `max_steps`
/// budget.
///
/// # Panics
///
/// Panics if either phase fails to stabilize within its budget — repair
/// sweeps are measurements, and a censored sample would bias the curve.
pub fn repair_time(
    protocol: &RuleProtocol,
    n: usize,
    seed: u64,
    severity: FaultSeverity,
    stable: impl Fn(&EngineView<'_, CompiledTable>, &FaultState) -> bool,
    max_steps: u64,
) -> RepairResult {
    let name = protocol.name();
    let mut eng = Engine::auto_faulted(protocol.compile(), n, seed, severity.plan(seed));
    let fs0 = eng.fault_state().expect("faulted engine").clone();
    let converged_at = eng
        .run_until(|v| stable(v, &fs0), max_steps)
        .converged_at()
        .unwrap_or_else(|| panic!("{name} did not stabilize on n={n} within {max_steps}"));
    eng.apply_faults_now();
    let perturbed_at = eng.steps();
    let fs1 = eng.fault_state().expect("faulted engine").clone();
    let repaired_at = eng
        .run_until(|v| stable(v, &fs1), perturbed_at.saturating_add(max_steps))
        .converged_at()
        .unwrap_or_else(|| {
            panic!("{name} did not re-stabilize on n={n} within {max_steps} of the perturbation")
        });
    RepairResult {
        converged_at,
        perturbed_at,
        repair: repaired_at.saturating_sub(perturbed_at),
    }
}

/// Sweeps [`repair_time`]'s `repair` column over the configured sizes
/// and trials (the usual parallel, seed-derived sweep). The sample unit
/// is steps-after-perturbation; protocols that do not self-repair the
/// given severity produce all-zero rows, which is the result, not a
/// failure.
///
/// # Panics
///
/// As [`repair_time`], for any trial.
pub fn sweep_repair_time<P>(
    cfg: &SweepConfig,
    protocol: &RuleProtocol,
    severity: FaultSeverity,
    stable: P,
    max_steps: u64,
) -> SweepTable
where
    P: Fn(&EngineView<'_, CompiledTable>, &FaultState) -> bool + Sync,
{
    sweep(cfg, |n, seed| {
        repair_time(protocol, n, seed, severity, &stable, max_steps).repair as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcon_core::{Link, ProtocolBuilder};

    fn matching() -> RuleProtocol {
        let mut b = ProtocolBuilder::new("matching");
        let a = b.state("a");
        let m = b.state("b");
        b.rule((a, a, Link::Off), (m, m, Link::On));
        b.build().expect("valid")
    }

    /// Alive nodes still in the unmatched state, from the view.
    fn unmatched_alive(v: &EngineView<'_, CompiledTable>, fs: &FaultState) -> usize {
        (0..v.n())
            .filter(|&u| fs.is_alive(u) && v.state_index(u) == 0)
            .count()
    }

    #[test]
    fn severity_parses_and_plans() {
        let s = FaultSeverity::parse("2,1,3").expect("valid");
        assert_eq!(
            s,
            FaultSeverity {
                crashes: 2,
                arrivals: 1,
                edge_deletions: 3
            }
        );
        assert_eq!(s.plan(7).arrival_count(), 1);
        assert!(FaultSeverity::parse(" 0 , 4 , 2 ").is_ok(), "whitespace ok");
    }

    #[test]
    fn severity_parse_errors_name_the_field() {
        let e = FaultSeverity::parse("2,1").unwrap_err();
        assert!(e.contains("2 comma-separated field(s)"), "{e}");
        assert!(e.contains("crashes,arrivals,edge_deletions"), "{e}");
        let e = FaultSeverity::parse("2,1,x").unwrap_err();
        assert!(e.contains("edge_deletions"), "{e}");
        assert!(e.contains("\"x\""), "{e}");
        let e = FaultSeverity::parse("2,-1,3").unwrap_err();
        assert!(e.contains("arrivals"), "{e}");
        let e = FaultSeverity::parse("2,1,3,4").unwrap_err();
        assert!(e.contains("4 comma-separated field(s)"), "{e}");
    }

    #[test]
    fn matching_repairs_arrivals_but_not_matched_crashes() {
        // Two arrivals and no other damage: the two fresh `a` nodes must
        // match each other (or nobody), so repair is positive whenever
        // they do. With crashes only, a crashed matched node leaves its
        // partner matched-but-widowed — no rule re-fires, repair = 0.
        let arrivals_only = FaultSeverity {
            crashes: 0,
            arrivals: 2,
            edge_deletions: 0,
        };
        let r = repair_time(
            &matching(),
            8,
            3,
            arrivals_only,
            |v, fs| unmatched_alive(v, fs) <= 1,
            10_000_000,
        );
        assert!(r.repair > 0, "fresh pair should match: {r:?}");
        assert!(r.converged_at <= r.perturbed_at);

        let crashes_only = FaultSeverity {
            crashes: 2,
            arrivals: 0,
            edge_deletions: 0,
        };
        let r = repair_time(
            &matching(),
            8,
            3,
            crashes_only,
            |v, fs| unmatched_alive(v, fs) <= 1,
            10_000_000,
        );
        assert_eq!(r.repair, 0, "matching cannot re-pair the widowed: {r:?}");
    }

    #[test]
    fn repair_sweep_is_reproducible() {
        let cfg = SweepConfig {
            sizes: vec![6, 10],
            trials: 3,
            base_seed: 9,
        };
        let severity = FaultSeverity::default();
        let run = || {
            sweep_repair_time(
                &cfg,
                &matching(),
                severity,
                |v, fs| unmatched_alive(v, fs) <= 1,
                10_000_000,
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.rows[0].samples, b.rows[0].samples);
        assert_eq!(a.rows[1].samples, b.rows[1].samples);
    }
}
