//! Least-squares log–log fits for estimating time-complexity exponents.
//!
//! The paper's bounds have the form `Θ(n^k)` or `Θ(n^k log n)`. Taking
//! logs, `log T(n) = k·log n + c (+ log log n)`, so an ordinary
//! least-squares fit of `log T` against `log n` estimates `k` (a pure
//! `log n` factor inflates the fitted slope slightly at small `n`; the
//! harness therefore also fits after dividing the measurements by
//! `log n`).

/// Result of a power-law fit `T(n) ≈ a · n^k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// The fitted exponent `k`.
    pub exponent: f64,
    /// The fitted constant `a` (from the intercept).
    pub constant: f64,
    /// Coefficient of determination of the log–log regression.
    pub r_squared: f64,
}

/// Fits `T(n) = a · n^k` to `(n, T)` points by least squares in log–log
/// space.
///
/// # Panics
///
/// Panics if fewer than 2 points are given or any coordinate is
/// non-positive (logs would be undefined).
#[must_use]
pub fn fit_power_law(points: &[(f64, f64)]) -> PowerLawFit {
    assert!(points.len() >= 2, "need at least two points to fit");
    assert!(
        points.iter().all(|&(x, y)| x > 0.0 && y > 0.0),
        "power-law fit needs positive coordinates"
    );
    let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;

    let mean_y = sy / n;
    let ss_tot: f64 = logs.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = logs
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    PowerLawFit {
        exponent: slope,
        constant: intercept.exp(),
        r_squared,
    }
}

/// Fits `T(n) = a · n^k · log n`: divides each measurement by `ln n`
/// before the power-law fit, returning the exponent of the polynomial
/// part.
///
/// # Panics
///
/// Panics under the same conditions as [`fit_power_law`], or if any
/// `n ≤ 1` (so that `ln n ≤ 0`).
#[must_use]
pub fn fit_power_law_log_corrected(points: &[(f64, f64)]) -> PowerLawFit {
    assert!(
        points.iter().all(|&(x, _)| x > 1.0),
        "log-corrected fit needs n > 1"
    );
    let corrected: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| (x, y / x.ln()))
        .collect();
    fit_power_law(&corrected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quadratic() {
        let pts: Vec<(f64, f64)> = (2..20).map(|n| (n as f64, 3.0 * (n * n) as f64)).collect();
        let f = fit_power_law(&pts);
        assert!((f.exponent - 2.0).abs() < 1e-9);
        assert!((f.constant - 3.0).abs() < 1e-6);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_corrected_recovers_linear_exponent() {
        // T(n) = 5 n log n → corrected fit exponent ≈ 1.
        let pts: Vec<(f64, f64)> = (4..64)
            .map(|n| (n as f64, 5.0 * n as f64 * (n as f64).ln()))
            .collect();
        let raw = fit_power_law(&pts);
        let corr = fit_power_law_log_corrected(&pts);
        assert!(raw.exponent > 1.05, "raw slope absorbs the log factor");
        assert!((corr.exponent - 1.0).abs() < 1e-9);
        assert!((corr.constant - 5.0).abs() < 1e-6);
    }

    #[test]
    fn noisy_fit_reports_imperfect_r2() {
        let pts = [(2.0, 4.1), (4.0, 15.5), (8.0, 66.0), (16.0, 250.0)];
        let f = fit_power_law(&pts);
        assert!((f.exponent - 2.0).abs() < 0.1);
        assert!(f.r_squared < 1.0 && f.r_squared > 0.99);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_panics() {
        let _ = fit_power_law(&[(2.0, 4.0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_measurement_panics() {
        let _ = fit_power_law(&[(2.0, 0.0), (4.0, 1.0)]);
    }
}
