//! Summary statistics for trial measurements.

/// Summary of a sample of measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (midpoint of sorted sample).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    #[must_use]
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "cannot summarize an empty sample");
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = if xs.len() > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        Self {
            count: xs.len(),
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median,
            max: *sorted.last().expect("non-empty"),
        }
    }

    /// Half-width of the ~95% confidence interval on the mean
    /// (`1.96 · σ / √count`).
    #[must_use]
    pub fn ci95(&self) -> f64 {
        if self.count < 2 {
            return f64::NAN;
        }
        1.96 * self.std_dev / (self.count as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample() {
        let s = Summary::of(&[5.0, 5.0, 5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 5.0);
        assert_eq!((s.min, s.max), (5.0, 5.0));
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert!((s.std_dev - 1.2909944487358056).abs() < 1e-12);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }
}
